"""Tests for the adaptive page migration policy."""

import pytest

from repro.kernel.ats import Atc
from repro.kernel.hmm import Hmm
from repro.kernel.migration import AdaptiveMigrator
from repro.kernel.numa import NodeKind, NumaNode, NumaRegistry
from repro.kernel.page_table import PAGE_SIZE, UnifiedPageTable
from repro.mem.address import AddressRange


def build(cpu_pages=16, xpu_pages=16, **kwargs):
    pt = UnifiedPageTable()
    reg = NumaRegistry()
    reg.add(NumaNode(0, NodeKind.CPU, AddressRange(0, cpu_pages * PAGE_SIZE)))
    reg.add(
        NumaNode(
            1,
            NodeKind.XPU,
            AddressRange(cpu_pages * PAGE_SIZE, (cpu_pages + xpu_pages) * PAGE_SIZE),
        )
    )
    hmm = Hmm(pt, reg)
    migrator = AdaptiveMigrator(hmm, **kwargs)
    return pt, hmm, migrator


def touch(pt, hmm, vaddr, node):
    if pt.lookup(vaddr) is None:
        pt.map(vaddr)
    hmm.touch(vaddr, accessor_node=node)


def test_page_follows_dominant_accessor():
    pt, hmm, migrator = build(min_samples=8)
    vaddr = 0x40000
    touch(pt, hmm, vaddr, 0)          # first touch: CPU node
    assert pt.entry(vaddr).node == 0
    decision = None
    for _ in range(20):
        decision = migrator.record_access(vaddr, accessor_node=1) or decision
    assert decision is not None
    assert decision.from_node == 0 and decision.to_node == 1
    assert pt.entry(vaddr).node == 1
    assert migrator.migrations_performed == 1


def test_local_traffic_never_migrates():
    pt, hmm, migrator = build(min_samples=4)
    vaddr = 0x40000
    touch(pt, hmm, vaddr, 0)
    for _ in range(50):
        assert migrator.record_access(vaddr, accessor_node=0) is None
    assert migrator.migrations_performed == 0


def test_mixed_traffic_below_threshold_stays():
    pt, hmm, migrator = build(min_samples=10, remote_share_threshold=0.75)
    vaddr = 0x40000
    touch(pt, hmm, vaddr, 0)
    # 60/40 split: below the 75% threshold.
    for i in range(40):
        migrator.record_access(vaddr, accessor_node=1 if i % 5 < 3 else 0)
    assert pt.entry(vaddr).node == 0
    assert migrator.migrations_performed == 0


def test_cooldown_prevents_ping_pong():
    pt, hmm, migrator = build(min_samples=4, cooldown_samples=100)
    vaddr = 0x40000
    touch(pt, hmm, vaddr, 0)
    for _ in range(8):
        migrator.record_access(vaddr, accessor_node=1)
    assert pt.entry(vaddr).node == 1
    # Immediately reverse the traffic: cooldown absorbs it.
    for _ in range(50):
        migrator.record_access(vaddr, accessor_node=0)
    assert pt.entry(vaddr).node == 1
    assert migrator.migrations_performed == 1


def test_migration_invalidates_atc():
    pt, hmm, migrator = build(min_samples=4)
    atc = Atc("dev.atc", hmm.iommu)
    vaddr = 0x40000
    touch(pt, hmm, vaddr, 0)
    atc.translate(vaddr)
    for _ in range(8):
        migrator.record_access(vaddr, accessor_node=1)
    assert vaddr not in atc


def test_denied_when_target_full():
    pt, hmm, migrator = build(xpu_pages=1, min_samples=4)
    # Fill the single XPU frame with another page.
    blocker = 0x90000
    touch(pt, hmm, blocker, 1)
    vaddr = 0x40000
    touch(pt, hmm, vaddr, 0)
    for _ in range(10):
        migrator.record_access(vaddr, accessor_node=1)
    assert pt.entry(vaddr).node == 0
    assert migrator.migrations_denied >= 1


def test_hot_pages_ranking():
    pt, hmm, migrator = build(min_samples=1000)
    hot, cold = 0x40000, 0x50000
    touch(pt, hmm, hot, 0)
    touch(pt, hmm, cold, 0)
    for _ in range(30):
        migrator.record_access(hot, 0)
    migrator.record_access(cold, 0)
    ranking = migrator.hot_pages(top=2)
    assert ranking[0][0] == pt.entry(hot).vpn
    assert ranking[0][1] == 30


def test_invalid_threshold_rejected():
    _pt, hmm, _m = build()
    with pytest.raises(ValueError):
        AdaptiveMigrator(hmm, remote_share_threshold=0.4)


def test_access_profile():
    pt, hmm, migrator = build(min_samples=1000)
    vaddr = 0x40000
    touch(pt, hmm, vaddr, 0)
    migrator.record_access(vaddr, 0)
    migrator.record_access(vaddr, 1)
    migrator.record_access(vaddr, 1)
    assert migrator.access_profile(vaddr) == {0: 1, 1: 2}
