"""Tests for the multi-stride prefetcher and prefetch buffer."""

import pytest

from repro.nic.prefetcher import MultiStridePrefetcher, PrefetchBuffer, StrideEntry


def test_needs_training_before_prefetching():
    pf = MultiStridePrefetcher(train_threshold=2, degree=2)
    assert pf.observe_miss(0x1000) == []        # insert
    assert pf.observe_miss(0x1040) == []        # stride learned, conf 1
    out = pf.observe_miss(0x1080)               # conf 2 -> fire
    assert out == [0x10C0, 0x1100]


def test_stride_change_resets_confidence():
    pf = MultiStridePrefetcher(train_threshold=2, degree=1)
    pf.observe_miss(0x1000)
    pf.observe_miss(0x1040)
    assert pf.observe_miss(0x10C0) == []   # stride changed 64 -> 128
    assert pf.observe_miss(0x1140) == [0x11C0]  # 128 stride confirmed


def test_multiple_streams_tracked_independently():
    pf = MultiStridePrefetcher(train_threshold=2, degree=1, match_window=512)
    stream_a = [0x1000, 0x1040, 0x1080]
    stream_b = [0x9000, 0x9100, 0x9200]
    fired = []
    for a, b in zip(stream_a, stream_b):
        fired += pf.observe_miss(a)
        fired += pf.observe_miss(b)
    assert 0x10C0 in fired   # stream A, stride 64
    assert 0x9300 in fired   # stream B, stride 256


def test_far_misses_do_not_match():
    pf = MultiStridePrefetcher(match_window=1024)
    pf.observe_miss(0x1000)
    pf.observe_miss(0x100000)  # new stream, no stride pairing
    assert pf.prefetches_issued == 0


def test_zero_stride_ignored():
    pf = MultiStridePrefetcher(train_threshold=1)
    pf.observe_miss(0x1000)
    assert pf.observe_miss(0x1000) == []


def test_table_capacity_evicts_oldest():
    pf = MultiStridePrefetcher(table_entries=1, match_window=256)
    pf.observe_miss(0x1000)
    pf.observe_miss(0x9000)   # evicts the 0x1000 stream
    assert pf.observe_miss(0x1040) == []  # old stream forgotten


def test_invalid_params():
    with pytest.raises(ValueError):
        MultiStridePrefetcher(degree=0)


def test_reset():
    pf = MultiStridePrefetcher()
    pf.observe_miss(0x1000)
    pf.reset()
    assert pf.misses_observed == 0


# --------------------------- PrefetchBuffer ---------------------------
def test_buffer_residual_full_arrival():
    buf = PrefetchBuffer()
    buf.issue(0x1000, now_ps=0, latency_ps=100)
    assert buf.residual_ps(0x1000, now_ps=200, miss_ps=100) == 0
    # Entry consumed.
    assert buf.residual_ps(0x1000, now_ps=300, miss_ps=100) is None


def test_buffer_residual_partial():
    buf = PrefetchBuffer()
    buf.issue(0x1000, now_ps=0, latency_ps=100)
    assert buf.residual_ps(0x1000, now_ps=40, miss_ps=100) == 60


def test_buffer_residual_capped_at_miss():
    buf = PrefetchBuffer()
    buf.issue(0x1000, now_ps=0, latency_ps=500)
    assert buf.residual_ps(0x1000, now_ps=0, miss_ps=100) == 100


def test_buffer_reissue_keeps_earliest():
    buf = PrefetchBuffer()
    buf.issue(0x1000, now_ps=0, latency_ps=100)
    buf.issue(0x1000, now_ps=50, latency_ps=100)
    assert buf.residual_ps(0x1000, now_ps=100, miss_ps=200) == 0


def test_buffer_outstanding():
    buf = PrefetchBuffer()
    buf.issue(0x1000, 0, 10)
    buf.issue(0x2000, 0, 10)
    assert buf.outstanding == 2
