"""Tests for the device host-memory cache."""

import pytest

from repro.cache.block import MesiState
from repro.cache.hmc import HostMemoryCache
from repro.cache.messages import MessageType
from repro.config.presets import ASIC_1500, FPGA_400
from repro.sim.engine import Simulator


def make_hmc(profile=FPGA_400):
    return HostMemoryCache(Simulator(), profile)


def test_capacity_matches_profile():
    hmc = make_hmc()
    # 128 KB / (64 B x 4 ways) = 512 sets.
    assert hmc.array.num_sets == 512
    assert hmc.array.ways == 4


def test_timing_helpers():
    hmc = make_hmc()
    assert hmc.tag_ps == FPGA_400.cycles_ps(FPGA_400.hmc_tag_cycles)
    assert hmc.data_ps == FPGA_400.cycles_ps(FPGA_400.hmc_data_cycles)


def test_service_interval_throttles():
    hmc = make_hmc(ASIC_1500)
    s1 = hmc.service_start(0)
    s2 = hmc.service_start(0)
    assert s2 - s1 == ASIC_1500.hmc_service_ii_ps


def test_fill_lookup_invalidate():
    hmc = make_hmc()
    hmc.fill(0x1000)
    assert hmc.lookup(0x1000) is not None
    hmc.invalidate(0x1000)
    assert hmc.peek(0x1000) is None


def test_mark_modified():
    hmc = make_hmc()
    hmc.fill(0x1000, MesiState.EXCLUSIVE)
    hmc.mark_modified(0x1000)
    assert hmc.peek(0x1000).state is MesiState.MODIFIED
    with pytest.raises(LookupError):
        hmc.mark_modified(0x9000)


def test_lock_prevents_eviction():
    hmc = make_hmc()
    set_stride = hmc.array.num_sets * 64
    base = 0x0
    # Fill one set completely.
    for way in range(4):
        hmc.fill(base + way * set_stride)
    hmc.lock(base)
    hmc.fill(base + 4 * set_stride)
    assert hmc.peek(base) is not None  # locked line survived


def test_lock_absent_raises():
    hmc = make_hmc()
    with pytest.raises(LookupError):
        hmc.lock(0x4000)


def test_snoop_inv_dirty_forwards():
    hmc = make_hmc()
    hmc.fill(0x2000, MesiState.EXCLUSIVE)
    hmc.mark_modified(0x2000)
    assert hmc.snoop(MessageType.SNP_INV, 0x2000) is MessageType.RSP_I_FWD_M
    assert hmc.peek(0x2000) is None


def test_snoop_data_downgrade():
    hmc = make_hmc()
    hmc.fill(0x3000, MesiState.EXCLUSIVE)
    assert hmc.snoop(MessageType.SNP_DATA, 0x3000) is MessageType.RSP_I
    assert hmc.peek(0x3000).state is MesiState.SHARED


def test_snoop_clears_lock():
    hmc = make_hmc()
    hmc.fill(0x4000, MesiState.EXCLUSIVE)
    hmc.lock(0x4000)
    hmc.snoop(MessageType.SNP_INV, 0x4000)
    assert hmc.peek(0x4000) is None
