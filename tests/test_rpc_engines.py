"""Tests for the hardware (de)serializer engines."""

import pytest

from repro.config import asic_system
from repro.mem.address import CACHELINE
from repro.rpc.engines import HwDeserializer, HwSerializer
from repro.rpc.hyperprotobench import make_bench
from repro.rpc.message import encode_message
from repro.rpc.schema import SchemaTable
from repro.rpc.wire import WireError


def engine_pair(bench_name="Bench1"):
    bench = make_bench(bench_name, messages=3)
    params = asic_system().rpc
    deser = HwDeserializer(params, bench.table)
    ser = HwSerializer(params, bench.table)
    return bench, deser, ser


def test_decode_matches_reference_decoder():
    bench, deser, _ser = engine_pair()
    for value, wire in zip(bench.values, bench.encoded):
        decoded, _events = deser.decode(0, wire)
        assert decoded == value


def test_field_events_cover_all_scalars():
    bench, deser, _ser = engine_pair()
    stats = bench.stats[0]
    _value, events = deser.decode(0, bench.encoded[0])
    scalar_events = [e for e in events if e.kind != "message"]
    nested_events = [e for e in events if e.kind == "message"]
    assert len(scalar_events) == stats.scalar_fields
    assert len(nested_events) == stats.nested_messages


def test_event_offsets_are_monotone_within_block():
    bench, deser, _ser = engine_pair()
    _value, events = deser.decode(0, bench.encoded[0])
    top_level = [e for e in events if e.depth == 0 and e.kind != "message"]
    offsets = [e.wire_offset for e in top_level]
    assert offsets == sorted(offsets)


def test_event_costs_positive_and_sum_sensibly():
    bench, deser, _ser = engine_pair()
    params = asic_system().rpc
    _value, events = deser.decode(0, bench.encoded[0])
    assert all(e.cost_ps > 0 for e in events)
    total = sum(e.cost_ps for e in events)
    stats = bench.stats[0]
    expected_floor = params.decode_field_ps * stats.scalar_fields
    assert total >= expected_floor


def test_deep_nesting_depth_recorded():
    bench, deser, _ser = engine_pair("Bench2")
    _value, events = deser.decode(0, bench.encoded[0])
    assert max(e.depth for e in events) >= 10


def test_ncp_plan_unique_ordered_lines():
    bench, deser, _ser = engine_pair("Bench5")
    _value, events = deser.decode(0, bench.encoded[0])
    lines = deser.ncp_plan(events)
    assert len(lines) == len(set(lines))
    assert all(line % CACHELINE == 0 for line in lines)
    # Roughly one line per 64 decoded bytes.
    assert len(lines) >= bench.stats[0].wire_bytes // CACHELINE // 2


def test_corrupt_wire_raises():
    bench, deser, _ser = engine_pair()
    with pytest.raises((WireError, KeyError)):
        deser.decode(0, bench.encoded[0][:-2])


def test_serializer_events_and_wire_match():
    bench, _deser, ser = engine_pair()
    wire, events = ser.encode(0, bench.values[0])
    assert wire == bench.encoded[0]
    assert ser.fields_encoded == bench.stats[0].scalar_fields
    # Nested blocks are encoded depth-first: inner fields precede the
    # enclosing message event.
    nested_positions = [i for i, e in enumerate(events) if e.kind == "message"]
    assert nested_positions, "expected nested message events"
    first_nested = nested_positions[0]
    inner_before = [e for e in events[:first_nested] if e.depth > 0]
    assert inner_before


def test_engine_counters():
    bench, deser, _ser = engine_pair()
    for wire in bench.encoded:
        deser.decode(0, wire)
    assert deser.fields_decoded == sum(s.scalar_fields for s in bench.stats)
    assert deser.bytes_decoded > 0
