"""Vectorized workload hot paths: OpBatch and bulk cache probes.

The contracts under test: every builtin generator's batch and scalar
views are the same stream (``ops()`` derives from ``batch()``, and a
``from_ops`` round trip is exact); re-striping and concatenation are
the array twins of their scalar counterparts; and
``CacheArray.lookup_many`` leaves bit-identical array state and stats
to the equivalent scalar ``lookup`` loop.
"""

import numpy as np
import pytest

from repro.cache.array import CacheArray
from repro.cache.block import MesiState
from repro.mem.address import CACHELINE
from repro.workloads import (
    KIND_READ,
    KIND_WRITE,
    OpBatch,
    WorkloadOp,
    numpy_rng,
    resolve_workload,
    workload_names,
)
from repro.workloads.base import WorkloadSchemaError


# ----------------------- batch/scalar parity --------------------------
@pytest.mark.parametrize("name", workload_names())
def test_batch_and_scalar_views_are_the_same_stream(name):
    workload = resolve_workload(name)
    assert workload.batch(seed=42).to_ops() == workload.ops(seed=42)


@pytest.mark.parametrize("name", workload_names())
def test_batches_are_deterministic_under_fixed_seed(name):
    workload = resolve_workload(name)
    first = workload.batch(seed=7)
    second = workload.batch(seed=7)
    for column in ("kinds", "addrs", "sizes", "delays", "streams"):
        assert np.array_equal(getattr(first, column), getattr(second, column))


def test_from_ops_round_trip_is_exact():
    ops = [
        WorkloadOp("read", 0x40, 64, 0, 0),
        WorkloadOp("write", 0x80, 64, 120, 1),
        WorkloadOp("read", 0x1000, 32, 0, 2),
    ]
    assert OpBatch.from_ops(ops).to_ops() == ops


def test_scalar_only_generators_columnarize_through_batch():
    # pointer-chase has no generate_batch (dependent walk); batch()
    # falls back to columnarizing the scalar stream.
    workload = resolve_workload("pointer-chase(64,16)")
    assert workload.generate_batch is None
    assert workload.batch(seed=3).to_ops() == workload.ops(seed=3)


# ------------------------- explicit shapes ----------------------------
def test_sequential_batch_is_strided_reads():
    batch = resolve_workload("sequential(8,2)").batch(seed=0)
    assert batch.addrs.tolist() == [i * 2 * CACHELINE for i in range(8)]
    assert not batch.kinds.any()
    assert batch.read_count == 8 and batch.write_count == 0


def test_producer_consumer_batch_interleaves_write_read_pairs():
    batch = resolve_workload("producer-consumer(4,2)").batch(seed=0)
    assert batch.kinds.tolist() == [KIND_WRITE, KIND_READ] * 4
    assert batch.streams.tolist() == [0, 1] * 4
    # Pair i touches line i % lines, writer and reader on the same addr.
    assert batch.addrs.tolist() == [
        0, 0, CACHELINE, CACHELINE, 0, 0, CACHELINE, CACHELINE
    ]


def test_zipf_batch_skews_toward_low_ranks():
    batch = resolve_workload("zipf(4096,1.4)").batch(seed=11)
    top = int(np.count_nonzero(batch.addrs == 0))
    assert top > 4096 // 16  # rank 0 far above the uniform share


# --------------------------- batch algebra ----------------------------
def test_restripe_round_robins_rows():
    batch = OpBatch.reads(np.arange(7))
    striped = batch.restripe(3)
    assert striped.streams.tolist() == [0, 1, 2, 0, 1, 2, 0]
    assert np.array_equal(striped.addrs, batch.addrs)
    with pytest.raises(WorkloadSchemaError, match="streams >= 1"):
        batch.restripe(0)


def test_concat_preserves_order():
    a = OpBatch.reads(np.arange(3))
    b = OpBatch.reads(np.arange(2) + 10)
    joined = a.concat([b])
    assert joined.addrs.tolist() == (
        a.addrs.tolist() + b.addrs.tolist()
    )
    assert len(joined) == 5


def test_batch_validates_columns():
    with pytest.raises(WorkloadSchemaError, match="rows"):
        OpBatch(kinds=[0, 0], addrs=[0], sizes=[64], delays=[0], streams=[0])
    with pytest.raises(WorkloadSchemaError, match="KIND_READ"):
        OpBatch(kinds=[7], addrs=[0], sizes=[64], delays=[0], streams=[0])


def test_numpy_rng_is_seed_deterministic():
    import random

    a = numpy_rng(random.Random(5)).random(8)
    b = numpy_rng(random.Random(5)).random(8)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, numpy_rng(random.Random(6)).random(8))


# ------------------------ bulk cache probes ---------------------------
def _warmed_pair(seed=3):
    scalar = CacheArray(16 * 1024, 4, name="scalar")
    bulk = CacheArray(16 * 1024, 4, name="bulk")
    rng = np.random.Generator(np.random.PCG64(seed))
    warm = rng.integers(0, 128, size=256) * CACHELINE
    for addr in warm.tolist():
        scalar.insert(addr, MesiState.EXCLUSIVE)
        bulk.insert(addr, MesiState.EXCLUSIVE)
    probes = rng.integers(0, 256, size=2048) * CACHELINE
    return scalar, bulk, probes


def test_lookup_many_matches_scalar_lookup_loop():
    scalar, bulk, probes = _warmed_pair()
    expected = sum(
        1 for addr in probes.tolist() if scalar.lookup(addr) is not None
    )
    hits = bulk.lookup_many(probes)
    assert hits == expected
    assert (bulk.hits, bulk.misses) == (scalar.hits, scalar.misses)
    # Identical LRU state afterwards: same victims on the next inserts.
    for addr in range(0, 64 * CACHELINE, CACHELINE):
        assert (
            scalar.insert(addr, MesiState.EXCLUSIVE)[1] is None
        ) == (bulk.insert(addr, MesiState.EXCLUSIVE)[1] is None)


def test_lookup_many_touch_and_count_flags():
    scalar, bulk, probes = _warmed_pair(seed=9)
    before = (bulk.hits, bulk.misses)
    hits = bulk.lookup_many(probes, touch=False, count=False)
    assert (bulk.hits, bulk.misses) == before  # stats untouched
    # Same hit total as a peek-style pass over the scalar twin.
    expected = sum(
        1 for addr in probes.tolist() if scalar.peek(addr) is not None
    )
    assert hits == expected


def test_lookup_many_accepts_plain_lists():
    array = CacheArray(16 * 1024, 4)
    array.insert(0, MesiState.EXCLUSIVE)
    assert array.lookup_many([0, CACHELINE]) == 1
