"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from cli_helpers import run_cli

from repro.config import fpga_system
from repro.experiments import SweepSpec, run_sweep
from repro.obs import (
    EVENT_KINDS,
    MetricError,
    MetricSnapshotter,
    MetricsRegistry,
    NULL_METRICS,
    SimProfiler,
    TelemetrySchemaError,
    TelemetryWriter,
    build_timeline,
    collect_status,
    instrument_system,
    metric_key,
    profile,
    read_events,
    render_status,
    telemetry_dir,
    validate_event,
    write_timeline,
)
from repro.obs.profiler import _attribute
from repro.sim.engine import Simulator
from repro.workloads import WorkloadDriver

TINY = {
    "name": "tiny",
    "experiments": [{"experiment": "table1"}, {"experiment": "table2"}],
}


def tiny_sweep():
    return SweepSpec.from_dict(TINY)


# ----------------------------- metrics --------------------------------
def test_metric_key_sorts_labels():
    assert metric_key("port.sent", {}) == "port.sent"
    assert (
        metric_key("port.sent", {"dir": "rx", "chan": 2})
        == "port.sent{chan=2,dir=rx}"
    )


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    c = reg.counter("ops")
    c.inc()
    c.inc(4)
    g = reg.gauge("depth")
    g.set(7)
    h = reg.histogram("lat")
    h.observe(10.0)
    h.observe_many([20.0, 30.0])
    assert c.read() == 5
    assert g.read() == 7.0
    assert h.read() == 3  # snapshot value is the sample count
    assert h.summary()["median"] == 20.0
    assert len(reg) == 3 and "ops" in reg


def test_registration_is_idempotent_per_key():
    reg = MetricsRegistry()
    a = reg.counter("hits", node="lsu0")
    b = reg.counter("hits", node="lsu0")
    assert a is b
    assert reg.counter("hits", node="lsu1") is not a


def test_kind_conflict_raises_metric_error():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(MetricError) as err:
        reg.gauge("x")
    assert "already registered" in str(err.value)


def test_probe_reads_live_value():
    reg = MetricsRegistry()
    state = {"n": 1}
    p = reg.probe("live", lambda: state["n"])
    assert p.read() == 1.0
    state["n"] = 9
    assert p.read() == 9.0


def test_scoped_registry_prefixes_and_nests():
    reg = MetricsRegistry()
    llc = reg.scoped("llc")
    llc.counter("hits")
    llc.scoped("array").gauge("ways")
    assert "llc.hits" in reg
    assert "llc.array.ways" in reg
    assert reg.get("llc.hits").kind == "counter"


def test_snapshot_builds_time_series_and_summary():
    reg = MetricsRegistry()
    c = reg.counter("n")
    reg.histogram("h").observe(5.0)
    reg.snapshot(100)
    c.inc(3)
    reg.snapshot(200)
    series = reg.series()
    assert series["n"] == [(100, 0.0), (200, 3.0)]
    assert reg.snapshots == 2
    summary = reg.summary()
    assert summary["n"] == 3.0
    assert summary["h"]["count"] == 1  # histograms summarise to quantiles
    payload = reg.to_dict()
    assert payload["series"]["n"] == [[100, 0.0], [200, 3.0]]
    json.dumps(payload)  # JSON-ready


def test_render_limits_and_aligns():
    reg = MetricsRegistry()
    for i in range(5):
        reg.counter(f"metric.{i}")
    text = reg.render(limit=2)
    assert "5 instrument(s)" in text
    assert "(3 more)" in text
    assert "no instruments" in MetricsRegistry().render()


def test_null_registry_is_inert():
    inst = NULL_METRICS.counter("x")
    inst.inc()
    inst.set(2.0)
    inst.observe(1.0)
    assert inst.read() == 0.0
    assert NULL_METRICS.gauge("y") is inst
    assert NULL_METRICS.probe("z", lambda: 1) is inst
    assert NULL_METRICS.scoped("a") is NULL_METRICS
    assert NULL_METRICS.snapshot(0) == {}


def test_instrument_system_binds_existing_counters():
    from repro.system import SystemBuilder, resolve_topology

    system = SystemBuilder(fpga_system()).build(resolve_topology("fanout-2"))
    reg = MetricsRegistry()
    bound = instrument_system(system, reg)
    assert bound == len(reg) >= 3
    assert "engine.events" in reg
    assert any(key.startswith("llc.") for key in (i.key for i in reg.instruments()))
    # Probes track the live counters without touching the system.
    before = reg.get("engine.events").read()
    system.sim.schedule(10, lambda: None)
    system.sim.run()
    assert reg.get("engine.events").read() == before + 1


def test_snapshotter_samples_and_never_keeps_sim_alive():
    sim = Simulator()
    reg = MetricsRegistry()
    reg.probe("now", lambda: sim.now)
    for t in (100, 250, 900):
        sim.schedule(t, lambda: None)
    MetricSnapshotter(sim, reg, interval_ps=200).start()
    sim.run()
    # Ticks at 200/400/.../1000; the 1000 tick sees pending == 0 and
    # does not reschedule, so the sim drains.
    assert sim.pending == 0
    times = [t for t, _ in reg.series()["now"]]
    assert times[0] == 200 and times[-1] == 1000
    with pytest.raises(MetricError):
        MetricSnapshotter(sim, reg, interval_ps=0)


def test_driver_metrics_do_not_perturb_measurement():
    driver = WorkloadDriver(fpga_system())
    plain = driver.run("mixed(32)", topology="fanout-2", seed=7, streams=2)
    reg = MetricsRegistry()
    observed = driver.run(
        "mixed(32)", topology="fanout-2", seed=7, streams=2,
        metrics=reg, metrics_interval_ps=50_000,
    )
    assert observed.to_dict() == plain.to_dict()  # bit-identical contract
    assert reg.snapshots >= 1
    summary = reg.summary()
    assert summary["engine.events"] > 0
    assert any(k.startswith("llc.") for k in summary)


# ---------------------------- telemetry -------------------------------
def test_validate_event_rejects_bad_events():
    ok = {
        "schema": 1, "ts": 1.0, "kind": "spec_cached",
        "source": "s", "spec_hash": "h",
    }
    assert validate_event(dict(ok)) == ok
    with pytest.raises(TelemetrySchemaError, match="must be an object"):
        validate_event([1])
    with pytest.raises(TelemetrySchemaError, match="missing field 'ts'"):
        validate_event({"schema": 1, "kind": "spec_cached", "source": "s"})
    with pytest.raises(TelemetrySchemaError, match="unsupported telemetry schema"):
        validate_event({**ok, "schema": 99})
    with pytest.raises(TelemetrySchemaError, match="'ts' must be a number"):
        validate_event({**ok, "ts": True})
    with pytest.raises(TelemetrySchemaError, match="unknown telemetry kind"):
        validate_event({**ok, "kind": "nope"})
    with pytest.raises(TelemetrySchemaError, match="missing field 'spec_hash'"):
        validate_event({k: v for k, v in ok.items() if k != "spec_hash"})


def test_every_kind_lists_required_fields():
    for kind, fields in EVENT_KINDS.items():
        assert isinstance(fields, tuple), kind


def test_writer_emits_and_reader_merges(tmp_path):
    a = TelemetryWriter(tmp_path, "a")
    b = TelemetryWriter(tmp_path, "b")
    a.emit("worker_started", worker="a")
    b.emit("worker_started", worker="b")
    a.emit("heartbeat", worker="a", leased=1)
    assert a.emitted == 2
    events, skipped = read_events(tmp_path)
    assert skipped == 0
    assert len(events) == 3
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
    assert (telemetry_dir(tmp_path) / "a.jsonl").exists()


def test_writer_rejects_schema_violations(tmp_path):
    writer = TelemetryWriter(tmp_path, "s")
    with pytest.raises(TelemetrySchemaError):
        writer.emit("task_finished", worker="w")  # missing fields
    assert writer.emitted == 0


def test_attach_gates_on_directory_presence(tmp_path):
    assert TelemetryWriter.attach(tmp_path, "w") is None
    telemetry_dir(tmp_path).mkdir(parents=True)
    writer = TelemetryWriter.attach(tmp_path, "w")
    assert writer is not None
    writer.emit("worker_started", worker="w")
    events, _ = read_events(tmp_path)
    assert events[0]["kind"] == "worker_started"


def test_read_events_skips_or_raises_on_malformed(tmp_path):
    writer = TelemetryWriter(tmp_path, "s")
    writer.emit("spec_cached", spec_hash="h")
    with open(writer.path, "a") as fh:
        fh.write("not json\n")
    events, skipped = read_events(tmp_path)
    assert len(events) == 1 and skipped == 1
    with pytest.raises(TelemetrySchemaError, match=r"s\.jsonl:2"):
        read_events(tmp_path, strict=True)


def test_read_events_empty_without_directory(tmp_path):
    assert read_events(tmp_path) == ([], 0)


# --------------------------- status/timeline --------------------------
def test_sweep_emits_telemetry_and_status_reports(tmp_path):
    run_dir = tmp_path / "run"
    outcome = run_sweep(tiny_sweep(), run_dir, jobs=1)
    assert outcome.ok
    events, skipped = read_events(run_dir, strict=True)
    assert skipped == 0
    kinds = {e["kind"] for e in events}
    assert {"run_started", "run_finished", "record"} <= kinds
    status = collect_status(run_dir)
    assert status["sweep"] == "tiny"
    assert status["total"] == 2
    assert status["done"] == 2
    assert status["remaining"] == 0
    assert status["finished"] is True
    assert status["eta_s"] == 0.0
    text = render_status(status)
    assert "sweep tiny" in text
    assert "2/2 specs (100%)" in text
    assert "state: finished" in text


def test_sweep_telemetry_off_writes_nothing(tmp_path):
    run_dir = tmp_path / "run"
    run_sweep(tiny_sweep(), run_dir, jobs=1, telemetry=False)
    assert not telemetry_dir(run_dir).exists()
    status = collect_status(run_dir)
    assert status["telemetry_events"] == 0
    assert status["done"] == 2  # store still answers
    assert "telemetry: none" in render_status(status)


def test_status_tracks_in_flight_workers(tmp_path):
    now = 1000.0
    writer = TelemetryWriter(tmp_path, "sched")
    base = {"schema": 1, "source": "sched"}
    rows = [
        {**base, "ts": now - 60, "kind": "run_started", "sweep": "s",
         "total": 10, "cached": 0, "backend": "queue", "jobs": 2},
        {**base, "ts": now - 50, "kind": "task_finished", "worker": "w1",
         "task_id": "h1", "status": "ok", "wall_s": 2.0},
        {**base, "ts": now - 5, "kind": "task_finished", "worker": "w1",
         "task_id": "h2", "status": "error", "wall_s": 4.0},
        {**base, "ts": now - 4, "kind": "task_retried", "worker": "w1",
         "task_id": "h2", "attempt": 1, "error": "boom"},
        {**base, "ts": now - 300, "kind": "heartbeat", "worker": "w2",
         "leased": 1},
    ]
    with open(writer.path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(validate_event(row)) + "\n")
    status = collect_status(tmp_path, now=now)
    assert status["total"] == 10 and status["backend"] == "queue"
    assert status["finished"] is False
    w1, w2 = status["workers"]
    assert w1["worker"] == "w1" and w1["finished"] == 2
    assert w1["failed"] == 1 and w1["retries"] == 1
    assert w1["mean_wall_s"] == pytest.approx(3.0)
    assert w1["active"] is True
    assert w2["active"] is False  # stale: last seen 300s ago
    text = render_status(status)
    assert "w1" in text and "[active]" in text and "[idle]" in text
    assert "1 retry" in text


def test_timeline_builds_valid_trace_events(tmp_path):
    run_dir = tmp_path / "run"
    run_sweep(tiny_sweep(), run_dir, jobs=1)
    timeline = build_timeline(run_dir)
    events = timeline["traceEvents"]
    assert timeline["displayTimeUnit"] == "ms"
    phases = {e["ph"] for e in events}
    assert {"M", "i", "X"} <= phases
    # Serial runs fall back to scheduler record events for slices.
    slices = [e for e in events if e["ph"] == "X"]
    assert len(slices) == 2
    for entry in slices:
        assert entry["ts"] >= 0 or entry["dur"] > 0
        assert entry["cat"] == "spec"
        assert entry["args"]["status"] == "ok"
    json.dumps(timeline)  # Chrome trace JSON must serialise

    out = write_timeline(run_dir)
    assert out == run_dir / "timeline.json"
    loaded = json.loads(out.read_text())
    assert loaded["traceEvents"]


def test_timeline_empty_without_telemetry(tmp_path):
    timeline = build_timeline(tmp_path)
    assert timeline["traceEvents"] == []


# ----------------------------- profiler -------------------------------
def test_attribute_prefers_owner_name():
    class Dev:
        name = "lsu0"

        def cb(self):
            pass

    class Anon:
        def cb(self):
            pass

    assert _attribute(Dev().cb) == "lsu0"
    assert _attribute(Anon().cb) == "Anon"

    def closure_maker():
        def step():
            pass
        return step

    # Closure qualnames collapse at the first <locals> boundary.
    collapsed = _attribute(closure_maker())
    assert ".<locals>" not in collapsed
    assert collapsed.startswith("test_attribute_prefers_owner_name")


def test_profiler_counts_every_event_and_samples_some():
    prof = SimProfiler(sample_every=2)
    hits = []
    for _ in range(6):
        prof.record(hits.append, (1,))
    assert len(hits) == 6  # profiler invokes the callback itself
    assert prof.total_events == 6
    (component,) = prof.events
    assert prof.events[component] == 6
    assert prof.samples[component] == 3  # every 2nd call timed
    with pytest.raises(ValueError):
        SimProfiler(sample_every=0)


def test_profile_context_is_exclusive_and_cleans_up():
    from repro.sim import engine as _engine

    with profile(sample_every=4) as prof:
        assert _engine._PROFILER is prof
        with pytest.raises(RuntimeError, match="already active"):
            with profile():
                pass
    assert _engine._PROFILER is None


def test_profiled_run_matches_unprofiled():
    def drive():
        sim = Simulator()

        def chain(n):
            if n > 0:
                sim.schedule_after(100, chain, (n - 1,))

        chain(50)
        sim.run()
        return sim.executed, sim.now

    plain = drive()
    with profile(sample_every=3) as prof:
        profiled = drive()
    assert profiled == plain  # bit-identical with the profiler installed
    assert prof.total_events == plain[0]
    assert prof.runs == 1
    assert prof.run_wall_s > 0


def test_profiler_render_and_to_dict():
    prof = SimProfiler(sample_every=1)
    prof.record((lambda: None), ())
    prof.add_run(0.5, 1)
    payload = prof.to_dict()
    assert payload["total_events"] == 1
    assert payload["events_per_sec"] == pytest.approx(2.0)
    assert payload["components"][0]["events"] == 1
    text = prof.render()
    assert "profile: 1 events" in text
    assert "sampling 1/1" in text
    json.dumps(payload)


def test_sweep_profile_attaches_attribution(tmp_path):
    run_dir = tmp_path / "run"
    sweep = SweepSpec.from_dict(
        {"name": "prof", "experiments": [{"experiment": "fig13"}]}
    )
    outcome = run_sweep(sweep, run_dir, jobs=1, profile=True)
    (record,) = outcome.executed
    assert record.ok
    assert record.profile["total_events"] > 0
    assert record.profile["components"]
    # Profiling never changes what a spec computes, so the cached rerun
    # without profiling hits the same spec hash.
    rerun = run_sweep(sweep, run_dir, jobs=1)
    assert rerun.cached == 1

    from repro.experiments.report import RunReport

    report = RunReport(run_dir)
    text = report.profile_markdown()
    assert "Simulator profile" in text
    assert "1 profiled record(s)" in text


# ------------------------------- CLI ----------------------------------
def test_cli_status_and_timeline(tmp_path):
    run_dir = tmp_path / "run"
    assert run_sweep(tiny_sweep(), run_dir, jobs=1).ok
    code, out = run_cli("status", str(run_dir))
    assert code == 0
    assert "sweep tiny" in out and "state: finished" in out
    code, out = run_cli("timeline", str(run_dir))
    assert code == 0
    assert "timeline.json" in out
    assert json.loads((run_dir / "timeline.json").read_text())["traceEvents"]


def test_cli_status_rejects_missing_run(tmp_path):
    code, out = run_cli("status", str(tmp_path / "nope"))
    assert code == 2
    assert "no run found" in out


def test_cli_timeline_requires_telemetry(tmp_path):
    run_dir = tmp_path / "run"
    run_sweep(tiny_sweep(), run_dir, jobs=1, telemetry=False)
    code, out = run_cli("timeline", str(run_dir))
    assert code == 2
    assert "no telemetry" in out


def test_cli_run_profile_prints_attribution():
    code, out = run_cli("run", "fig13", "--profile")
    assert code == 0
    assert "profile:" in out
    assert "events/s" in out
    assert "component" in out
