"""Tests for the XPU driver and the fabric manager."""

import pytest

from repro.config import fpga_system
from repro.core.cohet import CohetSystem, DeviceSpec
from repro.cxl.device import DeviceType
from repro.kernel.fabric import FabricManager, ResourceError
from repro.mem.address import AddressRange


def small_system():
    return CohetSystem(
        fpga_system(),
        host_nodes=1,
        devices=[DeviceSpec("xpu0", DeviceType.TYPE2, hdm_bytes=1 << 24)],
        host_bytes=1 << 28,
    )


# ------------------------------ Driver --------------------------------
def test_probe_reports_capabilities():
    system = small_system()
    info = system.driver("xpu0").probe()
    assert info["device_type"] is DeviceType.TYPE2
    assert info["supports_cache"] and info["supports_mem"]


def test_driver_registers_atc_with_iommu():
    system = small_system()
    driver = system.driver("xpu0")
    assert driver.atc is not None
    ptr = system.process.malloc(4096)
    system.hmm.touch(ptr, accessor_node=driver.memory_node)
    pa = driver.atc.translate(ptr)
    assert pa >= CohetSystem.HDM_BASE  # first touch landed in device memory


def test_driver_blocks_during_migration():
    system = small_system()
    driver = system.driver("xpu0")
    ptr = system.process.malloc(4096)
    system.hmm.touch(ptr, accessor_node=0)
    vpn = system.page_table.entry(ptr).vpn
    assert driver.device_may_access(vpn)
    system.hmm.migrate_page(ptr, target_node=driver.memory_node)
    # After migration completes access is resumed.
    assert driver.device_may_access(vpn)


def test_mmap_requires_open():
    system = small_system()
    driver = system.driver("xpu0")
    driver.release()
    with pytest.raises(RuntimeError):
        driver.mmap_bar(0)


# --------------------------- Fabric manager ---------------------------
def test_fabric_allocate_and_release():
    fm = FabricManager()
    fm.add_xpu("xpu0", "asic")
    fm.add_memory("mem0", AddressRange(0, 1 << 20))
    xpu = fm.allocate_xpu("hostA")
    assert xpu.bound_to == "hostA"
    mem = fm.allocate_memory("hostA", 1 << 16)
    assert fm.holdings("hostA") == ["mem0", "xpu0"]
    fm.release("xpu0")
    fm.release("mem0")
    assert fm.free_xpus == 1
    assert fm.free_memory_bytes == 1 << 20


def test_fabric_exhaustion():
    fm = FabricManager()
    fm.add_xpu("xpu0", "asic")
    fm.allocate_xpu("hostA")
    with pytest.raises(ResourceError):
        fm.allocate_xpu("hostB")


def test_fabric_memory_size_filter():
    fm = FabricManager()
    fm.add_memory("small", AddressRange(0, 1 << 12))
    with pytest.raises(ResourceError):
        fm.allocate_memory("hostA", 1 << 20)


def test_fabric_profile_filter():
    fm = FabricManager()
    fm.add_xpu("fpga0", "fpga")
    with pytest.raises(ResourceError):
        fm.allocate_xpu("hostA", profile_name="asic")
    assert fm.allocate_xpu("hostA", profile_name="fpga").name == "fpga0"


def test_fabric_double_release_rejected():
    fm = FabricManager()
    fm.add_xpu("xpu0", "asic")
    fm.allocate_xpu("hostA")
    fm.release("xpu0")
    with pytest.raises(ResourceError):
        fm.release("xpu0")
    with pytest.raises(ResourceError):
        fm.release("ghost")
