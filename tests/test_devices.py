"""Tests for the device models: PMU, LSU, DMA engine, XPU."""

import pytest

from repro.calibration.microbench import CxlTestbench
from repro.config import asic_system, fpga_system
from repro.config.presets import ASIC_1500
from repro.devices.dma import DmaEngine
from repro.devices.pmu import Pmu
from repro.devices.xpu import ProcessingElement, WorkItem, Xpu
from repro.sim.engine import Simulator


# ------------------------------- PMU ----------------------------------
def test_pmu_latency_tracking():
    pmu = Pmu()
    pmu.issued(0, 100)
    pmu.completed(0, 350)
    assert pmu.latencies.median == 250
    assert pmu.outstanding == 0


def test_pmu_unknown_completion_rejected():
    pmu = Pmu()
    with pytest.raises(KeyError):
        pmu.completed(7, 10)


def test_pmu_bandwidth_from_issue():
    pmu = Pmu()
    for i in range(10):
        pmu.issued(i, 0)
    for i in range(10):
        pmu.completed(i, (i + 1) * 1_000)
    # 10 x 64B over 10ns = 64 GB/s.
    assert pmu.bandwidth_gbps(64, from_issue=True) == pytest.approx(64.0)


def test_pmu_bandwidth_needs_samples():
    pmu = Pmu()
    pmu.issued(0, 0)
    pmu.completed(0, 10)
    with pytest.raises(ValueError):
        pmu.bandwidth_gbps(64)


# ------------------------------- LSU ----------------------------------
def test_lsu_hmc_hit_latency_exact():
    tb = CxlTestbench(fpga_system())
    report = tb.latency_hmc_hit(count=8, trials=2)
    assert report.latencies.median == tb.config.device.hmc_hit_ps


def test_lsu_latency_serializes_requests():
    tb = CxlTestbench(fpga_system())
    addrs = tb.lsu.sequential_lines(0x1000, 4)
    tb.lsu.warm_hmc(addrs)
    report = tb.lsu.run_latency(addrs)
    # 4 serialized HMC hits: total time = 4 x hit latency.
    assert tb.sim.now == 4 * tb.config.device.hmc_hit_ps


def test_lsu_bandwidth_pipelines():
    tb = CxlTestbench(asic_system())
    report = tb.bandwidth_hmc_hit(count=512)
    # Far beyond what serialized requests could reach (64B / 10ns = 6.4).
    assert report.bandwidth_gbps > 50


def test_lsu_exclusive_flag_propagates():
    tb = CxlTestbench(fpga_system())
    addrs = tb.lsu.sequential_lines(0x2000, 4)
    tb.lsu.run_latency(addrs, exclusive=True)
    from repro.cache.block import MesiState

    assert tb.device.hmc.peek(0x2000).state is MesiState.EXCLUSIVE


# ------------------------------- DMA ----------------------------------
def test_dma_one_shot_latency_matches_model():
    sim = Simulator()
    config = fpga_system()
    dma = DmaEngine(sim, config.dma)
    report = dma.measure_latency(64, repeats=5)
    assert report.latencies.median == config.dma.transfer_ps(64)


def test_dma_latency_flat_below_8k():
    config = fpga_system()
    small = DmaEngine(Simulator(), config.dma).measure_latency(64, repeats=3)
    mid = DmaEngine(Simulator(), config.dma).measure_latency(8192, repeats=3)
    assert mid.median_ns / small.median_ns < 1.25  # setup dominates


def test_dma_bandwidth_rises_with_size():
    config = fpga_system()
    bw64 = DmaEngine(Simulator(), config.dma).measure_bandwidth(64).bandwidth_gbps
    bw256k = DmaEngine(Simulator(), config.dma).measure_bandwidth(262144, descriptors=64).bandwidth_gbps
    assert bw64 < 1.0
    assert bw256k > 20.0


def test_dma_invalid_size():
    dma = DmaEngine(Simulator(), fpga_system().dma)
    with pytest.raises(ValueError):
        dma.transfer(0)


def test_dma_rmw_pair_serialized():
    config = asic_system()
    dma = DmaEngine(Simulator(), config.dma)
    assert dma.rmw_pair_ps() == 2 * config.dma.transfer_ps(64)


# ------------------------------- XPU ----------------------------------
def test_pe_runs_serially():
    sim = Simulator()
    pe = ProcessingElement(sim, ASIC_1500, "pe0")
    done = []
    pe.submit(WorkItem(lambda: done.append(sim.now), compute_ps=100))
    pe.submit(WorkItem(lambda: done.append(sim.now), compute_ps=100))
    sim.run()
    assert done == [100, 200]
    assert pe.completed == 2
    assert pe.idle


def test_xpu_spreads_work():
    sim = Simulator()
    xpu = Xpu(sim, ASIC_1500, pe_count=2)
    done = []
    for i in range(4):
        xpu.submit(WorkItem(lambda i=i: done.append(i), compute_ps=100))
    sim.run()
    assert sorted(done) == [0, 1, 2, 3]
    assert xpu.completed == 4
    # Work went to both PEs.
    assert all(pe.completed == 2 for pe in xpu.pes)


def test_xpu_needs_pes():
    with pytest.raises(ValueError):
        Xpu(Simulator(), ASIC_1500, pe_count=0)
