"""Known-answer and property-based tests for the pure stats core.

The known-answer section pins ``repro.experiments.stats`` against
hand-computed values and scipy outputs precomputed offline (the
container deliberately does not import scipy at test time), so the
implementation cannot drift silently.  The hypothesis section checks
the invariants every rank-based test must satisfy regardless of data.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.stats import (
    EXACT_LIMIT,
    StatsError,
    _exact_u_counts,
    _resample_indices,
    a12,
    bootstrap_ci,
    bootstrap_diff_ci,
    cliffs_delta,
    holm_bonferroni,
    holm_reject,
    mann_whitney_u,
    rankdata,
)


# ------------------------- known-answer tests --------------------------
class TestRankdata:
    def test_distinct_values_rank_by_order(self):
        ranks = rankdata(np.asarray([30.0, 10.0, 20.0]))
        assert list(ranks) == [3.0, 1.0, 2.0]

    def test_ties_get_midranks(self):
        # Two values tied for ranks 2 and 3 both get 2.5.
        ranks = rankdata(np.asarray([1.0, 5.0, 5.0, 9.0]))
        assert list(ranks) == [1.0, 2.5, 2.5, 4.0]


class TestExactDistribution:
    def test_1v1_distribution(self):
        # One comparison: U is 0 or 1, each once.
        assert list(_exact_u_counts(1, 1)) == [1, 1]

    def test_2v1_distribution(self):
        # Three placements of the singleton: U in {0, 1, 2} once each.
        assert list(_exact_u_counts(2, 1)) == [1, 1, 1]

    def test_2v2_distribution(self):
        # C(4,2)=6 orderings over U in 0..4: 1,1,2,1,1.
        assert list(_exact_u_counts(2, 2)) == [1, 1, 2, 1, 1]

    def test_counts_sum_to_binomial(self):
        counts = _exact_u_counts(5, 7)
        assert counts.sum() == math.comb(12, 5)
        # The U distribution is symmetric around n*m/2.
        assert list(counts) == list(counts[::-1])


class TestMannWhitneyKnownAnswers:
    """Values pinned against scipy.stats.mannwhitneyu (precomputed)."""

    def test_small_n_exact(self):
        result = mann_whitney_u([1.0, 2.0, 5.0], [3.0, 4.0, 6.0, 7.0])
        assert result.method == "exact"
        assert result.u_a == 2.0
        assert result.p_value == pytest.approx(0.22857142857142856)

    def test_disjoint_exact(self):
        result = mann_whitney_u(
            [1.0, 2.0, 3.0, 4.0], [10.0, 11.0, 12.0, 13.0]
        )
        assert result.method == "exact"
        assert result.u_a == 0.0
        # 2 / C(8,4) = 2/70.
        assert result.p_value == pytest.approx(0.02857142857142857)

    def test_interleaved_exact(self):
        result = mann_whitney_u(
            [1.0, 3.0, 5.0, 7.0, 9.0], [2.0, 4.0, 6.0, 8.0, 10.0]
        )
        assert result.method == "exact"
        assert result.u_a == 10.0
        assert result.p_value == pytest.approx(0.6904761904761905)

    def test_tie_corrected_normal(self):
        # Ties force the tie-corrected normal approximation.
        result = mann_whitney_u(
            [1.0, 2.0, 2.0, 3.0, 5.0, 5.0], [2.0, 3.0, 3.0, 5.0, 6.0, 7.0]
        )
        assert result.method == "normal"
        assert result.u_a == 10.0
        assert result.p_value == pytest.approx(0.21983094556933913)

    def test_large_n_normal(self):
        a = [float(i) for i in range(30)]
        b = [i + 3.7 for i in a]
        result = mann_whitney_u(a, b)
        assert result.method == "normal"
        assert result.u_a == 351.0
        assert result.p_value == pytest.approx(0.14531912724086543)

    def test_forced_normal_matches_scipy_on_tie_free_data(self):
        result = mann_whitney_u(
            [1.0, 2.0, 5.0], [3.0, 4.0, 6.0, 7.0], method="normal"
        )
        assert result.p_value == pytest.approx(0.2159249389401403)

    def test_u_statistics_are_complementary(self):
        result = mann_whitney_u([1.0, 2.0, 3.0], [4.0, 5.0])
        assert result.u_a + result.u_b == 3 * 2
        assert result.u == min(result.u_a, result.u_b)

    def test_exact_with_ties_raises(self):
        with pytest.raises(StatsError, match="ties"):
            mann_whitney_u([1.0, 2.0], [2.0, 3.0], method="exact")

    def test_unknown_method_raises(self):
        with pytest.raises(StatsError, match="method"):
            mann_whitney_u([1.0], [2.0], method="bogus")

    def test_empty_sample_raises(self):
        with pytest.raises(StatsError):
            mann_whitney_u([], [1.0])

    def test_non_finite_raises(self):
        with pytest.raises(StatsError):
            mann_whitney_u([1.0, float("nan")], [2.0])

    def test_nested_sequence_raises(self):
        with pytest.raises(StatsError, match="flat sequence"):
            mann_whitney_u([[1.0, 2.0]], [3.0])

    def test_auto_switches_to_normal_above_exact_limit(self):
        a = [float(i) for i in range(EXACT_LIMIT + 1)]
        b = [i + 0.5 for i in a]
        assert mann_whitney_u(a, b).method == "normal"


class TestHolmBonferroni:
    def test_known_adjustment(self):
        # Sorted: 0.01*3=0.03, then max(0.03, 0.02*2)=0.04, then
        # max(0.04, 0.04*1)=0.04; reported in input order.
        adjusted = holm_bonferroni([0.04, 0.01, 0.02])
        assert adjusted == pytest.approx([0.04, 0.03, 0.04])

    def test_adjustment_clips_at_one(self):
        # 0.8*2 clips to 1.0; the running max then pins 0.9*1 at 1.0 too.
        assert holm_bonferroni([0.9, 0.8]) == pytest.approx([1.0, 1.0])

    def test_empty_input(self):
        assert holm_bonferroni([]) == []

    def test_invalid_p_value_raises(self):
        with pytest.raises(StatsError):
            holm_bonferroni([0.5, 1.5])

    def test_reject_uses_adjusted_values(self):
        assert holm_reject([0.01, 0.04, 0.6], alpha=0.05) == [
            True, False, False,
        ]

    def test_reject_invalid_alpha_raises(self):
        with pytest.raises(StatsError, match="alpha"):
            holm_reject([0.01], alpha=0.0)


class TestEffectSizes:
    def test_cliffs_delta_known_value(self):
        # 9 pairs: a>b in 6, a<b in 2, tied in 1 -> (6-2)/9.
        delta = cliffs_delta([2.0, 4.0, 6.0], [1.0, 3.0, 4.0])
        assert delta == pytest.approx((6 - 2) / 9)

    def test_a12_is_rescaled_delta(self):
        a, b = [2.0, 4.0, 6.0], [1.0, 3.0, 4.0]
        assert a12(a, b) == pytest.approx((cliffs_delta(a, b) + 1) / 2)


class TestBootstrap:
    def test_same_seed_is_deterministic(self):
        sample = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert bootstrap_ci(sample, seed=7) == bootstrap_ci(sample, seed=7)

    def test_different_seeds_differ(self):
        sample = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert bootstrap_ci(sample, seed=1) != bootstrap_ci(sample, seed=2)

    def test_index_stream_is_pinned(self):
        # The SplitMix64 counter stream is part of the golden-report
        # contract: these indices must never change across versions.
        idx = _resample_indices(5, 2, seed=0)
        assert idx.tolist() == [[0, 0, 0, 3, 3], [3, 2, 2, 2, 3]]

    def test_ci_brackets_the_statistic_for_tight_data(self):
        lo, hi = bootstrap_ci([10.0, 10.1, 9.9, 10.05, 9.95], "mean")
        assert 9.9 <= lo <= hi <= 10.1

    def test_diff_ci_sign_for_separated_samples(self):
        lo, hi = bootstrap_diff_ci(
            [10.0, 11.0, 10.5, 10.2], [1.0, 1.5, 1.2, 0.9]
        )
        assert lo > 0 and hi > lo

    def test_callable_statistic(self):
        lo, hi = bootstrap_ci([1.0, 2.0, 3.0], statistic=lambda a: a.max())
        assert hi <= 3.0

    def test_invalid_confidence_raises(self):
        with pytest.raises(StatsError):
            bootstrap_ci([1.0, 2.0], confidence=1.0)

    def test_invalid_resamples_raises(self):
        with pytest.raises(StatsError):
            bootstrap_ci([1.0, 2.0], resamples=0)

    def test_unknown_statistic_raises(self):
        with pytest.raises(StatsError):
            bootstrap_ci([1.0, 2.0], statistic="mode")

    def test_diff_ci_invalid_args_raise(self):
        with pytest.raises(StatsError):
            bootstrap_diff_ci([1.0], [2.0], confidence=0.0)
        with pytest.raises(StatsError):
            bootstrap_diff_ci([1.0], [2.0], resamples=0)


# ------------------------- property-based tests ------------------------
samples = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=2, max_size=20,
)


@settings(deadline=None, max_examples=60)
@given(samples, samples)
def test_p_value_symmetric_under_sample_swap(a, b):
    forward = mann_whitney_u(a, b)
    backward = mann_whitney_u(b, a)
    assert forward.p_value == pytest.approx(backward.p_value)
    assert forward.u_a == pytest.approx(backward.u_b)


# Integer-valued samples keep strictly monotone maps exact in float
# arithmetic; arbitrary floats can collapse into ties under a transform
# (e.g. a subnormal absorbed by `3*x + 11`), which changes the ranks.
int_samples = st.lists(
    st.integers(min_value=-10**6, max_value=10**6).map(float),
    min_size=2, max_size=20,
)


@settings(deadline=None, max_examples=60)
@given(int_samples, int_samples)
def test_p_value_invariant_under_monotone_transform(a, b):
    base = mann_whitney_u(a, b)
    # Strictly increasing affine map preserves all rank structure.
    transformed = mann_whitney_u(
        [3.0 * x + 11.0 for x in a], [3.0 * x + 11.0 for x in b]
    )
    assert transformed.p_value == pytest.approx(base.p_value)
    assert transformed.method == base.method


@settings(deadline=None, max_examples=60)
@given(samples)
def test_identical_samples_give_p_one_and_delta_zero(a):
    result = mann_whitney_u(a, list(a))
    assert result.p_value == 1.0
    assert cliffs_delta(a, list(a)) == 0.0


@settings(deadline=None, max_examples=60)
@given(samples, samples)
def test_cliffs_delta_bounded(a, b):
    delta = cliffs_delta(a, b)
    assert -1.0 <= delta <= 1.0
    assert 0.0 <= a12(a, b) <= 1.0


@settings(deadline=None, max_examples=60)
@given(samples)
def test_cliffs_delta_is_plus_minus_one_on_disjoint_samples(a):
    # Shift b strictly above every element of a.
    offset = max(a) - min(a) + 1.0
    b = [x + offset for x in a]
    assert cliffs_delta(b, a) == 1.0
    assert cliffs_delta(a, b) == -1.0


@settings(deadline=None, max_examples=60)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1, max_size=12,
    ),
    st.floats(min_value=0.01, max_value=0.2),
)
def test_holm_never_rejects_more_than_uncorrected(p_values, alpha):
    adjusted = holm_bonferroni(p_values)
    rejected = holm_reject(p_values, alpha)
    for raw, adj, rej in zip(p_values, adjusted, rejected):
        assert adj >= raw - 1e-12
        if rej:  # Holm rejection implies uncorrected rejection
            assert raw <= alpha


@settings(deadline=None, max_examples=30)
@given(samples, st.integers(min_value=0, max_value=2**31 - 1))
def test_bootstrap_ci_ordered_and_deterministic(a, seed):
    lo, hi = bootstrap_ci(a, resamples=50, seed=seed)
    assert lo <= hi
    assert (lo, hi) == bootstrap_ci(a, resamples=50, seed=seed)
