"""Tests for the multi-device fan-out experiments and their sweep/CLI
integration, plus the satellite CLI/registry behaviours of this layer."""

import pytest

from cli_helpers import run_cli

from repro.config import UnknownProfileError, system_by_name
from repro.experiments import SpecError, preset_sweep, run_sweep
from repro.experiments.spec import SweepSpec
from repro.harness import experiments as harness
from repro.harness.topology_experiments import fanout_scaling
from repro.system import UnknownTopologyError, topology_by_name


# --------------------------- fan-out physics --------------------------
def test_fanout2_contends_on_the_shared_home_agent():
    single = harness.CxlTestbench(system_by_name("fpga")).bandwidth_mem_hit()
    result = fanout_scaling(2, count=8, trials=2, bw_count=256)
    bw = result.series["bandwidth_gbps"]
    lat = result.series["mem_lat_median_ns"]
    assert set(bw) == {"dev0", "dev1", "all"}
    # Two streams share one home agent: each gets less than a lone
    # device, the aggregate cannot exceed ~the single-device bound.
    assert bw["dev0"] < single.bandwidth_gbps
    assert bw["all"] <= single.bandwidth_gbps * 1.1
    # Latency stays in the mem-hit regime (~688 ns on FPGA) with only
    # queueing on top.
    assert 650 < lat["all"] < 800


def test_fanout4_saturates_but_does_not_collapse():
    two = fanout_scaling(2, count=8, trials=2, bw_count=256)
    four = fanout_scaling(4, count=8, trials=2, bw_count=256)
    assert four.series["bandwidth_gbps"]["all"] >= (
        two.series["bandwidth_gbps"]["all"] * 0.9
    )
    assert four.series["bandwidth_gbps"]["dev0"] < (
        two.series["bandwidth_gbps"]["dev0"]
    )


def test_fanout_experiments_run_by_registry_id():
    result = harness.run_experiment("fanout2", count=8, trials=2, bw_count=128)
    assert result.name == "fanout2"
    assert "dev1" in result.series["bandwidth_gbps"]


# ----------------------- sweep integration ----------------------------
def test_fanout_specs_validate_and_expand():
    sweep = SweepSpec.from_dict(
        {
            "name": "fan",
            "experiments": [
                {"experiment": "fanout2", "grid": {"bw_count": [128, 256]}},
                {"experiment": "fanout4", "params": {"count": 8}},
            ],
        }
    )
    sweep.validate()
    assert len(sweep.expand()) == 3


def test_topology_preset_covers_both_fanouts():
    sweep = preset_sweep("topology")
    names = {g.experiment for g in sweep.groups}
    assert names == {"fanout2", "fanout4"}
    sweep.validate()


# ----------------------- topology sweep axis --------------------------
def _topology_axis_sweep(refs, name="topo-axis"):
    return SweepSpec.from_dict(
        {
            "name": name,
            "experiments": [
                {
                    "experiment": "topo-scale",
                    "params": {"count": 4, "trials": 2, "bw_count": 64},
                    "grid": {"topology": list(refs)},
                }
            ],
        }
    )


def test_topology_axis_expands_with_distinct_hashes():
    sweep = _topology_axis_sweep([f"fanout({n})" for n in range(1, 9)])
    sweep.validate()
    specs = sweep.expand()
    assert len(specs) == 8
    assert len({spec.spec_hash for spec in specs}) == 8  # one cache key per count
    assert {spec.params["topology"] for spec in specs} == {
        f"fanout({n})" for n in range(1, 9)
    }


def test_topology_axis_hits_result_cache(tmp_path):
    sweep = _topology_axis_sweep(["fanout(1)", "fanout(2)"])
    first = run_sweep(sweep, tmp_path / "run", jobs=1)
    assert len(first.executed) == 2 and first.ok
    again = run_sweep(sweep, tmp_path / "run", jobs=1)
    assert again.cached == 2 and not again.executed


def test_topology_axis_failure_isolation(tmp_path):
    # fanout(0) validates (the family exists) but fails to build at run
    # time; it must fail alone, leaving the other spec cached as ok.
    sweep = _topology_axis_sweep(["fanout(0)", "fanout(2)"])
    sweep.validate()
    outcome = run_sweep(sweep, tmp_path / "run", jobs=1)
    assert len(outcome.failed) == 1
    assert "at least one device" in outcome.failed[0].error
    assert len(outcome.executed) == 2
    again = run_sweep(sweep, tmp_path / "run", jobs=1)
    assert again.cached == 1 and len(again.executed) == 1  # only the failure re-runs


def test_unknown_topology_axis_fails_validation_up_front():
    with pytest.raises(SpecError) as excinfo:
        _topology_axis_sweep(["fanout(2)", "no-such-layout"]).validate()
    assert "no-such-layout" in str(excinfo.value)
    with pytest.raises(SpecError) as excinfo:
        _topology_axis_sweep(["nofamily(3)"]).validate()
    assert "nofamily" in str(excinfo.value)


def test_topology_param_in_fixed_params_is_validated_too():
    sweep = SweepSpec.from_dict(
        {
            "name": "fixed",
            "experiments": [
                {"experiment": "topo-scale", "params": {"topology": "bogus"}}
            ],
        }
    )
    with pytest.raises(SpecError, match="bogus"):
        sweep.validate()


def test_topology_scale_preset_sweeps_counts_1_to_8():
    sweep = preset_sweep("topology-scale")
    sweep.validate()
    specs = sweep.expand()
    assert {spec.params["topology"] for spec in specs} == {
        f"fanout({n})" for n in range(1, 9)
    }
    assert len({spec.spec_hash for spec in specs}) == 8


# ------------------------- profile handling ---------------------------
def test_unknown_profile_is_a_value_error_listing_options():
    with pytest.raises(ValueError) as excinfo:
        system_by_name("fpag")
    assert "fpag" in str(excinfo.value)
    assert "fpga" in str(excinfo.value) and "asic" in str(excinfo.value)
    assert isinstance(excinfo.value, UnknownProfileError)


def test_experiments_route_profiles_through_system_by_name():
    for name in ("fig12", "fig17", "headline", "fanout2"):
        with pytest.raises(UnknownProfileError):
            harness.run_experiment(name, profile="nope")


# ------------------------ signature caching ---------------------------
def test_experiment_parameters_are_cached():
    harness.experiment_parameters("fig13")
    before = harness._cached_signature.cache_info().hits
    harness.experiment_parameters("fig13")
    harness.spec_parameters("fig13")
    assert harness._cached_signature.cache_info().hits >= before + 2


def test_register_experiment_rejects_duplicates_and_clears_cache():
    def dummy() -> harness.ExperimentResult:
        raise NotImplementedError

    with pytest.raises(ValueError):
        harness.register_experiment("fig13", dummy)
    harness.register_experiment("dummy-exp", dummy)
    try:
        assert harness.experiment_parameters("dummy-exp") == {}
    finally:
        del harness.EXPERIMENTS["dummy-exp"]
        harness._cached_signature.cache_clear()


# ------------------------------ CLI -----------------------------------
def test_run_list_enumerates_instead_of_erroring():
    code, out = run_cli("run", "--list")
    assert code == 0
    assert "fanout2" in out and "fig13" in out


def test_run_without_ids_points_at_list():
    code, out = run_cli("run")
    assert code == 2
    assert "--list" in out


def test_topology_list_and_show():
    code, out = run_cli("topology", "list")
    assert code == 0
    assert "fanout-2" in out and "supernode-2host" in out
    assert "fanout-8" in out  # shipped JSON layouts are registered too

    code, out = run_cli("topology", "show", "fanout-4")
    assert code == 0
    assert "dev3" in out and "cxl.type1" in out

    code, out = run_cli("topology", "show")
    assert code == 2


def test_unknown_topology_is_a_listing_error_like_unknown_profile():
    # Same contract as system_by_name/UnknownProfileError: a dedicated
    # ValueError subclass whose message enumerates the valid options.
    with pytest.raises(ValueError) as excinfo:
        topology_by_name("nope")
    assert isinstance(excinfo.value, UnknownTopologyError)
    assert "nope" in str(excinfo.value)
    assert "microbench" in str(excinfo.value) and "fanout-2" in str(excinfo.value)

    code, out = run_cli("topology", "show", "nope")
    assert code == 2
    assert "unknown topology" in out
    assert "registered:" in out and "microbench" in out  # listing-style


def test_sweep_positional_accepts_preset_names(tmp_path):
    code, out = run_cli(
        "sweep", "topology-scale", "--jobs", "1", "--out", str(tmp_path / "r")
    )
    assert code == 0
    assert "8 specs" in out and "0 failed" in out

    code, out = run_cli("sweep", "definitely-not-a-preset")
    assert code == 2
    assert "no such sweep spec file or preset" in out
    assert "topology-scale" in out  # the preset listing
