"""Tests for the memory interface routing."""

import pytest

from repro.config.system import DramParams
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface


def build():
    memif = MemoryInterface(oneway_ps=10_000)
    host = MemoryController(DramParams(jitter_ps=0), channels=1, seed=1)
    device = MemoryController(DramParams(jitter_ps=0), channels=1, seed=2)
    memif.attach("host", AddressRange(0, 1 << 30, "host"), host)
    memif.attach("device", AddressRange(1 << 30, 2 << 30, "hdm"), device)
    return memif, host, device


def test_routing_by_range():
    memif, host, device = build()
    assert memif.target_of(0x1000) == "host"
    assert memif.target_of((1 << 30) + 64) == "device"
    assert memif.target_of(5 << 30) is None


def test_access_charges_both_hops():
    memif, host, _device = build()
    t = 10_000_000
    latency = memif.access_ps(0, t)
    assert latency >= 2 * 10_000 + DramParams().row_hit_ps


def test_overlapping_attach_rejected():
    memif, _h, _d = build()
    other = MemoryController(DramParams(), channels=1)
    with pytest.raises(ValueError):
        memif.attach("bad", AddressRange(100, 200), other)


def test_unmapped_access_raises():
    memif, _h, _d = build()
    with pytest.raises(LookupError):
        memif.access_ps(5 << 30, 0)


def test_targets_and_region():
    memif, _h, _d = build()
    assert set(memif.targets) == {"host", "device"}
    assert memif.region("host").size == 1 << 30


def test_routed_counter():
    memif, _h, _d = build()
    memif.access_ps(0, 10_000_000)
    memif.access_ps((1 << 30) + 128, 10_000_000)
    assert memif.routed == 2
