"""Tests for clock domains."""

import pytest

from repro.sim.clock import Clock, GHZ, MHZ, NS, US


def test_period_helpers():
    assert MHZ(400) == 2_500
    assert GHZ(2.4) == 417
    assert NS == 1_000
    assert US == 1_000_000


def test_clock_from_mhz():
    clk = Clock.from_mhz(400)
    assert clk.period_ps == 2_500
    assert clk.cycles(46) == 115_000  # the FPGA HMC-hit path


def test_clock_from_ghz():
    clk = Clock.from_ghz(1.5)
    assert clk.period_ps == 667
    assert clk.cycles(15) == 10_005   # the ASIC HMC-hit path


def test_invalid_period_rejected():
    with pytest.raises(ValueError):
        Clock(0)
    with pytest.raises(ValueError):
        Clock(-5)


def test_to_cycles_roundtrip():
    clk = Clock.from_mhz(400)
    assert clk.to_cycles(clk.cycles(10)) == pytest.approx(10.0)


def test_next_edge_alignment():
    clk = Clock(2_500)
    assert clk.next_edge(0) == 0
    assert clk.next_edge(1) == 2_500
    assert clk.next_edge(2_500) == 2_500
    assert clk.next_edge(2_501) == 5_000


def test_freq_ghz():
    assert Clock(2_500).freq_ghz == pytest.approx(0.4)
    assert Clock(667).freq_ghz == pytest.approx(1.4993, rel=1e-3)


def test_fractional_cycles_round():
    clk = Clock(667)
    assert clk.cycles(1.5) == round(1.5 * 667)
