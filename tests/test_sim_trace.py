"""Tests for the activity trace log."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog, Tracer


def test_emit_and_iterate():
    log = TraceLog()
    log.emit(100, "dcoh", "read", addr=0x40)
    log.emit(200, "llc", "snoop", peer="l1")
    assert len(log) == 2
    assert [r.event for r in log] == ["read", "snoop"]


def test_record_field_access():
    log = TraceLog()
    log.emit(1, "c", "e", a=1, b="x")
    record = next(iter(log))
    assert record.field("a") == 1
    assert record.field("missing", 42) == 42


def test_filter_by_component_event_window():
    log = TraceLog()
    for t in range(10):
        log.emit(t * 100, "dcoh" if t % 2 else "llc", "tick", i=t)
    assert len(log.filter(component="dcoh")) == 5
    assert len(log.filter(since_ps=500, until_ps=700)) == 3
    assert len(log.filter(predicate=lambda r: r.field("i") >= 8)) == 2
    assert log.filter(event="nope") == []


def test_counts_and_first():
    log = TraceLog()
    log.emit(0, "a", "x")
    log.emit(1, "a", "y")
    log.emit(2, "a", "x")
    assert log.counts_by_event() == {"x": 2, "y": 1}
    assert log.first("y").time_ps == 1
    assert log.first("zz") is None


def test_capacity_drops_excess():
    log = TraceLog(capacity=2)
    for i in range(5):
        log.emit(i, "c", "e")
    assert len(log) == 2
    assert log.dropped == 3


def test_ring_capacity_keeps_newest():
    log = TraceLog(capacity=3, ring=True)
    for i in range(7):
        log.emit(i, "c", "e", i=i)
    assert len(log) == 3
    assert log.dropped == 4
    # Oldest records were overwritten; survivors stay in emission order.
    assert [r.field("i") for r in log] == [4, 5, 6]
    assert [r.field("i") for r in log.records()] == [4, 5, 6]


def test_ring_requires_capacity():
    with pytest.raises(ValueError, match="capacity"):
        TraceLog(ring=True)


def test_render_reports_drop_mode():
    newest = TraceLog(capacity=1)
    newest.emit(0, "c", "e")
    newest.emit(1, "c", "e")
    assert "1 newest record(s) dropped" in newest.render()
    oldest = TraceLog(capacity=1, ring=True)
    oldest.emit(0, "c", "e")
    oldest.emit(1, "c", "e")
    assert "1 oldest record(s) dropped" in oldest.render()


def test_ring_filter_and_first_see_unrotated_order():
    log = TraceLog(capacity=2, ring=True)
    for i in range(4):
        log.emit(i * 10, "c", "tick", i=i)
    assert log.first("tick").field("i") == 2
    assert [r.field("i") for r in log.filter(since_ps=30)] == [3]


def test_ring_clear_resets_rotation():
    log = TraceLog(capacity=2, ring=True)
    for i in range(3):
        log.emit(i, "c", "e", i=i)
    log.clear()
    assert len(log) == 0 and log.dropped == 0
    log.emit(9, "c", "e", i=9)
    assert [r.field("i") for r in log] == [9]


def test_disabled_log_is_silent():
    log = TraceLog()
    log.enabled = False
    log.emit(0, "c", "e")
    assert len(log) == 0


def test_render_limits_output():
    log = TraceLog()
    for i in range(60):
        log.emit(i, "c", "e")
    text = log.render(limit=10)
    assert "50 more" in text


def test_tracer_uses_sim_clock():
    sim = Simulator()
    log = TraceLog()
    tracer = Tracer(log, "dev", lambda: sim.now)
    sim.schedule(500, lambda: tracer.emit("fired"))
    sim.run()
    assert log.first("fired").time_ps == 500
    assert log.first("fired").component == "dev"


def test_clear():
    log = TraceLog(capacity=1)
    log.emit(0, "c", "e")
    log.emit(0, "c", "e")
    log.clear()
    assert len(log) == 0 and log.dropped == 0


def test_null_tracer_is_silent_and_shared():
    from repro.sim.trace import NULL_TRACER, NullTracer

    NULL_TRACER.emit("anything", value=1)  # no-op, no error
    assert isinstance(NULL_TRACER, NullTracer)


def test_component_attach_trace_opts_in():
    from repro.sim.component import Component
    from repro.sim.engine import Simulator
    from repro.sim.trace import NULL_TRACER

    sim = Simulator()
    comp = Component(sim, "dut")
    assert comp.tracer is NULL_TRACER  # zero-cost default
    log = TraceLog()
    comp.attach_trace(log)
    sim.schedule(100, lambda: comp.tracer.emit("fired", n=1))
    sim.run()
    records = log.filter(component="dut")
    assert len(records) == 1
    assert records[0].time_ps == 100
    assert records[0].field("n") == 1
