"""Fault injection: plans, controller, degraded-mode runs, determinism.

The regression contract under test, in rising order of integration:

* schemas fail loudly naming the offending field (FaultSchemaError);
* plans round-trip through JSON bit-identically and register by name;
* the controller's window/flap/corrupt math is exact and matched
  events split from inert unmatched ones;
* strict mode preserves today's fail-loud semantics; the fault-free
  plan in degraded mode is bit-identical to a plain run;
* the same seed + plan reproduce a bit-identical degraded run, and a
  recorded trace replays identically under an active fault plan;
* the sweep layer validates ``fault`` axes up-front, and importing the
  faults package leaves ``repro run all`` byte-identical.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import system_by_name
from repro.faults import (
    FaultActiveError,
    FaultController,
    FaultEvent,
    FaultPlan,
    FaultSchemaError,
    RetryPolicy,
    UnknownFaultPlanError,
    corrupt_draw,
    dump_fault_plan,
    fault_plan_by_name,
    fault_plan_names,
    load_fault_plan,
    parse_fault_ref,
    register_fault_plan_file,
    resolve_fault_plan,
    validate_fault_ref,
)
from repro.workloads import WorkloadDriver

from cli_helpers import run_cli


def fpga_driver():
    return WorkloadDriver(system_by_name("fpga"))


# --------------------------- event schema ------------------------------
def test_event_unknown_kind_rejected():
    with pytest.raises(FaultSchemaError, match="kind must be one of"):
        FaultEvent("power_cut", "host0")


@pytest.mark.parametrize(
    "kwargs, field",
    [
        (dict(kind="host_down", target=""), "'target'"),
        (dict(kind="link_degrade", target="dev0", factor=2.0), "'target'"),
        (dict(kind="host_down", target="a--b"), "'target'"),
        (dict(kind="host_down", target="host0", at_ps=-1), "'at_ps'"),
        (dict(kind="host_down", target="host0", for_ps=0), "'for_ps'"),
        (dict(kind="link_degrade", target="a--b"), "'factor'"),
        (dict(kind="link_degrade", target="a--b", factor=0.5), "'factor'"),
        (dict(kind="host_down", target="host0", factor=2.0), "'factor'"),
        (dict(kind="link_flap", target="a--b", duty=0.5), "'period_ps'"),
        (
            dict(kind="link_flap", target="a--b", period_ps=0, duty=0.5),
            "'period_ps'",
        ),
        (
            dict(kind="link_flap", target="a--b", period_ps=10, duty=1.5),
            "'duty'",
        ),
        (dict(kind="msg_corrupt", target="a--b", rate=0.0), "'rate'"),
        (dict(kind="msg_corrupt", target="a--b", rate=2.0), "'rate'"),
    ],
)
def test_event_schema_errors_name_the_field(kwargs, field):
    with pytest.raises(FaultSchemaError, match=field):
        FaultEvent(**kwargs)


def test_event_windows_and_flap_phase():
    down = FaultEvent("host_down", "host0", at_ps=100, for_ps=50)
    assert not down.active_at(99)
    assert down.active_at(100) and down.active_at(149)
    assert not down.active_at(150)
    assert down.recovers_at_ps == 150

    flap = FaultEvent(
        "link_flap", "a--b", at_ps=0, for_ps=100, period_ps=10, duty=0.3
    )
    # Down for the first 3 ps of every 10 ps cycle.
    assert flap.active_at(0) and flap.active_at(2)
    assert not flap.active_at(3) and not flap.active_at(9)
    assert flap.active_at(10)
    assert not flap.active_at(100)

    forever = FaultEvent("msg_corrupt", "a--b", rate=0.5)
    assert forever.recovers_at_ps is None
    assert forever.active_at(10**12)


# ---------------------------- plan schema ------------------------------
def test_plan_rejects_non_object():
    with pytest.raises(FaultSchemaError, match="must be a JSON object"):
        FaultPlan.from_dict(["host_down"])


def test_plan_rejects_unknown_keys():
    with pytest.raises(FaultSchemaError, match="'faults'"):
        FaultPlan.from_dict({"name": "x", "faults": []})


def test_plan_requires_name():
    with pytest.raises(FaultSchemaError, match="'name'"):
        FaultPlan.from_dict({"events": []})


def test_plan_event_errors_name_the_index_and_field():
    with pytest.raises(FaultSchemaError, match=r"events\[1\].*'factor'"):
        FaultPlan.from_dict(
            {
                "name": "bad",
                "events": [
                    {"kind": "host_down", "target": "host0"},
                    {"kind": "link_degrade", "target": "a--b"},
                ],
            }
        )


def test_plan_event_unknown_key_rejected():
    with pytest.raises(FaultSchemaError, match=r"events\[0\].*'when_ps'"):
        FaultPlan.from_dict(
            {
                "name": "bad",
                "events": [
                    {"kind": "host_down", "target": "host0", "when_ps": 5},
                ],
            }
        )


def test_plan_json_round_trip(tmp_path):
    plan = fault_plan_by_name("storm")
    path = tmp_path / "storm.json"
    text = dump_fault_plan(plan, path)
    loaded = load_fault_plan(path)
    assert loaded == plan
    assert dump_fault_plan(loaded) == text


def test_load_fault_plan_reports_file_problems(tmp_path):
    with pytest.raises(FaultSchemaError, match="cannot read"):
        load_fault_plan(tmp_path / "absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(FaultSchemaError, match="invalid JSON"):
        load_fault_plan(bad)


# ----------------------------- registry --------------------------------
def test_unknown_plan_error_lists_options():
    with pytest.raises(UnknownFaultPlanError, match="storm"):
        fault_plan_by_name("no-such-plan")


def test_builtin_plans_registered():
    names = fault_plan_names()
    for expected in (
        "none", "link-degrade", "link-flap", "host-outage",
        "dev-drop", "msg-corrupt", "storm",
    ):
        assert expected in names


def test_shipped_json_plans_registered():
    # examples/faults/*.json join the registry on package import.
    assert "brownout" in fault_plan_names()
    plan = fault_plan_by_name("rolling-maintenance")
    assert plan.events and plan.events[0].kind == "host_down"


def test_parse_fault_ref_and_parametric_factories():
    assert parse_fault_ref("storm") == ("storm", ())
    assert parse_fault_ref("link-degrade(8)") == ("link-degrade", (8,))
    with pytest.raises(FaultSchemaError):
        parse_fault_ref("link-degrade(")
    plan = resolve_fault_plan("msg-corrupt(0.5)")
    assert plan.events[0].rate == 0.5


def test_validate_fault_ref_accepts_all_forms():
    validate_fault_ref("storm")
    validate_fault_ref("link-degrade(2)")
    validate_fault_ref(fault_plan_by_name("none"))
    validate_fault_ref({"name": "inline", "events": []})
    with pytest.raises(UnknownFaultPlanError):
        validate_fault_ref("nope")
    with pytest.raises(FaultSchemaError):
        validate_fault_ref({"name": "inline", "events": [{"kind": "x"}]})


def test_resolve_fault_plan_passthrough():
    assert resolve_fault_plan(None) is None
    plan = fault_plan_by_name("none")
    assert resolve_fault_plan(plan) is plan
    inline = resolve_fault_plan({"name": "inline", "events": []})
    assert inline.name == "inline"


def test_register_fault_plan_file_is_lazy_and_skips_broken(tmp_path):
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert register_fault_plan_file(broken) is None

    taken = tmp_path / "storm.json"
    taken.write_text(json.dumps({"name": "storm", "events": []}))
    assert register_fault_plan_file(taken) is None  # name already taken

    # Schema problems surface at first *use*, not at registration.
    lazy = tmp_path / "lazy-bad.json"
    lazy.write_text(json.dumps(
        {"name": "lazy-bad", "events": [{"kind": "bogus", "target": "x"}]}
    ))
    assert register_fault_plan_file(lazy) == "lazy-bad"
    try:
        with pytest.raises(FaultSchemaError):
            fault_plan_by_name("lazy-bad")
    finally:
        from repro.faults import FAULT_PLANS

        del FAULT_PLANS["lazy-bad"]


# -------------------------- corruption draws ---------------------------
def test_corrupt_draw_deterministic_and_bounded():
    draws = [corrupt_draw(7, "a--b", i, 0.3) for i in range(200)]
    assert draws == [corrupt_draw(7, "a--b", i, 0.3) for i in range(200)]
    rate = sum(draws) / len(draws)
    assert 0.1 < rate < 0.5
    assert not corrupt_draw(7, "a--b", 0, 0.0)
    assert corrupt_draw(7, "a--b", 0, 1.0)
    # Seed and key both matter.
    assert draws != [corrupt_draw(8, "a--b", i, 0.3) for i in range(200)]
    assert draws != [corrupt_draw(7, "c--d", i, 0.3) for i in range(200)]


# ------------------------------ controller -----------------------------
def build_fanout(profile="fpga"):
    from repro.system import SystemBuilder, topology_by_name

    return SystemBuilder(system_by_name(profile)).build(
        topology_by_name("fanout-2")
    )


def test_controller_matches_and_leaves_unmatched_inert():
    controller = FaultController(fault_plan_by_name("storm"))
    controller.install(build_fanout())
    matched = {e.target for e in controller.matched}
    unmatched = {e.target for e in controller.unmatched}
    assert "dev0--host" in matched and "dev1--host" in matched
    # Supernode-only targets are inert on a fan-out topology.
    assert "host0" in unmatched and "host0--fabric" in unmatched


def test_controller_install_is_single_shot():
    controller = FaultController(fault_plan_by_name("none"))
    controller.install(build_fanout())
    with pytest.raises(RuntimeError, match="already installed"):
        controller.install(build_fanout())


def test_controller_rejects_bad_mode():
    with pytest.raises(ValueError, match="fault mode"):
        FaultController(fault_plan_by_name("none"), mode="lenient")


def test_retry_policy_validation_and_backoff():
    with pytest.raises(ValueError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError, match="backoff_ps"):
        RetryPolicy(backoff_ps=-5)
    policy = RetryPolicy(max_retries=3, backoff_ps=1000)
    assert [policy.delay_ps(a) for a in range(3)] == [1000, 2000, 4000]


def test_degraded_link_latency_is_time_varying():
    system = build_fanout()
    controller = FaultController(
        fault_plan_by_name("link-degrade", 4.0)
    ).install(system)
    bus = system.nodes["dev0"].flexbus
    base = bus.oneway_ps  # sim.now == 0: before the window
    system.sim._now = 10_000_000  # inside the 2us..32us window
    assert bus.oneway_ps == int(round(base * 4.0))
    system.sim._now = 40_000_000  # recovered
    assert bus.oneway_ps == base
    assert controller.link_factor(("dev0", "host"), 10_000_000) == 4.0


def test_degraded_time_merges_overlapping_windows():
    plan = FaultPlan(
        name="overlap",
        events=(
            FaultEvent("host_down", "host0", at_ps=0, for_ps=100),
            FaultEvent("host_down", "host0", at_ps=50, for_ps=100),
        ),
    )
    from repro.system import SystemBuilder, topology_by_name

    system = SystemBuilder(system_by_name("asic")).build(
        topology_by_name("supernode-2host")
    )
    controller = FaultController(plan).install(system)
    controller.end_ps = 1_000
    assert controller.degraded_time_ps() == 150
    assert controller.last_recovery_ps() == 150
    # Clipping: a run that ends mid-window only counts elapsed time.
    assert controller.degraded_time_ps(end_ps=120) == 120


# --------------------------- driver integration ------------------------
CORE_SERIES = ("lat_median_ns", "bandwidth_gbps", "ops")


def core_series(measurement):
    return {k: measurement.series[k] for k in CORE_SERIES if k in measurement.series}


def test_fault_none_is_bit_identical_to_plain_run_fanout():
    plain = fpga_driver().run("zipf(96,1.2)", topology="fanout-2", streams=2)
    faulted = fpga_driver().run(
        "zipf(96,1.2)", topology="fanout-2", streams=2,
        fault="none", fault_mode="degraded",
    )
    assert core_series(plain) == core_series(faulted)
    assert faulted.series["availability"]["rate"] == 1.0
    assert faulted.series["recovery"]["matched_events"] == 0.0


def test_fault_none_is_bit_identical_to_plain_run_supernode():
    driver = WorkloadDriver(system_by_name("asic"))
    plain = driver.run("producer-consumer(96,24)", topology="supernode(2)")
    faulted = driver.run(
        "producer-consumer(96,24)", topology="supernode(2)",
        fault="none", fault_mode="degraded",
    )
    assert core_series(plain) == core_series(faulted)


def test_strict_mode_fails_loud_on_active_fault():
    with pytest.raises(FaultActiveError):
        fpga_driver().run(
            "zipf(96,1.2)", topology="fanout-2", streams=2,
            fault="dev-drop",  # default fault_mode="strict"
        )


def test_strict_mode_supernode_host_outage_naks():
    from repro.core.supernode import HostDownError

    driver = WorkloadDriver(system_by_name("asic"))
    with pytest.raises(HostDownError):
        driver.run(
            "producer-consumer(96,24)", topology="supernode(2)",
            fault="host-outage",
        )


def test_degraded_mode_completes_with_recovery_metrics():
    measurement = fpga_driver().run(
        "zipf(96,1.2)", topology="fanout-2", streams=2,
        fault="dev-drop", fault_mode="degraded",
    )
    availability = measurement.series["availability"]
    assert availability["attempted"] == 96.0
    assert availability["retries"] > 0
    assert availability["completed"] + availability["dropped"] == 96.0
    assert 0 < availability["rate"] <= 1.0
    recovery = measurement.series["recovery"]
    assert recovery["degraded_us"] > 0
    assert measurement.fault == "dev-drop"
    assert "under fault plan dev-drop" in measurement.render()


def test_degraded_link_raises_p99():
    clean = fpga_driver().run("zipf(96,1.2)", topology="fanout-2", streams=2)
    slow = fpga_driver().run(
        "zipf(96,1.2)", topology="fanout-2", streams=2,
        fault="link-degrade(8)", fault_mode="degraded",
    )
    assert "lat_p99_ns" not in clean.series
    assert (
        slow.series["lat_p99_ns"]["all"] > clean.series["lat_median_ns"]["all"]
    )


def test_same_seed_and_plan_reproduce_bit_identical_runs():
    runs = [
        fpga_driver().run(
            "mixed(96)", topology="fanout-2", streams=2,
            fault="storm", fault_mode="degraded", seed=77,
        ).to_dict()
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


def test_supernode_degraded_run_deterministic():
    driver = WorkloadDriver(system_by_name("asic"))
    runs = [
        driver.run(
            "producer-consumer(96,24)", topology="supernode(2)",
            fault="storm", fault_mode="degraded", seed=5,
        ).to_dict()
        for _ in range(2)
    ]
    assert runs[0] == runs[1]
    assert runs[0]["series"]["naks"]["all"] >= 0


def test_record_replay_parity_under_active_fault(tmp_path):
    from repro.workloads import dump_trace, load_trace, resolve_workload

    workload = resolve_workload("mixed(96)")
    trace_path = tmp_path / "mixed.jsonl"
    dump_trace(workload, seed=42, path=trace_path)
    live = fpga_driver().run(
        workload, topology="fanout-2", streams=2, seed=42,
        fault="link-flap", fault_mode="degraded",
    )
    replayed = fpga_driver().run(
        load_trace(trace_path), topology="fanout-2", streams=2, seed=42,
        fault="link-flap", fault_mode="degraded",
    )
    assert live.series == replayed.series
    assert live.ops == replayed.ops


# --------------------------- sweep integration -------------------------
def test_sweep_validates_fault_axis_up_front():
    from repro.experiments.spec import SpecError, SweepSpec

    spec = SweepSpec.from_dict(
        {
            "experiments": [
                {
                    "experiment": "fault-tolerance",
                    "grid": {"fault": ["none", "not-a-plan"]},
                }
            ]
        }
    )
    with pytest.raises(SpecError, match="not-a-plan"):
        spec.validate()


def test_sweep_accepts_inline_fault_plan_and_rejects_malformed():
    from repro.experiments.spec import SpecError, SweepSpec

    good = SweepSpec.from_dict(
        {
            "experiments": [
                {
                    "experiment": "fault-tolerance",
                    "params": {
                        "fault": {"name": "inline", "events": []}
                    },
                }
            ]
        }
    )
    good.validate()
    bad = SweepSpec.from_dict(
        {
            "experiments": [
                {
                    "experiment": "fault-tolerance",
                    "params": {
                        "fault": {"name": "inline", "events": [{"kind": "x"}]}
                    },
                }
            ]
        }
    )
    with pytest.raises(SpecError, match="'target'"):
        bad.validate()


def test_fault_tolerance_preset_expands_with_fault_axis():
    from repro.experiments import preset_sweep

    spec = preset_sweep("fault-tolerance")
    spec.validate()
    specs = spec.expand()
    fault_values = {s.params["fault"] for s in specs}
    assert len(specs) >= 6
    assert len(fault_values) >= 3
    assert "none" in fault_values


def test_fault_tolerance_experiment_reports_availability():
    from repro.harness.experiments import run_experiment

    result = run_experiment(
        "fault-tolerance", fault="host-outage",
        topology="supernode(2)", workload="producer-consumer(96,24)",
    )
    assert result.series["availability"]["attempted"] > 0
    assert result.series["recovery"]["matched_events"] == 1.0


# ------------------------------- CLI -----------------------------------
def test_cli_fault_list_and_show():
    code, out = run_cli("fault", "list")
    assert code == 0
    assert "storm" in out and "host-outage" in out

    code, out = run_cli("fault", "show", "storm")
    assert code == 0
    assert "fault plan storm" in out and "host_down" in out

    code, out = run_cli("fault", "show", "no-such")
    assert code == 2
    assert "unknown fault plan" in out


def test_cli_fault_validate(tmp_path):
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"name": "g", "events": []}))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(
        {"name": "b", "events": [{"kind": "host_down", "target": "h", "rate": 1}]}
    ))
    code, out = run_cli("fault", "validate", str(good))
    assert code == 0 and "ok" in out
    code, out = run_cli("fault", "validate", str(good), str(bad))
    assert code == 2
    assert "FAIL" in out and "'rate'" in out


def test_cli_sweep_retry_flags_validated():
    code, out = run_cli("sweep", "quick", "--max-retries", "-1")
    assert code == 2 and "--max-retries" in out
    code, out = run_cli("sweep", "quick", "--retry-backoff-s", "-0.1")
    assert code == 2 and "--retry-backoff-s" in out
    code, out = run_cli(
        "sweep", "quick", "--max-retries", "2", "--backend", "pool"
    )
    assert code == 2 and "queue" in out


def test_cli_sweep_fault_tolerance_serial(tmp_path):
    out_dir = tmp_path / "ft"
    code, out = run_cli(
        "sweep", "fault-tolerance", "--backend", "serial",
        "--out", str(out_dir),
    )
    assert code == 0
    assert "10 specs" in out and "0 failed" in out

    # The in-sweep fault-free baseline equals a plain driver run with
    # the same params + derived seed (the CI fault-smoke contract).
    from repro.experiments import ResultStore

    records = [
        r for r in ResultStore(out_dir).load()
        if r.ok and r.params.get("fault") == "none"
    ]
    assert records
    for record in records:
        driver = fpga_driver()
        plain = driver.run(
            record.params["workload"],
            topology=record.params["topology"],
            # The runner passes only spec params to the experiment, so
            # an unswept seed stays at the experiment default.
            seed=record.params.get("seed", 1234),
            streams=record.params.get("streams") or None,
        )
        for key in CORE_SERIES:
            if key in record.series:
                assert record.series[key] == plain.series[key]


# -------------------- degraded-mode NIC and RPC wire -------------------
def test_nic_ingest_honours_rx_policy():
    from repro.nic.base import NicBase
    from repro.sim.engine import Simulator
    from repro.sim.queueing import QueueFullError

    lossy = NicBase(Simulator(), "lossy", rx_depth=1, rx_policy="drop")
    assert lossy.ingest("a") is True
    assert lossy.ingest("b") is False
    assert lossy.rx.dropped == 1

    strict = NicBase(Simulator(), "strict", rx_depth=1)
    strict.ingest("a")
    with pytest.raises(QueueFullError):
        strict.ingest("b")


def test_rpc_pipeline_clean_wire_is_unchanged():
    from repro.rpc.hyperprotobench import make_bench
    from repro.rpc.rpcnic import RpcNicPipeline

    config = system_by_name("fpga")
    bench = make_bench("Bench0", messages=10)
    result = RpcNicPipeline(config).deserialize_bench(bench)
    assert result.verified
    assert result.retransmits == 0 and result.dropped == 0


def test_rpc_pipeline_lossy_wire_retransmits_deterministically():
    from repro.rpc.hyperprotobench import make_bench
    from repro.rpc.rpcnic import RpcNicPipeline

    config = system_by_name("fpga")
    bench = make_bench("Bench0", messages=20)
    clean = RpcNicPipeline(config).deserialize_bench(bench)
    lossy = [
        RpcNicPipeline(config, corrupt_rate=0.2).deserialize_bench(bench)
        for _ in range(2)
    ]
    assert lossy[0].per_message_ps == lossy[1].per_message_ps
    assert lossy[0].retransmits == lossy[1].retransmits > 0
    assert lossy[0].total_ps > clean.total_ps
    ser = RpcNicPipeline(config, corrupt_rate=0.2).serialize_bench(bench)
    assert ser.retransmits > 0

    with pytest.raises(ValueError, match="corrupt_rate"):
        RpcNicPipeline(config, corrupt_rate=1.5)
    with pytest.raises(ValueError, match="max_retransmits"):
        RpcNicPipeline(config, max_retransmits=-1)


# --------------------------- run-all parity ----------------------------
def test_run_all_output_unchanged_by_faults_import(tmp_path):
    """Importing repro.faults must not perturb any paper experiment."""
    src = Path(__file__).resolve().parents[1] / "src"
    env_script = (
        "import sys; sys.path.insert(0, {src!r}); "
        "{extra}"
        "from repro.cli import main; sys.exit(main(['run', 'all']))"
    )
    outputs = []
    for extra in ("", "import repro.faults; "):
        proc = subprocess.run(
            [sys.executable, "-c", env_script.format(src=str(src), extra=extra)],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
