"""Tests for the multi-channel memory controller."""

import pytest

from repro.config.system import DramParams
from repro.mem.controller import MemoryController


def test_channels_split_traffic():
    ctrl = MemoryController(DramParams(), channels=2, seed=1)
    t = 10_000_000
    ctrl.access(0, t)
    ctrl.access(64, t)
    assert ctrl.channels[0].accesses == 1
    assert ctrl.channels[1].accesses == 1


def test_controller_ii_backpressure():
    ctrl = MemoryController(DramParams(jitter_ps=0), channels=1, ii_ps=10_000, seed=1)
    t = 10_000_000
    first = ctrl.access(0, t)
    second = ctrl.access(1 << 20, t)
    # The second access waits one II before service.
    assert second.latency_ps >= first.latency_ps + 10_000 - 1


def test_latency_includes_wait():
    ctrl = MemoryController(DramParams(jitter_ps=0), channels=1, ii_ps=5_000, seed=1)
    t = 10_000_000
    ctrl.access(0, t)
    r = ctrl.access(2 << 20, t)
    assert r.latency_ps >= 5_000


def test_request_count():
    ctrl = MemoryController(DramParams(), channels=2, seed=1)
    for i in range(10):
        ctrl.access(i * 64, 10_000_000)
    assert ctrl.requests == 10


def test_reset():
    ctrl = MemoryController(DramParams(), channels=2, ii_ps=100, seed=1)
    ctrl.access(0, 10_000_000)
    ctrl.reset()
    assert ctrl.requests == 0
    assert all(ch.accesses == 0 for ch in ctrl.channels)
