"""Tests for the RDMA fabric request source."""

import pytest

from repro.nic.rdma import RdmaFabric
from repro.sim.engine import Simulator


def test_delivery_latency():
    sim = Simulator()
    fabric = RdmaFabric(sim, nodes=2, latency_ps=1_000_000)
    got = []
    fabric.send(1, "req", lambda p: got.append((p, sim.now)))
    sim.run()
    assert got == [("req", 1_000_000)]


def test_per_port_serialization():
    sim = Simulator()
    fabric = RdmaFabric(sim, nodes=1, latency_ps=100, message_gap_ps=50)
    times = []
    fabric.send(1, "a", lambda p: times.append(sim.now))
    fabric.send(1, "b", lambda p: times.append(sim.now))
    sim.run()
    assert times == [100, 150]


def test_broadcast_round_robin():
    sim = Simulator()
    fabric = RdmaFabric(sim, nodes=4, latency_ps=10, message_gap_ps=0)
    got = []
    fabric.broadcast_stream(list(range(8)), got.append)
    sim.run()
    assert sorted(got) == list(range(8))
    assert fabric.messages == 8


def test_unknown_source_rejected():
    fabric = RdmaFabric(Simulator(), nodes=2)
    with pytest.raises(ValueError):
        fabric.send(99, "x", lambda p: None)


def test_needs_nodes():
    with pytest.raises(ValueError):
        RdmaFabric(Simulator(), nodes=0)
