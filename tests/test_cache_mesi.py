"""Tests for MESI transition legality."""

import pytest

from repro.cache.block import MesiState
from repro.cache.mesi import ProtocolError, check_transition

I, S, E, M = (
    MesiState.INVALID,
    MesiState.SHARED,
    MesiState.EXCLUSIVE,
    MesiState.MODIFIED,
)


def test_fill_transitions():
    assert check_transition(I, "fill_s", S) is S
    assert check_transition(I, "fill_e", E) is E


def test_silent_upgrade():
    # Fig. 7 phase 2: E -> M without coherence messages.
    assert check_transition(E, "local_write", M) is M


def test_snoop_invalidate_from_every_valid_state():
    for state in (S, E, M):
        assert check_transition(state, "snp_inv", I) is I


def test_snoop_data_downgrades():
    assert check_transition(E, "snp_data", S) is S
    assert check_transition(M, "snp_data", S) is S


def test_dirty_evict_go_i():
    assert check_transition(M, "go_i", I) is I


def test_illegal_target_rejected():
    with pytest.raises(ProtocolError):
        check_transition(E, "local_write", S)
    with pytest.raises(ProtocolError):
        check_transition(S, "snp_inv", M)


def test_unknown_event_rejected():
    with pytest.raises(ProtocolError):
        check_transition(I, "local_write", M)  # cannot write invalid line
    with pytest.raises(ProtocolError):
        check_transition(M, "fill_s", S)


def test_state_properties():
    assert not I.readable
    assert S.readable and not S.writable
    assert E.writable and not E.dirty
    assert M.writable and M.dirty


def test_flat_table_matches_allowed_transitions():
    from repro.cache.mesi import ALLOWED_TRANSITIONS

    for (current, event), allowed in ALLOWED_TRANSITIONS.items():
        for target in allowed:
            assert check_transition(current, event, target) is target


def test_fast_mode_skips_validation_and_restores():
    from repro.cache.mesi import fast_mode, set_fast_mode

    assert not fast_mode()
    previous = set_fast_mode(True)
    assert previous is False
    try:
        # Illegal transition passes untouched in fast mode.
        assert check_transition(I, "local_write", M) is M
    finally:
        set_fast_mode(previous)
    assert not fast_mode()
    with pytest.raises(ProtocolError):
        check_transition(I, "local_write", M)


def test_rebuild_table_honors_removed_transitions():
    from repro.cache.mesi import ALLOWED_TRANSITIONS, rebuild_table

    saved = ALLOWED_TRANSITIONS[(E, "local_write")]
    ALLOWED_TRANSITIONS[(E, "local_write")] = frozenset()
    rebuild_table()
    try:
        with pytest.raises(ProtocolError):
            check_transition(E, "local_write", M)
    finally:
        ALLOWED_TRANSITIONS[(E, "local_write")] = saved
        rebuild_table()
    assert check_transition(E, "local_write", M) is M
