"""Statistical analysis layer, golden-report regression, HTML rendering.

The golden fixtures under ``tests/data`` pin three contracts:

* ``golden_report_a.md`` / ``golden_compare.md`` were generated with
  the PR 8 report code — today's ``RunReport.markdown()`` and
  ``compare_runs`` must reproduce them byte-for-byte on runs without
  repeats, proving the stats features cost nothing when unused.
* ``golden_analysis.md`` / ``golden_analysis.html`` pin the analysis
  markdown and the SVG-plotted HTML report for a committed repeat run,
  so neither the stats pipeline nor the renderer can drift silently.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments import (
    RunAnalysis,
    RunReport,
    SweepSpec,
    analyze_run,
    compare_runs,
    group_samples,
    preset_sweep,
)
from repro.experiments.plotting import PlotError, get_plotter, strip_plot_svg
from repro.experiments.rendering import render_html_report, write_html_report
from repro.experiments.stats import StatsError
from repro.experiments.store import StoredResult

from cli_helpers import run_cli

DATA = Path(__file__).parent / "data"


def _record(spec_hash, experiment="alpha", params=None, repeat=0, seed=0,
            status="ok", series=None, **kwargs):
    return StoredResult(
        spec_hash=spec_hash,
        experiment=experiment,
        params=params or {},
        repeat=repeat,
        seed=seed,
        status=status,
        series=series or {},
        **kwargs,
    )


# ----------------------------- grouping --------------------------------
class TestGrouping:
    def test_group_key_ignores_seed(self):
        a = _record("h1", params={"x": 1, "seed": 10})
        b = _record("h2", params={"x": 1, "seed": 20})
        c = _record("h3", params={"x": 2, "seed": 10})
        assert a.group_key == b.group_key
        assert a.group_key != c.group_key

    def test_group_label_strips_seed(self):
        record = _record("h1", params={"seed": 7, "x": 1})
        assert record.group_label == "alpha[x=1]"
        assert _record("h2").group_label == "alpha"

    def test_group_samples_collects_per_metric(self):
        records = [
            _record("h1", params={"seed": 1}, seed=1,
                    series={"lat": {"all": 10.0}}),
            _record("h2", params={"seed": 2}, seed=2,
                    series={"lat": {"all": 12.0}}),
        ]
        groups = group_samples(records)
        assert len(groups) == 1
        (group,) = groups.values()
        assert group.n == 2
        assert group.metrics["lat"] == [10.0, 12.0]

    def test_group_samples_orders_by_repeat_then_seed(self):
        records = [
            _record("h2", repeat=1, seed=5, params={"seed": 5},
                    series={"m": {"all": 2.0}}),
            _record("h1", repeat=0, seed=9, params={"seed": 9},
                    series={"m": {"all": 1.0}}),
        ]
        (group,) = group_samples(records).values()
        assert group.metrics["m"] == [1.0, 2.0]

    def test_failed_records_are_excluded(self):
        records = [
            _record("h1", series={"m": {"all": 1.0}}),
            _record("h2", status="error"),
        ]
        (group,) = group_samples(records).values()
        assert group.n == 1


# --------------------------- RunAnalysis -------------------------------
class TestRunAnalysis:
    def test_declines_without_repeats(self):
        analysis = RunAnalysis(str(DATA / "golden_run_a"))
        assert analysis.testable_groups == []
        assert analysis.comparisons == []
        text = analysis.markdown()
        assert "declines to test" in text
        assert "--repeats" in text

    def test_golden_repeat_run_finds_significant_metric(self):
        analysis = RunAnalysis(str(DATA / "golden_repeat_run"))
        assert len(analysis.testable_groups) == 2
        significant = {c.metric for c in analysis.significant}
        assert significant == {"lat_ns"}
        (lat,) = [c for c in analysis.comparisons if c.metric == "lat_ns"]
        assert lat.p_adjusted <= 0.05
        assert lat.a12 == 0.0  # x=1 latencies all below x=2's
        assert "alpha[x=2] > alpha[x=1]" == lat.verdict

    def test_holm_correction_spans_all_metrics(self):
        analysis = RunAnalysis(str(DATA / "golden_repeat_run"))
        # Two tests in the family: the smaller raw p doubles.
        lat = next(c for c in analysis.comparisons if c.metric == "lat_ns")
        assert lat.p_adjusted == pytest.approx(min(1.0, 2 * lat.p_value))

    def test_constant_metrics_are_excluded(self):
        analysis = RunAnalysis(str(DATA / "golden_repeat_run"))
        assert analysis.constant_metrics == ["ops"]
        assert all(c.metric != "ops" for c in analysis.comparisons)

    def test_metric_filter(self):
        analysis = RunAnalysis(
            str(DATA / "golden_repeat_run"), metrics=["bw_gbps"]
        )
        assert {c.metric for c in analysis.comparisons} == {"bw_gbps"}

    def test_markdown_golden_is_byte_stable(self):
        analysis = RunAnalysis(str(DATA / "golden_repeat_run"))
        expected = (DATA / "golden_analysis.md").read_text()
        assert analysis.markdown() + "\n" == expected

    def test_invalid_alpha_raises(self):
        with pytest.raises(StatsError, match="alpha"):
            RunAnalysis(str(DATA / "golden_repeat_run"), alpha=1.5)

    def test_min_repeats_below_two_raises(self):
        with pytest.raises(StatsError, match="min_repeats"):
            RunAnalysis(str(DATA / "golden_repeat_run"), min_repeats=1)

    def test_declined_groups_are_listed(self):
        analysis = RunAnalysis(
            str(DATA / "golden_repeat_run"), min_repeats=10
        )
        assert len(analysis.declined) == 2
        assert "Declined" in analysis.markdown() or (
            "declines to test" in analysis.markdown()
        )

    def test_analyze_run_helper(self):
        analysis = analyze_run(str(DATA / "golden_repeat_run"), alpha=0.01)
        assert analysis.alpha == 0.01


# ------------------------ golden regressions ---------------------------
class TestGoldenRegression:
    def test_report_markdown_unchanged_since_pr8(self):
        report = RunReport(str(DATA / "golden_run_a"))
        expected = (DATA / "golden_report_a.md").read_text()
        assert report.markdown() + "\n" == expected

    def test_compare_runs_without_repeats_unchanged_since_pr8(self):
        got = compare_runs(
            str(DATA / "golden_run_a"), str(DATA / "golden_run_b")
        )
        expected = (DATA / "golden_compare.md").read_text()
        assert got + "\n" == expected

    def test_html_report_is_hash_stable(self):
        analysis = RunAnalysis(str(DATA / "golden_repeat_run"))
        html = render_html_report(analysis)
        expected = (DATA / "golden_analysis.html").read_text()
        assert hashlib.sha256(html.encode()).hexdigest() == (
            hashlib.sha256(expected.encode()).hexdigest()
        )

    def test_compare_runs_with_repeats_appends_significance(self):
        got = compare_runs(
            str(DATA / "golden_repeat_run"), str(DATA / "golden_repeat_run")
        )
        # Same run on both sides: a significance table appears (both
        # sides have repeats) but every verdict is "ns".
        assert "## Significance:" in got
        assert "ns" in got
        assert ">" not in got.split("## Significance:")[1].replace(
            "|", " "
        ).split("\n")[3]


# --------------------------- rendering ---------------------------------
class TestRendering:
    def test_html_is_deterministic(self):
        analysis = RunAnalysis(str(DATA / "golden_repeat_run"))
        again = RunAnalysis(str(DATA / "golden_repeat_run"))
        assert render_html_report(analysis) == render_html_report(again)

    def test_html_embeds_svg_plots(self):
        html = render_html_report(RunAnalysis(str(DATA / "golden_repeat_run")))
        assert "<svg" in html
        assert "lat_ns" in html

    def test_html_without_plots(self):
        html = render_html_report(
            RunAnalysis(str(DATA / "golden_repeat_run")), plots="none"
        )
        assert "<svg" not in html
        assert "Verdicts" in html

    def test_html_decline_path(self):
        html = render_html_report(RunAnalysis(str(DATA / "golden_run_a")))
        assert "declines to test" in html
        assert "<svg" not in html

    def test_write_html_report(self, tmp_path):
        target = tmp_path / "sub" / "report.html"
        path = write_html_report(
            RunAnalysis(str(DATA / "golden_repeat_run")), target
        )
        assert path == target
        assert target.read_text().startswith("<!DOCTYPE html>")

    def test_html_escapes_content(self):
        # Group labels and metric names flow into HTML; raw angle
        # brackets must never survive the trip.
        from repro.experiments.rendering import _cell, _table

        assert _cell("<evil>") == "<td>&lt;evil&gt;</td>"
        assert "<h>" not in _table(["<h>"], [["<v>"]])


class TestPlotting:
    def test_strip_plot_is_deterministic(self):
        groups = {"a": [1.0, 2.0, 3.0], "b": [2.5, 3.5]}
        assert strip_plot_svg("m", groups) == strip_plot_svg("m", groups)

    def test_strip_plot_handles_constant_values(self):
        svg = strip_plot_svg("m", {"a": [5.0, 5.0]})
        assert b"<svg" in svg

    def test_strip_plot_escapes_metric_name(self):
        svg = strip_plot_svg("<m>", {"a": [1.0]})
        assert b"<m>" not in svg

    def test_empty_groups_raise(self):
        with pytest.raises(PlotError):
            strip_plot_svg("m", {})

    def test_unknown_backend_raises(self):
        with pytest.raises(PlotError, match="unknown"):
            get_plotter("gnuplot")

    def test_matplotlib_backend_unavailable_raises_ploterror(self):
        # The container has no matplotlib; the backend must fail with
        # a PlotError naming the fix, not an ImportError at call time.
        try:
            import matplotlib  # noqa: F401
            pytest.skip("matplotlib installed; backend would work")
        except ImportError:
            pass
        plot = get_plotter("matplotlib")
        with pytest.raises(PlotError, match="matplotlib"):
            plot("m", {"a": [1.0, 2.0]})


# --------------------------- seed injection ----------------------------
class TestRepeatSeedInjection:
    def test_repeats_inject_distinct_seeds_for_seed_experiments(self):
        sweep = SweepSpec.from_dict({
            "name": "inj", "repeats": 3,
            "experiments": [
                {"experiment": "workload-mix",
                 "params": {"workload": "mixed(16)", "topology": "fanout-2"}},
            ],
        })
        specs = sweep.expand()
        seeds = [s.params["seed"] for s in specs]
        assert len(seeds) == 3
        assert len(set(seeds)) == 3
        for spec in specs:
            assert spec.params["seed"] == spec.seed

    def test_single_repeat_never_injects(self):
        sweep = SweepSpec.from_dict({
            "name": "inj", "repeats": 1,
            "experiments": [
                {"experiment": "workload-mix",
                 "params": {"workload": "mixed(16)", "topology": "fanout-2"}},
            ],
        })
        (spec,) = sweep.expand()
        assert "seed" not in spec.params

    def test_pinned_seed_wins_over_injection(self):
        sweep = SweepSpec.from_dict({
            "name": "inj", "repeats": 2,
            "experiments": [
                {"experiment": "workload-mix",
                 "params": {"workload": "mixed(16)", "topology": "fanout-2",
                            "seed": 42}},
            ],
        })
        assert all(s.params["seed"] == 42 for s in sweep.expand())

    def test_seedless_experiments_are_untouched(self):
        sweep = SweepSpec.from_dict({
            "name": "inj", "repeats": 2,
            "experiments": [{"experiment": "table1"}],
        })
        assert all("seed" not in s.params for s in sweep.expand())

    def test_seed_axis_must_be_integer(self):
        sweep = SweepSpec.from_dict({
            "name": "bad", "repeats": 1,
            "experiments": [
                {"experiment": "workload-mix",
                 "params": {"workload": "mixed(16)", "seed": "lucky"}},
            ],
        })
        with pytest.raises(Exception, match="seed must be an integer"):
            sweep.validate()

    def test_quick_preset_expansion_is_unchanged(self):
        # repeats=1 presets must keep their PR 8 spec hashes so every
        # cached run directory stays valid.
        hashes = sorted(s.spec_hash for s in preset_sweep("quick").expand())
        assert all("seed" not in s.params for s in preset_sweep("quick").expand())
        assert hashes == sorted(
            s.spec_hash for s in preset_sweep("quick").expand()
        )

    def test_significance_preset_validates(self):
        sweep = preset_sweep("significance")
        sweep.validate()
        specs = sweep.expand()
        assert len(specs) == 20
        assert len({s.params["seed"] for s in specs}) == 20


# ------------------------------- CLI -----------------------------------
class TestAnalyzeCli:
    def test_analyze_missing_dir(self, tmp_path):
        code, out = run_cli("analyze", str(tmp_path / "nope"))
        assert code == 2
        assert "no results" in out

    def test_analyze_golden_repeat_run(self):
        code, out = run_cli("analyze", str(DATA / "golden_repeat_run"))
        assert code == 0
        assert "lat_ns" in out
        assert "p(Holm)" in out

    def test_analyze_declines_on_single_repeats(self):
        code, out = run_cli("analyze", str(DATA / "golden_run_a"))
        assert code == 0
        assert "declines to test" in out

    def test_analyze_writes_html(self, tmp_path):
        target = tmp_path / "report.html"
        code, out = run_cli(
            "analyze", str(DATA / "golden_repeat_run"), "--html", str(target)
        )
        assert code == 0
        assert target.is_file()
        assert "wrote" in out

    def test_analyze_rejects_bad_alpha(self):
        code, out = run_cli(
            "analyze", str(DATA / "golden_repeat_run"), "--alpha", "2.0"
        )
        assert code == 2
        assert "alpha" in out

    def test_analyze_metric_filter(self):
        code, out = run_cli(
            "analyze", str(DATA / "golden_repeat_run"),
            "--metric", "bw_gbps",
        )
        assert code == 0
        assert "lat_ns" not in out.split("##")[2]

    def test_sweep_rejects_bad_repeats(self, tmp_path):
        code, out = run_cli(
            "sweep", "--preset", "quick", "--repeats", "0",
            "--out", str(tmp_path / "r"),
        )
        assert code == 2
        assert "--repeats" in out


class TestSweepRepeatsCli:
    def test_repeats_flag_multiplies_specs(self, tmp_path):
        spec = {
            "name": "tiny", "repeats": 1,
            "experiments": [
                {"experiment": "workload-mix",
                 "params": {"workload": "mixed(16)", "topology": "fanout-2",
                            "streams": 2}},
            ],
        }
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(spec))
        out_dir = tmp_path / "run"
        code, out = run_cli(
            "sweep", str(path), "--out", str(out_dir),
            "--backend", "serial", "--repeats", "3",
        )
        assert code == 0
        assert "3 specs" in out
        report = RunReport(str(out_dir))
        assert len(report.ok_records) == 3
        assert len({r.seed for r in report.ok_records}) == 3
        # All three are repeats of one scenario.
        assert len({r.group_key for r in report.ok_records}) == 1
