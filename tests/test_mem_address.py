"""Tests for address ranges and interleaving."""

import pytest

from repro.mem.address import (
    AddressRange,
    CACHELINE,
    Interleaver,
    line_base,
    line_offset,
    split_evenly,
)


def test_line_helpers():
    assert line_base(0) == 0
    assert line_base(63) == 0
    assert line_base(64) == 64
    assert line_offset(65) == 1


def test_range_contains_and_offset():
    r = AddressRange(0x1000, 0x2000, "r")
    assert r.contains(0x1000)
    assert not r.contains(0x2000)
    assert r.size == 0x1000
    assert r.offset(0x1800) == 0x800
    with pytest.raises(ValueError):
        r.offset(0x2000)


def test_range_empty_rejected():
    with pytest.raises(ValueError):
        AddressRange(10, 10)


def test_range_overlap():
    a = AddressRange(0, 100)
    b = AddressRange(50, 150)
    c = AddressRange(100, 200)
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_interleaver_alternates_channels():
    inter = Interleaver(2)
    channels = [inter.map(i * CACHELINE)[0] for i in range(4)]
    assert channels == [0, 1, 0, 1]


def test_interleaver_roundtrip():
    inter = Interleaver(3, granule=128)
    for addr in (0, 64, 127, 128, 5_000, 123_456):
        channel, local = inter.map(addr)
        assert inter.unmap(channel, local) == addr


def test_interleaver_bad_params():
    with pytest.raises(ValueError):
        Interleaver(0)
    with pytest.raises(ValueError):
        Interleaver(2, granule=100)  # not a cacheline multiple
    inter = Interleaver(2)
    with pytest.raises(ValueError):
        inter.unmap(5, 0)


def test_split_evenly():
    region = AddressRange(0, 1000, "host")
    parts = split_evenly(region, 3)
    assert len(parts) == 3
    assert parts[0].start == 0
    assert parts[-1].end == 1000
    total = sum(p.size for p in parts)
    assert total == 1000
    for left, right in zip(parts, parts[1:]):
        assert left.end == right.start


def test_split_bad_parts():
    with pytest.raises(ValueError):
        split_evenly(AddressRange(0, 10), 0)
    with pytest.raises(ValueError):
        split_evenly(AddressRange(0, 2), 5)
