"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0
    assert sim.pending == 0


def test_schedule_and_run_advances_time():
    sim = Simulator()
    fired = []
    sim.schedule(1_000, fired.append, "a")
    sim.schedule(500, fired.append, "b")
    executed = sim.run()
    assert executed == 2
    assert fired == ["b", "a"]
    assert sim.now == 1_000


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(100, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(5_000, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5_000]


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(100, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.executed == 0


def test_run_until_bound():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.schedule(200, fired.append, 2)
    sim.schedule(300, fired.append, 3)
    sim.run(until_ps=250)
    assert fired == [1, 2]
    assert sim.now == 250
    sim.run()
    assert fired == [1, 2, 3]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(10 * (i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 4:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == 40


def test_step_fires_exactly_one():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()


def test_reset_clears_calendar():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    sim.reset()
    assert sim.now == 0
    assert sim.pending == 0
    assert sim.executed == 0


def test_run_until_with_empty_calendar_advances_clock():
    sim = Simulator()
    sim.run(until_ps=9_999)
    assert sim.now == 9_999


# ----------------------------------------------------------------------
# run() horizon/max_events interaction (unified time-advance logic)
# ----------------------------------------------------------------------

def test_run_max_events_then_horizon_advances_clock():
    # max_events stops the run, and every remaining event lies beyond
    # the horizon: the clock must still advance to until_ps.
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.schedule(200, fired.append, 2)
    sim.schedule(9_000, fired.append, 3)
    executed = sim.run(until_ps=500, max_events=2)
    assert executed == 2
    assert fired == [1, 2]
    assert sim.now == 500


def test_run_max_events_with_pending_work_before_horizon_holds_clock():
    # max_events stops the run while live events remain inside the
    # horizon: time must NOT jump past them.
    sim = Simulator()
    fired = []
    for i in range(4):
        sim.schedule(100 * (i + 1), fired.append, i)
    sim.run(until_ps=1_000, max_events=2)
    assert fired == [0, 1]
    assert sim.now == 200
    sim.run(until_ps=1_000)
    assert fired == [0, 1, 2, 3]
    assert sim.now == 1_000


def test_run_max_events_exact_drain_advances_to_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.run(until_ps=5_000, max_events=1)
    assert fired == [1]
    assert sim.now == 5_000


def test_run_horizon_ignores_cancelled_events_beyond_it():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    tail = sim.schedule(400, fired.append, 2)
    tail.cancel()
    sim.run(until_ps=300)
    assert fired == [1]
    assert sim.now == 300


# ----------------------------------------------------------------------
# Determinism: same-timestamp FIFO by sequence number
# ----------------------------------------------------------------------

def test_fifo_order_survives_interleaved_fast_path():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, "a")
    sim.schedule_after(100, fired.append, ("b",))
    sim.schedule(100, fired.append, "c")
    sim.schedule_after(100, fired.append, ("d",))
    sim.run()
    assert fired == ["a", "b", "c", "d"]


def test_fifo_order_survives_cancellation():
    sim = Simulator()
    fired = []
    events = [sim.schedule(50, fired.append, i) for i in range(10)]
    for i in (1, 4, 7):
        events[i].cancel()
    sim.run()
    assert fired == [0, 2, 3, 5, 6, 8, 9]


def test_fifo_order_survives_reset():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    sim.reset()
    fired = []
    for i in range(5):
        sim.schedule(25, fired.append, i)
    sim.run()
    assert fired == list(range(5))
    assert sim.now == 25


def test_fifo_order_survives_entry_pool_reuse():
    # Drain once (populating the free-list), then schedule again and
    # verify recycled entries preserve FIFO ordering.
    sim = Simulator()
    fired = []
    for i in range(20):
        sim.schedule(10, fired.append, i)
    sim.run()
    fired.clear()
    for i in range(20):
        sim.schedule(10, fired.append, i)
    sim.run()
    assert fired == list(range(20))


def test_cancel_heavy_calendar_compacts_and_preserves_order():
    sim = Simulator()
    fired = []
    events = [sim.schedule(1_000 + i, fired.append, i) for i in range(500)]
    for i, event in enumerate(events):
        if i % 10:
            event.cancel()
    # Lazy deletion compacted the mostly-dead calendar in place.
    assert sim.pending < 500
    sim.run()
    assert fired == [i for i in range(500) if i % 10 == 0]


def test_cancel_after_firing_is_harmless():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    sim.run()
    event.cancel()  # stale handle: must not affect later events
    # A fired event is detached, so the stale cancel does not inflate
    # the lazy-deletion counter (which would trigger useless compaction
    # scans in cancellation-heavy workloads).
    assert sim._cancelled == 0
    sim.schedule(10, fired.append, "y")
    sim.run()
    assert fired == ["x", "y"]


def test_step_handles_fast_path_and_cancelled_events():
    sim = Simulator()
    fired = []
    dead = sim.schedule(5, fired.append, "dead")
    dead.cancel()
    sim.schedule_after(10, fired.append, ("fast",))
    assert sim.step()
    assert fired == ["fast"]
    assert sim.now == 10
    assert not sim.step()


def test_cancel_after_reset_is_harmless():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    sim.reset()
    event.cancel()  # pre-reset handle: detached, no counter drift
    assert sim._cancelled == 0
    fired = []
    sim.schedule(10, fired.append, "z")
    sim.run()
    assert fired == ["z"]
