"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0
    assert sim.pending == 0


def test_schedule_and_run_advances_time():
    sim = Simulator()
    fired = []
    sim.schedule(1_000, fired.append, "a")
    sim.schedule(500, fired.append, "b")
    executed = sim.run()
    assert executed == 2
    assert fired == ["b", "a"]
    assert sim.now == 1_000


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(100, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(5_000, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5_000]


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(100, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.executed == 0


def test_run_until_bound():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.schedule(200, fired.append, 2)
    sim.schedule(300, fired.append, 3)
    sim.run(until_ps=250)
    assert fired == [1, 2]
    assert sim.now == 250
    sim.run()
    assert fired == [1, 2, 3]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(10 * (i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 4:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == 40


def test_step_fires_exactly_one():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()


def test_reset_clears_calendar():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    sim.reset()
    assert sim.now == 0
    assert sim.pending == 0
    assert sim.executed == 0


def test_run_until_with_empty_calendar_advances_clock():
    sim = Simulator()
    sim.run(until_ps=9_999)
    assert sim.now == 9_999
