"""Tests for the extra CircusTent patterns (STRIDEN, PTRCHASE)."""

import pytest

from repro.config import asic_system
from repro.rao.circustent import ELEMENT, EXTRA_PATTERNS, make_workload
from repro.rao.harness import run_rao_comparison


def test_striden_spacing():
    wl = make_workload("STRIDEN", ops=16, stride_elements=8)
    targets = [r.target for r in wl.requests]
    deltas = {b - a for a, b in zip(targets, targets[1:])}
    assert deltas == {8 * ELEMENT}


def test_striden_invalid_stride():
    with pytest.raises(ValueError):
        make_workload("STRIDEN", ops=4, stride_elements=0)


def test_ptrchase_is_a_chain():
    wl = make_workload("PTRCHASE", ops=64)
    # Each request reads the previous request's target (pointer chase).
    for prev, cur in zip(wl.requests, wl.requests[1:]):
        assert cur.reads == [prev.target]


def test_ptrchase_spreads_over_table():
    wl = make_workload("PTRCHASE", ops=256, table_bytes=1 << 28)
    assert len({r.target for r in wl.requests}) > 200


def test_stride_hit_rate_falls_with_stride():
    """Stride 1 reuses 8 of 8 slots per line; stride >= 8 reuses none."""
    config = asic_system()
    dense = run_rao_comparison(config, patterns=("STRIDE1",), ops=512)["STRIDE1"]
    sparse_results = run_rao_comparison(
        config, patterns=("STRIDEN",), ops=512
    )
    sparse = sparse_results["STRIDEN"]
    assert dense.cxl_hit_rate > 0.8
    assert sparse.cxl_hit_rate < 0.1
    assert dense.speedup > sparse.speedup


def test_ptrchase_speedup_near_rand_floor():
    """Serial pointer chasing gets no caching help, like RAND —
    but still beats PCIe (fine-grained coherent loads vs. ordered DMA)."""
    config = asic_system()
    results = run_rao_comparison(config, patterns=("PTRCHASE", "RAND"), ops=512)
    assert results["PTRCHASE"].speedup > 1
    # Within ~3x of RAND: both are miss-dominated.
    ratio = results["PTRCHASE"].speedup / results["RAND"].speedup
    assert 0.4 < ratio < 3.0
