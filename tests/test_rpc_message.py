"""Tests for schema-driven message encode/decode and stats."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.message import (
    decode_message,
    encode_message,
    generate_message,
    message_stats,
)
from repro.rpc.schema import FieldDescriptor, FieldKind, MessageSchema, SchemaTable
from repro.rpc.wire import WireError


INNER = MessageSchema(
    "Inner",
    (
        FieldDescriptor(1, "id", FieldKind.UINT),
        FieldDescriptor(2, "delta", FieldKind.SINT),
    ),
)

ROOT = MessageSchema(
    "Root",
    (
        FieldDescriptor(1, "id", FieldKind.UINT),
        FieldDescriptor(2, "name", FieldKind.STRING),
        FieldDescriptor(3, "score", FieldKind.DOUBLE),
        FieldDescriptor(4, "blob", FieldKind.BYTES),
        FieldDescriptor(5, "inner", FieldKind.MESSAGE, INNER),
    ),
)


def test_roundtrip_full_message():
    value = {
        "id": 42,
        "name": "cohet",
        "score": 3.25,
        "blob": b"\x00\x01\x02",
        "inner": {"id": 7, "delta": -19},
    }
    assert decode_message(ROOT, encode_message(ROOT, value)) == value


def test_absent_fields_skipped():
    value = {"id": 1}
    wire = encode_message(ROOT, value)
    assert decode_message(ROOT, wire) == value


def test_unknown_field_rejected():
    other = MessageSchema("X", (FieldDescriptor(99, "x", FieldKind.UINT),))
    wire = encode_message(other, {"x": 1})
    with pytest.raises(KeyError):
        decode_message(ROOT, wire)


def test_wire_type_mismatch_rejected():
    # Encode field 1 (uint in ROOT) as length-delimited.
    bad_schema = MessageSchema("Bad", (FieldDescriptor(1, "id", FieldKind.STRING),))
    wire = encode_message(bad_schema, {"id": "oops"})
    with pytest.raises(WireError):
        decode_message(ROOT, wire)


def test_duplicate_field_numbers_rejected():
    with pytest.raises(ValueError):
        MessageSchema(
            "Dup",
            (
                FieldDescriptor(1, "a", FieldKind.UINT),
                FieldDescriptor(1, "b", FieldKind.UINT),
            ),
        )


def test_message_kind_needs_schema():
    with pytest.raises(ValueError):
        FieldDescriptor(1, "x", FieldKind.MESSAGE)
    with pytest.raises(ValueError):
        FieldDescriptor(1, "x", FieldKind.UINT, INNER)


def test_stats_counts():
    value = {
        "id": 1,
        "name": "ab",
        "score": 1.0,
        "blob": b"xy",
        "inner": {"id": 2, "delta": 3},
    }
    stats = message_stats(ROOT, value)
    assert stats.scalar_fields == 6
    assert stats.nested_messages == 1
    assert stats.max_depth == 1
    assert stats.wire_bytes == len(encode_message(ROOT, value))


def test_generate_message_fills_all_fields():
    value = generate_message(ROOT, random.Random(3))
    assert set(value) == {"id", "name", "score", "blob", "inner"}
    assert decode_message(ROOT, encode_message(ROOT, value)) == value


def test_schema_table():
    table = SchemaTable()
    table.load(1, ROOT)
    assert table.lookup(1) is ROOT
    assert table.lookups == 1
    with pytest.raises(ValueError):
        table.load(1, INNER)
    with pytest.raises(KeyError):
        table.lookup(2)
    assert len(table) == 1


def test_schema_recursive_counts():
    assert ROOT.scalar_field_count() == 6
    assert ROOT.nested_message_count() == 1
    assert ROOT.max_depth() == 1
    assert INNER.max_depth() == 0


@settings(max_examples=50)
@given(
    st.fixed_dictionaries(
        {},
        optional={
            "id": st.integers(min_value=0, max_value=(1 << 64) - 1),
            "name": st.text(max_size=40),
            "score": st.floats(allow_nan=False, allow_infinity=False),
            "blob": st.binary(max_size=60),
            "inner": st.fixed_dictionaries(
                {},
                optional={
                    "id": st.integers(min_value=0, max_value=(1 << 64) - 1),
                    "delta": st.integers(
                        min_value=-(1 << 63), max_value=(1 << 63) - 1
                    ),
                },
            ),
        },
    )
)
def test_roundtrip_property(value):
    assert decode_message(ROOT, encode_message(ROOT, value)) == value
