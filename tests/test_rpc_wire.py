"""Tests for the protobuf wire format, including property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.wire import (
    WireError,
    WireType,
    decode_fixed64,
    decode_key,
    decode_len_prefixed,
    decode_varint,
    encode_fixed64,
    encode_key,
    encode_len_prefixed,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)


# ------------------------------ Varint --------------------------------
def test_varint_known_vectors():
    # Canonical protobuf examples.
    assert encode_varint(0) == b"\x00"
    assert encode_varint(1) == b"\x01"
    assert encode_varint(127) == b"\x7f"
    assert encode_varint(128) == b"\x80\x01"
    assert encode_varint(300) == b"\xac\x02"


def test_varint_negative_rejected():
    with pytest.raises(WireError):
        encode_varint(-1)


def test_varint_truncated_rejected():
    with pytest.raises(WireError):
        decode_varint(b"\x80")


def test_varint_overlong_rejected():
    with pytest.raises(WireError):
        decode_varint(b"\xff" * 10 + b"\x01")


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_varint_roundtrip(value):
    encoded = encode_varint(value)
    decoded, offset = decode_varint(encoded)
    assert decoded == value
    assert offset == len(encoded)


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_varint_encoding_is_minimal(value):
    encoded = encode_varint(value)
    assert len(encoded) == max(1, (value.bit_length() + 6) // 7)


# ------------------------------ ZigZag --------------------------------
def test_zigzag_known_vectors():
    assert zigzag_encode(0) == 0
    assert zigzag_encode(-1) == 1
    assert zigzag_encode(1) == 2
    assert zigzag_encode(-2) == 3
    assert zigzag_encode(2147483647) == 4294967294


@given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
def test_zigzag_roundtrip(value):
    assert zigzag_decode(zigzag_encode(value)) == value


def test_zigzag_out_of_range():
    with pytest.raises(WireError):
        zigzag_encode(1 << 63)


# ------------------------------- Keys ---------------------------------
def test_key_roundtrip():
    encoded = encode_key(5, WireType.LEN)
    number, wire_type, offset = decode_key(encoded)
    assert (number, wire_type) == (5, WireType.LEN)
    assert offset == len(encoded)


def test_key_field_number_zero_rejected():
    with pytest.raises(WireError):
        encode_key(0, WireType.VARINT)
    with pytest.raises(WireError):
        decode_key(b"\x00")  # field number 0 on the wire


def test_key_bad_wire_type_rejected():
    # wire type 3 (SGROUP) is unsupported.
    with pytest.raises(WireError):
        decode_key(bytes([(1 << 3) | 3]))


@given(st.integers(min_value=1, max_value=536_870_911), st.sampled_from(list(WireType)))
def test_key_roundtrip_property(number, wire_type):
    n, w, _ = decode_key(encode_key(number, wire_type))
    assert (n, w) == (number, wire_type)


# ------------------------------ Fixed64 -------------------------------
@given(st.floats(allow_nan=False, allow_infinity=False))
def test_fixed64_roundtrip(value):
    decoded, offset = decode_fixed64(encode_fixed64(value), 0)
    assert decoded == value
    assert offset == 8


def test_fixed64_truncated():
    with pytest.raises(WireError):
        decode_fixed64(b"\x00" * 4, 0)


# --------------------------- Length-prefixed --------------------------
@given(st.binary(max_size=300))
def test_len_prefixed_roundtrip(payload):
    decoded, offset = decode_len_prefixed(encode_len_prefixed(payload), 0)
    assert decoded == payload


def test_len_prefixed_overrun():
    bad = encode_varint(100) + b"short"
    with pytest.raises(WireError):
        decode_len_prefixed(bad, 0)
