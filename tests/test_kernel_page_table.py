"""Tests for the unified page table."""

import pytest

from repro.kernel.page_table import (
    PAGE_SIZE,
    PageFault,
    UnifiedPageTable,
    vpn_of,
)


def test_map_creates_frameless_entry():
    pt = UnifiedPageTable()
    entry = pt.map(0x1000)
    assert not entry.present
    assert entry.vpn == vpn_of(0x1000)


def test_double_map_rejected():
    pt = UnifiedPageTable()
    pt.map(0x1000)
    with pytest.raises(ValueError):
        pt.map(0x1000)


def test_translate_unmapped_faults():
    pt = UnifiedPageTable()
    with pytest.raises(PageFault):
        pt.translate(0x5000)


def test_translate_frameless_faults_and_counts():
    pt = UnifiedPageTable()
    pt.map(0x1000)
    with pytest.raises(PageFault):
        pt.translate(0x1000)
    assert pt.faults == 1


def test_assign_frame_then_translate():
    pt = UnifiedPageTable()
    pt.map(0x1000)
    pt.assign_frame(0x1000, pfn=42, node=0)
    pa = pt.translate(0x1234)
    assert pa == 42 * PAGE_SIZE + 0x234
    entry = pt.entry(0x1000)
    assert entry.accessed and not entry.dirty


def test_write_sets_dirty():
    pt = UnifiedPageTable()
    pt.map(0x1000)
    pt.assign_frame(0x1000, pfn=1, node=0)
    pt.translate(0x1000, write=True)
    assert pt.entry(0x1000).dirty


def test_readonly_page_rejects_write():
    pt = UnifiedPageTable()
    pt.map(0x1000, writable=False)
    pt.assign_frame(0x1000, pfn=1, node=0)
    with pytest.raises(PermissionError):
        pt.translate(0x1000, write=True)


def test_double_assign_rejected():
    pt = UnifiedPageTable()
    pt.map(0x1000)
    pt.assign_frame(0x1000, pfn=1, node=0)
    with pytest.raises(ValueError):
        pt.assign_frame(0x1000, pfn=2, node=0)


def test_remap_bumps_generation_and_notifies():
    pt = UnifiedPageTable()
    invalidated = []
    pt.on_invalidate(invalidated.append)
    pt.map(0x1000)
    pt.assign_frame(0x1000, pfn=1, node=0)
    gen = pt.generation
    pt.remap(0x1000, pfn=9, node=1)
    assert pt.generation == gen + 1
    assert invalidated == [vpn_of(0x1000)]
    assert pt.translate(0x1000) == 9 * PAGE_SIZE


def test_blocked_page_faults():
    pt = UnifiedPageTable()
    pt.map(0x1000)
    pt.assign_frame(0x1000, pfn=1, node=0)
    pt.block(0x1000)
    with pytest.raises(PageFault):
        pt.translate(0x1000)
    pt.unblock(0x1000)
    pt.translate(0x1000)


def test_unmap_notifies_and_removes():
    pt = UnifiedPageTable()
    invalidated = []
    pt.on_invalidate(invalidated.append)
    pt.map(0x1000)
    pt.unmap(0x1000)
    assert invalidated == [vpn_of(0x1000)]
    with pytest.raises(PageFault):
        pt.entry(0x1000)
    with pytest.raises(PageFault):
        pt.unmap(0x1000)


def test_resident_and_mapped_bytes():
    pt = UnifiedPageTable()
    pt.map(0x1000)
    pt.map(0x2000)
    pt.assign_frame(0x1000, pfn=1, node=0)
    assert pt.mapped_bytes() == 2 * PAGE_SIZE
    assert pt.resident_bytes() == PAGE_SIZE
