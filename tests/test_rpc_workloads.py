"""Tests for HyperProtoBench profiles, layouts, and the RPC pipelines."""

import pytest

from repro.config import asic_system
from repro.rpc.cxl_rpc import CxlRpcPipeline
from repro.rpc.hyperprotobench import BENCH_NAMES, make_bench
from repro.rpc.layout import (
    FIELDS_PER_DESCRIPTOR,
    SlabAllocator,
    UnitKind,
    layout_message,
)
from repro.rpc.message import decode_message
from repro.rpc.rpcnic import RpcNicPipeline, decode_time_ps, encode_time_ps


# --------------------------- Bench profiles ---------------------------
def test_all_benches_build():
    for name in BENCH_NAMES:
        bench = make_bench(name, messages=5)
        assert len(bench) == 5
        assert len(bench.encoded) == 5


def test_unknown_bench_rejected():
    with pytest.raises(ValueError):
        make_bench("Bench9")


def test_bench_wire_bytes_decode():
    bench = make_bench("Bench0", messages=3)
    for value, wire in zip(bench.values, bench.encoded):
        assert decode_message(bench.schema, wire) == value


def test_bench1_small_fields_profile():
    b1 = make_bench("Bench1", messages=10)
    assert b1.mean_wire_bytes < 250
    assert b1.mean_fields >= 25


def test_bench2_deeply_nested():
    b2 = make_bench("Bench2", messages=5)
    assert b2.stats[0].max_depth >= 10
    assert b2.mean_nested >= 10


def test_bench5_large_strings():
    b5 = make_bench("Bench5", messages=10)
    assert b5.mean_wire_bytes > 2_000
    assert b5.mean_fields < 15


def test_bench_deterministic():
    a = make_bench("Bench3", messages=4, seed=9)
    b = make_bench("Bench3", messages=4, seed=9)
    assert a.encoded == b.encoded


# ------------------------------ Layout --------------------------------
def test_layout_unit_counts():
    bench = make_bench("Bench1", messages=1)
    layout = layout_message(bench.schema, bench.values[0], SlabAllocator())
    # Root + one nested block -> two pointer hops.
    assert layout.count(UnitKind.HOP) == 2
    expected_desc = 2 * -(-14 // FIELDS_PER_DESCRIPTOR)
    assert layout.count(UnitKind.DESCRIPTOR) == expected_desc


def test_layout_body_lines_track_string_bytes():
    bench = make_bench("Bench5", messages=1)
    layout = layout_message(bench.schema, bench.values[0], SlabAllocator())
    body_bytes = sum(
        len(v) for v in bench.values[0].values() if isinstance(v, str)
    )
    assert layout.count(UnitKind.BODY) >= body_bytes // 64 - 2


def test_root_blocks_contiguous_nested_fragmented():
    allocator = SlabAllocator(seed=1)
    bench = make_bench("Bench1", messages=3)
    layouts = [
        layout_message(bench.schema, v, allocator) for v in bench.values
    ]
    roots = [l.units[0].addr for l in layouts]
    stride = {b - a for a, b in zip(roots, roots[1:])}
    assert len(stride) == 1  # slab: constant inter-message stride


def test_deep_nesting_means_many_hops():
    bench = make_bench("Bench2", messages=1)
    layout = layout_message(bench.schema, bench.values[0], SlabAllocator())
    assert layout.count(UnitKind.HOP) == 12  # root + 11 nested levels


# ----------------------------- Pipelines ------------------------------
def test_decode_encode_time_monotone_in_stats():
    config = asic_system()
    small = make_bench("Bench1", messages=1).stats[0]
    large = make_bench("Bench5", messages=1).stats[0]
    assert decode_time_ps(config.rpc, large) > decode_time_ps(config.rpc, small)
    assert encode_time_ps(config.rpc, large) > encode_time_ps(config.rpc, small)


def test_pipelines_verify_functionally():
    config = asic_system()
    bench = make_bench("Bench0", messages=10)
    assert RpcNicPipeline(config).deserialize_bench(bench).verified
    assert RpcNicPipeline(config).serialize_bench(bench).verified
    cxl = CxlRpcPipeline(config)
    assert cxl.deserialize_bench(bench).verified
    assert cxl.serialize_bench_mem(bench).verified
    assert cxl.serialize_bench_cache(bench).verified
    assert cxl.serialize_bench_cache(bench, prefetch=True).verified


def test_cxl_deserialize_faster_than_rpcnic():
    config = asic_system()
    for name in BENCH_NAMES:
        bench = make_bench(name, messages=20)
        rpc = RpcNicPipeline(config).deserialize_bench(bench)
        cxl = CxlRpcPipeline(config).deserialize_bench(bench)
        assert cxl.total_ps < rpc.total_ps, name


def test_serialization_ordering_matches_paper():
    """mem < cache+pf < cache < RpcNIC for every bench (Fig. 18b)."""
    config = asic_system()
    for name in BENCH_NAMES:
        bench = make_bench(name, messages=30)
        rpc = RpcNicPipeline(config).serialize_bench(bench).total_ps
        cxl = CxlRpcPipeline(config)
        mem = cxl.serialize_bench_mem(bench).total_ps
        cache = cxl.serialize_bench_cache(bench).total_ps
        cache_pf = cxl.serialize_bench_cache(bench, prefetch=True).total_ps
        assert mem < cache_pf <= cache < rpc, name


def test_rpcnic_flushes_scale_with_size():
    config = asic_system()
    pipeline = RpcNicPipeline(config)
    small = pipeline.deserialize_bench(make_bench("Bench1", messages=5))
    large = pipeline.deserialize_bench(make_bench("Bench5", messages=5))
    assert large.mean_ps > small.mean_ps
