"""Tests for the experiment orchestration subsystem.

Covers spec expansion (grid product, repeat seeding, hashing), runner
failure isolation and cache hits, ResultStore round-trips, report/
compare generation, and the sweep/report/compare CLI exit codes.
"""

import json

import pytest

from cli_helpers import run_cli

from repro.experiments import (
    PRESETS,
    ExperimentSpec,
    ResultStore,
    RunReport,
    SpecError,
    StoreCorruptionWarning,
    StoredResult,
    SweepSpec,
    compare_runs,
    preset_sweep,
    run_sweep,
)
from repro.experiments.runner import _pool_context
from repro.harness.experiments import (
    EXPERIMENTS,
    fig13_load_latency,
    fig15_load_bandwidth,
    shared_rpc_comparison,
    simulation_error,
)

TINY_SWEEP = {
    "name": "tiny",
    "repeats": 2,
    "experiments": [
        {"experiment": "table1"},
        {"experiment": "table2"},
    ],
}


def tiny_sweep(**overrides):
    data = dict(TINY_SWEEP)
    data.update(overrides)
    return SweepSpec.from_dict(data)


# ------------------------------ Specs ---------------------------------
def test_grid_expansion_is_full_product():
    sweep = SweepSpec.from_dict({
        "name": "grid",
        "experiments": [
            {"experiment": "fig13", "grid": {"trials": [2, 3, 4]}},
            {"experiment": "fig18a",
             "params": {"profile": "asic"},
             "grid": {"messages": [10, 20]}},
        ],
    })
    specs = sweep.expand()
    assert len(specs) == 5
    trials = sorted(s.params["trials"] for s in specs if s.experiment == "fig13")
    assert trials == [2, 3, 4]
    for spec in specs:
        if spec.experiment == "fig18a":
            assert spec.params["profile"] == "asic"


def test_repeats_get_distinct_deterministic_seeds():
    specs_a = tiny_sweep().expand()
    specs_b = tiny_sweep().expand()
    assert len(specs_a) == 4
    assert [s.seed for s in specs_a] == [s.seed for s in specs_b]
    table1_seeds = {s.seed for s in specs_a if s.experiment == "table1"}
    assert len(table1_seeds) == 2  # one per repeat
    assert len({s.spec_hash for s in specs_a}) == 4


def test_spec_hash_survives_group_reordering():
    reordered = tiny_sweep(experiments=list(reversed(TINY_SWEEP["experiments"])))
    assert (
        {s.spec_hash for s in tiny_sweep().expand()}
        == {s.spec_hash for s in reordered.expand()}
    )


def test_spec_hash_changes_with_params():
    a = ExperimentSpec("fig13", {"trials": 2})
    b = ExperimentSpec("fig13", {"trials": 3})
    assert a.spec_hash != b.spec_hash
    assert a.spec_hash == ExperimentSpec("fig13", {"trials": 2}).spec_hash


def test_validate_rejects_unknown_experiment_and_params():
    with pytest.raises(SpecError, match="fig99"):
        SweepSpec.from_dict(
            {"experiments": [{"experiment": "fig99"}]}
        ).validate()
    with pytest.raises(SpecError, match="bogus"):
        SweepSpec.from_dict(
            {"experiments": [{"experiment": "fig13", "params": {"bogus": 1}}]}
        ).validate()


def test_from_dict_rejects_malformed_shapes():
    with pytest.raises(SpecError, match="id or object"):
        SweepSpec.from_dict({"experiments": [42]})
    with pytest.raises(SpecError, match="grid values must be lists"):
        SweepSpec.from_dict(
            {"experiments": [{"experiment": "fig13", "grid": {"trials": 5}}]}
        )
    with pytest.raises(SpecError, match="grid values must be lists"):
        SweepSpec.from_dict(
            {"experiments": [{"experiment": "fig13",
                              "grid": {"profile": "fpga"}}]}
        )
    with pytest.raises(SpecError, match="'params' must be an object"):
        SweepSpec.from_dict(
            {"experiments": [{"experiment": "fig13", "params": [1]}]}
        )
    with pytest.raises(SpecError, match="integers"):
        SweepSpec.from_dict(
            {"experiments": ["table1"], "repeats": "lots"}
        )


def test_validate_rejects_object_valued_params():
    # simulation_error's precomputed-result params are programmatic-only;
    # a sweep spec cannot express them, so validation refuses up-front.
    sweep = SweepSpec.from_dict({
        "experiments": [
            {"experiment": "mape", "params": {"fig13_result": {"series": {}}}}
        ],
    })
    with pytest.raises(SpecError, match="fig13_result"):
        sweep.validate()
    SweepSpec.from_dict(
        {"experiments": [{"experiment": "mape", "params": {"trials": 2}}]}
    ).validate()


def test_spec_file_round_trip(tmp_path):
    path = tmp_path / "mine.json"
    path.write_text(json.dumps(TINY_SWEEP))
    sweep = SweepSpec.from_file(path)
    assert sweep.name == "tiny"
    assert sweep.to_dict()["repeats"] == 2


def test_presets_validate_and_quick_is_wide_enough():
    for name in PRESETS:
        sweep = preset_sweep(name)
        sweep.validate()
    assert len(preset_sweep("quick").expand()) >= 8


# ------------------------------ Store ---------------------------------
def _record(spec_hash="abc", experiment="table1", status="ok", **kwargs):
    defaults = dict(
        spec_hash=spec_hash, experiment=experiment, params={}, repeat=0,
        seed=1, status=status, series={"s": {"k": 1.0}}, text="t",
    )
    defaults.update(kwargs)
    return StoredResult(**defaults)


def test_store_round_trip(tmp_path):
    store = ResultStore(tmp_path / "run")
    store.append(_record("h1"))
    store.append(_record("h2", experiment="fig13", status="error", error="boom"))
    loaded = ResultStore(tmp_path / "run").load()
    assert [r.spec_hash for r in loaded] == ["h1", "h2"]
    assert list(store.query(experiment="fig13"))[0].error == "boom"
    assert list(store.query(status="ok"))[0].spec_hash == "h1"
    assert store.ok_hashes() == {"h1"}


def test_store_latest_record_wins(tmp_path):
    store = ResultStore(tmp_path / "run")
    store.append(_record("h1", status="error"))
    store.append(_record("h1", status="ok"))
    assert store.latest()["h1"].ok
    assert store.ok_hashes() == {"h1"}


def test_store_counts_and_warns_on_corrupt_lines(tmp_path):
    store = ResultStore(tmp_path / "run")
    store.append(_record("h1"))
    with store.results_path.open("a") as fh:
        fh.write("not json\n")
    with pytest.warns(StoreCorruptionWarning, match="1 corrupt"):
        loaded = store.load()
    assert len(loaded) == 1
    assert loaded.skipped == 1


# ------------------------------ Runner --------------------------------
def _boom():
    """Deliberately failing experiment used by isolation tests."""
    raise RuntimeError("intentional failure")


def test_runner_isolates_failures_serially(tmp_path, monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "boom", _boom)
    sweep = SweepSpec.from_dict({
        "name": "mixed",
        "experiments": [{"experiment": "boom"}, {"experiment": "table1"}],
    })
    outcome = run_sweep(sweep, tmp_path / "run", jobs=1)
    assert outcome.total == 2
    assert len(outcome.failed) == 1
    assert "intentional failure" in outcome.failed[0].error
    ok = [r for r in outcome.executed if r.ok]
    assert ok[0].experiment == "table1"
    # The failed spec is not cached: a re-run retries only it.
    retry = run_sweep(sweep, tmp_path / "run", jobs=1)
    assert retry.cached == 1
    assert [r.experiment for r in retry.executed] == ["boom"]


def test_runner_cache_hits_and_force(tmp_path):
    sweep = tiny_sweep()
    first = run_sweep(sweep, tmp_path / "run", jobs=1)
    assert first.cached == 0 and first.ok and first.total == 4
    second = run_sweep(sweep, tmp_path / "run", jobs=1)
    assert second.cached == 4 and not second.executed
    forced = run_sweep(sweep, tmp_path / "run", jobs=1, force=True)
    assert forced.cached == 0 and len(forced.executed) == 4


def test_runner_extends_cache_for_new_specs(tmp_path):
    run_sweep(tiny_sweep(), tmp_path / "run", jobs=1)
    wider = tiny_sweep(
        experiments=TINY_SWEEP["experiments"] + [{"experiment": "fig4"}]
    )
    outcome = run_sweep(wider, tmp_path / "run", jobs=1)
    assert outcome.cached == 4
    assert sorted(r.experiment for r in outcome.executed) == ["fig4", "fig4"]


def test_runner_collapses_duplicate_specs(tmp_path):
    sweep = SweepSpec.from_dict({
        "name": "dup",
        "experiments": [
            {"experiment": "table1", "grid": {}},
            {"experiment": "table1"},  # same spec listed twice
        ],
    })
    outcome = run_sweep(sweep, tmp_path / "run", jobs=1)
    assert len(outcome.executed) == 1
    assert outcome.total == 1
    # Accounting stays consistent on a fully-cached re-run.
    rerun = run_sweep(sweep, tmp_path / "run", jobs=1)
    assert rerun.cached == 1 and rerun.total == 1


def test_runner_refuses_to_mix_sweeps_in_one_dir(tmp_path):
    run_sweep(tiny_sweep(), tmp_path / "run", jobs=1)
    other = tiny_sweep(name="other")
    with pytest.raises(SpecError, match="already holds sweep 'tiny'"):
        run_sweep(other, tmp_path / "run", jobs=1)


def test_runner_serial_path_restores_global_rng(tmp_path):
    import random

    random.seed(42)
    expected = random.getstate()
    run_sweep(tiny_sweep(), tmp_path / "run", jobs=1)
    assert random.getstate() == expected


def test_runner_parallel_execution_and_metadata(tmp_path):
    outcome = run_sweep(tiny_sweep(), tmp_path / "run", jobs=2)
    assert outcome.ok and outcome.total == 4
    for record in outcome.executed:
        assert record.wall_time_s >= 0
        assert record.timestamp > 0
        assert record.sweep == "tiny"


def test_runner_persists_each_result_as_it_lands(tmp_path):
    # Progress callbacks observe the store mid-sweep: every completed
    # spec must already be on disk, so an interrupted sweep keeps them.
    store = ResultStore(tmp_path / "run")
    persisted_counts = []

    def watch(_line):
        persisted_counts.append(len(store.load()))

    run_sweep(tiny_sweep(), tmp_path / "run", jobs=2, progress=watch)
    assert persisted_counts == [1, 2, 3, 4]


@pytest.mark.skipif(
    _pool_context().get_start_method() != "fork",
    reason="parallel failure isolation test needs fork start method",
)
def test_runner_isolates_failures_in_parallel(tmp_path, monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "boom", _boom)
    sweep = SweepSpec.from_dict({
        "name": "mixed",
        "experiments": [
            {"experiment": "boom"},
            {"experiment": "table1"},
            {"experiment": "table2"},
        ],
    })
    outcome = run_sweep(sweep, tmp_path / "run", jobs=2)
    assert outcome.total == 3
    assert len(outcome.failed) == 1
    assert len([r for r in outcome.executed if r.ok]) == 2


# ------------------------------ Report --------------------------------
@pytest.fixture(scope="module")
def stored_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("runs") / "base"
    sweep = SweepSpec.from_dict({
        "name": "base",
        "experiments": [
            {"experiment": "fig13", "params": {"trials": 2}},
            {"experiment": "table1"},
        ],
    })
    assert run_sweep(sweep, out, jobs=1).ok
    return out


def test_report_mape_and_markdown(stored_run):
    report = RunReport(stored_run)
    assert report.experiments == ["fig13", "table1"]
    mape = report.mape_by_experiment["fig13"]
    assert mape is not None and 0 <= mape < 0.10
    assert report.mape_by_experiment["table1"] is None  # no reference series
    markdown = report.markdown()
    assert "| fig13" in markdown and "| TOTAL" in markdown
    assert "%" in markdown


def test_compare_runs_renders_delta_table(stored_run, tmp_path):
    other = tmp_path / "other"
    sweep = SweepSpec.from_dict({
        "name": "other",
        "experiments": [{"experiment": "fig13", "params": {"trials": 3}}],
    })
    assert run_sweep(sweep, other, jobs=1).ok
    table = compare_runs(stored_run, other)
    assert "| fig13" in table
    assert "wall_time_s" in table
    assert "x" in table  # wall-time speedup column
    assert "table1" not in table  # only common experiments compared


def test_compare_skips_wall_time_for_failed_runs(tmp_path):
    store_a = ResultStore(tmp_path / "a")
    store_a.append(_record("h1", experiment="fig13", wall_time_s=5.0))
    store_b = ResultStore(tmp_path / "b")
    store_b.append(_record(
        "h1", experiment="fig13", status="error", error="boom",
        series={}, wall_time_s=0.01,
    ))
    table = compare_runs(store_a, store_b)
    # A crashed run's near-zero wall time must not render as a speedup.
    assert "wall_time_s" not in table


def test_paper_refs_only_embedded_for_matching_profile():
    # Sweeping profile away from the hardware the paper measured must
    # drop the reference series, not score against the wrong hardware.
    from repro.harness.experiments import fig12_numa_latency, fig17_rao_speedup

    assert "paper_median_ns" in fig12_numa_latency(trials=2).series
    assert "paper_median_ns" not in fig12_numa_latency(trials=2, profile="asic").series
    assert "paper_speedup" in fig17_rao_speedup(ops=128).series
    assert "paper_speedup" not in fig17_rao_speedup(ops=128, profile="fpga").series


# --------------------------- Shared passes ----------------------------
def test_fig18_shares_one_rpc_comparison():
    shared_rpc_comparison.cache_clear()
    first = shared_rpc_comparison("asic", 10)
    again = shared_rpc_comparison("asic", 10)
    assert first is again
    assert shared_rpc_comparison("asic", 12) is not first


def test_simulation_error_accepts_precomputed_results():
    fig13 = fig13_load_latency(trials=2)
    fig15 = fig15_load_bandwidth()
    reused = simulation_error(fig13_result=fig13, fig15_result=fig15)
    assert 0 < reused.series["overall"]["mape"] < 0.05
    # The precomputed series are what the detail rows were built from.
    detail = reused.series["per_point"]
    assert any(key.endswith("_lat") for key in detail)
    assert any(key.endswith("_bw") for key in detail)


# ------------------------------ CLI -----------------------------------
def test_cli_sweep_report_compare_round_trip(tmp_path):
    spec = tmp_path / "tiny.json"
    spec.write_text(json.dumps(TINY_SWEEP))
    run_a = tmp_path / "a"
    run_b = tmp_path / "b"

    code, out = run_cli("sweep", str(spec), "--out", str(run_a), "--jobs", "1")
    assert code == 0
    assert "4 specs" in out and "0 failed" in out

    code, out = run_cli("sweep", str(spec), "--out", str(run_a), "--jobs", "1")
    assert code == 0
    assert "4 cached" in out

    code, _ = run_cli("sweep", str(spec), "--out", str(run_b), "--jobs", "1")
    assert code == 0

    code, out = run_cli("report", str(run_a))
    assert code == 0
    assert "Run report" in out and "| table1" in out

    code, out = run_cli("compare", str(run_a), str(run_b))
    assert code == 0
    assert "| table1" in out and "wall_time_s" in out


def test_cli_sweep_rejects_bad_specs(tmp_path):
    code, out = run_cli("sweep", "--preset", "nope")
    assert code == 2 and "unknown sweep preset" in out

    code, out = run_cli("sweep")
    assert code == 2 and "exactly one" in out

    spec = tmp_path / "bad.json"
    spec.write_text(json.dumps(
        {"experiments": [{"experiment": "fig13", "params": {"bogus": 1}}]}
    ))
    code, out = run_cli("sweep", str(spec))
    assert code == 2 and "bogus" in out

    code, out = run_cli("sweep", str(tmp_path / "missing.json"))
    assert code == 2 and "no such sweep spec" in out


def test_cli_report_and_compare_need_results(tmp_path):
    code, out = run_cli("report", str(tmp_path / "empty"))
    assert code == 2 and "no results" in out
    code, out = run_cli("compare", str(tmp_path / "x"), str(tmp_path / "y"))
    assert code == 2
