"""Tests for the unified system-construction layer (repro.system).

The parity tests hand-wire systems exactly the way the pre-builder
harnesses did and assert that builder-constructed systems measure
bit-identical numbers — the guarantee that let every harness move onto
the builder without disturbing the regenerated paper figures.
"""

import pytest

from repro.cache.llc import SharedLLC
from repro.calibration.microbench import CxlTestbench
from repro.config import asic_system, fpga_system
from repro.core.cohet import CohetSystem, DeviceSpec
from repro.core.supernode import Supernode, SupernodeHost
from repro.cxl.device import DeviceType, Type1Device
from repro.devices.dma import DmaEngine
from repro.devices.lsu import LoadStoreUnit
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.nic.base import HostValues
from repro.nic.cxl_nic import CxlRaoNic
from repro.rao.circustent import make_workload
from repro.sim.engine import Simulator
from repro.system import (
    BuildError,
    NodeSpec,
    SystemBuilder,
    Topology,
    component_kinds,
    fanout_topology,
    topology_by_name,
    topology_names,
)


# --------------------------- registries -------------------------------
def test_every_registered_topology_builds():
    builder = SystemBuilder(fpga_system())
    for name in topology_names():
        system = builder.build(name)
        assert system.nodes, name
        assert set(system.nodes) == {n.name for n in system.topology.nodes}


def test_component_kinds_cover_the_catalogue():
    SystemBuilder(fpga_system()).build("microbench")  # force registration
    expected = {
        "host", "cxl.type1", "cxl.type2", "cxl.type3", "lsu", "dma", "noc",
        "nic.cxl_rao", "nic.pcie_rao", "rpc.rpcnic", "rpc.cxl",
        "supernode.host", "supernode.fabric",
    }
    assert expected <= set(component_kinds())


def test_unknown_topology_lists_options():
    with pytest.raises(ValueError, match="microbench"):
        topology_by_name("nope")


def test_unknown_component_kind_rejected():
    topo = Topology(name="bad", nodes=(NodeSpec("x", "not.a.kind"),))
    with pytest.raises(ValueError, match="not.a.kind"):
        SystemBuilder(fpga_system()).build(topo)


def test_topology_validation_catches_bad_graphs():
    dupe = Topology(
        name="dupe",
        nodes=(NodeSpec("a", "dma"), NodeSpec("a", "dma")),
    )
    with pytest.raises(ValueError, match="duplicate"):
        SystemBuilder(fpga_system()).build(dupe)


def test_device_without_host_is_a_clear_error():
    topo = Topology(name="orphan", nodes=(NodeSpec("dev", "cxl.type1"),))
    with pytest.raises(BuildError, match="host"):
        SystemBuilder(fpga_system()).build(topo)


def test_type2_requires_hdm_bytes():
    topo = Topology(
        name="no-hdm",
        nodes=(NodeSpec("host", "host"), NodeSpec("xpu", "cxl.type2")),
    )
    with pytest.raises(ValueError, match="hdm_bytes"):
        SystemBuilder(fpga_system()).build(topo)


# ----------------------- microbench parity ----------------------------
def _hand_wired_testbench(config, seed=1234):
    """The exact pre-builder CxlTestbench wiring, kept as the oracle."""
    sim = Simulator()
    memif = MemoryInterface(config.host.memif_oneway_ps)
    controller = MemoryController(
        config.host.dram, channels=config.host.mem_channels, seed=seed
    )
    memif.attach("host", AddressRange(0, 1 << 40, "host-dram"), controller)
    llc = SharedLLC(sim, config.host, memif)
    device = Type1Device(sim, config.device, llc, name="cxl-dev")
    lsu = LoadStoreUnit(sim, device.dcoh)
    dma = DmaEngine(sim, config.dma)
    return sim, llc, lsu, dma


@pytest.mark.parametrize("make", [fpga_system, asic_system])
def test_builder_testbench_matches_hand_wired_latency(make):
    config = make()
    _sim, llc, lsu, _dma = _hand_wired_testbench(config)
    addrs = lsu.sequential_lines(0x200000, 32)
    for addr in addrs:
        llc.flush(addr)
    direct = lsu.run_latency(addrs)

    bench = CxlTestbench(config)
    addrs2 = bench.lsu.sequential_lines(0x200000, 32)
    for addr in addrs2:
        bench.llc.flush(addr)
    built = bench.lsu.run_latency(addrs2)

    assert built.latencies.samples == direct.latencies.samples


def test_builder_testbench_matches_hand_wired_dma():
    config = fpga_system()
    *_rest, dma = _hand_wired_testbench(config)
    direct = dma.measure_latency(64, repeats=20)
    built = CxlTestbench(config).dma.measure_latency(64, repeats=20)
    assert built.latencies.samples == direct.latencies.samples


def test_builder_rao_matches_hand_wired():
    config = asic_system()
    workload = make_workload("STRIDE1", ops=256, table_bytes=1 << 30, seed=7)

    # Pre-builder _build_cxl_nic wiring.
    sim = Simulator()
    memif = MemoryInterface(config.host.memif_oneway_ps)
    controller = MemoryController(config.host.dram, channels=config.host.mem_channels)
    memif.attach("host", AddressRange(0, 1 << 40, "host"), controller)
    llc = SharedLLC(sim, config.host, memif)
    direct = CxlRaoNic(sim, config, llc, HostValues(), pe_count=None)
    direct.warm()
    direct_run = direct.run(workload.requests)

    built = SystemBuilder(config).build("rao-cxl").node("cxl-nic")
    built.warm()
    built_run = built.run(workload.requests)

    assert built_run.elapsed_ps == direct_run.elapsed_ps
    assert built_run.throughput_mops == direct_run.throughput_mops


# ----------------------- experiment determinism -----------------------
def test_experiments_are_deterministic_through_the_builder():
    from repro.harness.experiments import run_experiment

    first = run_experiment("fig12", trials=3)
    second = run_experiment("fig12", trials=3)
    assert first.text == second.text
    assert first.series == second.series


# --------------------------- HDM windows ------------------------------
def test_hdm_windows_allocate_in_declaration_order():
    system = SystemBuilder(fpga_system()).build(
        Topology(
            name="two-hdm",
            nodes=(
                # size=None -> the configured DRAM size, which ends
                # below the 32 GB HDM base (the Cohet layout).
                NodeSpec("host", "host", {"size": None}),
                NodeSpec("xpu0", "cxl.type2", {"hdm_bytes": 1 << 24}),
                NodeSpec("cmm0", "cxl.type3", {"hdm_bytes": 1 << 24}),
            ),
        )
    )
    xpu, cmm = system.node("xpu0"), system.node("cmm0")
    assert xpu.hdm.start == CohetSystem.HDM_BASE
    assert cmm.hdm.start == xpu.hdm.end


# ------------------------------ cohet ---------------------------------
def test_cohet_builds_through_topology_layer():
    system = CohetSystem(
        fpga_system(),
        host_nodes=2,
        devices=[
            DeviceSpec("xpu0", DeviceType.TYPE2, hdm_bytes=1 << 24),
            DeviceSpec("nic0", DeviceType.TYPE1),
        ],
    )
    assert {n.kind for n in system.topology.nodes} == {
        "host", "cxl.type2", "cxl.type1"
    }
    assert system.built.node("xpu0") is system.devices["xpu0"]
    assert system.llc is system.built.llc


def test_cohet_build_default_is_a_topology_wrapper():
    system = CohetSystem.build_default(fpga_system())
    assert "xpu0" in system.devices
    assert system.devices["xpu0"].hdm.size == 1 << 30


def test_cohet_from_topology_roundtrip():
    topology = topology_by_name("cohet-default", hdm_bytes=1 << 24)
    system = CohetSystem.from_topology(fpga_system(), topology)
    assert system.devices["xpu0"].hdm.size == 1 << 24


# ---------------------------- supernode -------------------------------
def test_supernode_topology_builds_and_leases():
    system = SystemBuilder(fpga_system()).build("supernode-2host")
    fabric = system.node("fabric")
    assert isinstance(fabric, Supernode)
    assert isinstance(system.node("host0"), SupernodeHost)
    node_id = fabric.lease_memory("host0", 1 << 30)
    assert node_id in fabric.hosts["host0"].leased_nodes


def test_supernode_hosts_resolve_with_fabric_declared_first():
    topo = Topology(
        name="fabric-first",
        nodes=(
            NodeSpec("fabric", "supernode.fabric", {}),
            NodeSpec("host0", "supernode.host"),
            NodeSpec("host1", "supernode.host"),
        ),
    )
    system = SystemBuilder(fpga_system()).build(topo)
    assert isinstance(system.node("host0"), SupernodeHost)
    assert isinstance(system.node("host1"), SupernodeHost)

    misnamed = Topology(
        name="misnamed",
        nodes=(
            NodeSpec("fabric", "supernode.fabric", {}),
            NodeSpec("hostA", "supernode.host"),
        ),
    )
    with pytest.raises(ValueError, match="host0"):
        SystemBuilder(fpga_system()).build(misnamed)


def test_fanout_topology_scales_node_count():
    topo = fanout_topology(3)
    assert len(topo.by_kind("cxl.type1")) == 3
    assert len(topo.by_kind("lsu")) == 3
    system = SystemBuilder(fpga_system()).build(topo)
    assert system.node("lsu2").dcoh is system.node("dev2").dcoh
