"""Shared CLI test helpers (a plain module, not a conftest: the
benchmarks suite already owns the ``conftest`` module name)."""

import io
import sys


def run_cli(*argv):
    """Invoke the repro CLI, returning (exit_code, captured_stdout)."""
    from repro.cli import main

    out = io.StringIO()
    old = sys.stdout
    sys.stdout = out
    try:
        code = main(list(argv))
    finally:
        sys.stdout = old
    return code, out.getvalue()
