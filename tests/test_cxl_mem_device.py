"""Tests for CXL.mem and the device type classes."""

import pytest

from repro.cache.llc import SharedLLC
from repro.config import fpga_system
from repro.config.system import DramParams
from repro.cxl.device import DeviceType, Type1Device, Type2Device, Type3Device
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.sim.engine import Simulator


def host_fixture():
    config = fpga_system()
    sim = Simulator()
    memif = MemoryInterface(config.host.memif_oneway_ps)
    memif.attach(
        "host",
        AddressRange(0, 1 << 30, "host"),
        MemoryController(DramParams(jitter_ps=0), channels=2, seed=1),
    )
    llc = SharedLLC(sim, config.host, memif)
    return config, sim, memif, llc


def test_type1_has_cache_no_mem():
    config, sim, _memif, llc = host_fixture()
    dev = Type1Device(sim, config.device, llc)
    assert dev.supports_cache
    assert not dev.supports_mem
    assert dev.config_space.read("device_type") == 1


def test_type2_attaches_hdm():
    config, sim, memif, llc = host_fixture()
    hdm = AddressRange(1 << 30, (1 << 30) + (1 << 20), "hdm")
    dev = Type2Device(sim, config.device, config.host, llc, memif, hdm)
    assert dev.supports_cache and dev.supports_mem
    assert memif.target_of((1 << 30) + 64) == "type2"


def test_type3_is_memory_only():
    config, sim, memif, _llc = host_fixture()
    hdm = AddressRange(2 << 30, (2 << 30) + (1 << 20), "hdm")
    dev = Type3Device(sim, config.device, config.host, memif, hdm)
    assert not dev.supports_cache
    assert dev.supports_mem
    assert not hasattr(dev, "hmc")


def test_cxl_mem_access_pays_phy_round_trip():
    config, sim, memif, llc = host_fixture()
    hdm = AddressRange(1 << 30, (1 << 30) + (1 << 20), "hdm")
    dev = Type2Device(sim, config.device, config.host, llc, memif, hdm)
    latency = dev.mem_path.access_ps((1 << 30) + 128)
    assert latency >= 2 * config.device.phy_oneway_ps
    assert dev.mem_path.reads == 1


def test_cxl_mem_rejects_outside_window():
    config, sim, memif, llc = host_fixture()
    hdm = AddressRange(1 << 30, (1 << 30) + (1 << 20), "hdm")
    dev = Type2Device(sim, config.device, config.host, llc, memif, hdm)
    with pytest.raises(ValueError):
        dev.mem_path.access_ps(0x100)


def test_construction_overhead_within_paper_bound():
    """CXL.mem message construction costs at most ~8% extra (§VI-E.2).

    The paper measured this on an ASIC-grade (Samsung) expander, so the
    bound applies to the ASIC profile; the slow FPGA PHY exceeds it.
    """
    from repro.config import asic_system

    config = asic_system()
    sim = Simulator()
    memif = MemoryInterface(config.host.memif_oneway_ps)
    memif.attach(
        "host",
        AddressRange(0, 1 << 30, "host"),
        MemoryController(DramParams(jitter_ps=0), channels=2, seed=1),
    )
    llc = SharedLLC(sim, config.host, memif)
    hdm = AddressRange(1 << 30, (1 << 30) + (1 << 20), "hdm")
    dev = Type2Device(sim, config.device, config.host, llc, memif, hdm)
    overhead = dev.mem_path.construction_overhead()
    assert 1.0 < overhead <= 1.09


def test_device_ids_distinct_per_type():
    config, sim, memif, llc = host_fixture()
    t1 = Type1Device(sim, config.device, llc, name="a")
    hdm = AddressRange(1 << 30, (1 << 30) + (1 << 20), "hdm")
    t2 = Type2Device(sim, config.device, config.host, llc, memif, hdm, name="b")
    assert t1.config_space.read("device_id") != t2.config_space.read("device_id")
