"""Failure injection: the simulator must fail loudly, not corrupt state."""

import pytest

from repro.cache.block import MesiState
from repro.cache.llc import LlcOp, SharedLLC
from repro.cache.mesi import ProtocolError, check_transition
from repro.cache.messages import MessageType
from repro.calibration.microbench import CxlTestbench
from repro.config import fpga_system
from repro.config.system import DramParams
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.rpc.hyperprotobench import make_bench
from repro.rpc.message import decode_message
from repro.rpc.wire import WireError
from repro.sim.engine import Simulator
from repro.sim.queueing import BoundedQueue, QueueFullError


# ----------------------- Coherence protocol holes ----------------------
def test_directory_naming_unknown_peer_fails():
    config = fpga_system()
    sim = Simulator()
    memif = MemoryInterface(config.host.memif_oneway_ps)
    memif.attach(
        "host", AddressRange(0, 1 << 30),
        MemoryController(DramParams(jitter_ps=0), channels=1, seed=1),
    )
    llc = SharedLLC(sim, config.host, memif)
    llc.register_peer("real", _Peer())
    llc.demote(0x1000)
    # Corrupt the directory: owner points at a peer that was never
    # registered (models a directory bit-flip / wiring bug).
    llc.directory_entry(0x1000).owner = "ghost"
    llc.request("real", LlcOp.RD_OWN, 0x1000, lambda: None)
    with pytest.raises(ProtocolError):
        sim.run()


class _Peer:
    def snoop(self, snoop_type, addr):
        return MessageType.RSP_I


def test_double_write_upgrade_is_silent_but_invalid_from_shared():
    with pytest.raises(ProtocolError):
        check_transition(MesiState.SHARED, "local_write", MesiState.MODIFIED)


def test_dcoh_mark_modified_on_shared_line_rejected():
    tb = CxlTestbench(fpga_system())
    tb.device.hmc.fill(0x1000, MesiState.SHARED)
    with pytest.raises(ProtocolError):
        tb.device.hmc.mark_modified(0x1000)


# --------------------------- Resource limits ---------------------------
def test_rx_queue_overflow_raises():
    queue = BoundedQueue(2, "rx")
    queue.push(1)
    queue.push(2)
    with pytest.raises(QueueFullError):
        queue.push(3)
    # State unchanged: still exactly two entries, FIFO order intact.
    assert queue.pop() == 1
    assert queue.pop() == 2


def test_numa_exhaustion_does_not_corrupt_allocator():
    from repro.kernel.numa import NodeKind, NumaNode, OutOfMemory
    from repro.kernel.page_table import PAGE_SIZE

    node = NumaNode(0, NodeKind.CPU, AddressRange(0, 2 * PAGE_SIZE))
    node.alloc_frame()
    node.alloc_frame()
    with pytest.raises(OutOfMemory):
        node.alloc_frame()
    assert node.allocated_frames == 2
    node.free_frame(0)
    assert node.alloc_frame() == 0


# ------------------------- Malformed wire data -------------------------
@pytest.mark.parametrize(
    "corruption",
    [
        lambda wire: wire[:-1],                      # truncated tail
        lambda wire: wire[1:],                       # missing first key
        lambda wire: b"\xff" * 12 + wire,            # garbage prefix
        lambda wire: bytes([wire[0]]) + b"\xff" * 11, # overlong varint
    ],
)
def test_deserializer_rejects_corrupted_messages(corruption):
    bench = make_bench("Bench1", messages=1)
    wire = bench.encoded[0]
    corrupted = corruption(wire)
    with pytest.raises((WireError, KeyError)):
        decode_message(bench.schema, corrupted)


def test_deserializer_survives_and_recovers_after_error():
    bench = make_bench("Bench0", messages=2)
    with pytest.raises((WireError, KeyError)):
        decode_message(bench.schema, bench.encoded[0][:-3])
    # The next (intact) message still decodes fine.
    assert decode_message(bench.schema, bench.encoded[1]) == bench.values[1]


# ----------------------------- Simulator -------------------------------
def test_callback_exception_does_not_corrupt_clock():
    sim = Simulator()

    def boom():
        raise RuntimeError("injected")

    sim.schedule(100, boom)
    sim.schedule(200, lambda: None)
    with pytest.raises(RuntimeError):
        sim.run()
    # Time stopped at the failing event; the rest is still runnable.
    assert sim.now == 100
    assert sim.run() == 1
    assert sim.now == 200


def test_mtt_rejects_out_of_bounds_after_valid_traffic():
    from repro.nic.base import MemoryTranslationTable

    mtt = MemoryTranslationTable()
    mtt.register(1, base=0x1000, size=128)
    assert mtt.translate(1, 64) == 0x1040
    with pytest.raises(ValueError):
        mtt.translate(1, 128)
    # Cache state still sane.
    assert mtt.translate(1, 0) == 0x1000
