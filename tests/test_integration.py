"""Full-system integration scenarios crossing module boundaries."""

import numpy as np
import pytest

from repro.config import asic_system, fpga_system
from repro.core.cohet import CohetSystem, DeviceSpec
from repro.core.runtime import Kernel
from repro.cxl.device import DeviceType
from repro.kernel.migration import AdaptiveMigrator
from repro.kernel.page_table import PAGE_SIZE


def system_with_expander():
    return CohetSystem(
        asic_system(),
        host_nodes=2,
        devices=[
            DeviceSpec("xpu0", DeviceType.TYPE2, hdm_bytes=1 << 24),
            DeviceSpec("nic0", DeviceType.TYPE1),
            DeviceSpec("cmm0", DeviceType.TYPE3, hdm_bytes=1 << 24),
        ],
        host_bytes=1 << 26,
    )


def test_boot_enumerates_all_devices():
    system = system_with_expander()
    assert set(system.devices) == {"xpu0", "nic0", "cmm0"}
    windows = [e.bar_windows[0] for e in system.enumerated.values()]
    for a in windows:
        for b in windows:
            if a is not b:
                assert not a.overlaps(b)


def test_numa_layout_covers_all_memory():
    system = system_with_expander()
    kinds = [n.kind.value for n in system.numa.nodes]
    # 2 CPU nodes, 1 XPU node (type-2), 1 CPU-less expander node.
    assert kinds == ["cpu", "cpu", "xpu", "memory"]


def test_memif_routes_host_and_both_hdm_windows():
    system = system_with_expander()
    targets = set(system.memif.targets)
    assert targets == {"host", "xpu0", "cmm0"}


def test_producer_consumer_pipeline_cpu_to_xpu_and_back():
    """CPU produces, XPU transforms, CPU consumes — zero copies."""
    system = system_with_expander()
    p = system.process
    n = 128
    buf = p.malloc(n * 8)
    data = np.arange(n, dtype=np.float64)
    p.store_array(buf, data)

    def negate(ctx, _i, ptr, count):
        ctx.store_array(ptr, -ctx.load_array(ptr, np.float64, count))

    queue = system.queue("xpu0")
    queue.enqueue_task(Kernel("negate", negate), buf, n)
    queue.finish()
    np.testing.assert_array_equal(p.load_array(buf, np.float64, n), -data)


def test_migration_then_kernel_still_correct():
    """Pages migrated mid-workload stay consistent for both sides."""
    system = system_with_expander()
    p = system.process
    xpu_node = system.driver("xpu0").memory_node
    migrator = AdaptiveMigrator(system.hmm, min_samples=4)
    buf = p.malloc(2 * PAGE_SIZE)
    p.write_bytes(buf, b"stable-data", accessor_node=0)
    for _ in range(10):
        migrator.record_access(buf, accessor_node=xpu_node)
    assert system.page_table.entry(buf).node == xpu_node
    # Data survived the migration; both sides read it coherently.
    assert p.read_bytes(buf, 11, accessor_node=0) == b"stable-data"
    assert p.read_bytes(buf, 11, accessor_node=xpu_node) == b"stable-data"


def test_expander_node_usable_for_allocation():
    system = system_with_expander()
    p = system.process
    expander_node = system.numa.node(3)
    assert expander_node.kind.value == "memory"
    buf = p.malloc(PAGE_SIZE)
    # Explicit placement on the expander via accessor-node spoofing is
    # not the API; instead exhaust... simply allocate a frame directly.
    frame = system.numa.alloc_on(3)
    assert expander_node.owns_frame(frame)


def test_two_kernels_two_devices_in_parallel_queues():
    system = system_with_expander()
    p = system.process
    a = p.malloc(PAGE_SIZE)
    b = p.malloc(PAGE_SIZE)

    def tag(ctx, _i, ptr, token):
        ctx.write_bytes(ptr, token)

    q_xpu = system.queue("xpu0")
    q_cpu = system.queue("cpu")
    q_xpu.enqueue_task(Kernel("tag-xpu", tag), a, b"from-xpu")
    q_cpu.enqueue_task(Kernel("tag-cpu", tag), b, b"from-cpu")
    q_xpu.finish()
    q_cpu.finish()
    assert p.read_bytes(a, 8) == b"from-xpu"
    assert p.read_bytes(b, 8) == b"from-cpu"


def test_experiment_results_are_deterministic():
    """Same seeds -> identical experiment output (reproducibility)."""
    from repro.harness.experiments import fig13_load_latency

    first = fig13_load_latency(trials=2).series
    second = fig13_load_latency(trials=2).series
    assert first == second


def test_fabric_manager_tracks_system_devices():
    system = system_with_expander()
    assert system.fabric.free_xpus == 0  # all bound to host0
    assert sorted(system.fabric.holdings("host0")) == ["cmm0", "nic0", "xpu0"]
