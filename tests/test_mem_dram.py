"""Tests for the DDR5 bank model."""

import pytest

from repro.config.system import DramParams
from repro.mem.dram import DramBankModel


def make_model(**kwargs):
    return DramBankModel(DramParams(**kwargs), seed=1)


def test_access_latency_near_closed_page_cost():
    params = DramParams(jitter_ps=0)
    model = DramBankModel(params, seed=1)
    # Issue outside the refresh window (which opens at phase 0).
    result = model.access(0, now_ps=params.trfc_ps)
    assert result.latency_ps == params.closed_access_ps
    assert not result.refresh_collision


def test_jitter_bounded():
    params = DramParams()
    # Fresh model per sample: no queueing, no refresh interference.
    for i in range(50):
        model = DramBankModel(params, seed=100 + i)
        r = model.access(0, now_ps=params.trfc_ps + 1_000)
        assert not r.refresh_collision
        assert abs(r.latency_ps - params.closed_access_ps) <= params.jitter_ps


def test_refresh_collision_detected():
    params = DramParams(jitter_ps=0)
    model = DramBankModel(params, seed=1)
    # now = 0 lands inside the first refresh window [0, trfc).
    r = model.access(0, now_ps=0)
    assert r.refresh_collision
    assert r.latency_ps == params.trfc_ps + params.closed_access_ps
    model2 = DramBankModel(params, seed=1)
    r2 = model2.access(0, now_ps=params.trfc_ps)
    assert not r2.refresh_collision


def test_bank_mapping():
    params = DramParams()
    model = DramBankModel(params, seed=1)
    assert model.bank_of(0) == 0
    assert model.bank_of(params.row_bytes) == 1
    assert model.bank_of(params.row_bytes * params.banks) == 0


def test_bank_occupancy_is_burst_not_latency():
    """Back-to-back same-bank accesses serialize on the burst only."""
    params = DramParams(jitter_ps=0)
    model = DramBankModel(params, seed=1)
    t = params.trfc_ps  # dodge refresh
    first = model.access(0, t)
    second = model.access(64, t)  # same bank
    assert second.latency_ps == params.burst_ps + params.closed_access_ps


def test_derived_timings():
    p = DramParams()
    assert p.closed_access_ps == p.trcd_ps + p.tcl_ps + p.burst_ps
    assert p.row_hit_ps < p.closed_access_ps < p.row_conflict_ps


def test_reset():
    model = make_model()
    model.access(0, 10_000_000)
    model.reset()
    assert model.accesses == 0
    assert model.refresh_collisions == 0
