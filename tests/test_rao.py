"""Tests for atomic op semantics and CircusTent workload generation."""

import pytest

from repro.rao.circustent import (
    CIRCUSTENT_PATTERNS,
    ELEMENT,
    make_workload,
)
from repro.rao.ops import MASK64, AtomicOp, apply_atomic


# ------------------------------- Ops ----------------------------------
def test_faa():
    new, old = apply_atomic(AtomicOp.FAA, 10, 5)
    assert (new, old) == (15, 10)


def test_faa_wraps_at_64_bits():
    new, _old = apply_atomic(AtomicOp.FAA, MASK64, 1)
    assert new == 0


def test_cas_success_and_failure():
    new, old = apply_atomic(AtomicOp.CAS, 7, 99, compare=7)
    assert (new, old) == (99, 7)
    new, old = apply_atomic(AtomicOp.CAS, 7, 99, compare=8)
    assert (new, old) == (7, 7)


def test_cas_requires_compare():
    with pytest.raises(ValueError):
        apply_atomic(AtomicOp.CAS, 1, 2)


def test_swap_and_bitwise():
    assert apply_atomic(AtomicOp.SWAP, 1, 2) == (2, 1)
    assert apply_atomic(AtomicOp.FETCH_AND_OR, 0b0101, 0b0011) == (0b0111, 0b0101)
    assert apply_atomic(AtomicOp.FETCH_AND_AND, 0b0101, 0b0011) == (0b0001, 0b0101)
    assert apply_atomic(AtomicOp.FETCH_AND_XOR, 0b0101, 0b0011) == (0b0110, 0b0101)


# ---------------------------- CircusTent -------------------------------
def test_all_patterns_generate():
    for pattern in CIRCUSTENT_PATTERNS:
        wl = make_workload(pattern, ops=64)
        assert len(wl) == 64


def test_unknown_pattern_rejected():
    with pytest.raises(ValueError):
        make_workload("BOGUS")


def test_central_targets_single_address():
    wl = make_workload("CENTRAL", ops=32)
    targets = {r.target for r in wl.requests}
    assert len(targets) == 1


def test_stride1_is_sequential():
    wl = make_workload("STRIDE1", ops=32)
    targets = [r.target for r in wl.requests]
    deltas = {b - a for a, b in zip(targets, targets[1:])}
    assert deltas == {ELEMENT}


def test_rand_spreads_addresses():
    wl = make_workload("RAND", ops=256, table_bytes=1 << 30)
    assert len({r.target for r in wl.requests}) > 250


def test_gather_has_sequential_index_reads():
    wl = make_workload("GATHER", ops=16)
    reads = [r.reads[0] for r in wl.requests]
    deltas = {b - a for a, b in zip(reads, reads[1:])}
    assert deltas == {ELEMENT}
    assert all(len(r.reads) == 1 for r in wl.requests)


def test_sg_has_three_reads():
    wl = make_workload("SG", ops=16)
    assert all(len(r.reads) == 3 for r in wl.requests)


def test_workload_deterministic_by_seed():
    a = make_workload("RAND", ops=32, seed=5)
    b = make_workload("RAND", ops=32, seed=5)
    assert [r.target for r in a.requests] == [r.target for r in b.requests]
    c = make_workload("RAND", ops=32, seed=6)
    assert [r.target for r in a.requests] != [r.target for r in c.requests]


def test_targets_stay_in_table():
    wl = make_workload("RAND", ops=128, table_bytes=1 << 20)
    base = 0x4000_0000
    for r in wl.requests:
        assert base <= r.target < base + (1 << 20)
