"""Tests for configuration dataclasses and the calibrated presets."""

import dataclasses

import pytest

from repro.config import (
    ASIC_1500,
    FPGA_400,
    PCIE_ASIC_1500,
    PCIE_FPGA_400,
    asic_system,
    fpga_system,
    simcxl_table1_config,
)
from repro.config import testbed_table1_config as make_testbed_config
from repro.config.presets import NUMA_EXTRA_PS
from repro.config.system import DmaParams


# --------------------------- Device profiles --------------------------
def test_fpga_path_decomposition_sums_to_paper_targets():
    assert FPGA_400.hmc_hit_ps == 115_000
    assert FPGA_400.pre_host_ps == 45_000
    assert FPGA_400.post_host_ps == 50_000
    assert FPGA_400.freq_mhz == pytest.approx(400.0)


def test_asic_path_decomposition():
    assert ASIC_1500.hmc_hit_ps == 10_005    # 15 cycles at ~1.5 GHz
    assert ASIC_1500.freq_mhz == pytest.approx(1499.25, rel=1e-3)


def test_asic_scales_device_cycles_down():
    # The ASIC implements the same pipeline in fewer, faster cycles.
    assert ASIC_1500.clock_period_ps < FPGA_400.clock_period_ps
    assert ASIC_1500.hmc_hit_ps < FPGA_400.hmc_hit_ps / 10


def test_derived_end_to_end_latencies():
    fpga = fpga_system()
    assert fpga.llc_hit_ps == 576_000
    assert fpga.mem_hit_ps == 688_000
    asic = asic_system()
    assert asic.llc_hit_ps == pytest.approx(217_000, rel=0.001)
    assert asic.mem_hit_ps == pytest.approx(260_000, rel=0.001)


# ------------------------------- DMA -----------------------------------
def test_dma_setup_decomposition():
    # setup = engine cycles x period + fixed PHY.
    assert PCIE_FPGA_400.setup_ps == 546 * 2_500 + 800_000
    assert PCIE_ASIC_1500.setup_ps == 546 * 667 + 800_000


def test_dma_wire_segmentation_overhead():
    # 1300B -> 2 full TLPs + 1 partial, each with a 60B header.
    wire_bytes = 2 * (512 + 60) + (276 + 60)
    expected = round(wire_bytes / 25.6 * 1000)
    assert PCIE_FPGA_400.wire_ps(1300) == expected
    assert PCIE_FPGA_400.wire_ps(0) == 0


def test_dma_transfer_64b_matches_fig13():
    assert PCIE_FPGA_400.transfer_ps(64) == pytest.approx(2_170_000, rel=0.001)
    assert PCIE_ASIC_1500.transfer_ps(64) == pytest.approx(1_170_000, rel=0.001)


def test_dma_pipelined_bandwidth_at_64b():
    per = PCIE_FPGA_400.pipelined_ps(64)
    assert 64 / per * 1000 == pytest.approx(0.92, rel=0.01)   # GB/s
    per_asic = PCIE_ASIC_1500.pipelined_ps(64)
    assert 64 / per_asic * 1000 == pytest.approx(1.82, rel=0.01)


# ----------------------------- Systems ---------------------------------
def test_system_replace_immutably():
    config = fpga_system()
    faster = config.replace(device=ASIC_1500)
    assert faster.device is ASIC_1500
    assert config.device is FPGA_400   # original untouched


def test_profiles_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        FPGA_400.phy_oneway_ps = 0


# ------------------------------ Table I --------------------------------
def test_table1_rows_align():
    testbed = make_testbed_config().rows()
    simcxl = simcxl_table1_config()
    assert testbed.keys() == simcxl.keys()
    assert testbed["HMC size"] == simcxl["HMC size"] == "128KB, 4 ways"


# ------------------------------ Fig. 12 --------------------------------
def test_numa_extras_monotone_with_paper_staircase():
    # Remote-socket nodes all cost more than same-socket nodes.
    same_socket = [NUMA_EXTRA_PS[n] for n in (4, 5, 6, 7)]
    remote = [NUMA_EXTRA_PS[n] for n in (0, 1, 2, 3)]
    assert max(same_socket) < min(remote)
    assert NUMA_EXTRA_PS[7] == 0
