"""Tests for components and ports."""

import pytest

from repro.sim.clock import Clock
from repro.sim.component import Component, Port
from repro.sim.engine import Simulator


def test_component_delay_cycles():
    sim = Simulator()
    comp = Component(sim, "c", clock=Clock(2_500))
    assert comp.delay_cycles(4) == 10_000


def test_component_without_clock_raises():
    sim = Simulator()
    comp = Component(sim, "c")
    with pytest.raises(RuntimeError):
        comp.delay_cycles(1)


def test_component_schedule_runs_callback():
    sim = Simulator()
    comp = Component(sim, "c")
    seen = []
    comp.schedule(100, seen.append, "x")
    sim.run()
    assert seen == ["x"]


def test_port_delivers_after_latency():
    sim = Simulator()
    port = Port(sim, "p", latency_ps=500)
    received = []
    port.connect(received.append)
    port.send({"op": "read"})
    sim.run()
    assert received == [{"op": "read"}]
    assert sim.now == 500
    assert port.sent == 1
    assert port.delivered == 1


def test_port_extra_delay():
    sim = Simulator()
    port = Port(sim, "p", latency_ps=100)
    times = []
    port.connect(lambda _msg: times.append(sim.now))
    port.send("a", extra_delay_ps=400)
    sim.run()
    assert times == [500]


def test_port_unconnected_send_raises():
    sim = Simulator()
    port = Port(sim, "p")
    with pytest.raises(RuntimeError):
        port.send("x")


def test_port_double_connect_raises():
    sim = Simulator()
    port = Port(sim, "p")
    port.connect(lambda m: None)
    with pytest.raises(RuntimeError):
        port.connect(lambda m: None)
    assert port.connected
