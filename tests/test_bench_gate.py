"""The ``repro bench`` perf gate: regression detection + CLI contract.

The contracts under test: ``check_regression`` compares every
``*_per_sec`` key and flags drops beyond the threshold;
``machine_mismatch`` refuses cross-machine (or quick-vs-full)
comparisons; and ``repro bench --check`` exits 0 on pass or skipped
comparison, 1 on regression, 2 on a missing/corrupt baseline.
"""

import copy
import json

import pytest

from cli_helpers import run_cli

from repro.bench import (
    check_regression,
    machine_metadata,
    machine_mismatch,
    render_check,
)


def _payload(**overrides):
    payload = {
        "schema": 2,
        "repro_version": "0.0.0",
        "python": "3.11.0",
        "quick": True,
        "machine": machine_metadata(),
        "workloads": {
            "engine_drain": {"events_per_sec": 1000, "wall_s": 0.1},
            "workload_batch": {
                "wall_s": 0.2, "ops_per_sec": 50000,
                "probe_ops_per_sec": 8000,
            },
            "sweep_quick": {"wall_s": 2.0},  # no gated key
        },
    }
    payload.update(overrides)
    return payload


# --------------------------- check_regression -------------------------
def test_identical_payloads_pass():
    payload = _payload()
    outcome = check_regression(payload, payload)
    assert not outcome["regressions"]
    assert len(outcome["compared"]) == 3  # every *_per_sec key, once


def test_drop_beyond_threshold_is_a_regression():
    baseline = _payload()
    current = copy.deepcopy(baseline)
    current["workloads"]["engine_drain"]["events_per_sec"] = 800  # -20%
    outcome = check_regression(current, baseline, threshold=0.15)
    assert [(r[0], r[1]) for r in outcome["regressions"]] == [
        ("engine_drain", "events_per_sec")
    ]
    assert "REGRESSION" in render_check(outcome)
    assert "FAIL" in render_check(outcome)


def test_drop_within_threshold_passes():
    baseline = _payload()
    current = copy.deepcopy(baseline)
    current["workloads"]["engine_drain"]["events_per_sec"] = 900  # -10%
    outcome = check_regression(current, baseline, threshold=0.15)
    assert not outcome["regressions"]
    assert "PASS" in render_check(outcome)


def test_workloads_present_on_only_one_side_are_ignored():
    baseline = _payload()
    baseline["workloads"]["retired_bench"] = {"ops_per_sec": 1}
    current = _payload()
    current["workloads"]["brand_new_bench"] = {"ops_per_sec": 1}
    outcome = check_regression(current, baseline)
    names = {entry[0] for entry in outcome["compared"]}
    assert "retired_bench" not in names
    assert "brand_new_bench" not in names


def test_non_throughput_keys_are_not_gated():
    baseline = _payload()
    current = copy.deepcopy(baseline)
    current["workloads"]["sweep_quick"]["wall_s"] = 100.0
    assert not check_regression(current, baseline)["regressions"]


# --------------------------- machine_mismatch -------------------------
def test_same_machine_same_sizes_is_comparable():
    assert machine_mismatch(_payload(), _payload()) is None


def test_cpu_count_difference_blocks_comparison():
    other = _payload()
    other["machine"] = dict(other["machine"], cpu_count=999)
    assert "cpu_count" in machine_mismatch(_payload(), other)


def test_jobs_difference_blocks_comparison():
    other = _payload()
    other["machine"] = dict(other["machine"], jobs=999)
    assert "jobs" in machine_mismatch(_payload(), other)


def test_quick_vs_full_blocks_comparison():
    assert "sizes" in machine_mismatch(_payload(), _payload(quick=False))


def test_missing_metadata_blocks_comparison():
    legacy = _payload()
    del legacy["machine"]  # schema-1 payloads predate machine metadata
    assert "metadata" in machine_mismatch(_payload(), legacy)


# ------------------------------ CLI gate ------------------------------
@pytest.fixture
def fake_bench(monkeypatch):
    """Pin run_bench to a canned payload so CLI tests run in ms."""
    import repro.bench as bench

    payload = _payload()
    monkeypatch.setattr(
        bench, "run_bench", lambda quick=False, progress=None: (
            copy.deepcopy(payload)
        )
    )
    return payload


def test_cli_check_passes_against_matching_baseline(tmp_path, fake_bench):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(fake_bench))
    code, out = run_cli(
        "bench", "--quick", "--check", "--baseline", str(baseline),
        "--out", str(tmp_path / "bench.json"),
    )
    assert code == 0
    assert "PASS" in out


def test_cli_check_fails_on_synthetic_regression(tmp_path, fake_bench):
    inflated = copy.deepcopy(fake_bench)
    for workload in inflated["workloads"].values():
        for key in list(workload):
            if key.endswith("_per_sec"):
                workload[key] *= 1.3
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(inflated))
    code, out = run_cli(
        "bench", "--quick", "--check", "--baseline", str(baseline),
        "--out", str(tmp_path / "bench.json"),
    )
    assert code == 1
    assert "REGRESSION" in out


def test_cli_check_skips_cross_machine_baselines(tmp_path, fake_bench):
    foreign = copy.deepcopy(fake_bench)
    foreign["machine"] = dict(foreign["machine"], cpu_count=999)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(foreign))
    code, out = run_cli(
        "bench", "--quick", "--check", "--baseline", str(baseline),
        "--out", str(tmp_path / "bench.json"),
    )
    assert code == 0
    assert "skipped" in out


def test_cli_check_missing_baseline_is_a_usage_error(tmp_path, fake_bench):
    code, out = run_cli(
        "bench", "--quick", "--check",
        "--baseline", str(tmp_path / "nope.json"),
        "--out", str(tmp_path / "bench.json"),
    )
    assert code == 2
    assert "no baseline" in out


def test_cli_check_corrupt_baseline_is_a_usage_error(tmp_path, fake_bench):
    baseline = tmp_path / "corrupt.json"
    baseline.write_text("{not json")
    code, out = run_cli(
        "bench", "--quick", "--check", "--baseline", str(baseline),
        "--out", str(tmp_path / "bench.json"),
    )
    assert code == 2
    assert "invalid baseline" in out


def test_cli_custom_threshold_changes_the_verdict(tmp_path, fake_bench):
    softer = copy.deepcopy(fake_bench)
    for workload in softer["workloads"].values():
        for key in list(workload):
            if key.endswith("_per_sec"):
                workload[key] *= 1.2  # -16.7% from current's view
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(softer))
    code, _ = run_cli(
        "bench", "--quick", "--check", "--baseline", str(baseline),
        "--threshold", "0.30", "--out", str(tmp_path / "bench.json"),
    )
    assert code == 0
    code, _ = run_cli(
        "bench", "--quick", "--check", "--baseline", str(baseline),
        "--threshold", "0.10", "--out", str(tmp_path / "bench.json"),
    )
    assert code == 1
