"""Tests for links, PCIe, Flex Bus, and the NUMA topology."""

import pytest

from repro.config.presets import ASIC_1500, FPGA_400, PCIE_FPGA_400, NUMA_EXTRA_PS
from repro.interconnect.flexbus import FlexBus, FlexBusChannel
from repro.interconnect.link import Link
from repro.interconnect.noc import DEFAULT_COORDS, NocTopology
from repro.interconnect.pcie import MmioPath, PcieLink, Tlp, TlpType
from repro.sim.engine import Simulator


# ------------------------------- Link ---------------------------------
def test_link_latency_and_serialization():
    sim = Simulator()
    link = Link(sim, "l", latency_ps=1_000, gbps=64.0)
    times = []
    link.send(64, on_delivered=lambda: times.append(sim.now))
    sim.run()
    assert times == [1_000 + 1_000]  # 64B at 64GB/s = 1ns + 1ns latency


def test_link_backpressure_stacks():
    sim = Simulator()
    link = Link(sim, "l", latency_ps=0, gbps=1.0)  # 1 GB/s -> 1ps per byte... slow
    times = []
    link.send(1_000, on_delivered=lambda: times.append(sim.now))
    link.send(1_000, on_delivered=lambda: times.append(sim.now))
    sim.run()
    assert times[1] - times[0] == link.serialization_ps(1_000)


def test_link_payload_handler():
    sim = Simulator()
    link = Link(sim, "l", latency_ps=10, gbps=64.0)
    got = []
    link.send(64, payload={"x": 1}, handler=got.append)
    sim.run()
    assert got == [{"x": 1}]


def test_link_invalid_bandwidth():
    with pytest.raises(ValueError):
        Link(Simulator(), "l", 0, gbps=0)


# ------------------------------- PCIe ---------------------------------
def test_tlp_segmentation():
    link = PcieLink(Simulator(), PCIE_FPGA_400)
    tlps = link.segment(0, 1300, TlpType.MEM_WRITE)
    assert [t.size for t in tlps] == [512, 512, 276]
    assert [t.addr for t in tlps] == [0, 512, 1024]


def test_tlp_wire_bytes_include_header():
    tlp = Tlp(TlpType.MEM_WRITE, 0, 64)
    assert tlp.wire_bytes(60) == 124
    read = Tlp(TlpType.MEM_READ, 0, 64)
    assert read.wire_bytes(60) == 60  # reads carry no payload


def test_posted_write_ordering():
    sim = Simulator()
    link = PcieLink(sim, PCIE_FPGA_400)
    done = []
    link.transmit(Tlp(TlpType.MEM_WRITE, 0, 512), lambda: done.append("w1"))
    link.transmit(Tlp(TlpType.MEM_WRITE, 512, 512), lambda: done.append("w2"))
    sim.run()
    assert done == ["w1", "w2"]


def test_segment_empty_rejected():
    link = PcieLink(Simulator(), PCIE_FPGA_400)
    with pytest.raises(ValueError):
        link.segment(0, 0, TlpType.MEM_READ)


def test_mmio_write_strictly_ordered():
    sim = Simulator()
    mmio = MmioPath(sim, PCIE_FPGA_400)
    t1 = mmio.write()
    t2 = mmio.write()
    assert t2 - t1 == PCIE_FPGA_400.mmio_write_ps
    assert mmio.writes == 2


def test_mmio_read_round_trip():
    sim = Simulator()
    mmio = MmioPath(sim, PCIE_FPGA_400)
    assert mmio.read() == PCIE_FPGA_400.mmio_read_ps


# ------------------------------ FlexBus -------------------------------
def test_flexbus_oneway_latency():
    sim = Simulator()
    bus = FlexBus(sim, FPGA_400)
    arrived = []
    bus.traverse(FlexBusChannel.CACHE, on_arrive=lambda: arrived.append(sim.now))
    sim.run()
    assert arrived == [FPGA_400.phy_oneway_ps]
    assert bus.traffic[FlexBusChannel.CACHE] == 1


def test_flexbus_round_trip():
    bus = FlexBus(Simulator(), ASIC_1500)
    assert bus.round_trip_ps() == 2 * ASIC_1500.phy_oneway_ps


# ------------------------------- NoC ----------------------------------
def test_topology_calibrated_distances():
    topo = NocTopology()
    for node, extra in NUMA_EXTRA_PS.items():
        assert topo.extra_ps(node) == extra


def test_topology_nearest_farthest():
    topo = NocTopology()
    assert topo.nearest_node() == 7
    assert topo.farthest_node() == 3


def test_topology_mesh_fallback():
    topo = NocTopology(extra_ps={})
    # Same socket: node 6 is one vertical hop, node 5 one horizontal hop.
    assert topo.mesh_distance_ps(6) == topo.hop_y_ps
    assert topo.mesh_distance_ps(5) == topo.hop_x_ps
    # Remote socket pays the UPI crossing.
    assert topo.mesh_distance_ps(0) > topo.upi_ps


def test_topology_bad_device_node():
    with pytest.raises(ValueError):
        NocTopology(device_node=42)


def test_topology_nodes_sorted():
    topo = NocTopology()
    assert topo.nodes == tuple(range(8))
