"""Tests for bounded queues and credit flow control."""

import pytest

from repro.sim.queueing import BoundedQueue, CreditPool, QueueFullError, drain


def test_queue_fifo_order():
    q = BoundedQueue(4)
    for i in range(4):
        q.push(i)
    assert drain(q) == [0, 1, 2, 3]


def test_queue_full_raises():
    q = BoundedQueue(1)
    q.push("a")
    assert q.full
    with pytest.raises(QueueFullError):
        q.push("b")


def test_queue_try_push():
    q = BoundedQueue(1)
    assert q.try_push(1)
    assert not q.try_push(2)
    assert len(q) == 1


def test_queue_occupancy_stats():
    q = BoundedQueue(8)
    for i in range(5):
        q.push(i)
    q.pop()
    assert q.max_occupancy == 5
    assert q.total_pushed == 5


def test_queue_pop_empty_raises():
    q = BoundedQueue(1)
    with pytest.raises(IndexError):
        q.pop()
    with pytest.raises(IndexError):
        q.peek()


def test_queue_invalid_capacity():
    with pytest.raises(ValueError):
        BoundedQueue(0)


def test_credit_acquire_release():
    pool = CreditPool(2)
    assert pool.acquire()
    assert pool.acquire()
    assert pool.in_use == 2
    assert not pool.acquire()
    pool.release()
    assert pool.acquire()


def test_credit_waiter_woken_in_order():
    pool = CreditPool(1)
    order = []
    assert pool.acquire()
    pool.acquire(on_grant=lambda: order.append("first"))
    pool.acquire(on_grant=lambda: order.append("second"))
    assert pool.waiting == 2
    pool.release()
    assert order == ["first"]
    pool.release()
    assert order == ["first", "second"]


def test_credit_handover_keeps_accounting():
    # A credit handed straight to a waiter never becomes available.
    pool = CreditPool(1)
    assert pool.acquire()
    pool.acquire(on_grant=lambda: None)
    pool.release()
    assert pool.available == 0
    assert pool.in_use == 1


def test_credit_over_release_raises():
    pool = CreditPool(1)
    with pytest.raises(RuntimeError):
        pool.release()


def test_credit_peak_tracking():
    pool = CreditPool(3)
    pool.acquire()
    pool.acquire()
    pool.release()
    pool.acquire()
    assert pool.peak_in_use == 2


# ------------------------- drop policy (faults) ------------------------
def test_queue_drop_policy_counts_instead_of_raising():
    queue = BoundedQueue(2, "lossy", policy="drop")
    assert queue.push("a") is True
    assert queue.push("b") is True
    assert queue.push("c") is False
    assert queue.dropped == 1
    assert queue.total_pushed == 2
    assert len(queue) == 2
    queue.pop()
    assert queue.push("d") is True
    assert queue.dropped == 1


def test_queue_default_policy_still_raises():
    queue = BoundedQueue(1, "strict")
    assert queue.policy == "raise"
    assert queue.push("a") is True
    with pytest.raises(QueueFullError):
        queue.push("b")
    assert queue.dropped == 0


def test_queue_rejects_unknown_policy():
    with pytest.raises(ValueError, match="policy"):
        BoundedQueue(1, "x", policy="discard")


def test_try_push_never_counts_drops():
    queue = BoundedQueue(1, "probe", policy="drop")
    queue.push("a")
    assert not queue.try_push("b")
    assert queue.dropped == 0
