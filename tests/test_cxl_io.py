"""Tests for CXL.io: config space, BAR sizing, enumeration."""

import pytest

from repro.cxl.io import (
    BarRegister,
    ConfigSpace,
    CxlIoPort,
    enumerate_devices,
)


def make_config(bar_size=1 << 20, device_type=2):
    return ConfigSpace(
        vendor_id=ConfigSpace.VENDOR_CXL,
        device_id=0xC02,
        device_type=device_type,
        bars=[BarRegister(0, bar_size)],
    )


def test_bar_size_power_of_two():
    with pytest.raises(ValueError):
        BarRegister(0, 3000)


def test_bar_sizing_protocol():
    cfg = make_config(bar_size=1 << 16)
    cfg.write("bar", 0xFFFF_FFFF_FFFF_FFFF)
    mask = cfg.read("bar")
    size = (~mask & 0xFFFF_FFFF_FFFF_FFFF) + 1
    assert size == 1 << 16
    # Subsequent reads return the base again.
    assert cfg.read("bar") == 0


def test_bar_base_alignment_enforced():
    cfg = make_config(bar_size=1 << 16)
    with pytest.raises(ValueError):
        cfg.write("bar", 0x1234)  # not size-aligned
    cfg.write("bar", 0x10000)
    assert cfg.read("bar") == 0x10000


def test_identity_registers():
    cfg = make_config()
    assert cfg.read("vendor_id") == ConfigSpace.VENDOR_CXL
    assert cfg.read("device_type") == 2
    with pytest.raises(KeyError):
        cfg.read("nonsense")
    with pytest.raises(KeyError):
        cfg.write("vendor_id", 1)


def test_enumeration_assigns_disjoint_windows():
    devices = [
        (0, 0, make_config(bar_size=1 << 20)),
        (0, 1, make_config(bar_size=1 << 16)),
        (0, 2, make_config(bar_size=1 << 24)),
    ]
    enumerated = enumerate_devices(devices)
    assert len(enumerated) == 3
    windows = [e.bar_windows[0] for e in enumerated]
    for w in windows:
        assert w.start % w.size == 0  # natural alignment
    for a, b in zip(windows, windows[1:]):
        assert not a.overlaps(b)


def test_enumeration_skips_empty_slot():
    empty = ConfigSpace(0xFFFF, 0, 3, [BarRegister(0, 1 << 12)])
    enumerated = enumerate_devices([(0, 0, empty)])
    assert enumerated == []


def test_io_port_mmap_and_doorbell():
    enumerated = enumerate_devices([(0, 0, make_config())])[0]
    port = CxlIoPort(enumerated)
    window = port.mmap(0)
    assert port.is_mapped(window.start)
    assert not port.is_mapped(window.end)
    port.ring_doorbell()
    assert port.doorbell_rings == 1
