"""Windowed-parallel supernode simulation: the parity contract.

The contracts under test: every ``sim_parallel >= 1`` value produces a
bit-identical measurement (the windowed lanes, merge order and
directory replica are shared code — worker count only changes who runs
them); the legacy path (``sim_parallel`` absent or ``0``) is untouched;
fault plans keep the parity including availability/recovery series;
``"auto"`` resolves through ``REPRO_JOBS`` without changing results;
and a host with an empty calendar never stalls the window barrier.
"""

import os

import pytest

from repro.config import asic_system
from repro.experiments.spec import SpecError, SweepSpec
from repro.system.topology import (
    TOPOLOGY_FAMILIES,
    resolve_topology,
    topology_names,
)
from repro.workloads import WorkloadDriver, WorkloadDriverError


def _supernode_refs():
    """Every registered supernode topology: named entries + family sizes."""
    refs = [
        name for name in topology_names()
        if resolve_topology(name).by_kind("supernode.fabric")
    ]
    if "supernode" in TOPOLOGY_FAMILIES:
        refs.extend(["supernode(2)", "supernode(3)", "supernode(4)"])
    return refs


def _measure(topology, workload, sim_parallel, fault=None, seed=77):
    driver = WorkloadDriver(asic_system())
    kwargs = {}
    if fault is not None:
        kwargs.update(fault=fault, fault_mode="degraded")
    measurement = driver.run(
        workload,
        topology=topology,
        seed=seed,
        streams=4,
        sim_parallel=sim_parallel,
        **kwargs,
    )
    return {
        "workload": measurement.workload,
        "topology": measurement.topology,
        "ops": measurement.ops,
        "reads": measurement.reads,
        "writes": measurement.writes,
        "series": measurement.series,
        "fault": measurement.fault,
    }


# --------------------- bit-identical parity ---------------------------
@pytest.mark.parametrize("topology", _supernode_refs())
def test_parity_across_worker_counts_for_every_supernode_topology(topology):
    baseline = _measure(topology, "zipf(192,1.2)", sim_parallel=1)
    for jobs in (2, 4):
        assert _measure(topology, "zipf(192,1.2)", sim_parallel=jobs) == baseline


@pytest.mark.parametrize(
    "workload", ["uniform(256,512)", "producer-consumer(96,24)", "mixed(96)"]
)
def test_parity_holds_across_workload_shapes(workload):
    baseline = _measure("supernode(4)", workload, sim_parallel=1)
    assert _measure("supernode(4)", workload, sim_parallel=3) == baseline


@pytest.mark.parametrize("fault", ["storm", "host-outage", "link-degrade(8)"])
def test_parity_under_an_active_fault_plan(fault):
    baseline = _measure("supernode(4)", "mixed(96)", sim_parallel=1, fault=fault)
    assert "availability" in baseline["series"]
    assert "recovery" in baseline["series"]
    for jobs in (2, 4):
        assert (
            _measure("supernode(4)", "mixed(96)", sim_parallel=jobs, fault=fault)
            == baseline
        )


def test_sim_parallel_zero_matches_omitting_the_parameter():
    driver = WorkloadDriver(asic_system())
    plain = driver.run("zipf(128,1.2)", topology="supernode(2)", seed=5, streams=2)
    zero = driver.run(
        "zipf(128,1.2)", topology="supernode(2)", seed=5, streams=2,
        sim_parallel=0,
    )
    assert zero.series == plain.series
    assert (zero.ops, zero.reads, zero.writes) == (
        plain.ops, plain.reads, plain.writes
    )


# ------------------------- auto resolution ----------------------------
def test_auto_is_deterministic_across_repro_jobs_values(monkeypatch):
    results = []
    for jobs in ("1", "2", "4"):
        monkeypatch.setenv("REPRO_JOBS", jobs)
        results.append(_measure("supernode(4)", "zipf(192,1.2)", "auto"))
    assert results[0] == results[1] == results[2]
    assert results[0] == _measure("supernode(4)", "zipf(192,1.2)", 1)


# ------------------------ windowed internals --------------------------
def test_empty_host_calendar_does_not_stall_the_barrier():
    # Every op lands on stream 0 of a 4-host supernode: three lanes have
    # empty calendars from the first window on, and must keep
    # barrier-stepping (or skipping) instead of deadlocking.
    driver = WorkloadDriver(asic_system())
    measurement = driver.run(
        "sequential(64)", topology="supernode(4)", seed=3, sim_parallel=4
    )
    assert measurement.ops == 64
    serial = driver.run(
        "sequential(64)", topology="supernode(4)", seed=3, sim_parallel=1
    )
    assert measurement.series == serial.series


def test_windowed_results_are_deterministic_across_invocations():
    first = _measure("supernode(3)", "mixed(96)", sim_parallel=2)
    second = _measure("supernode(3)", "mixed(96)", sim_parallel=2)
    assert first == second


# --------------------------- validation -------------------------------
def test_sim_parallel_rejects_lsu_topologies():
    driver = WorkloadDriver(asic_system())
    with pytest.raises(WorkloadDriverError, match="supernode topologies only"):
        driver.run("zipf(64,1.2)", topology="fanout-2", seed=1, sim_parallel=2)


@pytest.mark.parametrize("bad", ["fast", -1, 2.5, True])
def test_driver_rejects_malformed_sim_parallel(bad):
    driver = WorkloadDriver(asic_system())
    with pytest.raises(WorkloadDriverError, match="sim_parallel"):
        driver.run(
            "zipf(64,1.2)", topology="supernode(2)", seed=1, sim_parallel=bad
        )


def test_sweep_spec_validates_sim_parallel_up_front():
    spec = SweepSpec.from_dict({
        "name": "bad",
        "experiments": [{
            "experiment": "supernode-workload",
            "grid": {"sim_parallel": ["bananas"]},
        }],
    })
    with pytest.raises(SpecError, match="sim_parallel"):
        spec.validate()


def test_sweep_spec_accepts_auto_and_integers():
    spec = SweepSpec.from_dict({
        "name": "good",
        "experiments": [{
            "experiment": "supernode-workload",
            "params": {"sim_parallel": "auto"},
            "grid": {"hosts": [2, 4]},
        }],
    })
    spec.validate()


# ------------------------ speedup (CI bench box) ----------------------
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup needs at least 2 cores",
)
def test_parallel_runs_do_not_regress_catastrophically():
    # On a multi-core box forked workers must at least not collapse;
    # the >= 2x speedup target itself is asserted by the CI parallel
    # job on the bench machine, not here (unit-test sizes are too
    # small to amortise process start-up).
    import time

    driver = WorkloadDriver(asic_system())
    start = time.perf_counter()
    driver.run(
        "uniform(20000,2048)", topology="supernode(4)", seed=9,
        streams=4, sim_parallel=1,
    )
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    driver.run(
        "uniform(20000,2048)", topology="supernode(4)", seed=9,
        streams=4, sim_parallel=4,
    )
    parallel_s = time.perf_counter() - start
    assert parallel_s < serial_s * 25
