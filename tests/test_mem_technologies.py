"""Tests for the device-memory technology presets."""

import pytest

from repro.mem.technologies import (
    DDR4_3200,
    DDR5_4400,
    HBM2E,
    NVM_OPTANE,
    NvmBankModel,
    TECHNOLOGIES,
    make_controller,
    nominal_read_ns,
)


def test_registry_complete():
    assert set(TECHNOLOGIES) == {"ddr5", "ddr4", "hbm", "nvm"}


def test_latency_ordering():
    # DRAM-class reads are far faster than NVM.
    assert nominal_read_ns("ddr5") < nominal_read_ns("nvm") / 3
    assert nominal_read_ns("hbm") == pytest.approx(
        HBM2E.closed_access_ps / 1000
    )


def test_hbm_occupancy_tiny():
    # HBM's wide interface -> per-line burst far below DDR5's.
    assert HBM2E.burst_ps < DDR5_4400.burst_ps / 3


def test_nvm_no_refresh():
    model = NvmBankModel(NVM_OPTANE, seed=1)
    r = model.access(0, now_ps=0)
    assert not r.refresh_collision


def test_nvm_write_slower_than_read():
    model = NvmBankModel(NVM_OPTANE, write_multiplier=3.0, seed=1)
    read = model.access(1 << 20, now_ps=0).latency_ps
    write = model.write(2 << 20, now_ps=0).latency_ps
    assert write > 2 * read * 0.8  # ~3x media occupancy
    assert model.writes == 1


def test_nvm_write_blocks_bank():
    model = NvmBankModel(NVM_OPTANE, write_multiplier=4.0, seed=1)
    w = model.write(0, now_ps=0)
    # A read right behind the write on the same bank waits it out.
    r = model.access(0, now_ps=0)
    assert r.latency_ps > w.latency_ps


def test_nvm_multiplier_validated():
    with pytest.raises(ValueError):
        NvmBankModel(NVM_OPTANE, write_multiplier=0.5)


def test_make_controller():
    ctrl = make_controller("hbm", channels=2)
    assert len(ctrl.channels) == 2
    with pytest.raises(ValueError):
        make_controller("sram")


def test_technology_throughput_ordering():
    """Pipelined line streams: HBM >> DDR5 > DDR4."""

    def lines_per_us(tech):
        ctrl = make_controller(tech, channels=1, seed=7)
        t = 0
        params = TECHNOLOGIES[tech]
        start = params.trfc_ps + 1000
        done = start
        for i in range(256):
            r = ctrl.access(i * 64, start)
            done = max(done, start + r.latency_ps)
        window = done - start
        return 256 / (window / 1e6)

    assert lines_per_us("hbm") > lines_per_us("ddr5") > lines_per_us("ddr4") * 0.99
