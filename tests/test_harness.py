"""Tests for the experiment harness: renderers and result shapes."""

import pytest

from repro.calibration import reference
from repro.harness.comparison import SIMULATOR_COMPARISON, capability_flags, render_table2
from repro.harness.experiments import (
    EXPERIMENTS,
    fig17_rao_speedup,
    fig18a_deserialization,
    fig18b_serialization,
    run_experiment,
    simulation_error,
    table1_configurations,
    table2_comparison,
)
from repro.harness.tables import render_series, render_table


# ------------------------------ Renderers -----------------------------
def test_render_table_alignment():
    out = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_render_table_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["a"], [[1, 2]])


def test_render_series_merges_axes():
    out = render_series("x", {"s1": {1: 1.0}, "s2": {2: 2.0}})
    assert "-" in out  # missing points rendered as dashes


# ------------------------------ Table II ------------------------------
def test_only_simcxl_supports_everything():
    for name, caps in SIMULATOR_COMPARISON.items():
        full = caps["Cohet Support"] == "Yes" and caps["CXL.cache Support"] == "Yes"
        assert full == (name == "SimCXL")


def test_capability_flags_all_backed():
    assert all(capability_flags().values())


def test_render_table2_includes_all_rows():
    out = render_table2()
    for name in SIMULATOR_COMPARISON:
        assert name in out


# --------------------------- Experiment registry ----------------------
def test_registry_covers_every_figure_and_table():
    expected = {
        "table1", "table2", "fig4", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17", "fig18a", "fig18b", "headline", "mape",
        # multi-device topology scenarios (repro.harness.topology_experiments)
        "fanout2", "fanout4", "topo-scale",
        # workload-driven scenarios (repro.harness.workload_experiments)
        "workload-mix", "supernode-workload",
        # failure scenarios (repro.harness.fault_experiments)
        "fault-tolerance",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_table1_has_both_columns():
    result = table1_configurations()
    assert "Xeon" in result.text
    assert "X86O3CPU" in result.text
    assert result.series["testbed"].keys() == result.series["simcxl"].keys()


# ------------------------- Result-shape checks ------------------------
def test_fig17_shape_matches_paper():
    result = fig17_rao_speedup(ops=1024)
    speedup = result.series["speedup"]
    # Paper extremes: RAND 5.5x (min), CENTRAL 40.2x (max), STRIDE1 22.4x.
    assert speedup["CENTRAL"] == pytest.approx(40.2, rel=0.08)
    assert speedup["STRIDE1"] == pytest.approx(22.4, rel=0.08)
    assert speedup["RAND"] == pytest.approx(5.5, rel=0.08)
    for pattern in ("SG", "SCATTER", "GATHER"):
        assert speedup["RAND"] < speedup[pattern] < speedup["STRIDE1"]
    assert min(speedup.values()) == speedup["RAND"]
    assert max(speedup.values()) == speedup["CENTRAL"]


def test_fig18a_shape_matches_paper():
    result = fig18a_deserialization(messages=60)
    speedup = result.series["speedup"]
    assert all(s > 1.25 for s in speedup.values())
    assert max(speedup, key=speedup.get) == "Bench1"   # paper: 2.05x max
    assert min(speedup, key=speedup.get) == "Bench5"   # paper: 1.33x min
    assert speedup["Bench1"] == pytest.approx(2.05, rel=0.06)
    assert speedup["Bench5"] == pytest.approx(1.33, rel=0.06)


def test_fig18b_shape_matches_paper():
    result = fig18b_serialization(messages=60)
    mem = result.series["speedup_mem"]
    cache_pf = result.series["speedup_cache_pf"]
    gains = result.series["prefetch_gain"]
    # CXL.mem: 4.06x max on Bench1, ~2.0x min on Bench5.
    assert max(mem, key=mem.get) == "Bench1"
    assert min(mem, key=mem.get) == "Bench5"
    assert mem["Bench1"] == pytest.approx(4.06, rel=0.1)
    assert mem["Bench5"] == pytest.approx(2.0, rel=0.1)
    # Every CXL design beats RpcNIC.
    assert all(s > 1.0 for s in mem.values())
    assert all(s > 1.0 for s in cache_pf.values())
    # Prefetch gains positive everywhere; the minimum lands on the
    # deeply nested Bench2 or bulk-string Bench5 (paper: Bench2, 3.6%).
    assert all(g > 0 for g in gains.values())
    assert min(gains, key=gains.get) in ("Bench2", "Bench5")
    avg_gain = sum(gains.values()) / len(gains)
    assert 0.04 < avg_gain < 0.2  # paper: 12% average


def test_mape_within_paper_bound():
    result = simulation_error()
    assert result.series["overall"]["mape"] <= reference.TARGET_MAPE


def test_experiment_text_is_printable():
    result = table2_comparison()
    assert str(result) == result.text
    assert "SimCXL" in result.text


def test_fig4_programming_models():
    """Fig. 4: Cohet's listing is the shortest and actually executes."""
    result = run_experiment("fig4")
    lines = result.series["lines"]
    assert lines["explicit-copy"] == 16
    assert lines["unified-memory"] == 10
    assert lines["cohet"] == 9
    assert result.series["copies"]["cohet"] == 0
    assert result.series["special_allocs"]["cohet"] == 0
    assert "OK" in result.text  # the Cohet listing ran on SimCXL
