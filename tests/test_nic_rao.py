"""Tests for the NIC RAO designs: correctness and timing shape."""

import pytest

from repro.cache.llc import SharedLLC
from repro.config import asic_system
from repro.config.system import DramParams
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.nic.base import HostValues, MemoryTranslationTable
from repro.nic.cxl_nic import CxlRaoNic
from repro.nic.pcie_nic import PcieRaoNic
from repro.rao.circustent import RaoRequest, make_workload
from repro.rao.ops import AtomicOp
from repro.sim.engine import Simulator


def cxl_nic(pe_count=1):
    config = asic_system()
    sim = Simulator()
    memif = MemoryInterface(config.host.memif_oneway_ps)
    memif.attach(
        "host",
        AddressRange(0, 1 << 40, "host"),
        MemoryController(DramParams(jitter_ps=0), channels=2, seed=1),
    )
    llc = SharedLLC(sim, config.host, memif)
    return CxlRaoNic(sim, config, llc, HostValues(), pe_count=pe_count)


def faa_requests(addr, count):
    return [RaoRequest(AtomicOp.FAA, addr, operand=1) for _ in range(count)]


# ----------------------------- Correctness ----------------------------
def test_pcie_nic_faa_sums_correctly():
    nic = PcieRaoNic(Simulator(), asic_system(), HostValues())
    nic.run(faa_requests(0x1000, 25))
    assert nic.values.read(0x1000) == 25


def test_cxl_nic_faa_sums_correctly():
    nic = cxl_nic()
    nic.run(faa_requests(0x1000, 25))
    assert nic.values.read(0x1000) == 25


def test_both_nics_agree_on_mixed_ops():
    requests = [
        RaoRequest(AtomicOp.FAA, 0x1000, operand=5),
        RaoRequest(AtomicOp.SWAP, 0x1040, operand=9),
        RaoRequest(AtomicOp.FETCH_AND_OR, 0x1000, operand=0x10),
        RaoRequest(AtomicOp.FAA, 0x1040, operand=2),
    ]
    pcie = PcieRaoNic(Simulator(), asic_system(), HostValues())
    pcie.run([RaoRequest(r.op, r.target, r.operand) for r in requests])
    cxl = cxl_nic()
    cxl.run([RaoRequest(r.op, r.target, r.operand) for r in requests])
    assert pcie.values.snapshot() == cxl.values.snapshot()


def test_cxl_nic_concurrent_pes_preserve_atomicity():
    """CENTRAL-style contention with 4 PEs must still sum exactly."""
    nic = cxl_nic(pe_count=4)
    nic.run(faa_requests(0x2000, 64))
    assert nic.values.read(0x2000) == 64


# ------------------------------- Timing -------------------------------
def test_pcie_rao_serialized_cost():
    config = asic_system()
    nic = PcieRaoNic(Simulator(), config, HostValues())
    result = nic.run(faa_requests(0x1000, 16))
    per_op = result.elapsed_ps / 16
    floor = 2 * config.dma.transfer_ps(64) + config.rao.modify_ps
    assert per_op >= floor
    assert result.throughput_mops < 0.5


def test_cxl_rao_central_is_cache_resident():
    nic = cxl_nic()
    result = nic.run(faa_requests(0x1000, 64))
    assert nic.hmc_hits >= 63  # everything after the first fetch hits
    assert result.throughput_mops > 10


def test_cxl_rao_line_unlocked_after_commit():
    nic = cxl_nic()
    nic.run(faa_requests(0x3000, 4))
    assert not nic.hmc.peek(0x3000).locked


def test_warm_fills_hmc_dirty():
    nic = cxl_nic()
    nic.warm()
    lines = nic.hmc.array.num_sets * nic.hmc.array.ways
    assert nic.hmc.array.occupancy == lines
    dirty = sum(1 for _a, b in nic.hmc.array.blocks() if b.dirty)
    assert dirty == lines


def test_pe_parallelism_improves_miss_throughput():
    random_reqs = make_workload("RAND", ops=128).requests
    serial = cxl_nic(pe_count=1)
    serial.warm()
    t1 = serial.run(list(random_reqs)).throughput_mops
    parallel = cxl_nic(pe_count=4)
    parallel.warm()
    t4 = parallel.run(list(random_reqs)).throughput_mops
    assert t4 > 2 * t1  # misses overlap across PEs


# ------------------------------- MTT ----------------------------------
def test_mtt_translation_and_cache():
    mtt = MemoryTranslationTable(cache_entries=2)
    mtt.register(1, base=0x1000, size=0x100)
    assert mtt.translate(1, 0x10) == 0x1010
    assert mtt.translate(1, 0x20) == 0x1020
    assert mtt.hits == 1 and mtt.misses == 1


def test_mtt_bounds_checked():
    mtt = MemoryTranslationTable()
    mtt.register(1, base=0x1000, size=0x100)
    with pytest.raises(ValueError):
        mtt.translate(1, 0x100)
    with pytest.raises(KeyError):
        mtt.translate(2, 0)


def test_mtt_duplicate_key_rejected():
    mtt = MemoryTranslationTable()
    mtt.register(1, 0, 64)
    with pytest.raises(ValueError):
        mtt.register(1, 64, 64)
