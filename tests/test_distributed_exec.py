"""Tests for the distributed execution subsystem.

Covers the advisory lockfiles (stale takeover, heartbeats), the
sharded/streaming result store (roll-over parity, index fast path,
100k-record streaming aggregation), the durable work queue (leases,
crash requeue, retry-with-backoff), the worker loop behind
``repro worker`` (including two concurrent workers on one queue), the
``serial``/``pool``/``queue`` backend registry, the scheduler's writer
lock, and the ``REPRO_JOBS``/uncapped ``--jobs`` contract.
"""

import json
import os
import time

import pytest

from cli_helpers import run_cli

from repro.experiments import (
    ResultStore,
    RunReport,
    SpecError,
    StoredResult,
    SweepSpec,
    default_jobs,
    executor_by_name,
    run_sweep,
    run_worker,
)
from repro.experiments.exec import (
    FileLock,
    LockHeldError,
    QueueBackend,
    QueueConfig,
    QueueError,
    UnknownExecutorError,
    WorkQueue,
)
from repro.experiments.runner import _pool_context
from repro.experiments.store import RUN_LOCK_STALE_S, StoreCorruptionWarning
from repro.harness.experiments import EXPERIMENTS

needs_fork = pytest.mark.skipif(
    _pool_context().get_start_method() != "fork",
    reason="multi-process tests need the fork start method",
)

TINY_SWEEP = {
    "name": "tiny",
    "repeats": 1,
    "experiments": [
        {"experiment": "table1"},
        {"experiment": "table2"},
    ],
}


def tiny_sweep(**overrides):
    data = dict(TINY_SWEEP)
    data.update(overrides)
    return SweepSpec.from_dict(data)


def _record(spec_hash="abc", experiment="table1", status="ok", **kwargs):
    defaults = dict(
        spec_hash=spec_hash, experiment=experiment, params={}, repeat=0,
        seed=1, status=status, series={"s": {"k": 1.0}}, text="t",
    )
    defaults.update(kwargs)
    return StoredResult(**defaults)


def _payloads(sweep):
    return [
        {
            "spec_hash": s.spec_hash,
            "experiment": s.experiment,
            "params": dict(s.params),
            "repeat": s.repeat,
            "seed": s.seed,
        }
        for s in sweep.expand()
    ]


def _make_queue(run_dir, payloads, **config):
    queue = WorkQueue(run_dir)
    defaults = dict(sweep="tiny", git={}, backoff_s=0.0, lease_timeout_s=30.0)
    defaults.update(config)
    queue.create(payloads, QueueConfig(**defaults))
    return queue


def _age_file(path, seconds):
    old = time.time() - seconds
    os.utime(path, (old, old))


# ------------------------------ Locks ---------------------------------
def test_lock_acquire_release_round_trip(tmp_path):
    lock = FileLock(tmp_path / "a.lock", owner="me")
    with lock:
        assert lock.held
        assert lock.path.is_file()
        assert FileLock(tmp_path / "a.lock").holder() == "me"
    assert not lock.held
    assert not lock.path.is_file()


def test_lock_blocks_second_acquirer(tmp_path):
    with FileLock(tmp_path / "a.lock", owner="first"):
        with pytest.raises(LockHeldError, match="first"):
            FileLock(tmp_path / "a.lock", owner="second").acquire()


def test_stale_lock_is_taken_over(tmp_path):
    first = FileLock(tmp_path / "a.lock", owner="crashed", stale_after_s=0.05)
    first.acquire()
    _age_file(first.path, 10)
    second = FileLock(tmp_path / "a.lock", owner="takeover", stale_after_s=0.05)
    second.acquire()  # no LockHeldError: the dead holder is evicted
    assert second.holder() == "takeover"
    second.release()


def test_refresh_keeps_lock_live(tmp_path):
    holder = FileLock(tmp_path / "a.lock", owner="live", stale_after_s=0.2)
    holder.acquire()
    _age_file(holder.path, 10)
    holder.refresh()  # heartbeat resets the staleness clock
    with pytest.raises(LockHeldError):
        FileLock(tmp_path / "a.lock", stale_after_s=0.2).acquire()
    holder.release()


# ------------------------- Sharded store ------------------------------
def test_append_rolls_over_shards_with_parity(tmp_path):
    sharded = ResultStore(tmp_path / "sharded", shard_max_bytes=256)
    single = ResultStore(tmp_path / "single")  # default cap: one shard
    records = [_record(f"h{i}", status="ok" if i % 2 else "error")
               for i in range(12)]
    for record in records:
        sharded.append(record)
        single.append(record)
    assert len(sharded.shard_paths()) > 1
    assert len(single.shard_paths()) == 1
    # Roll-over must be invisible to every reader.
    assert sharded.load() == single.load()
    assert [r.spec_hash for r in sharded.load()] == [f"h{i}" for i in range(12)]
    assert sharded.ok_hashes() == single.ok_hashes()
    assert sharded.latest().keys() == single.latest().keys()


def test_every_shard_gets_a_spec_hash_index(tmp_path):
    store = ResultStore(tmp_path / "run", shard_max_bytes=256)
    for i in range(8):
        store.append(_record(f"h{i}"))
    for shard in store.shard_paths():
        index = ResultStore.index_path(shard)
        assert index.is_file()
        shard_lines = len(shard.read_text().splitlines())
        assert len(index.read_text().splitlines()) == shard_lines


def test_legacy_single_file_layout_still_reads(tmp_path):
    root = tmp_path / "run"
    root.mkdir()
    legacy = [_record("old1"), _record("old2", status="error")]
    with (root / "results.jsonl").open("w") as fh:
        for record in legacy:
            fh.write(json.dumps(record.__dict__) + "\n")
    store = ResultStore(root)
    assert store.exists()
    assert store.ok_hashes() == {"old1"}  # no index: streamed fallback
    store.append(_record("new1"))  # new appends roll into shards
    assert (root / "results-00000.jsonl").is_file()
    assert [r.spec_hash for r in store.load()] == ["old1", "old2", "new1"]
    assert store.ok_hashes() == {"old1", "new1"}


def test_ok_hashes_index_fast_path_and_fallback(tmp_path):
    store = ResultStore(tmp_path / "run")
    store.append(_record("h1"))
    store.append(_record("h2", status="error"))
    store.append(_record("h2"))  # newest wins
    assert store.ok_hashes() == {"h1", "h2"}
    # Losing the index falls back to streaming the shard itself.
    for shard in store.shard_paths():
        ResultStore.index_path(shard).unlink()
    assert store.ok_hashes() == {"h1", "h2"}


def test_index_trailing_its_shard_is_conservative(tmp_path):
    # Crash window: record written, index line not yet.  The spec must
    # look uncached (spurious re-run) — never the other way around.
    store = ResultStore(tmp_path / "run")
    store.append(_record("h1"))
    store.append(_record("h2"))
    (shard,) = store.shard_paths()
    index = ResultStore.index_path(shard)
    index.write_text(index.read_text().splitlines()[0] + "\n")
    assert store.ok_hashes() == {"h1"}
    assert set(store.latest()) == {"h1", "h2"}  # the record itself is safe


def test_load_surfaces_corrupt_lines(tmp_path):
    store = ResultStore(tmp_path / "run")
    store.append(_record("h1"))
    store.append(_record("h2"))
    (shard,) = store.shard_paths()
    with shard.open("a") as fh:
        fh.write('{"truncated": \n')
        fh.write("garbage\n")
    with pytest.warns(StoreCorruptionWarning, match="2 corrupt"):
        loaded = store.load()
    assert len(loaded) == 2
    assert loaded.skipped == 2
    # The streaming path skips silently (callers opt into the warning).
    assert len(list(store.iter_records())) == 2


def test_100k_record_store_aggregates_by_streaming(tmp_path, monkeypatch):
    # Acceptance: a synthetic 100k-record store must serve latest() and
    # the report context shard by shard, never materialising a full
    # List[StoredResult].
    root = tmp_path / "big"
    root.mkdir()
    hashes = [f"h{i:04d}" for i in range(1000)]
    template = json.dumps(_record("@HASH@", experiment="synth").__dict__)
    unique_lines = [template.replace("@HASH@", h) for h in hashes]
    per_shard_repeats = 10  # 10 shards x (1000 x 10) lines = 100k records
    for shard_no in range(10):
        shard = root / f"results-{shard_no:05d}.jsonl"
        shard.write_text("\n".join(unique_lines * per_shard_repeats) + "\n")
        ResultStore.index_path(shard).write_text(
            "\n".join(f"{h} ok" for h in hashes * per_shard_repeats) + "\n"
        )
    store = ResultStore(root)

    opened = []
    real_open = ResultStore._open_shard
    monkeypatch.setattr(
        ResultStore,
        "_open_shard",
        lambda self, path: (opened.append(path.name), real_open(self, path))[1],
    )
    monkeypatch.setattr(
        ResultStore,
        "load",
        lambda self: pytest.fail("aggregation must stream, not load()"),
    )

    stream = store.iter_records()
    assert next(stream).spec_hash == "h0000"
    assert opened == ["results-00000.jsonl"]  # lazy: one shard at a time

    assert len(store.ok_hashes()) == 1000  # via indexes: no shard opened
    assert opened == ["results-00000.jsonl"]

    newest = store.latest()
    assert len(newest) == 1000  # memory scales with specs, not records
    assert len(opened) == 11  # ...but every shard was visited once

    markdown = RunReport(store).markdown()
    assert "synth" in markdown and "1000" in markdown


# ---------------------------- Work queue ------------------------------
def test_queue_lease_lifecycle(tmp_path):
    payloads = _payloads(tiny_sweep())
    queue = _make_queue(tmp_path / "run", payloads)
    first = queue.claim("w1", lease_timeout_s=30.0)
    second = queue.claim("w2", lease_timeout_s=30.0)
    assert {first.spec_hash, second.spec_hash} == {
        p["spec_hash"] for p in payloads
    }
    assert queue.claim("w3", lease_timeout_s=30.0) is None  # all leased
    assert not queue.drained()
    queue.complete(first, {"stub": True})
    queue.complete(second, {"stub": True})
    assert queue.drained()
    assert {h for h, _ in queue.done_records()} == {
        p["spec_hash"] for p in payloads
    }


def test_queue_stale_lease_requeues_without_duplicate_record(tmp_path):
    # A worker crashes mid-spec: its lease stops heartbeating, the spec
    # requeues, and — because the crashed worker never completed — the
    # store ends up with exactly one record.
    run_dir = tmp_path / "run"
    payloads = _payloads(tiny_sweep(experiments=["table1"]))
    queue = _make_queue(run_dir, payloads, lease_timeout_s=0.05)
    crashed = queue.claim("crashed-worker", lease_timeout_s=0.05)
    assert crashed is not None
    _age_file(queue.leases_dir / f"{crashed.spec_hash}.json", 100)
    assert queue.requeue_stale(lease_timeout_s=0.05) == [crashed.spec_hash]
    outcome = run_worker(run_dir, worker_id="rescuer", poll_s=0.01)
    assert [r.spec_hash for r in outcome.executed] == [crashed.spec_hash]
    records = ResultStore(run_dir).load()
    assert len(records) == 1  # requeued, executed once, not duplicated
    assert records[0].ok


def test_queue_claim_evicts_stale_lease_directly(tmp_path):
    # Workers do not depend on the scheduler's requeue pass: claim()
    # itself evicts a lease whose heartbeat stopped.
    payloads = _payloads(tiny_sweep(experiments=["table1"]))
    queue = _make_queue(tmp_path / "run", payloads, lease_timeout_s=0.05)
    dead = queue.claim("dead", lease_timeout_s=0.05)
    _age_file(queue.leases_dir / f"{dead.spec_hash}.json", 100)
    stolen = queue.claim("alive", lease_timeout_s=0.05)
    assert stolen is not None and stolen.spec_hash == dead.spec_hash


def test_queue_retry_backoff_delays_reclaim(tmp_path):
    payloads = _payloads(tiny_sweep(experiments=["table1"]))
    queue = _make_queue(tmp_path / "run", payloads)
    task = queue.claim("w1", lease_timeout_s=30.0)
    delay = queue.retry(task, backoff_s=60.0)
    assert delay == 60.0
    assert not queue.drained()  # still pending, just backing off
    assert queue.claim("w1", lease_timeout_s=30.0) is None
    task_file = queue.tasks_dir / f"{task.spec_hash}.json"
    data = json.loads(task_file.read_text())
    assert data["attempts"] == 1
    assert data["not_before"] > time.time()
    data["not_before"] = 0.0
    task_file.write_text(json.dumps(data))
    again = queue.claim("w1", lease_timeout_s=30.0)
    assert again.attempts == 1  # retry history survives the requeue


# ------------------------------ Worker --------------------------------
def test_worker_drains_queue_and_streams_records(tmp_path):
    run_dir = tmp_path / "run"
    payloads = _payloads(tiny_sweep())
    queue = _make_queue(run_dir, payloads)
    lines = []
    outcome = run_worker(
        run_dir, worker_id="w1", poll_s=0.01, progress=lines.append
    )
    assert len(outcome.executed) == 2 and not outcome.failed
    assert queue.drained()
    store = ResultStore(run_dir)
    assert store.ok_hashes() == {p["spec_hash"] for p in payloads}
    assert all(r.sweep == "tiny" for r in store.load())
    assert sum("ok" in line for line in lines) == 2


def test_worker_without_queue_raises(tmp_path):
    with pytest.raises(QueueError, match="no work queue"):
        run_worker(tmp_path / "nowhere", wait_s=0.0)


def _boom():
    """Deliberately failing experiment used by retry tests."""
    raise RuntimeError("intentional failure")


def test_worker_retry_exhausts_to_persisted_error(tmp_path, monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "boom", _boom)
    run_dir = tmp_path / "run"
    payloads = _payloads(tiny_sweep(experiments=["boom"]))
    _make_queue(run_dir, payloads, max_attempts=3, backoff_s=0.0)
    outcome = run_worker(run_dir, worker_id="w1", poll_s=0.01)
    assert outcome.retried == 2  # attempts 1 and 2 requeued...
    assert len(outcome.executed) == 1  # ...attempt 3 persisted the error
    (record,) = ResultStore(run_dir).load()
    assert record.status == "error"
    assert "intentional failure" in record.error
    assert WorkQueue(run_dir).drained()


@needs_fork
def test_two_concurrent_workers_split_one_queue(tmp_path):
    run_dir = tmp_path / "run"
    payloads = _payloads(tiny_sweep(repeats=2))  # 4 distinct specs
    _make_queue(run_dir, payloads)
    mp = _pool_context()
    workers = [
        mp.Process(
            target=run_worker,
            args=(str(run_dir),),
            kwargs={"worker_id": f"w{i}", "poll_s": 0.01},
        )
        for i in range(2)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0
    records = ResultStore(run_dir).load()
    assert records.skipped == 0
    hashes = [r.spec_hash for r in records]
    assert len(hashes) == 4  # every spec exactly once, no duplicates
    assert set(hashes) == {p["spec_hash"] for p in payloads}
    assert WorkQueue(run_dir).drained()


# --------------------------- Backends ---------------------------------
def test_executor_registry_lists_options_on_typo():
    assert executor_by_name("serial").name == "serial"
    assert executor_by_name("pool").name == "pool"
    assert executor_by_name("queue").name == "queue"
    with pytest.raises(UnknownExecutorError, match="pool.*queue.*serial"):
        executor_by_name("cloud")


def test_serial_backend_runs_sweep(tmp_path):
    outcome = run_sweep(tiny_sweep(), tmp_path / "run", backend="serial")
    assert outcome.ok and outcome.total == 2
    assert outcome.backend == "serial"


@needs_fork
def test_queue_backend_matches_pool_backend_per_spec(tmp_path):
    # Acceptance: identical spec hashes, status, and series across
    # backends (timing/metadata fields excluded).
    sweep = tiny_sweep()
    assert run_sweep(sweep, tmp_path / "pool", jobs=2, backend="pool").ok
    assert run_sweep(
        sweep,
        tmp_path / "queue",
        jobs=2,
        backend=QueueBackend(poll_s=0.01),
    ).ok

    def comparable(run_dir):
        return {
            h: (r.status, json.dumps(r.series, sort_keys=True))
            for h, r in ResultStore(run_dir).latest().items()
        }

    assert comparable(tmp_path / "queue") == comparable(tmp_path / "pool")
    # A drained queue leaves no machinery behind in the run directory.
    assert not WorkQueue(tmp_path / "queue").exists()


@needs_fork
def test_interrupted_queue_run_resumes_from_cache(tmp_path):
    run_dir = tmp_path / "run"
    # First invocation completed only table1 before the "interrupt"
    # (simulated by a sweep that simply had less work), leaving stale
    # queue state behind.
    partial = tiny_sweep(experiments=["table1"])
    assert run_sweep(
        partial, run_dir, jobs=1, backend=QueueBackend(poll_s=0.01)
    ).ok
    WorkQueue(run_dir).create(  # leftover queue debris from the interrupt
        [{"spec_hash": "stale", "experiment": "x",
          "params": {}, "repeat": 0, "seed": 0}],
        QueueConfig(sweep="tiny"),
    )
    outcome = run_sweep(
        tiny_sweep(), run_dir, jobs=1, backend=QueueBackend(poll_s=0.01)
    )
    assert outcome.cached == 1  # table1 resumed from the store, not re-run
    assert [r.experiment for r in outcome.executed] == ["table2"]
    assert len(ResultStore(run_dir).load()) == 2


@needs_fork
def test_queue_backend_isolates_failures(tmp_path, monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "boom", _boom)
    sweep = SweepSpec.from_dict({
        "name": "mixed",
        "experiments": [{"experiment": "boom"}, {"experiment": "table1"}],
    })
    outcome = run_sweep(
        sweep,
        tmp_path / "run",
        jobs=2,
        backend=QueueBackend(max_attempts=2, backoff_s=0.0, poll_s=0.01),
    )
    assert outcome.total == 2
    assert len(outcome.failed) == 1
    assert "intentional failure" in outcome.failed[0].error
    assert [r.experiment for r in outcome.executed if r.ok] == ["table1"]


# ------------------------- Scheduler locking ---------------------------
def test_writer_lock_excludes_second_scheduler(tmp_path):
    run_dir = tmp_path / "run"
    store = ResultStore(run_dir)
    with store.writer_lock(owner="other-sweep"):
        with pytest.raises(LockHeldError, match="other-sweep"):
            run_sweep(tiny_sweep(), run_dir, jobs=1)
    # Lock released: the sweep proceeds normally now.
    assert run_sweep(tiny_sweep(), run_dir, jobs=1).ok


def test_stale_writer_lock_is_taken_over(tmp_path, monkeypatch):
    monkeypatch.setattr("repro.experiments.store.RUN_LOCK_STALE_S", 0.05)
    run_dir = tmp_path / "run"
    store = ResultStore(run_dir)
    crashed = store.writer_lock(owner="crashed-sweep")
    crashed.acquire()
    _age_file(crashed.path, 100)
    assert run_sweep(tiny_sweep(), run_dir, jobs=1).ok
    assert RUN_LOCK_STALE_S == 3600.0  # the real default stays generous


def test_fully_cached_sweep_never_takes_the_lock(tmp_path):
    run_dir = tmp_path / "run"
    assert run_sweep(tiny_sweep(), run_dir, jobs=1).ok
    with ResultStore(run_dir).writer_lock(owner="other"):
        outcome = run_sweep(tiny_sweep(), run_dir, jobs=1)
    assert outcome.cached == 2 and not outcome.executed


# ------------------------------ Jobs ----------------------------------
def test_default_jobs_honors_repro_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "32")
    assert default_jobs() == 32  # env override is uncapped
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()
    monkeypatch.delenv("REPRO_JOBS")
    assert 1 <= default_jobs() <= 8  # soft cap applies only to the default


# ------------------------------- CLI ----------------------------------
@needs_fork
def test_cli_sweep_queue_backend(tmp_path):
    spec = tmp_path / "tiny.json"
    spec.write_text(json.dumps(TINY_SWEEP))
    run_dir = tmp_path / "run"
    code, out = run_cli(
        "sweep", str(spec), "--out", str(run_dir),
        "--jobs", "2", "--backend", "queue",
    )
    assert code == 0
    assert "[queue]" in out and "2 specs" in out and "0 failed" in out
    code, out = run_cli(
        "sweep", str(spec), "--out", str(run_dir),
        "--jobs", "2", "--backend", "queue",
    )
    assert code == 0 and "2 cached" in out


def test_cli_worker_drains_a_prepared_queue(tmp_path):
    run_dir = tmp_path / "run"
    _make_queue(run_dir, _payloads(tiny_sweep()))
    code, out = run_cli("worker", str(run_dir), "--worker-id", "cli-w")
    assert code == 0
    assert "worker cli-w: 2 specs (0 failed, 0 retried)" in out


def test_cli_worker_without_queue_exits_2(tmp_path):
    code, out = run_cli("worker", str(tmp_path / "empty"), "--wait-s", "0")
    assert code == 2
    assert "no work queue" in out and "--backend queue" in out


# ----------------------- batched store appends ------------------------
def test_append_many_matches_per_record_layout(tmp_path):
    records = [_record(spec_hash=f"h{i:03d}") for i in range(20)]
    loop_store = ResultStore(tmp_path / "loop")
    for record in records:
        loop_store.append(record)
    batch_store = ResultStore(tmp_path / "batch")
    batch_store.append_many(records)
    loop_shards = {p.name: p.read_text() for p in loop_store.shard_paths()}
    batch_shards = {p.name: p.read_text() for p in batch_store.shard_paths()}
    assert batch_shards == loop_shards
    for shard in batch_store.shard_paths():
        assert (
            batch_store.index_path(shard).read_text()
            == loop_store.index_path(shard).read_text()
        )


def test_append_many_rolls_over_at_the_size_cap(tmp_path):
    store = ResultStore(tmp_path, shard_max_bytes=400)
    store.append_many([_record(spec_hash=f"h{i:03d}") for i in range(12)])
    shards = store.shard_paths()
    assert len(shards) > 1
    assert [r.spec_hash for r in store.load()] == [f"h{i:03d}" for i in range(12)]
    assert store.ok_hashes() == {f"h{i:03d}" for i in range(12)}


def test_append_many_empty_batch_is_a_noop(tmp_path):
    store = ResultStore(tmp_path)
    assert store.append_many([]) == []
    assert not store.exists()


# ----------------------- per-worker reporting -------------------------
def test_worker_records_carry_the_worker_id(tmp_path):
    run_dir = tmp_path / "run"
    _make_queue(run_dir, _payloads(tiny_sweep()))
    run_worker(run_dir, worker_id="w-batch", poll_s=0.01)
    records = ResultStore(run_dir).load()
    assert records and all(r.worker == "w-batch" for r in records)


def test_report_surfaces_worker_throughput(tmp_path):
    from repro.experiments import RunReport

    store = ResultStore(tmp_path)
    store.append_many([
        _record(spec_hash="a1", worker="w1", wall_time_s=2.0),
        _record(spec_hash="a2", worker="w1", wall_time_s=2.0),
        _record(spec_hash="b1", worker="w2", wall_time_s=1.0),
    ])
    report = RunReport(store)
    stats = report.worker_stats
    assert set(stats) == {"w1", "w2"}
    assert stats["w1"]["specs"] == 2 and stats["w1"]["wall_s"] == 4.0
    assert stats["w1"]["specs_per_sec"] == pytest.approx(0.5)
    assert stats["w2"]["records_per_sec"] == pytest.approx(1.0)
    table = report.worker_markdown()
    assert "w1" in table and "specs/sec" in table


def test_report_retried_specs_count_as_records_not_specs(tmp_path):
    from repro.experiments import RunReport

    store = ResultStore(tmp_path)
    # Two stored records for one spec (a re-run): newest wins as the
    # spec, both count toward the records rate.
    store.append(_record(spec_hash="a1", worker="w1", wall_time_s=1.0,
                         status="error"))
    store.append(_record(spec_hash="a1", worker="w1", wall_time_s=1.0))
    stats = RunReport(store).worker_stats
    assert stats["w1"]["specs"] == 1
    assert stats["w1"]["records"] == 2


def test_report_without_worker_ids_renders_no_worker_table(tmp_path):
    from repro.experiments import RunReport

    store = ResultStore(tmp_path)
    store.append(_record(spec_hash="a1"))
    report = RunReport(store)
    assert report.worker_stats == {}
    assert report.worker_markdown() == ""


# ---------------------- Repeat determinism -----------------------------
REPEAT_SWEEP = {
    "name": "repeat-det",
    "repeats": 3,
    "experiments": [
        {
            "experiment": "workload-mix",
            "params": {
                "workload": "mixed(16)",
                "topology": "fanout-2",
                "streams": 2,
            },
        },
    ],
}


def _repeat_records(run_dir):
    """(repeat, seed) -> (status, canonical series) for every record."""
    return {
        (r.repeat, r.seed): (r.status, json.dumps(r.series, sort_keys=True))
        for r in ResultStore(run_dir).latest().values()
    }


@needs_fork
def test_repeats_identical_across_backends(tmp_path):
    # --repeats 3 must yield the same per-repeat records whichever
    # executor ran them: the seed lives in the spec, not the worker.
    backends = {
        "serial": "serial",
        "pool": "pool",
        "queue": QueueBackend(poll_s=0.01),
    }
    results = {}
    for name, backend in backends.items():
        outcome = run_sweep(
            SweepSpec.from_dict(REPEAT_SWEEP),
            tmp_path / name,
            jobs=2,
            backend=backend,
        )
        assert outcome.ok and outcome.total == 3
        results[name] = _repeat_records(tmp_path / name)
    assert results["serial"] == results["pool"] == results["queue"]
    # Three distinct injected seeds, three distinct sample series.
    records = results["serial"]
    assert len(records) == 3
    assert len({seed for _, seed in records}) == 3
    assert len({series for _, series in records.values()}) == 3


def test_repeat_rerun_hits_cache(tmp_path):
    # Re-running the same repeat sweep re-executes nothing: repeats
    # are content-addressed like any other spec.
    first = run_sweep(
        SweepSpec.from_dict(REPEAT_SWEEP), tmp_path / "run", backend="serial"
    )
    assert first.ok and len(first.executed) == 3
    second = run_sweep(
        SweepSpec.from_dict(REPEAT_SWEEP), tmp_path / "run", backend="serial"
    )
    assert second.ok and second.cached == 3 and not second.executed


def test_run_sweep_repeats_override(tmp_path):
    sweep = SweepSpec.from_dict(dict(REPEAT_SWEEP, repeats=1))
    outcome = run_sweep(
        sweep, tmp_path / "run", backend="serial", repeats=2
    )
    assert outcome.ok and outcome.total == 2
    with pytest.raises(SpecError, match="repeats"):
        run_sweep(
            SweepSpec.from_dict(REPEAT_SWEEP),
            tmp_path / "bad",
            backend="serial",
            repeats=0,
        )
