"""Tests for the DCOH: calibrated D2H paths and the NC-P flow."""

import pytest

from repro.cache.block import MesiState
from repro.calibration.microbench import CxlTestbench
from repro.config import asic_system, fpga_system
from repro.cxl.transactions import DcohResult


def build(config=None):
    return CxlTestbench(config or fpga_system())


def read_once(tb, addr, exclusive=False):
    results = []
    tb.device.dcoh.read(addr, results.append, exclusive=exclusive)
    tb.sim.run()
    assert len(results) == 1
    return results[0], tb.sim.now


def test_hmc_hit_path_latency():
    tb = build()
    tb.device.hmc.fill(0x1000)
    start = tb.sim.now
    result, end = read_once(tb, 0x1000)
    assert result.hmc_hit
    dcoh_only = tb.config.device.hmc_hit_ps - tb.config.device.cycles_ps(
        tb.config.device.lsu_issue_cycles + tb.config.device.lsu_complete_cycles
    )
    assert end - start == dcoh_only


def test_llc_hit_flagged():
    tb = build()
    tb.llc.demote(0x2000)
    result, _ = read_once(tb, 0x2000)
    assert not result.hmc_hit
    assert result.llc_hit
    assert not result.mem_hit


def test_mem_hit_flagged():
    tb = build()
    result, _ = read_once(tb, 0x3000)
    assert result.mem_hit


def test_fill_state_matches_request():
    tb = build()
    read_once(tb, 0x4000, exclusive=False)
    assert tb.device.hmc.peek(0x4000).state is MesiState.SHARED
    read_once(tb, 0x5000, exclusive=True)
    assert tb.device.hmc.peek(0x5000).state is MesiState.EXCLUSIVE


def test_shared_line_upgrade_goes_to_host():
    tb = build()
    read_once(tb, 0x6000, exclusive=False)
    result, _ = read_once(tb, 0x6000, exclusive=True)
    assert not result.hmc_hit  # S copy is not enough for ownership


def test_write_marks_modified():
    tb = build()
    results = []
    tb.device.dcoh.write(0x7000, results.append)
    tb.sim.run()
    assert tb.device.hmc.peek(0x7000).state is MesiState.MODIFIED


def test_dirty_victim_reported_and_written_back():
    tb = build()
    hmc = tb.device.hmc
    set_stride = hmc.array.num_sets * 64
    # Fill one set with dirty lines.
    for way in range(hmc.array.ways):
        done = []
        tb.device.dcoh.write(way * set_stride, done.append)
        tb.sim.run()
    result, _ = read_once(tb, hmc.array.ways * set_stride, exclusive=True)
    assert result.dirty_victim
    tb.sim.run()  # let the async DirtyEvict drain
    assert tb.llc.writebacks >= 0  # data landed back in the LLC/memory path


def test_nc_push_invalidates_hmc_and_fills_llc():
    tb = build()
    tb.device.hmc.fill(0x8000, MesiState.EXCLUSIVE)
    tb.device.hmc.mark_modified(0x8000)
    done = []
    tb.device.dcoh.nc_push(0x8000, lambda: done.append(True))
    tb.sim.run()
    assert done == [True]
    assert tb.device.hmc.peek(0x8000) is None
    assert tb.llc.holds(0x8000)


def test_explicit_evict_dirty():
    tb = build()
    results = []
    tb.device.dcoh.write(0x9000, results.append)
    tb.sim.run()
    done = []
    tb.device.dcoh.evict(0x9000, lambda: done.append(True))
    tb.sim.run()
    assert done == [True]
    assert tb.device.hmc.peek(0x9000) is None


def test_evict_absent_is_noop():
    tb = build()
    done = []
    tb.device.dcoh.evict(0xA000, lambda: done.append(True))
    tb.sim.run()
    assert done == [True]


def test_numa_extra_distance_added():
    cfg = fpga_system()
    base_tb = build(cfg)
    base_result = base_tb.latency_mem_hit(trials=2, node=7)
    far_tb = build(cfg)
    far_result = far_tb.latency_mem_hit(trials=2, node=3)
    delta = far_result.median_ns - base_result.median_ns
    assert delta == pytest.approx(88.0, abs=8.0)
