"""Parity suite for data-driven topologies.

Locks down the JSON topology format: every registered topology must
survive ``to_dict -> dump -> load -> from_dict`` bit-identically, and a
system built from the reloaded spec must *measure* the same as one
built from the in-code registration.  Also pins the builder-constructed
Supernode (per-host systems assembled by ``supernode.fabric``) against
the monolithic construction path it replaced.
"""

import json

import pytest

from cli_helpers import run_cli

from repro.config import asic_system, fpga_system
from repro.core.supernode import Supernode, SupernodeHost, make_supernode_host
from repro.harness.topology_experiments import fanout_scaling, topology_scaling
from repro.rao.circustent import make_workload
from repro.system import (
    SHIPPED_TOPOLOGY_DIR,
    SystemBuilder,
    Topology,
    TopologySchemaError,
    dump_topology,
    load_topology,
    register_topology_file,
    resolve_topology,
    topology_by_name,
    topology_names,
)


# ----------------------- dump/load round trips ------------------------
@pytest.mark.parametrize("name", topology_names())
def test_registered_topology_json_roundtrip(name, tmp_path):
    topology = topology_by_name(name)
    path = tmp_path / f"{name}.json"
    dump_topology(topology, path)
    reloaded = load_topology(path)
    assert reloaded == topology
    assert reloaded.to_dict() == topology.to_dict()


@pytest.mark.parametrize("name", topology_names())
def test_reloaded_topology_builds_identical_structure(name, tmp_path):
    path = tmp_path / f"{name}.json"
    dump_topology(topology_by_name(name), path)
    built_code = SystemBuilder(fpga_system()).build(name)
    built_json = SystemBuilder(fpga_system()).build(load_topology(path))
    assert set(built_code.nodes) == set(built_json.nodes)
    for node_name in built_code.nodes:
        assert type(built_code.nodes[node_name]) is type(built_json.nodes[node_name])


# ----------------------- measurement parity ---------------------------
def _microbench_latency(system):
    lsu = system.node("lsu")
    addrs = lsu.sequential_lines(0x200000, 32)
    for addr in addrs:
        system.llc.flush(addr)
    return lsu.run_latency(addrs).latencies.samples


def test_microbench_measures_identical_from_json(tmp_path):
    path = tmp_path / "microbench.json"
    dump_topology(topology_by_name("microbench"), path)
    direct = _microbench_latency(SystemBuilder(fpga_system()).build("microbench"))
    reloaded = _microbench_latency(
        SystemBuilder(fpga_system()).build(load_topology(path))
    )
    assert reloaded == direct


def test_rao_nic_measures_identical_from_json(tmp_path):
    path = tmp_path / "rao-cxl.json"
    dump_topology(topology_by_name("rao-cxl"), path)
    workload = make_workload("STRIDE1", ops=128, table_bytes=1 << 30, seed=7)

    runs = []
    for topology in ("rao-cxl", load_topology(path)):
        nic = SystemBuilder(asic_system()).build(topology).node("cxl-nic")
        nic.warm()
        runs.append(nic.run(workload.requests))
    assert runs[1].elapsed_ps == runs[0].elapsed_ps
    assert runs[1].throughput_mops == runs[0].throughput_mops


def test_topo_scale_family_matches_legacy_fanout():
    via_family = topology_scaling(
        topology="fanout(2)", count=8, trials=2, bw_count=128
    )
    legacy = fanout_scaling(2, count=8, trials=2, bw_count=128)
    assert via_family.series == legacy.series


def test_topo_scale_runs_json_shipped_layout():
    result = topology_scaling(topology="fanout-8", count=4, trials=2, bw_count=64)
    assert set(result.series["bandwidth_gbps"]) == {
        *(f"dev{i}" for i in range(8)), "all"
    }


def test_topo_scale_rejects_lsu_free_topology():
    with pytest.raises(ValueError, match="lsu"):
        topology_scaling(topology="rpc")


# ----------------------- supernode via builder ------------------------
def _supernode_fingerprint(supernode):
    trace = [
        supernode.coherent_access("host0", 0x1000),
        supernode.coherent_access("host0", 0x1000),
        supernode.coherent_access("host1", 0x1000, exclusive=True),
        supernode.coherent_access("host0", 0x1000),
        supernode.coherent_access("host1", 0x2000),
    ]
    leased = supernode.lease_memory("host0", 1 << 29)
    return {
        "trace": trace,
        "remote": {
            name: (host.remote_accesses, host.remote_latency_ps)
            for name, host in supernode.hosts.items()
        },
        "leased": leased,
        "capacity": supernode.total_capacity_bytes("host0"),
        "free": supernode.free_fabric_bytes,
        "util": supernode.utilization(),
    }


def test_builder_supernode_matches_monolithic_construction():
    direct = Supernode(fpga_system(), hosts=2)
    built = SystemBuilder(fpga_system()).build("supernode-2host").node("fabric")
    assert _supernode_fingerprint(built) == _supernode_fingerprint(direct)


def test_builder_supernode_matches_from_json(tmp_path):
    path = tmp_path / "supernode.json"
    dump_topology(topology_by_name("supernode-2host"), path)
    system = SystemBuilder(fpga_system()).build(load_topology(path))
    fabric = system.node("fabric")
    direct = Supernode(fpga_system(), hosts=2)
    assert _supernode_fingerprint(fabric) == _supernode_fingerprint(direct)


def test_builder_supernode_hosts_are_the_fabric_hosts():
    system = SystemBuilder(fpga_system()).build("supernode-2host")
    fabric = system.node("fabric")
    for name in ("host0", "host1"):
        assert system.node(name) is fabric.hosts[name]


def test_make_supernode_host_is_the_per_host_unit():
    host = make_supernode_host(fpga_system(), "host7")
    assert isinstance(host, SupernodeHost)
    assert host.numa.node(0).region.size == fpga_system().host.dram_size


# ----------------------- shipped JSON layouts -------------------------
def test_shipped_layout_dir_exists_and_is_nonempty():
    assert SHIPPED_TOPOLOGY_DIR.is_dir()
    assert list(SHIPPED_TOPOLOGY_DIR.glob("*.json"))


@pytest.mark.parametrize(
    "path", sorted(SHIPPED_TOPOLOGY_DIR.glob("*.json")), ids=lambda p: p.stem
)
def test_shipped_layouts_validate_register_and_build(path):
    topology = load_topology(path)  # schema-validates, including kinds
    assert topology.name in topology_names()  # auto-registered at import
    system = SystemBuilder(fpga_system()).build(topology.name)
    assert set(system.nodes) == {n.name for n in topology.nodes}


def test_shipped_fanout8_matches_the_family_layout():
    """Drift guard: the hand-written JSON must stay structurally equal
    to fanout_topology(8) (only the description may differ), so the
    registered name and the family ref always build the same system."""
    from repro.system import fanout_topology

    shipped = load_topology(SHIPPED_TOPOLOGY_DIR / "fanout-8.json")
    generated = fanout_topology(8)
    assert shipped.nodes == generated.nodes
    assert shipped.links == generated.links
    assert shipped.name == generated.name


def test_shipped_supernode4_matches_the_family_layout():
    from repro.system import supernode_topology

    shipped = load_topology(SHIPPED_TOPOLOGY_DIR / "supernode-4host.json")
    generated = supernode_topology(4, fabric_memory_bytes=4 << 30)
    assert shipped.nodes == generated.nodes
    assert shipped.links == generated.links
    assert shipped.name == generated.name


def test_file_registered_topologies_reject_overrides_clearly():
    with pytest.raises(TypeError, match="accepts no overrides"):
        topology_by_name("fanout-8", seed=99)


def test_register_topology_file_skips_taken_names(tmp_path):
    path = tmp_path / "microbench.json"
    dump_topology(topology_by_name("microbench"), path)
    assert register_topology_file(path) is None  # name already registered


def test_register_topology_file_skips_invalid_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    assert register_topology_file(path) is None


# ----------------------- resolve_topology -----------------------------
def test_resolve_topology_passes_instances_through():
    topology = topology_by_name("microbench")
    assert resolve_topology(topology) is topology
    with pytest.raises(TypeError):
        resolve_topology(topology, seed=7)


def test_resolve_topology_forwards_family_overrides():
    assert len(resolve_topology("fanout(3)", seed=9).by_kind("cxl.type1")) == 3
    assert resolve_topology("supernode(3)").by_kind("supernode.host")


# ------------------- multi-argument family refs -----------------------
def test_parse_topology_ref_accepts_multi_arg_refs():
    from repro.system import parse_topology_ref

    assert parse_topology_ref("fanout(4)") == ("fanout", (4,))
    assert parse_topology_ref("supernode(2, 536870912)") == (
        "supernode", (2, 536870912),
    )
    assert parse_topology_ref("microbench") == ("microbench", None)


@pytest.mark.parametrize("bad", ["fanout()", "fanout(x)", "fanout(1,)", "supernode(2, big)"])
def test_malformed_family_refs_raise_schema_error(bad):
    from repro.system import parse_topology_ref

    with pytest.raises(TopologySchemaError):
        parse_topology_ref(bad)


def test_supernode_family_takes_hosts_and_granule():
    topology = resolve_topology(
        "supernode(3, 536870912)", fabric_memory_bytes=1 << 30
    )
    assert len(topology.by_kind("supernode.host")) == 3
    fabric = topology.by_kind("supernode.fabric")[0]
    assert fabric.params["memory_granule"] == 536870912
    # The smaller granule carves finer leasable chunks from the pool.
    system = SystemBuilder(fpga_system()).build(topology)
    supernode = system.node("fabric")
    assert supernode.free_fabric_bytes == 1 << 30
    assert len(supernode.manager.holdings("host0")) == 0
    supernode.lease_memory("host0", 1 << 20)
    assert supernode.free_fabric_bytes == (1 << 30) - (512 << 20)


def test_builder_rejects_over_granulated_fabric_pools():
    from repro.system import TopologyConfigError

    topology = resolve_topology("supernode(2, 268435456)")  # 16 granules
    with pytest.raises(TopologyConfigError, match="root-switch ports"):
        SystemBuilder(fpga_system()).build(topology)


def test_root_ports_param_forwards_to_the_built_switch():
    from repro.system.topology import NodeSpec, supernode_topology

    base = supernode_topology(2, memory_granule=256 << 20)  # 16 granules
    fabric = base.node("fabric")
    widened = Topology(
        base.name,
        base.description,
        nodes=tuple(
            NodeSpec("fabric", "supernode.fabric",
                     dict(fabric.params, root_ports=32))
            if spec.name == "fabric" else spec
            for spec in base.nodes
        ),
        links=base.links,
    )
    # Validation accepts the widened budget AND the build honors it.
    system = SystemBuilder(fpga_system()).build(widened)
    supernode = system.node("fabric")
    assert len(supernode.fabric.switch("root").endpoints) == 16


def test_non_integral_family_args_raise_schema_error():
    with pytest.raises(TopologySchemaError, match="must be an integer"):
        resolve_topology("fanout(1.5)")
    with pytest.raises(TopologySchemaError, match="must be an integer"):
        resolve_topology("supernode(2, 0.5)")


# ------------------- inline specs as sweep values ---------------------
def _inline_spec():
    return topology_by_name("fanout-2").to_dict()


def test_resolve_topology_accepts_inline_specs():
    topology = resolve_topology(_inline_spec())
    assert topology == topology_by_name("fanout-2")
    with pytest.raises(TypeError):
        resolve_topology(_inline_spec(), seed=7)


def test_sweep_grids_accept_inline_topology_specs():
    from repro.experiments.spec import SweepSpec

    sweep = SweepSpec.from_dict(
        {
            "name": "inline",
            "experiments": [
                {
                    "experiment": "topo-scale",
                    "grid": {"topology": [_inline_spec(), "fanout(3)"]},
                }
            ],
        }
    )
    sweep.validate()
    specs = sweep.expand()
    assert len(specs) == 2
    # Inline specs content-hash like any other param value.
    assert len({spec.spec_hash for spec in specs}) == 2


def test_sweep_rejects_malformed_inline_topology_specs():
    from repro.experiments.spec import SpecError, SweepSpec

    bad = _inline_spec()
    bad["links"].append({"a": "host", "b": "ghost"})
    sweep = SweepSpec.from_dict(
        {
            "name": "inline-bad",
            "experiments": [
                {"experiment": "topo-scale", "grid": {"topology": [bad]}}
            ],
        }
    )
    with pytest.raises(SpecError, match="ghost"):
        sweep.validate()


def test_topology_scaling_runs_an_inline_spec():
    from repro.harness.topology_experiments import topology_scaling

    inline = topology_scaling(topology=_inline_spec(), count=2, trials=1, bw_count=16)
    named = topology_scaling(topology="fanout-2", count=2, trials=1, bw_count=16)
    assert inline.series == named.series


# ------------------- pre-build config validation ----------------------
def test_builder_rejects_over_budget_ports():
    from repro.system import TopologyConfigError
    from repro.system.topology import LinkSpec, NodeSpec

    nodes = [NodeSpec("host", "host")]
    links = []
    for i in range(17):  # host budgets 16 flexbus/PCIe ports
        nodes.append(NodeSpec(f"dev{i}", "cxl.type1"))
        links.append(LinkSpec(f"dev{i}", "host", "cxl.flexbus"))
    topology = Topology("too-wide", nodes=tuple(nodes), links=tuple(links))
    with pytest.raises(TopologyConfigError, match="16"):
        SystemBuilder(fpga_system()).build(topology)


def test_ports_param_widens_the_budget():
    from repro.system.topology import LinkSpec, NodeSpec

    nodes = [NodeSpec("host", "host", {"ports": 32})]
    links = []
    for i in range(17):
        nodes.append(NodeSpec(f"dev{i}", "cxl.type1"))
        links.append(LinkSpec(f"dev{i}", "host", "cxl.flexbus"))
    topology = Topology("wide-ok", nodes=tuple(nodes), links=tuple(links))
    system = SystemBuilder(fpga_system()).build(topology)
    assert len(system.nodes) == 18


def test_builder_rejects_hdm_overflow_and_lists_every_problem():
    from repro.system import TopologyConfigError, hdm_capacity_bytes
    from repro.system.topology import LinkSpec, NodeSpec

    config = fpga_system()
    capacity = hdm_capacity_bytes(config)
    topology = Topology(
        "hdm-hungry",
        nodes=(
            NodeSpec("host", "host"),
            NodeSpec("xpu0", "cxl.type2", {"hdm_bytes": capacity}),
            NodeSpec("xpu1", "cxl.type2", {"hdm_bytes": capacity}),
            NodeSpec("bad", "cxl.type3", {"hdm_bytes": 0}),
        ),
        links=(
            LinkSpec("xpu0", "host"),
            LinkSpec("xpu1", "host"),
            LinkSpec("bad", "host"),
        ),
    )
    with pytest.raises(TopologyConfigError) as err:
        SystemBuilder(config).build(topology)
    message = str(err.value)
    assert "exceeds the host's decode capacity" in message
    assert "positive hdm_bytes" in message  # both violations listed at once


def test_builder_rejects_bad_fabric_granules():
    from repro.system import TopologyConfigError
    from repro.system.topology import NodeSpec

    topology = Topology(
        "bad-granule",
        nodes=(
            NodeSpec("host0", "supernode.host"),
            NodeSpec(
                "fabric",
                "supernode.fabric",
                {"fabric_memory_bytes": 1 << 30, "memory_granule": 2 << 30},
            ),
        ),
    )
    with pytest.raises(TopologyConfigError, match="memory_granule"):
        SystemBuilder(fpga_system()).build(topology)


def test_every_registered_topology_passes_config_validation():
    from repro.system import validate_topology_config

    for name in topology_names():
        validate_topology_config(topology_by_name(name), fpga_system())
        validate_topology_config(topology_by_name(name), asic_system())


# ----------------------------- CLI ------------------------------------
def test_cli_dump_validate_load_roundtrip(tmp_path):
    target = tmp_path / "fanout2.json"
    code, out = run_cli("topology", "dump", "fanout-2", "--out", str(target))
    assert code == 0 and "wrote" in out
    assert json.loads(target.read_text())["name"] == "fanout-2"

    code, out = run_cli("topology", "validate", str(target))
    assert code == 0
    assert "ok" in out and "fanout-2" in out

    code, out = run_cli("topology", "load", str(target))
    assert code == 0
    assert "lsu1" in out and "cxl.type1" in out


def test_cli_dump_without_out_prints_json():
    code, out = run_cli("topology", "dump", "microbench")
    assert code == 0
    assert json.loads(out)["name"] == "microbench"


def test_cli_validate_reports_schema_errors(tmp_path):
    bad = tmp_path / "bad.json"
    spec = topology_by_name("microbench").to_dict()
    spec["links"].append({"a": "host", "b": "ghost"})
    bad.write_text(json.dumps(spec))
    good = tmp_path / "good.json"
    dump_topology(topology_by_name("microbench"), good)

    code, out = run_cli("topology", "validate", str(good), str(bad))
    assert code == 2
    assert "ok" in out and "FAIL" in out and "ghost" in out


def test_cli_load_missing_file_is_actionable(tmp_path):
    code, out = run_cli("topology", "load", str(tmp_path / "absent.json"))
    assert code == 2
    assert "cannot read" in out


def test_cli_validate_without_files_errors():
    code, out = run_cli("topology", "validate")
    assert code == 2
    assert "JSON spec" in out


def test_cli_out_is_rejected_outside_dump(tmp_path):
    code, out = run_cli(
        "topology", "show", "fanout-2", "--out", str(tmp_path / "x.json")
    )
    assert code == 2
    assert "only valid" in out
    assert not (tmp_path / "x.json").exists()
