"""Tests for ATS (ATC + IOMMU) and HMM fault/migration paths."""

import pytest

from repro.kernel.ats import Atc, Iommu
from repro.kernel.hmm import Hmm, MigrationError
from repro.kernel.numa import NodeKind, NumaNode, NumaRegistry
from repro.kernel.page_table import PAGE_SIZE, PageFault, UnifiedPageTable
from repro.mem.address import AddressRange


def build(cpu_pages=8, xpu_pages=8):
    pt = UnifiedPageTable()
    reg = NumaRegistry()
    reg.add(NumaNode(0, NodeKind.CPU, AddressRange(0, cpu_pages * PAGE_SIZE)))
    reg.add(
        NumaNode(
            1,
            NodeKind.XPU,
            AddressRange(cpu_pages * PAGE_SIZE, (cpu_pages + xpu_pages) * PAGE_SIZE),
        )
    )
    hmm = Hmm(pt, reg)
    atc = Atc("dev.atc", hmm.iommu, entries=4)
    return pt, reg, hmm, atc


def test_first_touch_places_near_accessor():
    pt, reg, hmm, _atc = build()
    pt.map(0x10000)
    hmm.touch(0x10000, accessor_node=1)
    assert pt.entry(0x10000).node == 1
    pt.map(0x20000)
    hmm.touch(0x20000, accessor_node=0)
    assert pt.entry(0x20000).node == 0


def test_atc_miss_then_hit():
    pt, _reg, hmm, atc = build()
    pt.map(0x10000)
    hmm.handle_fault(0x10000, accessor_node=1)
    pa1 = atc.translate(0x10080)
    assert atc.misses == 1 and atc.hits == 0
    pa2 = atc.translate(0x10040)
    assert atc.hits == 1
    assert pa1 - pa2 == 0x40


def test_atc_translate_frameless_faults():
    pt, _reg, _hmm, atc = build()
    pt.map(0x10000)
    with pytest.raises(PageFault):
        atc.translate(0x10000)


def test_atc_lru_capacity():
    pt, _reg, hmm, atc = build()
    for i in range(5):
        addr = 0x10000 + i * PAGE_SIZE
        pt.map(addr)
        hmm.handle_fault(addr, accessor_node=0)
        atc.translate(addr)
    # Capacity is 4: the first translation was evicted.
    assert 0x10000 not in atc
    assert 0x14000 in atc


def test_migration_invalidates_atc():
    pt, reg, hmm, atc = build()
    pt.map(0x10000)
    hmm.handle_fault(0x10000, accessor_node=0)
    atc.translate(0x10000)
    assert 0x10000 in atc
    hmm.migrate_page(0x10000, target_node=1)
    assert 0x10000 not in atc  # ATS invalidation propagated
    assert pt.entry(0x10000).node == 1
    assert atc.invalidated == 1
    # A fresh translation returns the new frame.
    pa = atc.translate(0x10000)
    assert reg.node_of_frame(pa // PAGE_SIZE).node_id == 1


def test_migration_frees_old_frame():
    pt, reg, hmm, _atc = build(cpu_pages=1)
    pt.map(0x10000)
    hmm.handle_fault(0x10000, accessor_node=0)
    assert reg.node(0).free_frames == 0
    hmm.migrate_page(0x10000, target_node=1)
    assert reg.node(0).free_frames == 1


def test_migrate_to_same_node_is_noop():
    pt, _reg, hmm, _atc = build()
    pt.map(0x10000)
    hmm.handle_fault(0x10000, accessor_node=0)
    gen = pt.generation
    hmm.migrate_page(0x10000, target_node=0)
    assert pt.generation == gen
    assert hmm.migrations == 0


def test_migrate_unbacked_page_rejected():
    pt, _reg, hmm, _atc = build()
    pt.map(0x10000)
    with pytest.raises(MigrationError):
        hmm.migrate_page(0x10000, target_node=1)


def test_device_callbacks_block_and_resume():
    pt, _reg, hmm, _atc = build()
    blocked, resumed = [], []
    hmm.register_device(
        "dev0", memory_node=1,
        block_access=blocked.append, resume_access=resumed.append,
    )
    pt.map(0x10000)
    hmm.handle_fault(0x10000, accessor_node=0)
    hmm.migrate_page(0x10000, target_node=1)
    assert blocked == [pt.entry(0x10000).vpn]
    assert resumed == blocked
    assert hmm.devices[0].migrations_seen == 1


def test_duplicate_device_registration_rejected():
    _pt, _reg, hmm, _atc = build()
    hmm.register_device("dev0", None, lambda v: None, lambda v: None)
    with pytest.raises(ValueError):
        hmm.register_device("dev0", None, lambda v: None, lambda v: None)


def test_release_page_returns_frame():
    pt, reg, hmm, _atc = build()
    pt.map(0x10000)
    hmm.handle_fault(0x10000, accessor_node=0)
    free_before = reg.node(0).free_frames
    hmm.release_page(0x10000)
    assert reg.node(0).free_frames == free_before + 1
    assert pt.lookup(0x10000) is None


def test_resident_by_node():
    pt, _reg, hmm, _atc = build()
    for i, node in enumerate((0, 0, 1)):
        addr = 0x10000 + i * PAGE_SIZE
        pt.map(addr)
        hmm.handle_fault(addr, accessor_node=node)
    by_node = hmm.resident_by_node()
    assert by_node == {0: 2 * PAGE_SIZE, 1: PAGE_SIZE}
