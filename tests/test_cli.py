"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    import repro.cli as cli
    import sys

    old = sys.stdout
    sys.stdout = out
    try:
        code = cli.main(list(argv))
    finally:
        sys.stdout = old
    return code, out.getvalue()


def test_list_names_every_experiment():
    code, out = run_cli("list")
    assert code == 0
    for name in ("table1", "fig12", "fig17", "fig18b", "mape"):
        assert name in out


def test_run_single_experiment():
    code, out = run_cli("run", "table2")
    assert code == 0
    assert "SimCXL" in out


def test_run_unknown_experiment():
    code, out = run_cli("run", "fig99")
    assert code == 2
    assert "unknown experiment" in out


def test_run_writes_to_file(tmp_path):
    target = tmp_path / "result.txt"
    code, _out = run_cli("run", "table1", "--out", str(target))
    assert code == 0
    assert "Xeon" in target.read_text()


def test_info_shows_profiles():
    code, out = run_cli("info")
    assert code == 0
    assert "CXL-FPGA@400MHz" in out
    assert "CXL-ASIC@1.5GHz" in out
    assert "115.0 ns" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
