"""Tests for the command-line interface."""

import pytest

from cli_helpers import run_cli

from repro.cli import main


def test_list_names_every_experiment():
    code, out = run_cli("list")
    assert code == 0
    for name in ("table1", "fig12", "fig17", "fig18b", "mape"):
        assert name in out


def test_run_single_experiment():
    code, out = run_cli("run", "table2")
    assert code == 0
    assert "SimCXL" in out


def test_run_multiple_experiments():
    code, out = run_cli("run", "table1", "table2")
    assert code == 0
    assert "Xeon" in out
    assert "SimCXL" in out


def test_run_unknown_experiment():
    code, out = run_cli("run", "fig99")
    assert code == 2
    assert "unknown experiment" in out


def test_run_validates_all_names_before_running_any():
    code, out = run_cli("run", "table1", "fig99")
    assert code == 2
    assert "Xeon" not in out  # nothing executed


def test_list_aligns_long_ids():
    code, out = run_cli("list")
    assert code == 0
    # Doc columns line up even for the longest id (e.g. 'headline').
    starts = {
        line.index(line.split(maxsplit=1)[1])
        for line in out.splitlines()[1:]
        if line.strip()
    }
    assert len(starts) == 1


def test_run_writes_to_file(tmp_path):
    target = tmp_path / "result.txt"
    code, _out = run_cli("run", "table1", "--out", str(target))
    assert code == 0
    assert "Xeon" in target.read_text()


def test_info_shows_profiles():
    code, out = run_cli("info")
    assert code == 0
    assert "CXL-FPGA@400MHz" in out
    assert "CXL-ASIC@1.5GHz" in out
    assert "115.0 ns" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_bench_quick_writes_json(tmp_path):
    import json

    out_path = tmp_path / "BENCH_engine.json"
    code, out = run_cli("bench", "--quick", "--out", str(out_path))
    assert code == 0
    assert "wrote" in out
    payload = json.loads(out_path.read_text())
    assert payload["quick"] is True
    workloads = payload["workloads"]
    for name in (
        "engine_drain", "engine_cancel", "cache_array", "rpc",
        "system_build", "topology_load", "sweep_quick",
    ):
        assert name in workloads
        assert workloads[name]["wall_s"] >= 0
    assert workloads["engine_drain"]["events_per_sec"] > 0
    assert workloads["system_build"]["builds_per_sec"] > 0
    assert workloads["topology_load"]["loads_per_sec"] > 0
    assert workloads["sweep_quick"]["specs"] == 10
    # Fast-mode MESI checking is restored after the bench.
    from repro.cache.mesi import fast_mode
    assert not fast_mode()
