"""Tests for NUMA nodes, allocation policies, and numa_init."""

import pytest

from repro.kernel.numa import NodeKind, NumaNode, NumaRegistry, numa_init
from repro.kernel.numa import OutOfMemory
from repro.kernel.page_table import PAGE_SIZE
from repro.mem.address import AddressRange


def region(start_pages, pages, name=""):
    return AddressRange(
        start_pages * PAGE_SIZE, (start_pages + pages) * PAGE_SIZE, name
    )


def test_node_frame_allocation_within_region():
    node = NumaNode(0, NodeKind.CPU, region(0, 4))
    frames = [node.alloc_frame() for _ in range(4)]
    assert frames == [0, 1, 2, 3]
    with pytest.raises(OutOfMemory):
        node.alloc_frame()


def test_node_free_and_reuse():
    node = NumaNode(0, NodeKind.CPU, region(10, 2))
    f = node.alloc_frame()
    node.free_frame(f)
    assert node.alloc_frame() == f


def test_node_rejects_foreign_frame():
    node = NumaNode(0, NodeKind.CPU, region(0, 2))
    with pytest.raises(ValueError):
        node.free_frame(100)


def test_registry_local_allocation_with_fallback():
    reg = NumaRegistry()
    reg.add(NumaNode(0, NodeKind.CPU, region(0, 1)))
    reg.add(NumaNode(1, NodeKind.XPU, region(1, 2)))
    f0 = reg.alloc_local(0)
    assert reg.node_of_frame(f0).node_id == 0
    # Node 0 is now full; local allocation falls back to node 1.
    f1 = reg.alloc_local(0)
    assert reg.node_of_frame(f1).node_id == 1


def test_registry_interleaved_round_robin():
    reg = NumaRegistry()
    reg.add(NumaNode(0, NodeKind.CPU, region(0, 4)))
    reg.add(NumaNode(1, NodeKind.CPU, region(4, 4)))
    nodes = [reg.node_of_frame(reg.alloc_interleaved()).node_id for _ in range(4)]
    assert nodes == [0, 1, 0, 1]


def test_registry_exhaustion():
    reg = NumaRegistry()
    reg.add(NumaNode(0, NodeKind.CPU, region(0, 1)))
    reg.alloc_local(0)
    with pytest.raises(OutOfMemory):
        reg.alloc_local(0)
    with pytest.raises(OutOfMemory):
        reg.alloc_interleaved()


def test_duplicate_node_rejected():
    reg = NumaRegistry()
    reg.add(NumaNode(0, NodeKind.CPU, region(0, 1)))
    with pytest.raises(ValueError):
        reg.add(NumaNode(0, NodeKind.CPU, region(1, 1)))


def test_numa_init_orders_and_kinds():
    reg = numa_init(
        host_regions=[region(0, 4), region(4, 4)],
        device_regions=[region(8, 4)],
        expander_regions=[region(12, 4)],
    )
    kinds = [n.kind for n in reg.nodes]
    assert kinds == [NodeKind.CPU, NodeKind.CPU, NodeKind.XPU, NodeKind.MEMORY_ONLY]
    assert [n.node_id for n in reg.nodes] == [0, 1, 2, 3]
    assert len(reg.by_kind(NodeKind.CPU)) == 2
    # The expander appears as a CPU-less node, exactly like the paper's
    # Samsung device.
    assert reg.node(3).kind is NodeKind.MEMORY_ONLY
