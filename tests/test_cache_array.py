"""Tests for the set-associative cache array."""

import pytest

from repro.cache.array import CacheArray
from repro.cache.block import MesiState


def small_array():
    # 2 sets x 2 ways x 64B lines = 256 bytes.
    return CacheArray(size=256, ways=2, name="t")


def test_geometry():
    arr = small_array()
    assert arr.num_sets == 2


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheArray(size=100, ways=2)
    with pytest.raises(ValueError):
        CacheArray(size=0, ways=1)


def test_miss_then_hit():
    arr = small_array()
    assert arr.lookup(0) is None
    arr.insert(0, MesiState.EXCLUSIVE)
    assert arr.lookup(0) is not None
    assert arr.hits == 1
    assert arr.misses == 1


def test_same_line_different_offsets_hit():
    arr = small_array()
    arr.insert(0, MesiState.SHARED)
    assert arr.lookup(63) is not None


def test_lru_eviction():
    arr = small_array()
    # Set 0 holds lines 0 and 128 (two ways).
    arr.insert(0, MesiState.EXCLUSIVE)
    arr.insert(128, MesiState.EXCLUSIVE)
    arr.lookup(0)  # make line 0 most recent
    _block, victim = arr.insert(256, MesiState.EXCLUSIVE)
    assert victim is not None
    victim_addr, victim_block = victim
    assert victim_addr == 128


def test_dirty_eviction_counted():
    arr = small_array()
    arr.insert(0, MesiState.MODIFIED)
    arr.insert(128, MesiState.EXCLUSIVE)
    arr.lookup(128)
    _b, victim = arr.insert(256, MesiState.EXCLUSIVE)
    assert victim[1].dirty
    assert arr.dirty_evictions == 1


def test_locked_line_not_evicted():
    arr = small_array()
    b0, _ = arr.insert(0, MesiState.MODIFIED)
    b0.locked = True
    arr.insert(128, MesiState.EXCLUSIVE)
    _b, victim = arr.insert(256, MesiState.EXCLUSIVE)
    assert victim[0] == 128  # the unlocked way went instead


def test_all_ways_locked_raises():
    arr = small_array()
    b0, _ = arr.insert(0, MesiState.MODIFIED)
    b1, _ = arr.insert(128, MesiState.MODIFIED)
    b0.locked = True
    b1.locked = True
    with pytest.raises(RuntimeError):
        arr.insert(256, MesiState.EXCLUSIVE)


def test_insert_existing_updates_state():
    arr = small_array()
    arr.insert(0, MesiState.SHARED)
    block, victim = arr.insert(0, MesiState.MODIFIED)
    assert victim is None
    assert block.state is MesiState.MODIFIED
    assert arr.occupancy == 1


def test_invalidate():
    arr = small_array()
    arr.insert(0, MesiState.EXCLUSIVE)
    old = arr.invalidate(0)
    assert old is not None
    assert arr.peek(0) is None
    assert arr.invalidate(0) is None


def test_insert_invalid_state_rejected():
    arr = small_array()
    with pytest.raises(ValueError):
        arr.insert(0, MesiState.INVALID)


def test_blocks_iteration_addresses():
    arr = small_array()
    arr.insert(64, MesiState.EXCLUSIVE)   # set 1
    arr.insert(128, MesiState.SHARED)     # set 0
    addrs = {addr for addr, _block in arr.blocks()}
    assert addrs == {64, 128}


def test_hit_rate_and_reset():
    arr = small_array()
    arr.insert(0, MesiState.EXCLUSIVE)
    arr.lookup(0)   # hit
    arr.lookup(64)  # miss
    assert arr.hit_rate == pytest.approx(0.5)
    arr.reset_stats()
    assert arr.hits == 0 and arr.misses == 0


def test_peek_does_not_touch_lru():
    arr = small_array()
    arr.insert(0, MesiState.EXCLUSIVE)
    arr.insert(128, MesiState.EXCLUSIVE)
    arr.peek(0)  # no LRU update: line 0 stays oldest
    _b, victim = arr.insert(256, MesiState.EXCLUSIVE)
    assert victim[0] == 0


# ----------------------------------------------------------------------
# Statistics contract (see the module docstring in cache/array.py)
# ----------------------------------------------------------------------

def test_lookup_without_touch_still_counts():
    arr = small_array()
    arr.insert(0, MesiState.EXCLUSIVE)
    arr.lookup(0, touch=False)
    arr.lookup(64, touch=False)
    assert arr.hits == 1
    assert arr.misses == 1


def test_lookup_count_false_leaves_stats_alone():
    arr = small_array()
    arr.insert(0, MesiState.EXCLUSIVE)
    assert arr.lookup(0, count=False) is not None
    assert arr.lookup(64, count=False) is None
    assert arr.hits == 0
    assert arr.misses == 0


def test_lookup_touch_false_does_not_update_lru():
    arr = small_array()
    arr.insert(0, MesiState.EXCLUSIVE)
    arr.insert(128, MesiState.EXCLUSIVE)
    arr.lookup(0, touch=False)  # counted, but line 0 stays oldest
    _b, victim = arr.insert(256, MesiState.EXCLUSIVE)
    assert victim[0] == 0


def test_peek_counts_no_stats():
    arr = small_array()
    arr.insert(0, MesiState.EXCLUSIVE)
    arr.peek(0)
    arr.peek(64)
    assert arr.hits == 0
    assert arr.misses == 0


def test_miss_then_fill_counts_one_miss():
    # The canonical controller sequence: a counted lookup miss, then
    # the fill when data returns.  Exactly one miss, zero hits.
    arr = small_array()
    assert arr.lookup(0) is None
    arr.insert(0, MesiState.EXCLUSIVE)
    assert arr.misses == 1
    assert arr.hits == 0
    assert arr.lookup(0) is not None
    assert arr.hits == 1
    assert arr.misses == 1


# ----------------------------------------------------------------------
# Power-of-two geometry and shift/mask indexing
# ----------------------------------------------------------------------

def test_non_power_of_two_sets_rejected():
    with pytest.raises(ValueError):
        CacheArray(size=3 * 2 * 64, ways=2)  # 3 sets


def test_non_power_of_two_line_rejected():
    with pytest.raises(ValueError):
        CacheArray(size=192, ways=2, line=48)


def test_index_tag_round_trip():
    arr = CacheArray(size=1024, ways=2)  # 8 sets
    for addr in (0, 64, 63, 512, 0x12345_67C0, (1 << 40) + 3 * 64 + 17):
        index, tag = arr.index_tag(addr)
        assert 0 <= index < arr.num_sets
        assert arr._block_addr(index, tag) == (addr // 64) * 64


def test_insert_with_cached_probe_matches_plain_insert():
    a = small_array()
    b = small_array()
    for addr in (0, 128, 256, 64):
        a.insert(addr, MesiState.EXCLUSIVE)
        b.insert(addr, MesiState.EXCLUSIVE, probe=b.index_tag(addr))
    assert {x for x, _ in a.blocks()} == {x for x, _ in b.blocks()}
    assert a.evictions == b.evictions


def test_blocks_iterates_in_set_index_order():
    arr = CacheArray(size=1024, ways=2)  # 8 sets
    # Fill sets out of order; iteration must come back sorted by set.
    for addr in (7 * 64, 2 * 64, 5 * 64, 0):
        arr.insert(addr, MesiState.SHARED)
    indexes = [arr.index_tag(addr)[0] for addr, _b in arr.blocks()]
    assert indexes == sorted(indexes)
