"""Tests for the Cohet process memory interface."""

import numpy as np
import pytest

from repro.config import fpga_system
from repro.core.cohet import CohetSystem, DeviceSpec
from repro.core.unified_memory import AllocationError
from repro.cxl.device import DeviceType
from repro.kernel.page_table import PAGE_SIZE


def small_system(host_bytes=1 << 26, hdm_bytes=1 << 24):
    return CohetSystem(
        fpga_system(),
        host_nodes=1,
        devices=[DeviceSpec("xpu0", DeviceType.TYPE2, hdm_bytes=hdm_bytes)],
        host_bytes=host_bytes,
    )


def test_malloc_reserves_without_frames():
    system = small_system()
    p = system.process
    ptr = p.malloc(3 * PAGE_SIZE + 1)
    assert p.mapped_bytes() == 4 * PAGE_SIZE
    assert p.resident_bytes() == 0


def test_malloc_zero_rejected():
    system = small_system()
    with pytest.raises(AllocationError):
        system.process.malloc(0)


def test_overcommit_beyond_physical_memory():
    system = small_system(host_bytes=1 << 22, hdm_bytes=1 << 22)  # 8 MB total
    p = system.process
    # Reserve 64 MB of virtual space: malloc must succeed untouched.
    ptr = p.malloc(1 << 26)
    assert p.resident_bytes() == 0
    # Touching a few pages works fine.
    p.write_bytes(ptr, b"hello")
    assert p.resident_bytes() == PAGE_SIZE


def test_first_touch_by_cpu_lands_on_cpu_node():
    system = small_system()
    p = system.process
    ptr = p.malloc(PAGE_SIZE)
    p.write_bytes(ptr, b"x", accessor_node=0)
    assert p.placement(ptr, PAGE_SIZE) == {0: PAGE_SIZE}


def test_first_touch_by_xpu_lands_on_xpu_node():
    system = small_system()
    p = system.process
    xpu_node = system.driver("xpu0").memory_node
    ptr = p.malloc(PAGE_SIZE)
    p.write_bytes(ptr, b"x", accessor_node=xpu_node)
    assert p.placement(ptr, PAGE_SIZE) == {xpu_node: PAGE_SIZE}


def test_write_read_roundtrip_across_pages():
    system = small_system()
    p = system.process
    ptr = p.malloc(3 * PAGE_SIZE)
    data = bytes(range(256)) * 40  # 10240 bytes, crosses pages
    p.write_bytes(ptr + 100, data)
    assert p.read_bytes(ptr + 100, len(data)) == data


def test_typed_array_roundtrip():
    system = small_system()
    p = system.process
    ptr = p.malloc(1 << 16)
    arr = np.arange(1000, dtype=np.float64)
    p.store_array(ptr, arr)
    out = p.load_array(ptr, np.float64, 1000)
    np.testing.assert_array_equal(arr, out)


def test_free_releases_frames_and_data():
    system = small_system()
    p = system.process
    ptr = p.malloc(2 * PAGE_SIZE)
    p.write_bytes(ptr, b"abc")
    node0 = system.numa.node(0)
    used = node0.allocated_frames
    p.free(ptr)
    assert node0.allocated_frames == used - 1
    with pytest.raises(AllocationError):
        p.free(ptr)


def test_fresh_memory_reads_zero():
    system = small_system()
    p = system.process
    ptr = p.malloc(PAGE_SIZE)
    assert p.read_bytes(ptr, 16) == bytes(16)


def test_allocation_size_tracked():
    system = small_system()
    p = system.process
    ptr = p.malloc(5000)
    assert p.allocation_size(ptr) == 2 * PAGE_SIZE
