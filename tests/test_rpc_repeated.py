"""Tests for repeated / packed protobuf fields."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.message import (
    decode_message,
    encode_message,
    generate_message,
    message_stats,
)
from repro.rpc.schema import FieldDescriptor, FieldKind, MessageSchema
from repro.rpc.wire import WireType, decode_key

ITEM = MessageSchema(
    "Item",
    (FieldDescriptor(1, "sku", FieldKind.UINT),),
)

ORDER = MessageSchema(
    "Order",
    (
        FieldDescriptor(1, "ids", FieldKind.UINT, repeated=True),
        FieldDescriptor(2, "deltas", FieldKind.SINT, repeated=True),
        FieldDescriptor(3, "weights", FieldKind.DOUBLE, repeated=True),
        FieldDescriptor(4, "tags", FieldKind.STRING, repeated=True),
        FieldDescriptor(5, "items", FieldKind.MESSAGE, ITEM, repeated=True),
        FieldDescriptor(6, "note", FieldKind.STRING),
    ),
)


def test_packed_numeric_roundtrip():
    value = {"ids": [1, 128, 300, 0], "deltas": [-5, 5, 0], "weights": [1.5, -2.25]}
    assert decode_message(ORDER, encode_message(ORDER, value)) == value


def test_packed_uses_single_len_record():
    wire = encode_message(ORDER, {"ids": [1, 2, 3]})
    number, wire_type, _ = decode_key(wire)
    assert number == 1
    assert wire_type is WireType.LEN  # one packed record, not three keys


def test_unpacked_strings_and_messages_roundtrip():
    value = {
        "tags": ["a", "bb", "ccc"],
        "items": [{"sku": 1}, {"sku": 2}],
        "note": "done",
    }
    assert decode_message(ORDER, encode_message(ORDER, value)) == value


def test_empty_repeated_list_is_absent_on_wire():
    # proto3: an empty repeated field encodes to nothing.
    wire = encode_message(ORDER, {"ids": [], "tags": []})
    assert wire == b""
    assert decode_message(ORDER, wire) == {}


def test_stats_count_every_element():
    value = {"ids": [1, 2, 3], "items": [{"sku": 1}, {"sku": 2}]}
    stats = message_stats(ORDER, value)
    assert stats.scalar_fields == 3 + 2   # three ids + one sku per item
    assert stats.nested_messages == 2
    assert stats.max_depth == 1


def test_generate_repeated_fields():
    value = generate_message(ORDER, random.Random(1))
    assert isinstance(value["ids"], list)
    assert 1 <= len(value["ids"]) <= 4
    assert decode_message(ORDER, encode_message(ORDER, value)) == value


def test_packed_flag():
    assert ORDER.field_by_number(1).packed
    assert not ORDER.field_by_number(4).packed   # strings never pack
    assert not ORDER.field_by_number(6).packed   # singular


@settings(max_examples=60)
@given(
    st.fixed_dictionaries(
        {},
        optional={
            "ids": st.lists(st.integers(0, (1 << 64) - 1), max_size=10),
            "deltas": st.lists(
                st.integers(-(1 << 63), (1 << 63) - 1), max_size=10
            ),
            "weights": st.lists(
                st.floats(allow_nan=False, allow_infinity=False), max_size=6
            ),
            "tags": st.lists(st.text(max_size=12), max_size=5),
            "items": st.lists(
                st.fixed_dictionaries({"sku": st.integers(0, 1 << 32)}),
                max_size=5,
            ),
        },
    )
)
def test_repeated_roundtrip_property(value):
    decoded = decode_message(ORDER, encode_message(ORDER, value))
    # proto3 canonical form: empty repeated fields are absent.
    canonical = {k: v for k, v in value.items() if v != []}
    assert decoded == canonical
