"""Tests for the L1 peer cache."""

import pytest

from repro.cache.block import MesiState
from repro.cache.l1 import L1Cache
from repro.cache.llc import SharedLLC
from repro.cache.messages import MessageType
from repro.config import fpga_system
from repro.config.system import DramParams
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.sim.engine import Simulator


def build():
    config = fpga_system()
    sim = Simulator()
    memif = MemoryInterface(config.host.memif_oneway_ps)
    memif.attach(
        "host",
        AddressRange(0, 1 << 40, "host"),
        MemoryController(DramParams(jitter_ps=0), channels=2, seed=1),
    )
    llc = SharedLLC(sim, config.host, memif)
    l1 = L1Cache(sim, config.host, llc)
    return sim, llc, l1


def run(sim, fn, *args):
    done = []
    fn(*args, lambda: done.append(sim.now))
    sim.run()
    assert done
    return done[0]


def test_load_fills_shared():
    sim, llc, l1 = build()
    run(sim, l1.load, 0x1000)
    block = l1.array.peek(0x1000)
    assert block.state is MesiState.SHARED
    assert l1.name in llc.directory_entry(0x1000).sharers


def test_load_hit_is_fast():
    sim, llc, l1 = build()
    run(sim, l1.load, 0x1000)
    before = sim.now
    run(sim, l1.load, 0x1000)
    assert sim.now - before == l1.hit_ps


def test_store_acquires_ownership_and_dirties():
    sim, llc, l1 = build()
    run(sim, l1.store, 0x2000)
    block = l1.array.peek(0x2000)
    assert block.state is MesiState.MODIFIED
    assert llc.directory_entry(0x2000).owner == l1.name


def test_store_after_load_upgrades():
    sim, llc, l1 = build()
    run(sim, l1.load, 0x3000)
    run(sim, l1.store, 0x3000)
    assert l1.array.peek(0x3000).state is MesiState.MODIFIED
    assert llc.directory_entry(0x3000).owner == l1.name


def test_snoop_inv_on_modified_forwards_data():
    sim, llc, l1 = build()
    run(sim, l1.store, 0x4000)
    response = l1.snoop(MessageType.SNP_INV, 0x4000)
    assert response is MessageType.RSP_I_FWD_M
    assert l1.array.peek(0x4000) is None


def test_snoop_inv_on_clean_returns_rsp_i():
    sim, llc, l1 = build()
    run(sim, l1.load, 0x5000)
    response = l1.snoop(MessageType.SNP_INV, 0x5000)
    assert response is MessageType.RSP_I


def test_snoop_data_downgrades_to_shared():
    sim, llc, l1 = build()
    run(sim, l1.store, 0x6000)
    response = l1.snoop(MessageType.SNP_DATA, 0x6000)
    assert response is MessageType.RSP_S_FWD_S
    assert l1.array.peek(0x6000).state is MesiState.SHARED


def test_snoop_absent_line():
    _sim, _llc, l1 = build()
    assert l1.snoop(MessageType.SNP_INV, 0x9999) is MessageType.RSP_I


def test_evict_dirty_uses_dirty_evict_flow():
    sim, llc, l1 = build()
    run(sim, l1.store, 0x7000)
    run(sim, l1.evict, 0x7000)
    assert l1.array.peek(0x7000) is None
    assert llc.directory_entry(0x7000).owner is None


def test_evict_absent_line_is_noop():
    sim, _llc, l1 = build()
    run(sim, l1.evict, 0x8000)
    assert l1.array.peek(0x8000) is None
