"""Property-based tests on core data structures and invariants."""

import copy
import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache.array import CacheArray
from repro.cache.block import MesiState
from repro.kernel.page_table import PAGE_SIZE, UnifiedPageTable
from repro.mem.address import CACHELINE, Interleaver
from repro.rao.ops import MASK64, AtomicOp, apply_atomic
from repro.sim.engine import Simulator
from repro.system import (
    Topology,
    TopologySchemaError,
    topology_by_name,
    topology_names,
)


# --------------------------- Event engine -----------------------------
@settings(max_examples=60)
@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
def test_engine_fires_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(0, 1_000), st.booleans()),
        max_size=40,
    )
)
def test_engine_cancelled_events_never_fire(spec):
    sim = Simulator()
    fired = []
    live = 0
    for delay, cancel in spec:
        event = sim.schedule(delay, lambda d=delay: fired.append(d))
        if cancel:
            event.cancel()
        else:
            live += 1
    sim.run()
    assert len(fired) == live


# --------------------------- Interleaver ------------------------------
@settings(max_examples=80)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=(1 << 40) - 1),
)
def test_interleaver_bijection(channels, addr):
    inter = Interleaver(channels)
    channel, local = inter.map(addr)
    assert 0 <= channel < channels
    assert inter.unmap(channel, local) == addr


@settings(max_examples=30)
@given(st.integers(min_value=2, max_value=4))
def test_interleaver_balances_lines(channels):
    inter = Interleaver(channels)
    counts = [0] * channels
    for i in range(channels * 50):
        counts[inter.map(i * CACHELINE)[0]] += 1
    assert max(counts) == min(counts)


# --------------------------- Cache array ------------------------------
addr_lists = st.lists(
    st.integers(min_value=0, max_value=255).map(lambda i: i * CACHELINE),
    min_size=1,
    max_size=120,
)


@settings(max_examples=60)
@given(addr_lists)
def test_cache_array_never_exceeds_capacity(addrs):
    arr = CacheArray(size=1024, ways=2)  # 16 lines
    for addr in addrs:
        arr.insert(addr, MesiState.EXCLUSIVE)
        assert arr.occupancy <= 16
    # No duplicate tags within any set.
    seen = set()
    for line_addr, _block in arr.blocks():
        assert line_addr not in seen
        seen.add(line_addr)


@settings(max_examples=60)
@given(addr_lists)
def test_cache_array_inserted_line_is_present(addrs):
    arr = CacheArray(size=1024, ways=2)
    for addr in addrs:
        arr.insert(addr, MesiState.SHARED)
        assert arr.peek(addr) is not None


@settings(max_examples=40)
@given(addr_lists, st.randoms(use_true_random=False))
def test_cache_array_eviction_victim_was_resident(addrs, rng):
    arr = CacheArray(size=512, ways=2)  # 8 lines
    resident = set()
    for addr in addrs:
        _block, victim = arr.insert(addr, MesiState.EXCLUSIVE)
        if victim is not None:
            victim_addr, _vb = victim
            assert victim_addr in resident
            resident.discard(victim_addr)
        resident.add(addr)


# --------------------------- Page table -------------------------------
@settings(max_examples=40)
@given(
    st.lists(
        st.integers(min_value=0, max_value=63),
        min_size=1,
        max_size=60,
    )
)
def test_page_table_translate_consistent(vpns):
    pt = UnifiedPageTable()
    mapped = {}
    next_pfn = 100
    for vpn in vpns:
        vaddr = vpn * PAGE_SIZE
        if vpn not in mapped:
            pt.map(vaddr)
            pt.assign_frame(vaddr, next_pfn, node=0)
            mapped[vpn] = next_pfn
            next_pfn += 1
        assert pt.translate(vaddr + 7) == mapped[vpn] * PAGE_SIZE + 7


# --------------------------- Topology specs ---------------------------
@settings(max_examples=40)
@given(st.sampled_from(topology_names()))
def test_topology_dict_roundtrip_is_identity(name):
    topology = topology_by_name(name)
    data = topology.to_dict()
    reparsed = Topology.from_dict(data)
    assert reparsed == topology
    assert reparsed.to_dict() == data


def _corrupt_dangling_link(data):
    data["links"] = list(data["links"]) + [
        {"a": data["nodes"][0]["name"], "b": "no-such-node"}
    ]
    return True


def _corrupt_duplicate_node(data):
    data["nodes"] = list(data["nodes"]) + [copy.deepcopy(data["nodes"][0])]
    return True


def _corrupt_unknown_kind(data):
    data["nodes"][0]["kind"] = "not.a.kind"
    return True


def _corrupt_node_missing_name(data):
    del data["nodes"][0]["name"]
    return True


def _corrupt_node_not_object(data):
    data["nodes"][0] = "just-a-string"
    return True


def _corrupt_nodes_not_list(data):
    data["nodes"] = {"host": {"kind": "host"}}
    return True


def _corrupt_link_missing_endpoint(data):
    if not data["links"]:
        return False
    del data["links"][0]["b"]
    return True


def _corrupt_unknown_top_key(data):
    data["frobnicate"] = 1
    return True


def _corrupt_unknown_node_key(data):
    data["nodes"][0]["color"] = "red"
    return True


def _corrupt_blank_name(data):
    data["name"] = ""
    return True


_CORRUPTIONS = [
    _corrupt_dangling_link,
    _corrupt_duplicate_node,
    _corrupt_unknown_kind,
    _corrupt_node_missing_name,
    _corrupt_node_not_object,
    _corrupt_nodes_not_list,
    _corrupt_link_missing_endpoint,
    _corrupt_unknown_top_key,
    _corrupt_unknown_node_key,
    _corrupt_blank_name,
]


@settings(max_examples=80)
@given(
    st.sampled_from(topology_names()),
    st.sampled_from(_CORRUPTIONS),
)
def test_malformed_topology_specs_raise_the_schema_error(name, corrupt):
    """Every malformed spec fails as TopologySchemaError — never as a
    bare KeyError leaking out of dict access."""
    data = topology_by_name(name).to_dict()
    assume(data["nodes"])  # corruptions index into nodes
    assume(corrupt(data))
    with pytest.raises(TopologySchemaError):
        Topology.from_dict(data)


# --------------------------- Workload traces --------------------------
_op_strategy = st.builds(
    lambda kind, addr, size, delay, stream: (kind, addr, size, delay, stream),
    st.sampled_from(["read", "write"]),
    st.integers(min_value=0, max_value=(1 << 32) - 1).map(lambda i: i * 64),
    st.sampled_from([64, 128, 4096]),
    st.integers(min_value=0, max_value=1_000_000),
    st.integers(min_value=0, max_value=7),
)


def _workload_from(ops_tuples):
    from repro.workloads import Workload, WorkloadOp

    ops = [WorkloadOp(*t) for t in ops_tuples]
    return Workload(name="prop", generate=lambda _rng: list(ops)), ops


@settings(max_examples=60)
@given(st.lists(_op_strategy, max_size=60))
def test_trace_roundtrip_is_identity(ops_tuples):
    from repro.workloads import dump_trace, parse_trace

    workload, ops = _workload_from(ops_tuples)
    text = dump_trace(workload, seed=5)
    replayed = parse_trace(text)
    assert replayed.ops(seed=0) == ops
    # A second dump of the replay is bit-identical text (stable format).
    assert dump_trace(replayed, seed=5) == text.replace(
        '"workload": "prop"', '"workload": "trace:prop"'
    )


def _trace_corrupt_header_schema(lines):
    import json as _json

    header = _json.loads(lines[0])
    header["schema"] = 2
    lines[0] = _json.dumps(header, sort_keys=True)
    return True


def _trace_corrupt_header_missing(lines):
    lines[0] = "{}"
    return True


def _trace_corrupt_op_arity(lines):
    if len(lines) < 2:
        return False
    lines[1] = '["read", 0]'
    return True


def _trace_corrupt_op_kind(lines):
    if len(lines) < 2:
        return False
    lines[1] = '["rmw", 0, 64, 0, 0]'
    return True


def _trace_corrupt_op_negative(lines):
    if len(lines) < 2:
        return False
    lines[1] = '["read", -64, 64, 0, 0]'
    return True


def _trace_corrupt_drop_op(lines):
    if len(lines) < 2:
        return False
    lines.pop()
    return True


_TRACE_CORRUPTIONS = [
    _trace_corrupt_header_schema,
    _trace_corrupt_header_missing,
    _trace_corrupt_op_arity,
    _trace_corrupt_op_kind,
    _trace_corrupt_op_negative,
    _trace_corrupt_drop_op,
]


@settings(max_examples=60)
@given(
    st.lists(_op_strategy, min_size=1, max_size=20),
    st.sampled_from(_TRACE_CORRUPTIONS),
)
def test_malformed_traces_raise_the_schema_error(ops_tuples, corrupt):
    """Every malformed trace fails as WorkloadSchemaError — never as a
    bare KeyError/IndexError leaking out of parsing."""
    from repro.workloads import WorkloadSchemaError, dump_trace, parse_trace

    workload, _ops = _workload_from(ops_tuples)
    lines = dump_trace(workload, seed=5).splitlines()
    assume(corrupt(lines))
    with pytest.raises(WorkloadSchemaError):
        parse_trace("\n".join(lines))


@settings(max_examples=60)
@given(
    st.sampled_from(["sequential", "uniform", "zipf", "rw-mix", "mixed"]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_workload_expansion_is_a_pure_function_of_the_seed(name, seed):
    from repro.workloads import resolve_workload

    workload = resolve_workload(f"{name}(16)")
    assert workload.ops(seed) == workload.ops(seed)


# ------------------------------ Atomics -------------------------------
@settings(max_examples=80)
@given(
    st.sampled_from([AtomicOp.FAA, AtomicOp.SWAP, AtomicOp.FETCH_AND_OR,
                     AtomicOp.FETCH_AND_AND, AtomicOp.FETCH_AND_XOR]),
    st.integers(min_value=0, max_value=MASK64),
    st.integers(min_value=0, max_value=MASK64),
)
def test_atomics_stay_in_64_bits_and_fetch_old(op, current, operand):
    new, old = apply_atomic(op, current, operand)
    assert 0 <= new <= MASK64
    assert old == current


@settings(max_examples=50)
@given(
    st.integers(min_value=0, max_value=255),
    st.lists(st.integers(min_value=0, max_value=MASK64), max_size=30),
)
def test_faa_sequence_equals_sum(start, operands):
    value = start
    for operand in operands:
        value, _ = apply_atomic(AtomicOp.FAA, value, operand)
    assert value == (start + sum(operands)) & MASK64
