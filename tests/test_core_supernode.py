"""Tests for supernode composition: leasing, routing, coherence."""

import pytest

from repro.config import asic_system
from repro.core.supernode import Supernode
from repro.kernel.fabric import ResourceError
from repro.kernel.numa import NodeKind


def build(hosts=2, fabric_gb=4):
    return Supernode(
        asic_system(),
        hosts=hosts,
        fabric_memory_bytes=fabric_gb << 30,
        memory_granule=1 << 30,
    )


def test_lease_extends_capacity():
    node = build()
    before = node.total_capacity_bytes("host0")
    leased = node.lease_memory("host0", 1 << 29)
    after = node.total_capacity_bytes("host0")
    assert after == before + (1 << 30)
    numa_node = node.hosts["host0"].numa.node(leased)
    assert numa_node.kind is NodeKind.MEMORY_ONLY


def test_leases_are_exclusive():
    node = build(fabric_gb=2)
    node.lease_memory("host0", 1 << 30)
    node.lease_memory("host1", 1 << 30)
    with pytest.raises(ResourceError):
        node.lease_memory("host0", 1 << 30)
    assert node.free_fabric_bytes == 0


def test_release_returns_granule():
    node = build(fabric_gb=1)
    leased = node.lease_memory("host0", 1 << 29)
    node.release_memory("host0", leased)
    assert node.free_fabric_bytes == 1 << 30
    # Another host can now take it.
    node.lease_memory("host1", 1 << 29)


def test_release_with_allocations_refused():
    node = build(fabric_gb=1)
    leased = node.lease_memory("host0", 1 << 29)
    node.hosts["host0"].numa.node(leased).alloc_frame()
    with pytest.raises(ResourceError):
        node.release_memory("host0", leased)


def test_release_foreign_lease_refused():
    node = build(fabric_gb=1)
    leased = node.lease_memory("host0", 1 << 29)
    with pytest.raises(ResourceError):
        node.release_memory("host1", leased)


def test_coherent_access_pays_fabric_once():
    node = build()
    first = node.coherent_access("host0", 0x1000)
    again = node.coherent_access("host0", 0x1000)
    assert first > 0        # global-agent round trip over the fabric
    assert again == 0       # local agent replica
    assert node.hosts["host0"].remote_accesses == 1


def test_cross_host_writer_invalidates_reader():
    node = build()
    node.coherent_access("host0", 0x2000)
    node.coherent_access("host1", 0x2000, exclusive=True)
    # host0 lost its replica: the next access goes remote again.
    assert node.coherent_access("host0", 0x2000) > 0


def test_fabric_latency_includes_two_switch_hops():
    node = build()
    latency = node.coherent_access("host0", 0x3000)
    # leaf -> root (fabric endpoint lives at the root): 2 switches each
    # way at 70 ns.
    assert latency == 2 * 2 * 70_000


def test_utilization_view():
    node = build()
    node.lease_memory("host1", 1 << 29)
    holdings = node.utilization()
    assert holdings["host1"] == ["fam0"]
    assert holdings["host0"] == []


def test_invalid_host_count():
    with pytest.raises(ValueError):
        Supernode(asic_system(), hosts=0)
