"""Tests for statistics primitives."""

import math

import pytest

from repro.sim.stats import Counter, Histogram, RunningMean


def test_counter_inc_and_reset():
    c = Counter("c")
    c.inc()
    c.inc(4)
    assert c.value == 5
    c.reset()
    assert c.value == 0


def test_running_mean_matches_direct():
    rm = RunningMean()
    values = [1.0, 2.0, 3.5, -4.0, 10.0]
    for v in values:
        rm.add(v)
    assert rm.mean == pytest.approx(sum(values) / len(values))
    direct_var = sum((v - rm.mean) ** 2 for v in values) / (len(values) - 1)
    assert rm.variance == pytest.approx(direct_var)
    assert rm.stddev == pytest.approx(math.sqrt(direct_var))


def test_running_mean_empty_variance():
    rm = RunningMean()
    rm.add(1.0)
    assert rm.variance == 0.0


def test_histogram_median_odd_even():
    h = Histogram()
    h.extend([3, 1, 2])
    assert h.median == 2
    h.add(4)
    assert h.median == pytest.approx(2.5)


def test_histogram_percentiles():
    h = Histogram()
    h.extend(range(1, 101))
    assert h.percentile(0) == 1
    assert h.percentile(100) == 100
    assert h.p25 == pytest.approx(25.75)
    assert h.p75 == pytest.approx(75.25)


def test_histogram_tail_percentiles():
    h = Histogram()
    h.extend(range(1, 1001))
    assert h.p99 == pytest.approx(990.01)
    assert h.p999 == pytest.approx(999.001)
    single = Histogram()
    single.add(5)
    assert single.p99 == 5
    assert single.p999 == 5


def test_histogram_min_max_mean():
    h = Histogram()
    h.extend([10, 20, 30])
    assert h.min == 10
    assert h.max == 30
    assert h.mean == 20


def test_histogram_empty_raises():
    h = Histogram()
    with pytest.raises(ValueError):
        h.median
    with pytest.raises(ValueError):
        h.mean


def test_histogram_bad_percentile():
    h = Histogram()
    h.add(1)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_summary_keys():
    h = Histogram()
    h.extend([1, 2, 3, 4])
    summary = h.summary()
    assert set(summary) == {
        "count", "min", "p25", "median", "p75", "p99", "p999", "max", "mean",
    }
    assert summary["count"] == 4


def test_histogram_reset():
    h = Histogram()
    h.add(1)
    h.reset()
    assert len(h) == 0


def test_histogram_stddev():
    h = Histogram()
    h.extend([2, 4, 4, 4, 5, 5, 7, 9])
    assert h.stddev == pytest.approx(2.138, rel=1e-3)
