"""Tests for the application studies: graph offload and KV store."""

import networkx as nx
import pytest

from repro.apps.graph import (
    GraphWorkload,
    bfs_offload_study,
    bfs_trace,
    pagerank_offload_study,
    pagerank_trace,
)
from repro.apps.kvstore import KvStore, kv_offload_study
from repro.apps.offload import Access, AccessTraceEngine
from repro.config import asic_system


# ------------------------------- Graph --------------------------------
def test_csr_matches_graph():
    workload = GraphWorkload.generate(vertices=64, degree=3, seed=1)
    for v in range(workload.vertices):
        _rng, neighbours = workload.neighbours(v)
        assert set(neighbours) == set(workload.graph.neighbors(v))


def test_bfs_matches_networkx():
    workload = GraphWorkload.generate(vertices=96, degree=3, seed=2)
    _trace, distance = bfs_trace(workload)
    expected = dict(nx.single_source_shortest_path_length(workload.graph, 0))
    assert distance == expected


def test_bfs_trace_touches_every_discovered_vertex():
    workload = GraphWorkload.generate(vertices=48, degree=2, seed=3)
    trace, distance = bfs_trace(workload)
    writes = {a.addr for a in trace if a.write}
    discovered = {workload.vertex_addr(v) for v in distance if v != 0}
    assert writes == discovered


def test_pagerank_mass_conserved():
    workload = GraphWorkload.generate(vertices=60, degree=3, seed=4)
    _trace, ranks = pagerank_trace(workload, iterations=3)
    assert sum(ranks.values()) == pytest.approx(1.0)
    assert all(r > 0 for r in ranks.values())


def test_bfs_offload_study_shows_cxl_win():
    result = bfs_offload_study(asic_system(), vertices=96, degree=3)
    assert result.speedup > 5
    assert 0 < result.hmc_hit_rate < 1


def test_pagerank_offload_study_shows_cxl_win():
    result = pagerank_offload_study(asic_system(), vertices=48, degree=3)
    assert result.speedup > 5


# ------------------------------ KV store ------------------------------
def test_kv_put_get_roundtrip():
    store = KvStore(slots=64)
    store.put("a", b"alpha")
    store.put("b", b"beta")
    assert store.get("a") == b"alpha"
    assert store.get("b") == b"beta"
    assert store.get("missing") is None
    assert len(store) == 2


def test_kv_overwrite():
    store = KvStore(slots=64)
    store.put("k", b"v1")
    store.put("k", b"v2")
    assert store.get("k") == b"v2"
    assert len(store) == 1


def test_kv_collision_probing():
    store = KvStore(slots=8)
    for i in range(7):
        store.put(f"key{i}", bytes([i]))
    for i in range(7):
        assert store.get(f"key{i}") == bytes([i])
    assert store.probes > 7  # collisions forced extra probes


def test_kv_slots_power_of_two():
    with pytest.raises(ValueError):
        KvStore(slots=100)


def test_kv_offload_study():
    result = kv_offload_study(asic_system(), operations=200, keys=64)
    assert result.speedup > 3
    assert result.hmc_hit_rate > 0.3  # hot keys stay cached


# --------------------------- Trace engine -----------------------------
def test_engine_repeated_addresses_hit_hmc():
    engine = AccessTraceEngine(asic_system())
    trace = [Access(0x1000) for _ in range(32)]
    _us, hit_rate = engine.run_cxl(trace)
    assert hit_rate == pytest.approx(31 / 32)


def test_engine_pcie_cost_scales_with_trace():
    engine = AccessTraceEngine(asic_system())
    short = engine.run_pcie([Access(0x1000)] * 4)
    long = engine.run_pcie([Access(0x1000)] * 8)
    assert long == pytest.approx(2 * short, rel=0.05)
