"""Tests for the OpenCL-flavoured runtime (the Fig. 4(c) model)."""

import numpy as np
import pytest

from repro.config import fpga_system
from repro.core.cohet import CohetSystem, DeviceSpec
from repro.core.runtime import Kernel
from repro.cxl.device import DeviceType


def small_system():
    return CohetSystem(
        fpga_system(),
        host_nodes=1,
        devices=[DeviceSpec("xpu0", DeviceType.TYPE2, hdm_bytes=1 << 24)],
        host_bytes=1 << 26,
    )


def test_axpy_on_xpu_matches_numpy():
    """The paper's running example: Y = a*X + Y with plain malloc."""
    system = small_system()
    p = system.process
    n = 256
    X = p.malloc(n * 4)
    Y = p.malloc(n * 4)
    x = np.random.default_rng(1).random(n, dtype=np.float32)
    y = np.random.default_rng(2).random(n, dtype=np.float32)
    p.store_array(X, x)
    p.store_array(Y, y)

    def axpy(ctx, _i, count, a, x_ptr, y_ptr):
        xs = ctx.load_array(x_ptr, np.float32, count)
        ys = ctx.load_array(y_ptr, np.float32, count)
        ctx.store_array(y_ptr, a * xs + ys)

    queue = system.queue("xpu0")
    queue.enqueue_task(Kernel("axpy", axpy), n, 2.0, X, Y)
    events = queue.finish()
    np.testing.assert_allclose(p.load_array(Y, np.float32, n), 2.0 * x + y, rtol=1e-6)
    assert events[0].kernel == "axpy"


def test_nd_range_runs_per_work_item():
    system = small_system()
    counter = []

    def count(ctx, index):
        counter.append(index)

    queue = system.queue("cpu")
    queue.enqueue_nd_range_kernel(Kernel("count", count), 16)
    queue.finish()
    assert counter == list(range(16))


def test_in_order_execution():
    system = small_system()
    order = []
    queue = system.queue("cpu")
    queue.enqueue_task(Kernel("a", lambda ctx, i: order.append("a")))
    queue.enqueue_task(Kernel("b", lambda ctx, i: order.append("b")))
    assert not queue.idle
    queue.finish()
    assert order == ["a", "b"]
    assert queue.idle


def test_event_timing_scales_with_global_size():
    system = small_system()
    queue = system.queue("xpu0")
    noop = Kernel("noop", lambda ctx, i: None)
    queue.enqueue_nd_range_kernel(noop, 10)
    queue.enqueue_nd_range_kernel(noop, 20)
    e1, e2 = queue.finish()
    assert e2.duration_ps == 2 * e1.duration_ps
    assert e2.start_ps == e1.end_ps


def test_invalid_global_size():
    system = small_system()
    queue = system.queue("cpu")
    with pytest.raises(ValueError):
        queue.enqueue_nd_range_kernel(Kernel("x", lambda ctx, i: None), 0)


def test_xpu_touch_places_pages_on_device_node():
    system = small_system()
    p = system.process
    xpu_node = system.driver("xpu0").memory_node
    buf = p.malloc(4096)

    def producer(ctx, _i, ptr):
        ctx.write_bytes(ptr, b"produced-by-xpu")

    queue = system.queue("xpu0")
    queue.enqueue_task(Kernel("produce", producer), buf)
    queue.finish()
    assert p.placement(buf, 4096) == {xpu_node: 4096}
    # The CPU can read it directly: one coherent pool, no copies.
    assert p.read_bytes(buf, 15, accessor_node=0) == b"produced-by-xpu"
