"""Workload subsystem: generators, traces, driver, sweep integration.

The contracts under test: every generator expands deterministically
under a fixed seed; phase composition concatenates deterministically;
a recorded trace replayed through the driver measures bit-identically
to the live run it captured; and the sweep layer validates ``workload``
axes up-front with the same listing-style errors topologies get.
"""

import json

import pytest

from cli_helpers import run_cli

from repro.config import fpga_system
from repro.experiments.spec import SpecError, SweepSpec
from repro.harness.experiments import run_experiment
from repro.workloads import (
    UnknownWorkloadError,
    Workload,
    WorkloadDriver,
    WorkloadDriverError,
    WorkloadOp,
    WorkloadSchemaError,
    dump_trace,
    load_trace,
    parse_trace,
    parse_workload_ref,
    phases,
    resolve_workload,
    validate_workload_ref,
    workload_names,
)


# ----------------------- generator determinism ------------------------
@pytest.mark.parametrize("name", workload_names())
def test_generators_are_deterministic_under_fixed_seed(name):
    workload = resolve_workload(name)
    first = workload.ops(seed=42)
    second = workload.ops(seed=42)
    assert first == second
    assert first, f"workload {name} expanded to an empty stream"


def test_random_generators_vary_with_the_seed():
    for ref in ("uniform(64)", "zipf(64,1.2)", "rw-mix(64,0.5)"):
        workload = resolve_workload(ref)
        assert workload.ops(seed=1) != workload.ops(seed=2), ref


def test_sequential_stream_is_strided_reads():
    ops = resolve_workload("sequential(8,2)").ops(seed=0)
    assert [op.addr for op in ops] == [i * 2 * 64 for i in range(8)]
    assert all(op.kind == "read" for op in ops)


def test_pointer_chase_visits_without_immediate_repeats():
    ops = resolve_workload("pointer-chase(64,16)").ops(seed=3)
    assert len(ops) == 64
    assert all(a.addr != b.addr for a, b in zip(ops, ops[1:]))


def test_producer_consumer_shares_addresses_across_streams():
    ops = resolve_workload("producer-consumer(8,4)").ops(seed=0)
    writes = {op.addr for op in ops if op.kind == "write"}
    reads = {op.addr for op in ops if op.kind == "read"}
    assert writes == reads
    assert {op.stream for op in ops} == {0, 1}


def test_rw_mix_respects_the_read_fraction_extremes():
    assert all(
        op.kind == "read" for op in resolve_workload("rw-mix(32,1)").ops(seed=1)
    )
    assert all(
        op.kind == "write" for op in resolve_workload("rw-mix(32,0)").ops(seed=1)
    )


# ----------------------- phase composition ----------------------------
def test_phases_concatenates_parts_in_order():
    combo = phases(["sequential(4)", "sequential(2,3)"])
    ops = combo.ops(seed=9)
    assert len(ops) == 6
    assert [op.addr for op in ops[:4]] == [0, 64, 128, 192]
    assert [op.addr for op in ops[4:]] == [0, 3 * 64]


def test_phases_is_deterministic_and_seed_sensitive():
    combo = phases(["zipf(32,1.2)", "uniform(32)"])
    assert combo.ops(seed=5) == combo.ops(seed=5)
    assert combo.ops(seed=5) != combo.ops(seed=6)


def test_phases_rejects_empty_compositions():
    with pytest.raises(ValueError):
        phases([])


def test_mixed_is_a_registered_phase_composition():
    workload = resolve_workload("mixed(16)")
    assert "phases" in workload.params
    assert len(workload.ops(seed=1)) == 3 * 16


# ----------------------- references -----------------------------------
def test_parse_workload_ref_forms():
    assert parse_workload_ref("zipf") == ("zipf", ())
    assert parse_workload_ref("zipf(512,1.2)") == ("zipf", (512, 1.2))
    assert parse_workload_ref(" rw-mix( 64 , 0.5 ) ") == ("rw-mix", (64, 0.5))


@pytest.mark.parametrize("bad", ["", "   ", "zipf(", "zipf(a)", "zipf(1,)", "z()()", 7])
def test_malformed_workload_refs_raise_schema_error(bad):
    with pytest.raises(WorkloadSchemaError):
        parse_workload_ref(bad)


def test_unknown_workload_error_lists_the_registry():
    with pytest.raises(UnknownWorkloadError) as err:
        resolve_workload("nope(3)")
    for name in workload_names():
        assert name in str(err.value)


def test_validate_workload_ref_skips_argument_range_checks():
    validate_workload_ref("zipf(-1)")  # factory exists; args fail at run time
    with pytest.raises(UnknownWorkloadError):
        validate_workload_ref("definitely-not-registered")


def test_workload_op_field_validation():
    with pytest.raises(WorkloadSchemaError):
        WorkloadOp("fetch", 0)
    with pytest.raises(WorkloadSchemaError):
        WorkloadOp("read", -64)
    with pytest.raises(WorkloadSchemaError):
        WorkloadOp("read", 0, size=0)


# ----------------------- traces ---------------------------------------
def test_trace_roundtrip_preserves_the_op_stream(tmp_path):
    workload = resolve_workload("mixed(8)")
    path = tmp_path / "mixed.jsonl"
    dump_trace(workload, seed=11, path=path)
    replayed = load_trace(path)
    assert replayed.ops(seed=0) == workload.ops(seed=11)
    # Replay ignores its seed: the recorded ops ARE the stream.
    assert replayed.ops(seed=123) == replayed.ops(seed=456)


def _valid_trace_text():
    return dump_trace(resolve_workload("sequential(3)"), seed=1)


@pytest.mark.parametrize(
    "corrupt",
    [
        lambda lines: [],  # empty file
        lambda lines: ["not json"] + lines[1:],
        lambda lines: [json.dumps(["header", "must", "be", "object"])] + lines[1:],
        lambda lines: [json.dumps({"schema": 99, "workload": "x", "seed": 1, "ops": 3})] + lines[1:],
        lambda lines: [json.dumps({"schema": 1, "workload": "", "seed": 1, "ops": 3})] + lines[1:],
        lambda lines: [json.dumps({"schema": 1, "workload": "x", "seed": 1, "ops": 3, "extra": 1})] + lines[1:],
        lambda lines: lines[:1] + ["{}"] + lines[2:],  # op not an array
        lambda lines: lines[:1] + ['["read",1]'] + lines[2:],  # wrong arity
        lambda lines: lines[:1] + ['["rmw",0,64,0,0]'] + lines[2:],  # bad kind
        lambda lines: lines[:1] + ['["read",-1,64,0,0]'] + lines[2:],  # bad addr
        lambda lines: lines[:-1],  # header count mismatch
    ],
)
def test_malformed_traces_raise_schema_error(corrupt):
    lines = _valid_trace_text().splitlines()
    text = "\n".join(corrupt(lines))
    with pytest.raises(WorkloadSchemaError):
        parse_trace(text, source="test.jsonl")


def test_load_trace_names_unreadable_files(tmp_path):
    with pytest.raises(WorkloadSchemaError) as err:
        load_trace(tmp_path / "missing.jsonl")
    assert "missing.jsonl" in str(err.value)


# ----------------------- driver + replay parity -----------------------
def test_record_replay_measurement_parity_on_lsu_system(tmp_path):
    driver = WorkloadDriver(fpga_system())
    live = driver.run("mixed(8)", topology="fanout-2", seed=21, streams=2)

    path = tmp_path / "trace.jsonl"
    dump_trace(resolve_workload("mixed(8)"), seed=21, path=path)
    replayed = driver.run(load_trace(path), topology="fanout-2", seed=99, streams=2)

    assert replayed.series == live.series
    assert replayed.to_dict()["series"] == live.to_dict()["series"]
    assert (replayed.ops, replayed.reads, replayed.writes) == (
        live.ops, live.reads, live.writes,
    )


def test_record_replay_measurement_parity_on_supernode(tmp_path):
    driver = WorkloadDriver(fpga_system())
    live = driver.run("producer-consumer(16,4)", topology="supernode-2host", seed=3)
    path = tmp_path / "trace.jsonl"
    dump_trace(resolve_workload("producer-consumer(16,4)"), seed=3, path=path)
    replayed = driver.run(load_trace(path), topology="supernode-2host", seed=8)
    assert replayed.series == live.series
    assert replayed.mode == live.mode == "supernode"


def test_driver_restripes_single_stream_workloads():
    driver = WorkloadDriver(fpga_system())
    measurement = driver.run("sequential(16)", topology="fanout-2", seed=1, streams=2)
    assert set(measurement.series["ops"]) == {"s0", "s1", "all"}
    assert measurement.series["ops"]["s0"] == 8.0
    # Multi-stream workloads keep their own mapping.
    shared = driver.run("producer-consumer(8,4)", topology="fanout-2", seed=1, streams=4)
    assert set(shared.series["ops"]) == {"s0", "s1", "all"}


def test_driver_runs_are_deterministic():
    driver = WorkloadDriver(fpga_system())
    a = driver.run("zipf(32,1.2)", topology="microbench", seed=4)
    b = driver.run("zipf(32,1.2)", topology="microbench", seed=4)
    assert a.to_dict() == b.to_dict()


def test_driver_rejects_undrivable_topologies():
    driver = WorkloadDriver(fpga_system())
    with pytest.raises(WorkloadDriverError) as err:
        driver.run("sequential(4)", topology="rpc")
    assert "rpc" in str(err.value)


def test_supernode_mode_drives_per_host_traffic():
    driver = WorkloadDriver(fpga_system())
    m = driver.run("producer-consumer(32,4)", topology="supernode-2host", seed=5)
    assert m.mode == "supernode"
    assert m.series["accesses"]["host0"] == 32.0
    assert m.series["accesses"]["host1"] == 32.0
    assert m.series["accesses"]["all"] == 64.0
    # Sharing ping-pong means fabric traffic actually flowed.
    assert m.series["remote_accesses"]["all"] > 0


# ----------------------- experiments + sweep axis ---------------------
def test_workload_mix_experiment_runs():
    result = run_experiment(
        "workload-mix", workload="zipf(32,1.2)", topology="fanout-2", streams=2
    )
    assert result.name == "workload-mix"
    assert result.series["counts"]["ops"] == 32.0
    assert "lat_median_ns" in result.series


def test_supernode_workload_experiment_runs():
    result = run_experiment(
        "supernode-workload", workload="producer-consumer(8,4)", hosts=2
    )
    assert result.name == "supernode-workload"
    assert result.series["counts"]["ops"] == 16.0
    assert "filter_rate" in result.series


def _sweep(workloads):
    return SweepSpec.from_dict(
        {
            "name": "wl",
            "experiments": [
                {
                    "experiment": "workload-mix",
                    "params": {"topology": "fanout-2"},
                    "grid": {"workload": workloads},
                }
            ],
        }
    )


def test_sweep_validates_workload_axes_up_front():
    _sweep(["sequential(16)", "zipf(16,1.2)", "mixed(8)"]).validate()


def test_sweep_rejects_unknown_workloads_with_listing_error():
    with pytest.raises(SpecError) as err:
        _sweep(["sequential(16)", "not-a-workload"]).validate()
    assert "not-a-workload" in str(err.value)
    assert "zipf" in str(err.value)


def test_sweep_rejects_malformed_workload_refs():
    with pytest.raises(SpecError):
        _sweep(["zipf(bad)"]).validate()


def test_workload_mix_preset_validates_and_expands():
    from repro.experiments import preset_sweep

    sweep = preset_sweep("workload-mix")
    sweep.validate()
    specs = sweep.expand()
    assert len(specs) == 6
    refs = {spec.params["workload"] for spec in specs}
    assert "mixed(64)" in refs  # the phase-composed member


# ----------------------- CLI ------------------------------------------
def test_cli_workload_list_and_show():
    code, out = run_cli("workload", "list")
    assert code == 0
    for name in workload_names():
        assert name in out
    code, out = run_cli("workload", "show", "zipf(16,1.2)")
    assert code == 0
    assert "zipf(16,1.2)" in out and "16" in out


def test_cli_workload_show_rejects_unknown():
    code, out = run_cli("workload", "show", "nope")
    assert code == 2
    assert "unknown workload" in out


def test_cli_workload_record_replay_roundtrip(tmp_path):
    trace = tmp_path / "t.jsonl"
    code, out = run_cli(
        "workload", "record", "mixed(8)", "--seed", "7", "--out", str(trace)
    )
    assert code == 0 and trace.is_file()
    code_a, out_a = run_cli(
        "workload", "replay", str(trace), "--topology", "fanout-2", "--streams", "2"
    )
    code_b, out_b = run_cli(
        "workload", "replay", str(trace), "--topology", "fanout-2", "--streams", "2"
    )
    assert code_a == code_b == 0
    assert out_a == out_b  # replay is bit-identical run-over-run


def test_cli_workload_replay_accepts_live_references():
    code, out = run_cli("workload", "replay", "sequential(8)")
    assert code == 0
    assert "sequential(8)" in out


def test_cli_workload_record_requires_out():
    code, out = run_cli("workload", "record", "mixed(8)")
    assert code == 2
    assert "--out" in out


def test_cli_workload_replay_reports_missing_trace_files(tmp_path):
    # A path-shaped argument must fail as an unreadable trace, not be
    # misparsed as a workload reference.
    code, out = run_cli("workload", "replay", "mistyped.jsonl")
    assert code == 2
    assert "cannot read trace" in out
    code, out = run_cli("workload", "replay", str(tmp_path / "gone"))
    assert code == 2
    assert "cannot read trace" in out
