"""Tests for the LLC home agent: directory, snoops, the Fig. 7 ladder."""

import pytest

from repro.cache.block import MesiState
from repro.cache.l1 import L1Cache
from repro.cache.llc import LlcOp, SharedLLC
from repro.cache.hmc import HostMemoryCache
from repro.cache.messages import MessageType
from repro.cache.mesi import ProtocolError
from repro.config import fpga_system
from repro.config.system import DramParams
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.sim.engine import Simulator


def build(with_l1=False):
    config = fpga_system()
    sim = Simulator()
    memif = MemoryInterface(config.host.memif_oneway_ps)
    memif.attach(
        "host",
        AddressRange(0, 1 << 40, "host"),
        MemoryController(DramParams(jitter_ps=0), channels=2, seed=1),
    )
    llc = SharedLLC(sim, config.host, memif)
    l1 = L1Cache(sim, config.host, llc) if with_l1 else None
    return sim, llc, l1, config


class FakePeer:
    """Peer cache that answers snoops with a fixed response."""

    def __init__(self, response):
        self.response = response
        self.snoops = []

    def snoop(self, snoop_type, addr):
        self.snoops.append((snoop_type, addr))
        return self.response


def run_request(sim, llc, requester, op, addr):
    done = []
    llc.request(requester, op, addr, lambda: done.append(sim.now))
    sim.run()
    assert done, "request did not complete"
    return done[0]


def test_llc_miss_fetches_from_memory():
    sim, llc, _l1, config = build()
    llc.register_peer("dev", FakePeer(MessageType.RSP_I))
    t = run_request(sim, llc, "dev", LlcOp.RD_OWN, 0x1000)
    assert llc.holds(0x1000)
    entry = llc.directory_entry(0x1000)
    assert entry.owner == "dev"
    # Latency must include ingress + LLC + a memory round trip.
    host = config.host
    floor = host.home_ingress_ps + host.llc_access_ps + 2 * host.memif_oneway_ps
    assert t >= floor


def test_llc_hit_skips_memory():
    sim, llc, _l1, config = build()
    llc.register_peer("dev", FakePeer(MessageType.RSP_I))
    llc.demote(0x2000)
    t = run_request(sim, llc, "dev", LlcOp.RD_OWN, 0x2000)
    assert t == config.host.home_ingress_ps + config.host.llc_access_ps


def test_rd_own_snoops_modified_peer_fig7():
    """Phase 1 of Fig. 7: RdOwn -> SnpInv -> RspIFwdM -> writeback -> GO-E."""
    sim, llc, l1, _config = build(with_l1=True)
    hmc_peer = FakePeer(MessageType.RSP_I)
    llc.register_peer("hmc", hmc_peer)
    addr = 0x3000
    # CoreX-L1 holds the line Modified; LLC directory knows it.
    llc.demote(addr)
    entry = llc.directory_entry(addr)
    entry.owner = l1.name
    l1.install(addr, MesiState.MODIFIED)

    run_request(sim, llc, "hmc", LlcOp.RD_OWN, addr)
    types = llc.trace.types()
    expected_order = [
        MessageType.RD_OWN,
        MessageType.SNP_INV,
        MessageType.RSP_I_FWD_M,
        MessageType.MEM_WR,
        MessageType.GO_E,
    ]
    positions = [types.index(t) for t in expected_order]
    assert positions == sorted(positions)
    # Ownership moved to the HMC; the L1 copy is gone.
    assert llc.directory_entry(addr).owner == "hmc"
    assert l1.array.peek(addr) is None
    assert llc.writebacks == 1


def test_rd_shared_leaves_sharers():
    sim, llc, _l1, _config = build()
    llc.register_peer("a", FakePeer(MessageType.RSP_I))
    llc.register_peer("b", FakePeer(MessageType.RSP_I))
    run_request(sim, llc, "a", LlcOp.RD_SHARED, 0x4000)
    run_request(sim, llc, "b", LlcOp.RD_SHARED, 0x4000)
    entry = llc.directory_entry(0x4000)
    assert entry.sharers == {"a", "b"}
    assert entry.owner is None


def test_rd_own_invalidates_sharers():
    sim, llc, _l1, _config = build()
    a, b = FakePeer(MessageType.RSP_I), FakePeer(MessageType.RSP_I)
    llc.register_peer("a", a)
    llc.register_peer("b", b)
    run_request(sim, llc, "a", LlcOp.RD_SHARED, 0x5000)
    run_request(sim, llc, "b", LlcOp.RD_OWN, 0x5000)
    entry = llc.directory_entry(0x5000)
    assert entry.owner == "b"
    assert entry.sharers == set()
    assert a.snoops  # sharer was invalidated


def test_dirty_evict_ladder():
    """Phase 3 of Fig. 7: DirtyEvict -> GO-WritePull -> Data -> GO-I."""
    sim, llc, _l1, _config = build()
    llc.register_peer("hmc", FakePeer(MessageType.RSP_I))
    addr = 0x6000
    run_request(sim, llc, "hmc", LlcOp.RD_OWN, addr)
    llc.trace.clear()
    run_request(sim, llc, "hmc", LlcOp.DIRTY_EVICT, addr)
    types = llc.trace.types()
    for expected in (
        MessageType.DIRTY_EVICT,
        MessageType.GO_WRITE_PULL,
        MessageType.DATA,
        MessageType.GO_I,
    ):
        assert expected in types
    entry = llc.directory_entry(addr)
    assert entry.owner is None
    assert entry.state is MesiState.MODIFIED  # dirty data now lives in LLC


def test_dirty_evict_from_non_owner_rejected():
    sim, llc, _l1, _config = build()
    llc.register_peer("a", FakePeer(MessageType.RSP_I))
    llc.register_peer("b", FakePeer(MessageType.RSP_I))
    run_request(sim, llc, "a", LlcOp.RD_OWN, 0x7000)
    llc.request("b", LlcOp.DIRTY_EVICT, 0x7000, lambda: None)
    with pytest.raises(ProtocolError):
        sim.run()


def test_nc_push_installs_dirty_line():
    sim, llc, _l1, _config = build()
    llc.register_peer("dev", FakePeer(MessageType.RSP_I))
    run_request(sim, llc, "dev", LlcOp.NC_PUSH, 0x8000)
    entry = llc.directory_entry(0x8000)
    assert entry is not None
    assert entry.state is MesiState.MODIFIED
    assert entry.owner is None


def test_clean_evict_clears_directory():
    sim, llc, _l1, _config = build()
    llc.register_peer("dev", FakePeer(MessageType.RSP_I))
    run_request(sim, llc, "dev", LlcOp.RD_SHARED, 0x9000)
    run_request(sim, llc, "dev", LlcOp.CLEAN_EVICT, 0x9000)
    entry = llc.directory_entry(0x9000)
    assert "dev" not in entry.sharers


def test_racing_requests_serialize_per_line():
    sim, llc, _l1, _config = build()
    llc.register_peer("a", FakePeer(MessageType.RSP_I))
    llc.register_peer("b", FakePeer(MessageType.RSP_I))
    order = []
    llc.request("a", LlcOp.RD_OWN, 0xA000, lambda: order.append("a"))
    llc.request("b", LlcOp.RD_OWN, 0xA000, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b"]
    assert llc.directory_entry(0xA000).owner == "b"


def test_mem_path_ii_throttles_misses():
    sim, llc, _l1, config = build()
    llc.register_peer("dev", FakePeer(MessageType.RSP_I))
    completions = []
    for i in range(8):
        llc.request(
            "dev", LlcOp.RD_SHARED, 0xB000 + i * 64, lambda: completions.append(sim.now)
        )
    sim.run()
    gaps = [b - a for a, b in zip(completions, completions[1:])]
    # Steady-state spacing tracks the LLC-miss initiation interval.
    assert min(gaps) >= config.host.mem_path_ii_ps - config.host.dram.jitter_ps * 2


# ----------------------------------------------------------------------
# Stats contract and trace gating
# ----------------------------------------------------------------------

def test_read_request_counts_exactly_one_miss_then_one_hit():
    sim, llc, _l1, _config = build()
    llc.register_peer("dev", FakePeer(MessageType.RSP_I))
    run_request(sim, llc, "dev", LlcOp.RD_SHARED, 0x9000)
    # One counted probe per read: the miss, despite the extra timing
    # peek in arbitration and the fill that follows.
    assert llc.array.misses == 1
    assert llc.array.hits == 0
    run_request(sim, llc, "dev", LlcOp.RD_SHARED, 0x9000)
    assert llc.array.misses == 1
    assert llc.array.hits == 1


def test_evictions_do_not_count_lookup_stats():
    sim, llc, _l1, _config = build()
    llc.register_peer("dev", FakePeer(MessageType.RSP_I))
    run_request(sim, llc, "dev", LlcOp.RD_OWN, 0x2000)
    hits, misses = llc.array.hits, llc.array.misses
    run_request(sim, llc, "dev", LlcOp.DIRTY_EVICT, 0x2000)
    assert (llc.array.hits, llc.array.misses) == (hits, misses)


def test_disabled_trace_records_nothing_but_timing_matches():
    from repro.cache.messages import NullProtocolTrace

    sim_a, llc_a, _l1, _config = build()
    llc_a.register_peer("dev", FakePeer(MessageType.RSP_I))
    t_a = run_request(sim_a, llc_a, "dev", LlcOp.RD_OWN, 0x4000)
    assert len(llc_a.trace) > 0

    config = fpga_system()
    sim_b = Simulator()
    memif = MemoryInterface(config.host.memif_oneway_ps)
    memif.attach(
        "host",
        AddressRange(0, 1 << 40, "host"),
        MemoryController(DramParams(jitter_ps=0), channels=2, seed=1),
    )
    llc_b = SharedLLC(sim_b, config.host, memif, trace=NullProtocolTrace())
    llc_b.register_peer("dev", FakePeer(MessageType.RSP_I))
    t_b = run_request(sim_b, llc_b, "dev", LlcOp.RD_OWN, 0x4000)

    assert len(llc_b.trace) == 0
    assert t_a == t_b  # tracing is observational: timing identical
