"""Calibration tests: SimCXL must match the paper's hardware numbers.

These are the repository's core acceptance tests: every latency and
bandwidth point of Figs. 13/15 (plus DMA at 64 B) must land within the
paper's reported simulation error (~3%).
"""

import pytest

from repro.calibration import reference
from repro.calibration.calibrator import CalibrationTarget, Calibrator
from repro.calibration.metrics import absolute_percentage_error, mape, mape_by_key
from repro.calibration.microbench import CxlTestbench
from repro.config import asic_system, fpga_system

TOL = reference.TARGET_MAPE  # 3%


def within(measured, ref):
    assert measured == pytest.approx(ref, rel=TOL), (measured, ref)


# ------------------------- Latency calibration ------------------------
@pytest.mark.parametrize(
    "make,profile",
    [(fpga_system, "CXL-FPGA@400MHz"), (asic_system, "CXL-ASIC@1.5GHz")],
)
def test_load_latency_calibrated(make, profile):
    config = make()
    ref = reference.LOAD_LATENCY_NS[profile]
    within(CxlTestbench(config).latency_hmc_hit(trials=4).median_ns, ref["hmc_hit"])
    within(CxlTestbench(config).latency_llc_hit(trials=4).median_ns, ref["llc_hit"])
    within(CxlTestbench(config).latency_mem_hit(trials=4).median_ns, ref["mem_hit"])


@pytest.mark.parametrize(
    "make,name",
    [(fpga_system, "PCIe-FPGA@400MHz"), (asic_system, "PCIe-ASIC@1.5GHz")],
)
def test_dma_latency_calibrated(make, name):
    config = make()
    measured = CxlTestbench(config).dma_latency(64, repeats=9).median_ns
    within(measured, reference.DMA_LATENCY_64B_NS[name])


def test_dma_latency_curve_shape():
    """Fig. 14: flat below 8 KB, wire-dominated beyond."""
    config = fpga_system()
    lat = {
        size: CxlTestbench(config).dma_latency(size, repeats=3).median_ns
        for size in (64, 4096, 8192, 65536, 262144)
    }
    assert lat[4096] / lat[64] < 1.15
    assert lat[8192] / lat[64] < 1.25
    assert lat[262144] > 4 * lat[64]


# ------------------------ Bandwidth calibration -----------------------
@pytest.mark.parametrize(
    "make,profile",
    [(fpga_system, "CXL-FPGA@400MHz"), (asic_system, "CXL-ASIC@1.5GHz")],
)
def test_load_bandwidth_calibrated(make, profile):
    config = make()
    ref = reference.LOAD_BANDWIDTH_GBPS[profile]
    within(CxlTestbench(config).bandwidth_hmc_hit().bandwidth_gbps, ref["hmc_hit"])
    within(CxlTestbench(config).bandwidth_llc_hit().bandwidth_gbps, ref["llc_hit"])
    within(CxlTestbench(config).bandwidth_mem_hit().bandwidth_gbps, ref["mem_hit"])


@pytest.mark.parametrize(
    "make,name",
    [(fpga_system, "PCIe-FPGA@400MHz"), (asic_system, "PCIe-ASIC@1.5GHz")],
)
def test_dma_bandwidth_calibrated(make, name):
    config = make()
    measured = CxlTestbench(config).dma_bandwidth(64).bandwidth_gbps
    within(measured, reference.DMA_BANDWIDTH_64B_GBPS[name])


def test_dma_bandwidth_curve_shape():
    """Fig. 16: ~0.92 GB/s at 64 B rising to ~22.9 GB/s at 256 KB."""
    config = fpga_system()
    bw = {
        size: CxlTestbench(config).dma_bandwidth(size, descriptors=256).bandwidth_gbps
        for size in (64, 4096, 262144)
    }
    assert bw[64] < bw[4096] < bw[262144]
    within(bw[262144], reference.DMA_BANDWIDTH_GBPS[262144])


# ----------------------------- Headline -------------------------------
def test_headline_latency_reduction():
    """CXL.cache cuts 64B latency by ~68% vs. DMA (§VI-B.3)."""
    config = fpga_system()
    mem = CxlTestbench(config).latency_mem_hit(trials=4).median_ns
    dma = CxlTestbench(config).dma_latency(64, repeats=9).median_ns
    assert 1 - mem / dma == pytest.approx(0.68, abs=0.02)


def test_headline_bandwidth_ratio():
    """CXL.cache delivers ~14.4x DMA bandwidth at 64B (§VI-C.2)."""
    config = fpga_system()
    mem = CxlTestbench(config).bandwidth_mem_hit().bandwidth_gbps
    dma = CxlTestbench(config).dma_bandwidth(64).bandwidth_gbps
    assert mem / dma == pytest.approx(14.4, rel=0.05)


# ------------------------------ Metrics -------------------------------
def test_ape_and_mape():
    assert absolute_percentage_error(103, 100) == pytest.approx(0.03)
    assert mape([(103, 100), (97, 100)]) == pytest.approx(0.03)
    with pytest.raises(ValueError):
        absolute_percentage_error(1, 0)
    with pytest.raises(ValueError):
        mape([])


def test_mape_by_key():
    out = mape_by_key({"a": 110, "b": 90}, {"a": 100, "b": 100, "c": 5})
    assert out == {"a": pytest.approx(0.1), "b": pytest.approx(0.1)}
    with pytest.raises(ValueError):
        mape_by_key({"x": 1}, {"y": 1})


# ----------------------------- Calibrator -----------------------------
def test_calibrator_fits_linear_model():
    target = CalibrationTarget("t", reference=500.0)
    fit, measured = Calibrator(lambda p: 2 * p + 100, target).fit(0, 1_000)
    assert measured == pytest.approx(500.0, rel=1e-3)
    assert fit == pytest.approx(200.0, rel=1e-2)


def test_calibrator_decreasing_direction():
    target = CalibrationTarget("bw", reference=10.0)
    fit, measured = Calibrator(
        lambda p: 1_000.0 / p, target, increasing=False
    ).fit(1, 1_000)
    assert measured == pytest.approx(10.0, rel=1e-3)


def test_calibrator_unbracketed_raises():
    target = CalibrationTarget("t", reference=1e9)
    with pytest.raises(ValueError):
        Calibrator(lambda p: p, target).fit(0, 10)


def test_calibration_target_within():
    target = CalibrationTarget("t", reference=100.0, tolerance=0.03)
    assert target.within(102.9)
    assert not target.within(104)
