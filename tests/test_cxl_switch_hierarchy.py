"""Tests for CXL switches, fabric routing, and hierarchical coherence."""

import pytest

from repro.cache.hierarchy import GlobalAgent, HierarchicalDomain, LocalAgent
from repro.cxl.switch import CxlSwitch, RoutingError, SwitchFabric


# ------------------------------ Switches ------------------------------
def build_fabric():
    fabric = SwitchFabric()
    root = fabric.add_switch(CxlSwitch("root", traversal_ps=70_000))
    left = fabric.add_switch(CxlSwitch("left", traversal_ps=70_000))
    right = fabric.add_switch(CxlSwitch("right", traversal_ps=70_000))
    root.attach_switch(left)
    root.attach_switch(right)
    left.attach_endpoint("hostA")
    left.attach_endpoint("dev0")
    right.attach_endpoint("hostB")
    return fabric


def test_route_same_switch():
    fabric = build_fabric()
    assert fabric.route("hostA", "dev0") == ["left"]
    assert fabric.hop_count("hostA", "dev0") == 1


def test_route_across_root():
    fabric = build_fabric()
    assert fabric.route("hostA", "hostB") == ["left", "root", "right"]
    assert fabric.latency_ps("hostA", "hostB") == 3 * 70_000


def test_unknown_endpoint():
    fabric = build_fabric()
    with pytest.raises(RoutingError):
        fabric.route("ghost", "hostA")


def test_disconnected_fabric():
    fabric = SwitchFabric()
    a = fabric.add_switch(CxlSwitch("a"))
    b = fabric.add_switch(CxlSwitch("b"))
    a.attach_endpoint("x")
    b.attach_endpoint("y")
    with pytest.raises(RoutingError):
        fabric.route("x", "y")


def test_port_exhaustion():
    switch = CxlSwitch("s", ports=2)
    switch.attach_endpoint("a")
    switch.attach_endpoint("b")
    with pytest.raises(RoutingError):
        switch.attach_endpoint("c")


def test_duplicate_switch_rejected():
    fabric = SwitchFabric()
    fabric.add_switch(CxlSwitch("s"))
    with pytest.raises(ValueError):
        fabric.add_switch(CxlSwitch("s"))


def test_packets_counted_on_path():
    fabric = build_fabric()
    fabric.latency_ps("hostA", "hostB")
    assert fabric.switch("root").packets_routed == 1
    assert fabric.switch("left").packets_routed == 1


# ----------------------- Hierarchical coherence -----------------------
def test_local_agent_filters_repeat_accesses():
    domain = HierarchicalDomain(children=2)
    for _ in range(10):
        domain.access("child0", 0x1000)
    agent = domain.locals["child0"]
    assert agent.global_requests == 1
    assert agent.local_hits == 9
    assert agent.filter_rate == pytest.approx(0.9)


def test_exclusive_access_invalidates_sibling():
    domain = HierarchicalDomain(children=2)
    domain.access("child0", 0x1000)
    domain.access("child1", 0x1000, exclusive=True)
    # child0's replica was invalidated; its next access goes global.
    domain.access("child0", 0x1000)
    assert domain.locals["child0"].global_requests == 2


def test_shared_readers_coexist():
    domain = HierarchicalDomain(children=3)
    for child in ("child0", "child1", "child2"):
        domain.access(child, 0x2000)
    # Everyone keeps a shared replica; repeats are local.
    for child in ("child0", "child1", "child2"):
        domain.access(child, 0x2000)
        assert domain.locals[child].local_hits == 1


def test_shared_replica_insufficient_for_exclusive():
    domain = HierarchicalDomain(children=1)
    domain.access("child0", 0x3000)                    # shared
    hit = domain.access("child0", 0x3000, exclusive=True)
    assert not hit                                     # upgrade went global
    assert domain.locals["child0"].global_requests == 2


def test_owner_downgraded_by_reader():
    domain = HierarchicalDomain(children=2)
    domain.access("child0", 0x4000, exclusive=True)
    domain.access("child1", 0x4000)                    # reader
    # The ex-owner lost its exclusive replica.
    assert domain.access("child0", 0x4000, exclusive=True) is False


def test_traffic_savings_vs_flat_directory():
    """The §VIII motivation: local agents absorb most coherence traffic
    for locality-heavy workloads."""
    domain = HierarchicalDomain(children=4)
    accesses = 0
    for round_ in range(50):
        for i, child in enumerate(sorted(domain.locals)):
            # Each child hammers its own working set.
            domain.access(child, 0x10000 * (i + 1) + (round_ % 4) * 64)
            accesses += 1
    hierarchical = domain.total_fabric_messages
    flat = domain.flat_equivalent_messages(accesses)
    assert hierarchical < 0.2 * flat


def test_invalid_child_count():
    with pytest.raises(ValueError):
        HierarchicalDomain(children=0)


def test_global_agent_release():
    agent = GlobalAgent()
    agent.acquire("a", 0x1000, exclusive=True)
    agent.release("a", 0x1000)
    # A second exclusive from another child needs no invalidation.
    invalidated, _msgs = agent.acquire("b", 0x1000, exclusive=True)
    assert invalidated == set()
