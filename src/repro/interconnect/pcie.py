"""PCIe transaction layer: TLPs, ordering, and the physical link.

Models the properties the paper's analysis leans on:

* payloads are segmented into TLPs of at most ``max_payload`` bytes,
  each carrying header overhead on the wire (this is what caps DMA
  efficiency at large transfers, Fig. 16);
* posted writes are strictly ordered; only one outstanding MMIO write
  (§II-A.1);
* reads are split transactions (request + completion), so a later read
  may pass an earlier write unless the initiator explicitly waits —
  the read-after-write hazard that serializes PCIe RAOs (§V-A.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config.system import DmaParams
from repro.sim.component import Component
from repro.sim.engine import Simulator


class TlpType(enum.Enum):
    MEM_READ = "MRd"
    MEM_WRITE = "MWr"          # posted
    COMPLETION = "CplD"
    CONFIG_READ = "CfgRd"
    CONFIG_WRITE = "CfgWr"


@dataclass
class Tlp:
    """One transaction-layer packet."""

    ttype: TlpType
    addr: int
    size: int
    tag: int = 0

    def wire_bytes(self, header_bytes: int) -> int:
        payload = self.size if self.ttype in (TlpType.MEM_WRITE, TlpType.COMPLETION) else 0
        return payload + header_bytes


class PcieLink(Component):
    """A PCIe link shared by every TLP in one direction pair."""

    def __init__(self, sim: Simulator, params: DmaParams, name: str = "pcie") -> None:
        super().__init__(sim, name)
        self.params = params
        self._busy_until_ps = 0
        self._last_posted_write_done_ps = 0
        self.tlps_sent = 0
        self.bytes_on_wire = 0

    def segment(self, addr: int, size: int, ttype: TlpType) -> List[Tlp]:
        """Split a transfer into max-payload-sized TLPs."""
        if size <= 0:
            raise ValueError("transfer size must be positive")
        tlps = []
        offset = 0
        tag = 0
        while offset < size:
            chunk = min(self.params.max_payload, size - offset)
            tlps.append(Tlp(ttype, addr + offset, chunk, tag))
            offset += chunk
            tag += 1
        return tlps

    def _wire_ps(self, tlp: Tlp) -> int:
        wire = tlp.wire_bytes(self.params.tlp_header_bytes)
        self.bytes_on_wire += wire
        return round(wire / self.params.raw_link_gbps * 1_000)

    def transmit(self, tlp: Tlp, on_delivered: Optional[Callable[[], None]] = None) -> int:
        """Serialize one TLP onto the wire; returns delivery time."""
        start = max(self.sim.now, self._busy_until_ps)
        if tlp.ttype is TlpType.MEM_WRITE:
            # Posted writes may not pass earlier posted writes.
            start = max(start, self._last_posted_write_done_ps)
        done = start + self._wire_ps(tlp)
        self._busy_until_ps = done
        if tlp.ttype is TlpType.MEM_WRITE:
            self._last_posted_write_done_ps = done
        self.tlps_sent += 1
        if on_delivered is not None:
            self.sim.schedule_at(done, on_delivered, label=self.name)
        return done

    def transfer_wire_ps(self, size: int, ttype: TlpType = TlpType.MEM_WRITE) -> int:
        """Total wire time of a segmented transfer (no queueing)."""
        return sum(self._wire_ps_pure(tlp) for tlp in self.segment(0, size, ttype))

    def _wire_ps_pure(self, tlp: Tlp) -> int:
        wire = tlp.wire_bytes(self.params.tlp_header_bytes)
        return round(wire / self.params.raw_link_gbps * 1_000)


class MmioPath(Component):
    """Uncached CPU access to device BAR space over PCIe.

    Writes are posted but strictly ordered with only one outstanding
    (§II-A.1); reads are blocking round trips.
    """

    def __init__(self, sim: Simulator, params: DmaParams, name: str = "mmio") -> None:
        super().__init__(sim, name)
        self.params = params
        self._write_free_ps = 0
        self.writes = 0
        self.reads = 0

    def write(self, on_done: Optional[Callable[[], None]] = None) -> int:
        """Issue one MMIO write; returns completion time at the device."""
        start = max(self.sim.now, self._write_free_ps)
        done = start + self.params.mmio_write_ps
        # Strict ordering: next write may not begin until this one lands.
        self._write_free_ps = done
        self.writes += 1
        if on_done is not None:
            self.sim.schedule_at(done, on_done, label=self.name)
        return done

    def read(self, on_done: Optional[Callable[[], None]] = None) -> int:
        done = self.sim.now + self.params.mmio_read_ps
        self.reads += 1
        if on_done is not None:
            self.sim.schedule_at(done, on_done, label=self.name)
        return done
