"""CXL Flex Bus: the shared PHY multiplexing .io/.cache/.mem traffic.

The Flex Bus carries the three sub-protocols over one physical link.
Here it provides the calibrated one-way PHY traversal used by the
CXL.cache/mem paths and arbitration counters per channel.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro.config.system import DeviceProfile
from repro.sim.component import Component
from repro.sim.engine import Simulator


class FlexBusChannel(enum.Enum):
    IO = "cxl.io"
    CACHE = "cxl.cache"
    MEM = "cxl.mem"


class FlexBus(Component):
    """One CXL link's PHY with per-channel accounting."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        name: str = "flexbus",
    ) -> None:
        super().__init__(sim, name)
        self.profile = profile
        self.traffic: Dict[FlexBusChannel, int] = {c: 0 for c in FlexBusChannel}

    @property
    def oneway_ps(self) -> int:
        return self.profile.phy_oneway_ps

    def traverse(
        self,
        channel: FlexBusChannel,
        on_arrive: Optional[Callable[[], None]] = None,
    ) -> int:
        """One-way traversal; returns the arrival time (ps)."""
        self.traffic[channel] += 1
        arrive = self.sim.now + self.oneway_ps
        if on_arrive is not None:
            self.sim.schedule_at(arrive, on_arrive, label=self.name)
        return arrive

    def round_trip_ps(self) -> int:
        return 2 * self.oneway_ps
