"""Interconnect models: links, PCIe, CXL Flex Bus, NoC/UPI topology."""

from repro.interconnect.link import Link
from repro.interconnect.pcie import PcieLink, Tlp, TlpType
from repro.interconnect.flexbus import FlexBus, FlexBusChannel
from repro.interconnect.noc import NocTopology, NodeCoord

__all__ = [
    "Link",
    "PcieLink",
    "Tlp",
    "TlpType",
    "FlexBus",
    "FlexBusChannel",
    "NocTopology",
    "NodeCoord",
]
