"""NoC/UPI topology for the dual-socket SNC-4 host (Fig. 12 substrate).

Each socket holds four CPU chiplets; SNC-4 exposes each chiplet as one
NUMA node (nodes 0-3 on socket 0, nodes 4-7 on socket 1).  The CXL
device hangs off a root port adjacent to node 7.  A memory access from
the device to node ``n`` pays a routing distance that grows with mesh
hops and, for the remote socket, a UPI crossing.

Distances are calibrated per node against the measured medians; the
mesh/UPI decomposition is available for building other topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.config.presets import NUMA_EXTRA_PS


@dataclass(frozen=True)
class NodeCoord:
    """Position of a NUMA node: socket and 2x2 mesh coordinates."""

    socket: int
    x: int
    y: int


DEFAULT_COORDS: Dict[int, NodeCoord] = {
    0: NodeCoord(0, 0, 0),
    1: NodeCoord(0, 0, 1),
    2: NodeCoord(0, 1, 0),
    3: NodeCoord(0, 1, 1),
    4: NodeCoord(1, 0, 0),
    5: NodeCoord(1, 0, 1),
    6: NodeCoord(1, 1, 0),
    7: NodeCoord(1, 1, 1),
}


class NocTopology:
    """Distance oracle for device -> NUMA-node memory accesses."""

    def __init__(
        self,
        device_node: int = 7,
        extra_ps: Optional[Mapping[int, int]] = None,
        coords: Optional[Mapping[int, NodeCoord]] = None,
        hop_x_ps: int = 20_000,
        hop_y_ps: int = 5_000,
        upi_ps: int = 48_000,
    ) -> None:
        self.device_node = device_node
        self.coords = dict(coords or DEFAULT_COORDS)
        if device_node not in self.coords:
            raise ValueError(f"device node {device_node} missing from coords")
        self.hop_x_ps = hop_x_ps
        self.hop_y_ps = hop_y_ps
        self.upi_ps = upi_ps
        self._extra_ps = dict(extra_ps) if extra_ps is not None else dict(NUMA_EXTRA_PS)

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self.coords))

    def mesh_distance_ps(self, node: int) -> int:
        """Analytic mesh+UPI distance (used when no calibration exists)."""
        src = self.coords[self.device_node]
        dst = self.coords[node]
        dx = abs(src.x - dst.x)
        dy = abs(src.y - dst.y)
        distance = dx * self.hop_x_ps + dy * self.hop_y_ps
        if src.socket != dst.socket:
            distance += self.upi_ps
        return distance

    def extra_ps(self, node: int) -> int:
        """Calibrated round-trip distance added to a mem-hit access."""
        if node in self._extra_ps:
            return self._extra_ps[node]
        return self.mesh_distance_ps(node)

    def nearest_node(self) -> int:
        return min(self.nodes, key=self.extra_ps)

    def farthest_node(self) -> int:
        return max(self.nodes, key=self.extra_ps)


from repro.system.registry import register_component  # noqa: E402


@register_component("noc")
def _build_noc(builder, system, spec) -> NocTopology:
    """Builder factory: NUMA distance oracle (params forwarded)."""
    return NocTopology(**dict(spec.params))
