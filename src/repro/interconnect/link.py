"""Generic serialized link with latency and bandwidth occupancy."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.component import Component
from repro.sim.engine import Simulator


class Link(Component):
    """A point-to-point link: fixed propagation latency plus a shared
    serialization resource (bytes move at ``gbps`` gigabytes/second).

    ``send`` schedules delivery at ``now + serialization + latency`` and
    back-pressures by stacking serialization time when the link is busy.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency_ps: int,
        gbps: float,
    ) -> None:
        super().__init__(sim, name)
        if gbps <= 0:
            raise ValueError("link bandwidth must be positive")
        self.latency_ps = latency_ps
        self.gbps = gbps
        self._busy_until_ps = 0
        self.bytes_moved = 0
        self.packets = 0

    def serialization_ps(self, size_bytes: int) -> int:
        return round(size_bytes / self.gbps * 1_000)

    def send(
        self,
        size_bytes: int,
        on_delivered: Optional[Callable[[], None]] = None,
        payload: Any = None,
        handler: Optional[Callable[[Any], None]] = None,
    ) -> int:
        """Transmit ``size_bytes``; returns the delivery time (ps).

        Exactly one of ``on_delivered`` / ``handler`` may be provided;
        ``handler`` receives ``payload`` at delivery.
        """
        start = max(self.sim.now, self._busy_until_ps)
        tx_done = start + self.serialization_ps(size_bytes)
        self._busy_until_ps = tx_done
        delivered = tx_done + self.latency_ps
        self.bytes_moved += size_bytes
        self.packets += 1
        if on_delivered is not None:
            self.sim.schedule_at(delivered, on_delivered, label=self.name)
        elif handler is not None:
            self.sim.schedule_at(delivered, handler, payload, label=self.name)
        return delivered

    @property
    def utilization_window_ps(self) -> int:
        """How far ahead of now the link is booked."""
        return max(0, self._busy_until_ps - self.sim.now)
