"""Coherence message vocabulary of the CXL.cache sub-protocol (Fig. 7)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class MessageType(enum.Enum):
    # Device/peer -> home agent (D2H requests).
    RD_SHARED = "RdShared"        # read for shared access
    RD_OWN = "RdOwn"              # read for ownership
    RD_CURR = "RdCurr"            # uncached snapshot read
    DIRTY_EVICT = "DirtyEvict"    # writeback request for a dirty line
    CLEAN_EVICT = "CleanEvict"    # notify eviction of a clean line
    NC_PUSH = "NC-P"              # non-cacheable push into host LLC
    # Home agent -> peers (H2D requests: snoops).
    SNP_INV = "SnpInv"
    SNP_DATA = "SnpData"
    # Peer -> home agent (H2D responses).
    RSP_I_FWD_M = "RspIFwdM"      # invalidated; forwarding modified data
    RSP_S_FWD_S = "RspSFwdS"      # downgraded to shared; forwarding data
    RSP_I = "RspI"                # invalidated, no data
    # Home agent -> requester (D2H responses / GO messages).
    DATA = "Data"
    GO_E = "GO-E"
    GO_S = "GO-S"
    GO_I = "GO-I"
    GO_WRITE_PULL = "GO-WritePull"
    # Memory traffic.
    MEM_RD = "MemRd"
    MEM_WR = "MemWr"


@dataclass
class CoherenceMessage:
    """One protocol message, timestamped for trace inspection."""

    mtype: MessageType
    addr: int
    src: str
    dst: str
    time_ps: int = 0

    def __str__(self) -> str:
        return (
            f"{self.time_ps:>10}ps  {self.src:>12} -> {self.dst:<12} "
            f"{self.mtype.value:<12} @{self.addr:#x}"
        )


class ProtocolTrace:
    """Ordered record of coherence messages (the Fig. 7 ladder).

    ``enabled`` gates collection: hot emitters check the flag *before*
    constructing a :class:`CoherenceMessage`, so a disabled trace costs
    a single attribute read per protocol message.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.messages: List[CoherenceMessage] = []
        self.enabled = enabled

    def record(self, msg: CoherenceMessage) -> None:
        if self.enabled:
            self.messages.append(msg)

    def types(self) -> List[MessageType]:
        return [m.mtype for m in self.messages]

    def for_addr(self, addr: int) -> List[CoherenceMessage]:
        return [m for m in self.messages if m.addr == addr]

    def clear(self) -> None:
        self.messages.clear()

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages)

    def render(self) -> str:
        return "\n".join(str(m) for m in self.messages)


class NullProtocolTrace(ProtocolTrace):
    """A permanently disabled trace for measurement runs.

    Behaves like an empty :class:`ProtocolTrace`; ``record`` is a no-op
    even if ``enabled`` is flipped by accident.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(self, msg: CoherenceMessage) -> None:  # pragma: no cover - trivial
        pass
