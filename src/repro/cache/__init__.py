"""Cache substrate: arrays, MESI coherence, peer caches, LLC home agent."""

from repro.cache.block import CacheBlock, MesiState
from repro.cache.array import CacheArray
from repro.cache.messages import CoherenceMessage, MessageType
from repro.cache.mesi import (
    ALLOWED_TRANSITIONS,
    check_transition,
    fast_mode,
    ProtocolError,
    set_fast_mode,
)
from repro.cache.l1 import L1Cache
from repro.cache.llc import SharedLLC, LlcOp
from repro.cache.hmc import HostMemoryCache
from repro.cache.hierarchy import GlobalAgent, HierarchicalDomain, LocalAgent

__all__ = [
    "CacheBlock",
    "MesiState",
    "CacheArray",
    "CoherenceMessage",
    "MessageType",
    "ALLOWED_TRANSITIONS",
    "check_transition",
    "fast_mode",
    "set_fast_mode",
    "ProtocolError",
    "L1Cache",
    "SharedLLC",
    "LlcOp",
    "HostMemoryCache",
    "GlobalAgent",
    "HierarchicalDomain",
    "LocalAgent",
]
