"""MESI transition legality.

The controllers drive the state machine; this module is the referee.
Every state change in a peer cache goes through :func:`check_transition`
so a protocol bug fails loudly instead of silently corrupting state.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.cache.block import MesiState

I = MesiState.INVALID
S = MesiState.SHARED
E = MesiState.EXCLUSIVE
M = MesiState.MODIFIED


class ProtocolError(RuntimeError):
    """An illegal MESI transition or directory inconsistency."""


# (current, event) -> allowed next states.
# Events: local_read / local_write / fill_s / fill_e / snp_inv / snp_data
# / evict / go_i.
ALLOWED_TRANSITIONS: Dict[Tuple[MesiState, str], FrozenSet[MesiState]] = {
    (I, "fill_s"): frozenset({S}),
    (I, "fill_e"): frozenset({E}),
    (S, "local_read"): frozenset({S}),
    (S, "upgrade"): frozenset({M}),
    (S, "snp_inv"): frozenset({I}),
    (S, "evict"): frozenset({I}),
    (E, "local_read"): frozenset({E}),
    (E, "local_write"): frozenset({M}),  # silent upgrade (Fig. 7 phase 2)
    (E, "snp_inv"): frozenset({I}),
    (E, "snp_data"): frozenset({S}),
    (E, "evict"): frozenset({I}),
    (M, "local_read"): frozenset({M}),
    (M, "local_write"): frozenset({M}),
    (M, "snp_inv"): frozenset({I}),
    (M, "snp_data"): frozenset({S}),
    (M, "evict"): frozenset({I}),   # via DirtyEvict + GO-WritePull
    (M, "go_i"): frozenset({I}),
}


def check_transition(current: MesiState, event: str, target: MesiState) -> MesiState:
    """Validate ``current --event--> target``; returns ``target``."""
    allowed = ALLOWED_TRANSITIONS.get((current, event))
    if allowed is None:
        raise ProtocolError(f"no transition for event {event!r} in state {current.value}")
    if target not in allowed:
        raise ProtocolError(
            f"illegal transition {current.value} --{event}--> {target.value};"
            f" allowed: {sorted(s.value for s in allowed)}"
        )
    return target
