"""MESI transition legality.

The controllers drive the state machine; this module is the referee.
Every state change in a peer cache goes through :func:`check_transition`
so a protocol bug fails loudly instead of silently corrupting state.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.cache.block import MesiState

I = MesiState.INVALID
S = MesiState.SHARED
E = MesiState.EXCLUSIVE
M = MesiState.MODIFIED


class ProtocolError(RuntimeError):
    """An illegal MESI transition or directory inconsistency."""


# (current, event) -> allowed next states.
# Events: local_read / local_write / fill_s / fill_e / snp_inv / snp_data
# / evict / go_i.
ALLOWED_TRANSITIONS: Dict[Tuple[MesiState, str], FrozenSet[MesiState]] = {
    (I, "fill_s"): frozenset({S}),
    (I, "fill_e"): frozenset({E}),
    (S, "local_read"): frozenset({S}),
    (S, "upgrade"): frozenset({M}),
    (S, "snp_inv"): frozenset({I}),
    # A shared copy answering a data snoop keeps its clean S line (the
    # home agent already has the data).  Reached when concurrent devices
    # share a line: an owner's directory entry is written at the home
    # agent before its exclusive fill crosses the flexbus back, so a
    # same-window read from another device can snoop the stale S copy.
    (S, "snp_data"): frozenset({S}),
    (S, "evict"): frozenset({I}),
    (E, "local_read"): frozenset({E}),
    (E, "local_write"): frozenset({M}),  # silent upgrade (Fig. 7 phase 2)
    (E, "snp_inv"): frozenset({I}),
    (E, "snp_data"): frozenset({S}),
    (E, "evict"): frozenset({I}),
    (M, "local_read"): frozenset({M}),
    (M, "local_write"): frozenset({M}),
    (M, "snp_inv"): frozenset({I}),
    (M, "snp_data"): frozenset({S}),
    (M, "evict"): frozenset({I}),   # via DirtyEvict + GO-WritePull
    (M, "go_i"): frozenset({I}),
}


# Flattened legality table: membership means the transition is legal.
# A single set probe replaces the two-stage get + frozenset membership
# test on the hot path.  This is a snapshot of ALLOWED_TRANSITIONS;
# code that mutates the public dict (tests, protocol experiments) must
# call rebuild_table() afterwards or restrictions will not be enforced.
def _flatten() -> FrozenSet[Tuple[MesiState, str, MesiState]]:
    return frozenset(
        (current, event, target)
        for (current, event), allowed in ALLOWED_TRANSITIONS.items()
        for target in allowed
    )


_LEGAL = _flatten()


def rebuild_table() -> None:
    """Re-snapshot ALLOWED_TRANSITIONS after mutating it."""
    global _LEGAL
    _LEGAL = _flatten()

# When True, check_transition trusts the caller and skips validation
# entirely.  Meant for measurement runs on configurations whose
# protocol behavior has already been validated by the test suite.
_FAST = False


def set_fast_mode(enabled: bool) -> bool:
    """Toggle validation-free transitions; returns the previous mode."""
    global _FAST
    previous = _FAST
    _FAST = bool(enabled)
    return previous


def fast_mode() -> bool:
    """Whether transition validation is currently skipped."""
    return _FAST


def check_transition(current: MesiState, event: str, target: MesiState) -> MesiState:
    """Validate ``current --event--> target``; returns ``target``."""
    if _FAST:
        return target
    if (current, event, target) in _LEGAL:
        return target
    # Cold path: consult the public table directly so transitions added
    # to ALLOWED_TRANSITIONS after import are still honored.
    allowed = ALLOWED_TRANSITIONS.get((current, event))
    if allowed is None:
        raise ProtocolError(f"no transition for event {event!r} in state {current.value}")
    if target in allowed:
        return target
    raise ProtocolError(
        f"illegal transition {current.value} --{event}--> {target.value};"
        f" allowed: {sorted(s.value for s in allowed)}"
    )
