"""Shared LLC home agent with an embedded directory.

The LLC is the coherence synchronization point (§II-B): every line's
tag embeds the directory metadata (state, exclusive owner ID, sharer
bit-vector).  Peer caches (core L1s and the device HMC) send D2H
requests here; the home agent snoops peers, talks to the memory
interface, and answers with Data/GO messages — the Fig. 7 ladder.

Timing: a request pays the host ingress queue, the home-agent
initiation interval (which bounds sustained bandwidth), the LLC
lookup, plus a snoop round trip and/or a memory round trip when the
directory demands them.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.cache.array import CacheArray
from repro.cache.block import CacheBlock, MesiState
from repro.cache.mesi import ProtocolError
from repro.cache.messages import CoherenceMessage, MessageType, ProtocolTrace
from repro.config.system import HostParams
from repro.mem.address import line_base
from repro.mem.interface import MemoryInterface
from repro.sim.component import Component
from repro.sim.engine import Simulator


class LlcOp(enum.Enum):
    RD_SHARED = MessageType.RD_SHARED
    RD_OWN = MessageType.RD_OWN
    DIRTY_EVICT = MessageType.DIRTY_EVICT
    CLEAN_EVICT = MessageType.CLEAN_EVICT
    NC_PUSH = MessageType.NC_PUSH


class SharedLLC(Component):
    """Home agent + shared LLC + directory."""

    def __init__(
        self,
        sim: Simulator,
        host: HostParams,
        memif: MemoryInterface,
        trace: Optional[ProtocolTrace] = None,
        name: str = "LLC",
        snoop_rt_ps: int = 60_000,
    ) -> None:
        super().__init__(sim, name)
        self.host = host
        self.memif = memif
        self.trace = trace if trace is not None else ProtocolTrace()
        self.snoop_rt_ps = snoop_rt_ps
        self.array = CacheArray(host.llc_size, host.llc_ways, name=name)
        self._peers: Dict[str, object] = {}
        self._busy: Dict[int, Deque[Callable[[], None]]] = {}
        self._next_free_ps = 0
        self.requests = 0
        self.snoops_sent = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_peer(self, peer_id: str, peer: object) -> None:
        """Register a peer cache controller (must expose ``snoop``)."""
        if peer_id in self._peers:
            raise ValueError(f"peer {peer_id!r} already registered")
        self._peers[peer_id] = peer

    # ------------------------------------------------------------------
    # Test fixtures mirroring CLDEMOTE / CLFLUSH preconditioning (§VI-A)
    # ------------------------------------------------------------------
    def demote(self, addr: int) -> None:
        """CLDEMOTE: place a clean copy of the line in the LLC."""
        self.array.insert(line_base(addr), MesiState.EXCLUSIVE)

    def flush(self, addr: int) -> None:
        """CLFLUSH: drop the line from the LLC entirely (now memory-only)."""
        self.array.invalidate(line_base(addr))

    def holds(self, addr: int) -> bool:
        return self.array.peek(line_base(addr)) is not None

    def directory_entry(self, addr: int) -> Optional[CacheBlock]:
        return self.array.peek(line_base(addr))

    # ------------------------------------------------------------------
    # Request entry point
    # ------------------------------------------------------------------
    def request(
        self,
        requester: str,
        op: LlcOp,
        addr: int,
        on_done: Callable[[], None],
    ) -> None:
        """Issue a D2H request on behalf of ``requester``.

        ``on_done`` fires (as a simulator event) when the GO message
        lands back at the requester-facing boundary of the home agent.
        Racing requests to the same line serialize on a line lock.
        """
        addr = line_base(addr)
        if addr in self._busy:
            self._busy[addr].append(lambda: self._start(requester, op, addr, on_done))
            return
        self._busy[addr] = deque()
        self._start(requester, op, addr, on_done)

    def _start(self, requester: str, op: LlcOp, addr: int, on_done: Callable[[], None]) -> None:
        self.requests += 1
        if self.trace.enabled:
            self._record(MessageType(op.value), addr, requester, self.name, self.sim.now)
        # Ingress queue, then wait for the home agent to be free.
        self.sim.schedule_after(
            self.host.home_ingress_ps, self._arbitrate, (requester, op, addr, on_done)
        )

    def _arbitrate(self, requester: str, op: LlcOp, addr: int, on_done: Callable[[], None]) -> None:
        now = self.sim.now
        start = now if now > self._next_free_ps else self._next_free_ps
        hit = self.array.peek(addr) is not None
        ii = self.host.host_path_ii_ps if hit else self.host.mem_path_ii_ps
        self._next_free_ps = start + ii
        self.sim.schedule_after(
            start + self.host.llc_access_ps - now,
            self._dispatch,
            (requester, op, addr, on_done),
        )

    def _dispatch(self, requester: str, op: LlcOp, addr: int, on_done: Callable[[], None]) -> None:
        if op is LlcOp.RD_SHARED:
            self._read(requester, addr, exclusive=False, on_done=on_done)
        elif op is LlcOp.RD_OWN:
            self._read(requester, addr, exclusive=True, on_done=on_done)
        elif op is LlcOp.DIRTY_EVICT:
            self._dirty_evict(requester, addr, on_done)
        elif op is LlcOp.CLEAN_EVICT:
            self._clean_evict(requester, addr, on_done)
        elif op is LlcOp.NC_PUSH:
            self._nc_push(requester, addr, on_done)
        else:  # pragma: no cover - enum is closed
            raise ProtocolError(f"unknown op {op}")

    # ------------------------------------------------------------------
    # Read paths
    # ------------------------------------------------------------------
    def _read(self, requester: str, addr: int, exclusive: bool, on_done: Callable[[], None]) -> None:
        # The one counted probe per read request (stats contract: the
        # timing probe in _arbitrate peeks, and the fill that follows a
        # miss in _read_from_memory never re-counts).  touch=False keeps
        # LLC replacement driven purely by fill order, as before.
        block = self.array.lookup(addr, touch=False)
        if block is None:
            self._read_from_memory(requester, addr, exclusive, on_done)
            return
        extra = 0
        snoop_type = MessageType.SNP_INV if exclusive else MessageType.SNP_DATA
        owner = block.owner
        if owner is not None and owner != requester:
            extra += self._snoop(owner, snoop_type, addr, block)
        if exclusive:
            for sharer in sorted(block.sharers):
                if sharer != requester:
                    extra += 0  # sharer snoops overlap with the owner snoop
                    self._snoop(sharer, MessageType.SNP_INV, addr, block, count_only=True)
            block.sharers.clear()
            block.owner = requester
        else:
            if block.owner is not None and block.owner != requester:
                block.sharers.add(block.owner)
                block.owner = None
            block.sharers.add(requester)
        go = MessageType.GO_E if exclusive else MessageType.GO_S
        self._complete(requester, addr, go, extra, on_done)

    def _read_from_memory(
        self, requester: str, addr: int, exclusive: bool, on_done: Callable[[], None]
    ) -> None:
        if self.trace.enabled:
            self._record(MessageType.MEM_RD, addr, self.name, "memory", self.sim.now)
        mem_ps = self.memif.access_ps(addr, self.sim.now)
        block, victim = self.array.insert(addr, MesiState.EXCLUSIVE)
        if victim is not None:
            self._back_invalidate(*victim)
        if exclusive:
            block.owner = requester
            block.sharers.clear()
        else:
            block.owner = None
            block.sharers = {requester}
        go = MessageType.GO_E if exclusive else MessageType.GO_S
        self._complete(requester, addr, go, mem_ps, on_done)

    def _snoop(
        self,
        peer_id: str,
        snoop_type: MessageType,
        addr: int,
        block: CacheBlock,
        count_only: bool = False,
    ) -> int:
        """Snoop ``peer_id``; returns the latency added to the request."""
        peer = self._peers.get(peer_id)
        self.snoops_sent += 1
        traced = self.trace.enabled
        if traced:
            self._record(snoop_type, addr, self.name, peer_id, self.sim.now)
        if peer is None:
            raise ProtocolError(f"directory names unknown peer {peer_id!r}")
        response = peer.snoop(snoop_type, addr)
        if traced:
            self._record(response, addr, peer_id, self.name, self.sim.now + self.snoop_rt_ps)
        if response in (MessageType.RSP_I_FWD_M, MessageType.RSP_S_FWD_S):
            # Dirty data forwarded: home agent writes it back to memory
            # (Fig. 7 phase 1 writes back CoreX-L1's M copy).
            self.writebacks += 1
            if traced:
                self._record(MessageType.MEM_WR, addr, self.name, "memory", self.sim.now)
            self.memif.access_ps(addr, self.sim.now + self.snoop_rt_ps)
            block.state = MesiState.EXCLUSIVE
        if count_only:
            return 0
        return self.snoop_rt_ps

    # ------------------------------------------------------------------
    # Evictions from peers
    # ------------------------------------------------------------------
    def _dirty_evict(self, requester: str, addr: int, on_done: Callable[[], None]) -> None:
        block = self.array.peek(addr)
        if block is None or block.owner != requester:
            owner = None if block is None else block.owner
            raise ProtocolError(
                f"DirtyEvict from {requester!r} but directory owner is {owner!r}"
            )
        # GO-WritePull authorizes the writeback; data lands in the LLC,
        # then GO-I invalidates the peer copy.
        if self.trace.enabled:
            self._record(MessageType.GO_WRITE_PULL, addr, self.name, requester, self.sim.now)
            self._record(MessageType.DATA, addr, requester, self.name, self.sim.now)
        block.owner = None
        block.sharers.clear()
        block.state = MesiState.MODIFIED
        self._complete(requester, addr, MessageType.GO_I, 0, on_done)

    def _clean_evict(self, requester: str, addr: int, on_done: Callable[[], None]) -> None:
        block = self.array.peek(addr)
        if block is not None:
            if block.owner == requester:
                block.owner = None
            block.sharers.discard(requester)
        self._complete(requester, addr, MessageType.GO_I, 0, on_done)

    def _nc_push(self, requester: str, addr: int, on_done: Callable[[], None]) -> None:
        """NC-P: push a line straight into the LLC (dirty there)."""
        block, victim = self.array.insert(addr, MesiState.MODIFIED)
        block.owner = None
        block.sharers.clear()
        if victim is not None:
            self._back_invalidate(*victim)
        self._complete(requester, addr, MessageType.GO_I, 0, on_done)

    def _back_invalidate(self, victim_addr: int, victim: CacheBlock) -> None:
        """Handle an LLC replacement: invalidate peers, write back dirty data."""
        for peer_id in sorted(victim.sharers | ({victim.owner} if victim.owner else set())):
            peer = self._peers.get(peer_id)
            if peer is not None:
                if self.trace.enabled:
                    self._record(MessageType.SNP_INV, victim_addr, self.name, peer_id, self.sim.now)
                peer.snoop(MessageType.SNP_INV, victim_addr)
        if victim.dirty:
            self.writebacks += 1
            if self.trace.enabled:
                self._record(MessageType.MEM_WR, victim_addr, self.name, "memory", self.sim.now)
            self.memif.access_ps(victim_addr, self.sim.now)

    # ------------------------------------------------------------------
    # Completion plumbing
    # ------------------------------------------------------------------
    def _complete(
        self,
        requester: str,
        addr: int,
        go: MessageType,
        extra_ps: int,
        on_done: Callable[[], None],
    ) -> None:
        if self.trace.enabled:
            self._record(go, addr, self.name, requester, self.sim.now + extra_ps)
        self.sim.schedule_after(extra_ps, self._finish, (addr, on_done))

    def _finish(self, addr: int, on_done: Callable[[], None]) -> None:
        on_done()
        waiters = self._busy.get(addr)
        if waiters:
            next_request = waiters.popleft()
            next_request()
        else:
            self._busy.pop(addr, None)

    def _record(self, mtype: MessageType, addr: int, src: str, dst: str, when: int) -> None:
        # Gate on the flag here so a disabled trace never pays for
        # CoherenceMessage construction.
        trace = self.trace
        if trace.enabled:
            trace.record(CoherenceMessage(mtype, addr, src, dst, when))
