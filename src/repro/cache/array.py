"""Set-associative tag array with true-LRU replacement.

Geometry is required to be power-of-two in the line size and in the
number of sets (``size / (ways * line)``) so that set index and tag are
extracted with shifts and masks instead of division — the array sits on
the simulator's hottest path.  The way count itself need not be a power
of two.

Statistics contract
-------------------
* :meth:`lookup` counts **exactly one** hit or miss per call.  The
  ``touch`` flag only controls the LRU recency update: a
  ``lookup(addr, touch=False)`` probe still counts.  Pass
  ``count=False`` for a probe that should leave statistics alone.
* :meth:`peek` never counts statistics and never touches LRU state; it
  deliberately diverges from :meth:`lookup` so controllers can inspect
  directory state without perturbing measurements.
* :meth:`insert` never counts a hit or a miss — a fill that follows a
  counted ``lookup`` miss therefore does not double-count the miss.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.cache.block import CacheBlock, MesiState
from repro.mem.address import CACHELINE


class CacheArray:
    """Tag store: ``size`` bytes, ``ways``-way set associative.

    Operates on full physical addresses (internally line-aligned).  The
    array never evicts silently: ``insert`` returns the victim so the
    controller can act on dirty data.

    ``line`` and the derived set count must be powers of two (the way
    count may be arbitrary); index/tag extraction is shift-and-mask.
    Per-set stores are created lazily, so constructing a large array
    (e.g. a 96 MB LLC) is O(1).
    """

    def __init__(self, size: int, ways: int, line: int = CACHELINE, name: str = "cache") -> None:
        if size <= 0 or ways <= 0 or line <= 0:
            raise ValueError("size, ways and line must be positive")
        if size % (ways * line):
            raise ValueError("size must be a multiple of ways * line")
        if line & (line - 1):
            raise ValueError(f"line size must be a power of two (got {line})")
        num_sets = size // (ways * line)
        if num_sets & (num_sets - 1):
            raise ValueError(
                f"set count must be a power of two (got {num_sets} sets"
                f" from size={size}, ways={ways}, line={line})"
            )
        self.size = size
        self.ways = ways
        self.line = line
        self.name = name
        self.num_sets = num_sets
        self._line_shift = line.bit_length() - 1
        self._set_mask = num_sets - 1
        self._set_bits = num_sets.bit_length() - 1
        self._tag_shift = self._line_shift + self._set_bits
        # Set stores, keyed by set index and created on first fill.
        self._sets: Dict[int, Dict[int, CacheBlock]] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def index_tag(self, addr: int) -> Tuple[int, int]:
        """Decompose ``addr`` into ``(set index, tag)``.

        Exposed so a controller that probes a line and later fills it
        (after a simulated round trip) can compute the decomposition
        once and pass it back through ``insert(probe=...)``.
        """
        shifted = addr >> self._line_shift
        return shifted & self._set_mask, shifted >> self._set_bits

    # Backwards-compatible internal alias.
    _index_tag = index_tag

    def lookup(self, addr: int, touch: bool = True, count: bool = True) -> Optional[CacheBlock]:
        """Return the valid block holding ``addr``, or None.

        Counts one hit or miss unless ``count=False``; ``touch``
        controls only the LRU recency update (see the module-level
        statistics contract).
        """
        shifted = addr >> self._line_shift
        cache_set = self._sets.get(shifted & self._set_mask)
        block = cache_set.get(shifted >> self._set_bits) if cache_set else None
        if block is not None and block.valid:
            if count:
                self.hits += 1
            if touch:
                self._tick += 1
                block.last_touch = self._tick
            return block
        if count:
            self.misses += 1
        return None

    def lookup_many(self, addrs, touch: bool = True, count: bool = True) -> int:
        """Bulk probe: one :meth:`lookup` per address, returns the hit count.

        Accepts any iterable of addresses, including a numpy int array
        (the :class:`~repro.workloads.vectorized.OpBatch` address
        column feeds this directly).  Statistics and LRU state end up
        exactly as ``sum(lookup(a, touch, count) is not None for a in
        addrs)`` would leave them — the aggregate contract the bulk
        workload paths rely on — with the per-call bookkeeping hoisted
        out of the loop.
        """
        if hasattr(addrs, "tolist"):
            addrs = addrs.tolist()
        line_shift = self._line_shift
        set_mask = self._set_mask
        set_bits = self._set_bits
        sets_get = self._sets.get
        tick = self._tick
        hits = 0
        probes = 0
        for addr in addrs:
            probes += 1
            shifted = addr >> line_shift
            cache_set = sets_get(shifted & set_mask)
            block = cache_set.get(shifted >> set_bits) if cache_set else None
            if block is not None and block.valid:
                hits += 1
                if touch:
                    tick += 1
                    block.last_touch = tick
        self._tick = tick
        if count:
            self.hits += hits
            self.misses += probes - hits
        return hits

    def peek(self, addr: int) -> Optional[CacheBlock]:
        """Lookup without statistics or LRU update."""
        shifted = addr >> self._line_shift
        cache_set = self._sets.get(shifted & self._set_mask)
        block = cache_set.get(shifted >> self._set_bits) if cache_set else None
        if block is not None and block.valid:
            return block
        return None

    def insert(
        self,
        addr: int,
        state: MesiState,
        probe: Optional[Tuple[int, int]] = None,
    ) -> Tuple[CacheBlock, Optional[Tuple[int, CacheBlock]]]:
        """Fill ``addr`` with ``state``; returns ``(block, victim)``.

        ``victim`` is ``(victim_addr, victim_block)`` when a valid line
        had to be replaced, else None.  Locked lines are never chosen as
        victims; inserting into a set whose lines are all locked raises.
        ``probe`` reuses an ``index_tag(addr)`` result computed at
        lookup time.  Fills never count hit/miss statistics.
        """
        if state is MesiState.INVALID:
            raise ValueError("cannot insert an invalid line")
        if probe is None:
            index, tag = self.index_tag(addr)
        else:
            index, tag = probe
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = {}
        self._tick += 1
        existing = cache_set.get(tag)
        if existing is not None and existing.valid:
            existing.state = state
            existing.last_touch = self._tick
            return existing, None

        victim_info: Optional[Tuple[int, CacheBlock]] = None
        if len(cache_set) >= self.ways:
            candidates = [b for b in cache_set.values() if not b.locked]
            if not candidates:
                raise RuntimeError(
                    f"{self.name}: all ways locked in set {index}, cannot fill"
                )
            victim = min(candidates, key=lambda b: b.last_touch)
            victim_addr = self._block_addr(index, victim.tag)
            del cache_set[victim.tag]
            if victim.valid:
                self.evictions += 1
                if victim.dirty:
                    self.dirty_evictions += 1
                victim_info = (victim_addr, victim)

        block = CacheBlock(tag, state)
        block.last_touch = self._tick
        cache_set[tag] = block
        return block, victim_info

    def invalidate(self, addr: int) -> Optional[CacheBlock]:
        """Drop the line holding ``addr``; returns the old block if valid."""
        index, tag = self.index_tag(addr)
        cache_set = self._sets.get(index)
        if cache_set is None:
            return None
        block = cache_set.pop(tag, None)
        if block is not None and block.valid:
            return block
        return None

    def _block_addr(self, index: int, tag: int) -> int:
        return ((tag << self._set_bits) | index) << self._line_shift

    def blocks(self) -> Iterator[Tuple[int, CacheBlock]]:
        """Iterate ``(line_addr, block)`` over all valid lines.

        Iterates sets in index order so traversal order is deterministic
        regardless of fill order.
        """
        for index in sorted(self._sets):
            for tag, block in self._sets[index].items():
                if block.valid:
                    yield self._block_addr(index, tag), block

    @property
    def occupancy(self) -> int:
        return sum(1 for _addr, _block in self.blocks())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
