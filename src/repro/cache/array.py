"""Set-associative tag array with true-LRU replacement."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.cache.block import CacheBlock, MesiState
from repro.mem.address import CACHELINE, line_base


class CacheArray:
    """Tag store: ``size`` bytes, ``ways``-way set associative.

    Operates on full physical addresses (internally line-aligned).  The
    array never evicts silently: ``insert`` returns the victim so the
    controller can act on dirty data.
    """

    def __init__(self, size: int, ways: int, line: int = CACHELINE, name: str = "cache") -> None:
        if size <= 0 or ways <= 0 or line <= 0:
            raise ValueError("size, ways and line must be positive")
        if size % (ways * line):
            raise ValueError("size must be a multiple of ways * line")
        self.size = size
        self.ways = ways
        self.line = line
        self.name = name
        self.num_sets = size // (ways * line)
        self._sets: List[Dict[int, CacheBlock]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def _index_tag(self, addr: int) -> Tuple[int, int]:
        base = line_base(addr, self.line)
        index = (base // self.line) % self.num_sets
        tag = base // (self.line * self.num_sets)
        return index, tag

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Return the valid block holding ``addr``, or None (counts stats)."""
        index, tag = self._index_tag(addr)
        block = self._sets[index].get(tag)
        if block is not None and block.valid:
            self.hits += 1
            if touch:
                self._tick += 1
                block.last_touch = self._tick
            return block
        self.misses += 1
        return None

    def peek(self, addr: int) -> Optional[CacheBlock]:
        """Lookup without statistics or LRU update."""
        index, tag = self._index_tag(addr)
        block = self._sets[index].get(tag)
        if block is not None and block.valid:
            return block
        return None

    def insert(
        self, addr: int, state: MesiState
    ) -> Tuple[CacheBlock, Optional[Tuple[int, CacheBlock]]]:
        """Fill ``addr`` with ``state``; returns ``(block, victim)``.

        ``victim`` is ``(victim_addr, victim_block)`` when a valid line
        had to be replaced, else None.  Locked lines are never chosen as
        victims; inserting into a set whose lines are all locked raises.
        """
        if state is MesiState.INVALID:
            raise ValueError("cannot insert an invalid line")
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        self._tick += 1
        existing = cache_set.get(tag)
        if existing is not None and existing.valid:
            existing.state = state
            existing.last_touch = self._tick
            return existing, None

        victim_info: Optional[Tuple[int, CacheBlock]] = None
        if len(cache_set) >= self.ways:
            candidates = [b for b in cache_set.values() if not b.locked]
            if not candidates:
                raise RuntimeError(
                    f"{self.name}: all ways locked in set {index}, cannot fill"
                )
            victim = min(candidates, key=lambda b: b.last_touch)
            victim_addr = self._block_addr(index, victim.tag)
            del cache_set[victim.tag]
            if victim.valid:
                self.evictions += 1
                if victim.dirty:
                    self.dirty_evictions += 1
                victim_info = (victim_addr, victim)

        block = CacheBlock(tag, state)
        block.last_touch = self._tick
        cache_set[tag] = block
        return block, victim_info

    def invalidate(self, addr: int) -> Optional[CacheBlock]:
        """Drop the line holding ``addr``; returns the old block if valid."""
        index, tag = self._index_tag(addr)
        block = self._sets[index].pop(tag, None)
        if block is not None and block.valid:
            return block
        return None

    def _block_addr(self, index: int, tag: int) -> int:
        return (tag * self.num_sets + index) * self.line

    def blocks(self) -> Iterator[Tuple[int, CacheBlock]]:
        """Iterate ``(line_addr, block)`` over all valid lines."""
        for index, cache_set in enumerate(self._sets):
            for tag, block in cache_set.items():
                if block.valid:
                    yield self._block_addr(index, tag), block

    @property
    def occupancy(self) -> int:
        return sum(1 for _addr, _block in self.blocks())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
