"""Hierarchical coherence for multi-node supernodes (§VIII).

As the coherence domain scales past one host, a flat directory drowns
in cross-fabric traffic.  The paper's planned mitigation: each child
node runs a *local agent* that fields its own coherence transactions
and consults a single *global agent* only when it lacks the requested
replica.  This module implements that two-level protocol functionally
(line ownership tracking) and accounts the fabric messages each level
generates, so the traffic savings are measurable (see the
``hierarchical coherence`` ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.cxl.switch import SwitchFabric
from repro.mem.address import line_base


@dataclass
class LineState:
    owner: Optional[str] = None          # exclusive child, if any
    sharers: Set[str] = field(default_factory=set)


class GlobalAgent:
    """The supernode's root coherence point."""

    def __init__(self, name: str = "global-agent") -> None:
        self.name = name
        self._lines: Dict[int, LineState] = {}
        self.requests = 0
        self.invalidations_sent = 0

    def _line(self, addr: int) -> LineState:
        return self._lines.setdefault(line_base(addr), LineState())

    def acquire(self, child: str, addr: int, exclusive: bool) -> Tuple[Set[str], int]:
        """Grant ``child`` access; returns (children to invalidate, msgs)."""
        self.requests += 1
        line = self._line(addr)
        messages = 2  # request + grant
        to_invalidate: Set[str] = set()
        if exclusive:
            if line.owner is not None and line.owner != child:
                to_invalidate.add(line.owner)
            to_invalidate |= {s for s in line.sharers if s != child}
            line.owner = child
            line.sharers = set()
        else:
            if line.owner is not None and line.owner != child:
                # Downgrade the owner to sharer.
                to_invalidate.add(line.owner)
                line.sharers.add(line.owner)
                line.owner = None
            line.sharers.add(child)
        messages += 2 * len(to_invalidate)  # invalidate + ack per child
        self.invalidations_sent += len(to_invalidate)
        return to_invalidate, messages

    def release(self, child: str, addr: int) -> None:
        line = self._line(addr)
        if line.owner == child:
            line.owner = None
        line.sharers.discard(child)


class LocalAgent:
    """A child node's coherence agent: filters traffic to the global agent."""

    def __init__(self, name: str, global_agent: GlobalAgent) -> None:
        self.name = name
        self.global_agent = global_agent
        self._replicas: Dict[int, bool] = {}   # line -> exclusive?
        self.local_hits = 0
        self.global_requests = 0
        self.fabric_messages = 0

    def access(self, addr: int, exclusive: bool = False) -> bool:
        """One access from this child; returns True if satisfied locally."""
        addr = line_base(addr)
        held = self._replicas.get(addr)
        if held is not None and (not exclusive or held):
            self.local_hits += 1
            return True
        self.global_requests += 1
        _invalidated, messages = self.global_agent.acquire(self.name, addr, exclusive)
        self.fabric_messages += messages
        self._replicas[addr] = exclusive
        return False

    def invalidate(self, addr: int) -> None:
        self._replicas.pop(line_base(addr), None)

    @property
    def filter_rate(self) -> float:
        total = self.local_hits + self.global_requests
        return self.local_hits / total if total else 0.0


class HierarchicalDomain:
    """A supernode: one global agent + N local agents over a fabric."""

    def __init__(self, children: int, fabric: Optional[SwitchFabric] = None) -> None:
        if children <= 0:
            raise ValueError("need at least one child node")
        self.global_agent = GlobalAgent()
        self.locals: Dict[str, LocalAgent] = {
            f"child{i}": LocalAgent(f"child{i}", self.global_agent)
            for i in range(children)
        }
        self.fabric = fabric
        self._wire_invalidations()

    def _wire_invalidations(self) -> None:
        # Wrap acquire so grants invalidate sibling replicas.
        original = self.global_agent.acquire

        def acquire(child: str, addr: int, exclusive: bool):
            to_invalidate, messages = original(child, addr, exclusive)
            for name in to_invalidate:
                self.locals[name].invalidate(addr)
            return to_invalidate, messages

        self.global_agent.acquire = acquire  # type: ignore[method-assign]

    def access(self, child: str, addr: int, exclusive: bool = False) -> bool:
        return self.locals[child].access(addr, exclusive)

    @property
    def total_fabric_messages(self) -> int:
        return sum(agent.fabric_messages for agent in self.locals.values())

    def flat_equivalent_messages(self, accesses: int) -> int:
        """Traffic a flat (no local agent) directory would generate:
        every access crosses the fabric (request + grant)."""
        return 2 * accesses
