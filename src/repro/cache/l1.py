"""Private L1 peer cache for a host core.

Core0-L1 in Fig. 6: a peer of the device HMC, both children of the
shared LLC.  It implements the peer side of the protocol: local
loads/stores that miss go to the home agent, and incoming snoops
transition the line per MESI.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.array import CacheArray
from repro.cache.block import MesiState
from repro.cache.mesi import check_transition
from repro.cache.llc import LlcOp
from repro.cache.messages import MessageType
from repro.config.system import HostParams
from repro.mem.address import line_base
from repro.sim.component import Component
from repro.sim.engine import Simulator


class L1Cache(Component):
    """A core-private L1 data cache (peer cache)."""

    def __init__(
        self,
        sim: Simulator,
        host: HostParams,
        llc,  # SharedLLC; untyped to avoid a circular import
        core_id: int = 0,
        hit_ps: int = 1_500,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, name or f"core{core_id}-L1")
        self.llc = llc
        self.core_id = core_id
        self.hit_ps = hit_ps
        self.array = CacheArray(host.l1_size, host.l1_ways, name=self.name)
        llc.register_peer(self.name, self)
        self.snoops_received = 0

    # ------------------------------------------------------------------
    # CPU-side operations
    # ------------------------------------------------------------------
    def load(self, addr: int, on_done: Callable[[], None]) -> None:
        """Coherent load; fills the line Shared on a miss."""
        addr = line_base(addr)
        block = self.array.lookup(addr)
        if block is not None:
            self.schedule(self.hit_ps, on_done)
            return
        # Decompose once at miss time; the fill after the round trip
        # reuses the probe instead of re-deriving index/tag.
        probe = self.array.index_tag(addr)

        def filled() -> None:
            new_block, victim = self.array.insert(addr, MesiState.SHARED, probe=probe)
            check_transition(MesiState.INVALID, "fill_s", new_block.state)
            if victim is not None:
                self._write_back_victim(*victim)
            on_done()

        self.llc.request(self.name, LlcOp.RD_SHARED, addr, filled)

    def store(self, addr: int, on_done: Callable[[], None]) -> None:
        """Coherent store; acquires ownership then dirties the line."""
        addr = line_base(addr)
        block = self.array.lookup(addr)
        if block is not None and block.state.writable:
            if block.state is MesiState.EXCLUSIVE:
                block.state = check_transition(block.state, "local_write", MesiState.MODIFIED)
            self.schedule(self.hit_ps, on_done)
            return

        probe = self.array.index_tag(addr)

        def owned() -> None:
            new_block, victim = self.array.insert(addr, MesiState.EXCLUSIVE, probe=probe)
            check_transition(MesiState.INVALID, "fill_e", new_block.state)
            new_block.state = check_transition(
                new_block.state, "local_write", MesiState.MODIFIED
            )
            if victim is not None:
                self._write_back_victim(*victim)
            on_done()

        self.llc.request(self.name, LlcOp.RD_OWN, addr, owned)

    def evict(self, addr: int, on_done: Callable[[], None]) -> None:
        """Voluntarily evict a line (dirty lines use the DirtyEvict flow)."""
        addr = line_base(addr)
        block = self.array.peek(addr)
        if block is None:
            self.schedule(0, on_done)
            return
        op = LlcOp.DIRTY_EVICT if block.dirty else LlcOp.CLEAN_EVICT

        def done() -> None:
            self.array.invalidate(addr)
            on_done()

        self.llc.request(self.name, op, addr, done)

    def _write_back_victim(self, victim_addr: int, victim) -> None:
        if victim.dirty:
            self.llc.request(self.name, LlcOp.DIRTY_EVICT, victim_addr, lambda: None)
        else:
            self.llc.request(self.name, LlcOp.CLEAN_EVICT, victim_addr, lambda: None)

    # ------------------------------------------------------------------
    # Home-agent-facing side
    # ------------------------------------------------------------------
    def snoop(self, snoop_type: MessageType, addr: int) -> MessageType:
        """Handle an incoming snoop; returns the response message type."""
        self.snoops_received += 1
        addr = line_base(addr)
        block = self.array.peek(addr)
        if block is None:
            return MessageType.RSP_I
        if snoop_type is MessageType.SNP_INV:
            dirty = block.dirty
            check_transition(block.state, "snp_inv", MesiState.INVALID)
            self.array.invalidate(addr)
            return MessageType.RSP_I_FWD_M if dirty else MessageType.RSP_I
        if snoop_type is MessageType.SNP_DATA:
            dirty = block.dirty
            block.state = check_transition(block.state, "snp_data", MesiState.SHARED)
            return MessageType.RSP_S_FWD_S if dirty else MessageType.RSP_I
        raise ValueError(f"unexpected snoop {snoop_type}")

    # Test fixture: install a line in a given state without traffic.
    def install(self, addr: int, state: MesiState) -> None:
        self.array.insert(line_base(addr), state)
