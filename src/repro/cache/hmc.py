"""Host memory cache (HMC): the device-side peer cache.

Every CXL type-1/2 device carries a small HMC (128 KB, 4-way on the
paper's FPGA) that caches host memory and acts as a peer of the core
L1s.  The DCOH drives it; this class provides the functional array plus
the timing hooks (tag/data cycles, service initiation interval) the
calibrated device profiles define.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.cache.array import CacheArray
from repro.cache.block import CacheBlock, MesiState
from repro.cache.mesi import check_transition
from repro.cache.messages import MessageType
from repro.config.system import DeviceProfile
from repro.sim.component import Component
from repro.sim.engine import Simulator


class HostMemoryCache(Component):
    """The device's host-memory cache with calibrated service timing."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        name: str = "HMC",
    ) -> None:
        super().__init__(sim, name)
        self.profile = profile
        self.array = CacheArray(profile.hmc_size, profile.hmc_ways, name=name)
        self._next_free_ps = 0
        self.snoops_received = 0

    # ------------------------------------------------------------------
    # Timing helpers used by the DCOH / LSU path
    # ------------------------------------------------------------------
    @property
    def tag_ps(self) -> int:
        return self.profile.cycles_ps(self.profile.hmc_tag_cycles)

    @property
    def data_ps(self) -> int:
        return self.profile.cycles_ps(self.profile.hmc_data_cycles)

    @property
    def fill_ps(self) -> int:
        return self.profile.cycles_ps(self.profile.hmc_fill_cycles)

    def service_start(self, now_ps: int) -> int:
        """Bandwidth-limiting service slot: one request per service II."""
        start = max(now_ps, self._next_free_ps)
        self._next_free_ps = start + self.profile.hmc_service_ii_ps
        return start

    # ------------------------------------------------------------------
    # Functional array operations
    # ------------------------------------------------------------------
    # The array's shift-and-mask indexing discards line-offset bits, so
    # these helpers pass raw addresses straight through.
    def lookup(self, addr: int) -> Optional[CacheBlock]:
        return self.array.lookup(addr)

    def peek(self, addr: int) -> Optional[CacheBlock]:
        return self.array.peek(addr)

    def fill(
        self,
        addr: int,
        state: MesiState = MesiState.EXCLUSIVE,
        probe: Optional[Tuple[int, int]] = None,
    ) -> Tuple[CacheBlock, Optional[Tuple[int, CacheBlock]]]:
        """Install a line; returns (block, victim) like the array.

        ``probe`` forwards a cached ``array.index_tag`` decomposition
        when the caller looked the line up earlier in the transaction.
        """
        return self.array.insert(addr, state, probe=probe)

    def mark_modified(self, addr: int) -> None:
        """Silent E->M upgrade (Fig. 7 phase 2)."""
        block = self.array.peek(addr)
        if block is None:
            raise LookupError(f"line {addr:#x} not present in {self.name}")
        block.state = check_transition(block.state, "local_write", MesiState.MODIFIED)

    def invalidate(self, addr: int) -> Optional[CacheBlock]:
        return self.array.invalidate(addr)

    def lock(self, addr: int) -> None:
        """RAO PEs lock the target line during read-modify-write (§V-A.2)."""
        block = self.array.peek(addr)
        if block is None:
            raise LookupError(f"cannot lock absent line {addr:#x}")
        block.locked = True

    def unlock(self, addr: int) -> None:
        block = self.array.peek(addr)
        if block is not None:
            block.locked = False

    # ------------------------------------------------------------------
    # Home-agent-facing side (the DCOH answers snoops with HMC state)
    # ------------------------------------------------------------------
    def snoop(self, snoop_type: MessageType, addr: int) -> MessageType:
        self.snoops_received += 1
        block = self.array.peek(addr)
        if block is None:
            return MessageType.RSP_I
        if block.locked:
            # Atomicity guarantee: a locked line defers the snoop; the
            # home agent retries after the RMW window.  Modeled as the
            # peer keeping the line and reporting it dirty afterwards.
            block.locked = False
        if snoop_type is MessageType.SNP_INV:
            dirty = block.dirty
            check_transition(block.state, "snp_inv", MesiState.INVALID)
            self.array.invalidate(addr)
            return MessageType.RSP_I_FWD_M if dirty else MessageType.RSP_I
        if snoop_type is MessageType.SNP_DATA:
            dirty = block.dirty
            block.state = check_transition(block.state, "snp_data", MesiState.SHARED)
            return MessageType.RSP_S_FWD_S if dirty else MessageType.RSP_I
        raise ValueError(f"unexpected snoop {snoop_type}")

    @property
    def hit_rate(self) -> float:
        return self.array.hit_rate
