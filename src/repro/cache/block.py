"""Cacheline blocks and MESI stable states."""

from __future__ import annotations

import enum
from typing import Optional, Set


class MesiState(enum.Enum):
    """Stable MESI states used by every cache in the hierarchy."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"

    @property
    def readable(self) -> bool:
        return self is not MesiState.INVALID

    @property
    def writable(self) -> bool:
        return self in (MesiState.EXCLUSIVE, MesiState.MODIFIED)

    @property
    def dirty(self) -> bool:
        return self is MesiState.MODIFIED


class CacheBlock:
    """One cacheline's tag-store entry.

    ``owner`` and ``sharers`` carry the embedded directory metadata that
    the paper stores in LLC tags (CacheState / ID / sharer bit-vector);
    they are unused by private caches.
    """

    __slots__ = ("tag", "state", "owner", "sharers", "last_touch", "locked")

    def __init__(self, tag: int, state: MesiState = MesiState.INVALID) -> None:
        self.tag = tag
        self.state = state
        self.owner: Optional[str] = None
        self.sharers: Set[str] = set()
        self.last_touch = 0
        self.locked = False  # RAO PEs lock lines during read-modify-write

    @property
    def valid(self) -> bool:
        return self.state is not MesiState.INVALID

    @property
    def dirty(self) -> bool:
        return self.state.dirty

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheBlock(tag={self.tag:#x}, {self.state.value},"
            f" owner={self.owner}, sharers={sorted(self.sharers)})"
        )
