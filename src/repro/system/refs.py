"""Shared grammar for parametric reference strings: ``name(arg, ...)``.

Both registry layers that accept references in sweep grids — topologies
(``"fanout(6)"``, ``"supernode(2, 1073741824)"``) and workloads
(``"zipf(512,1.2)"``) — parse the same shape: a name, optionally
followed by a parenthesised list of numeric arguments.  This module is
the single implementation of that grammar, so the two axes cannot
drift; each layer wraps :func:`parse_parametric_ref` and re-raises
:class:`ValueError` as its own schema-error type.

Deliberately import-light (stdlib ``re`` only): both
:mod:`repro.system.topology` and :mod:`repro.workloads.base` import it
at module load.
"""

from __future__ import annotations

import re
from typing import List, Tuple, Union

_REF = re.compile(r"^(?P<name>[\w.-]+)\((?P<args>[^()]*)\)$")
_NUMBER = re.compile(r"^-?\d+(?:\.\d+)?$")


def parse_parametric_ref(ref: str) -> Tuple[str, Tuple[Union[int, float], ...]]:
    """``"zipf(512,1.2)"`` → ``("zipf", (512, 1.2))``.

    Only call this for strings containing ``"("`` — bare registry names
    are the caller's fast path (and may contain characters this grammar
    does not allow).  Ints stay ints, decimal tokens become floats;
    empty argument lists, non-numeric tokens, and anything else that
    fails the grammar raise :class:`ValueError` naming the offender.
    """
    match = _REF.match(ref)
    if not match:
        raise ValueError(
            f"malformed reference {ref!r}; expected 'name' or "
            "'name(arg, ...)' with numeric args"
        )
    raw_args = match.group("args")
    if not raw_args.strip():
        raise ValueError(f"reference {ref!r} has an empty argument list")
    args: List[Union[int, float]] = []
    for token in raw_args.split(","):
        token = token.strip()
        if not _NUMBER.match(token):
            raise ValueError(
                f"reference {ref!r}: argument {token!r} is not a number"
            )
        args.append(float(token) if "." in token else int(token))
    return match.group("name"), tuple(args)
