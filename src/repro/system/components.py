"""Component catalogue: importing this module registers every built-in
component factory with :mod:`repro.system.registry`.

Factories live next to the components they build (``cxl/device.py``
registers the three device types, ``nic/cxl_nic.py`` registers the RAO
NIC, ...); this module only guarantees they have all been imported
before a build dispatches by kind.  Third-party device types register
the same way: import :func:`repro.system.registry.register_component`
from the defining module and decorate a factory.
"""

from __future__ import annotations

# noqa: F401 — imported for their registration side effects.
from repro.core import supernode as _supernode
from repro.cxl import device as _device
from repro.devices import dma as _dma
from repro.devices import lsu as _lsu
from repro.interconnect import noc as _noc
from repro.nic import cxl_nic as _cxl_nic
from repro.nic import pcie_nic as _pcie_nic
from repro.rpc import cxl_rpc as _cxl_rpc
from repro.rpc import rpcnic as _rpcnic

__all__: list = []
