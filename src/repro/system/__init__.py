"""Unified system-construction layer.

``SystemBuilder`` assembles a complete simulated system (simulator +
host cache hierarchy + memory controller + CXL device stack + NICs +
RPC engines) from a :class:`~repro.config.system.SystemConfig` and a
declarative :class:`~repro.system.topology.Topology`.  Topologies and
component kinds are registries, so new scenarios plug in by name::

    from repro.system import SystemBuilder
    system = SystemBuilder(fpga_system()).build("fanout-2")
    lsu0 = system.node("lsu0")
"""

from repro.system.builder import BuildError, BuiltSystem, SystemBuilder
from repro.system.registry import (
    COMPONENT_KINDS,
    component_factory,
    component_kinds,
    register_component,
)
from repro.system.validation import (
    DEFAULT_PORT_BUDGETS,
    TopologyConfigError,
    hdm_capacity_bytes,
    validate_topology_config,
)
from repro.system.topology import (
    HDM_BASE,
    LinkSpec,
    NodeSpec,
    SHIPPED_TOPOLOGY_DIR,
    TOPOLOGIES,
    TOPOLOGY_FAMILIES,
    Topology,
    TopologySchemaError,
    UnknownTopologyError,
    dump_topology,
    fanout_topology,
    load_topology,
    microbench_topology,
    parse_topology_ref,
    register_topology,
    register_topology_family,
    register_topology_file,
    resolve_topology,
    supernode_topology,
    topology_by_name,
    topology_description,
    topology_names,
    validate_topology_ref,
)

__all__ = [
    "BuildError",
    "BuiltSystem",
    "SystemBuilder",
    "COMPONENT_KINDS",
    "component_factory",
    "component_kinds",
    "register_component",
    "DEFAULT_PORT_BUDGETS",
    "TopologyConfigError",
    "hdm_capacity_bytes",
    "validate_topology_config",
    "HDM_BASE",
    "LinkSpec",
    "NodeSpec",
    "SHIPPED_TOPOLOGY_DIR",
    "TOPOLOGIES",
    "TOPOLOGY_FAMILIES",
    "Topology",
    "TopologySchemaError",
    "UnknownTopologyError",
    "dump_topology",
    "fanout_topology",
    "load_topology",
    "microbench_topology",
    "parse_topology_ref",
    "register_topology",
    "register_topology_family",
    "register_topology_file",
    "resolve_topology",
    "supernode_topology",
    "topology_by_name",
    "topology_description",
    "topology_names",
    "validate_topology_ref",
]
