"""SystemBuilder: assemble a live simulated system from a Topology.

One builder call replaces the hand-wired ``Simulator()`` + host cache
hierarchy + device plumbing that every harness used to repeat::

    system = SystemBuilder(config).build("microbench")
    lsu = system.node("lsu")

The builder walks the topology's nodes in declaration order and
dispatches each to its registered component factory (see
:mod:`repro.system.registry`).  The ``host`` kind builds the shared
complex — memory interface, DDR controller, LLC home agent — that
device factories attach to; device HDM windows are carved from a
cursor starting at :data:`~repro.system.topology.HDM_BASE` in
declaration order, exactly like the hand-wired code did.

Construction is deterministic: the same config + topology (including
seeds in node params) produces a bit-identical system, which is what
lets the refactored harnesses reproduce the seed figures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.cache.llc import SharedLLC
from repro.config.system import SystemConfig
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.sim.engine import Simulator
from repro.system.registry import component_factory, register_component
from repro.system.topology import HDM_BASE, NodeSpec, Topology, topology_by_name


class BuildError(ValueError):
    """A topology cannot be built against this configuration."""


@dataclass
class BuiltSystem:
    """A complete constructed system: simulator, host complex, nodes."""

    config: SystemConfig
    topology: Topology
    sim: Simulator
    nodes: Dict[str, object] = field(default_factory=dict)
    memif: Optional[MemoryInterface] = None
    host_controller: Optional[MemoryController] = None
    host_region: Optional[AddressRange] = None
    llc: Optional[SharedLLC] = None

    def node(self, name: str) -> object:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(
                f"system {self.topology.name!r} has no node {name!r}; "
                f"nodes: {sorted(self.nodes)}"
            ) from None

    def nodes_by_kind(self, kind: str) -> Dict[str, object]:
        return {
            spec.name: self.nodes[spec.name]
            for spec in self.topology.by_kind(kind)
            if spec.name in self.nodes
        }

    def require_llc(self, wanted_by: str) -> SharedLLC:
        """The host LLC, or a clear error naming the missing node."""
        if self.llc is None:
            raise BuildError(
                f"{wanted_by} needs a host complex, but topology "
                f"{self.topology.name!r} declares no 'host' node before it"
            )
        return self.llc

    def attached_node(self, name: str, attr: str) -> object:
        """The first linked neighbour of ``name`` exposing ``attr``."""
        for link in self.topology.links_of(name):
            other = self.nodes.get(link.other(name))
            if other is not None and hasattr(other, attr):
                return other
        raise BuildError(
            f"node {name!r} has no linked neighbour with a {attr!r} "
            f"in topology {self.topology.name!r}"
        )


class SystemBuilder:
    """Build :class:`BuiltSystem` instances from declarative topologies."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self._hdm_cursor = HDM_BASE

    def build(self, topology: Union[str, Topology], **overrides) -> BuiltSystem:
        """Construct every node of ``topology`` (a name or an instance).

        Keyword overrides are forwarded to the registered topology
        factory when ``topology`` is a name.
        """
        # Importing the component catalogue here (not at module import)
        # keeps repro.system lightweight and cycle-free; the import is
        # cached after the first build.
        from repro.system import components  # noqa: F401

        if isinstance(topology, str):
            topology = topology_by_name(topology, **overrides)
        elif overrides:
            raise TypeError(
                "topology overrides are only valid with a registered name"
            )
        topology.validate()
        # Resource fit (port budgets, HDM capacity) is judged against
        # this builder's config before any component exists, so an
        # over-subscribed layout fails with one listing-style report.
        from repro.system.validation import validate_topology_config

        validate_topology_config(topology, self.config)
        self._hdm_cursor = HDM_BASE
        system = BuiltSystem(
            config=self.config, topology=topology, sim=Simulator()
        )
        for spec in topology.nodes:
            system.nodes[spec.name] = component_factory(spec.kind)(
                self, system, spec
            )
        return system

    def alloc_hdm(self, name: str, hdm_bytes: int) -> AddressRange:
        """Carve the next HDM window for a type-2/3 device."""
        if hdm_bytes <= 0:
            raise BuildError(f"{name}: type-2/3 devices need hdm_bytes")
        hdm = AddressRange(self._hdm_cursor, self._hdm_cursor + hdm_bytes, f"{name}-hdm")
        self._hdm_cursor = hdm.end
        return hdm


@register_component("host")
def _build_host(
    builder: SystemBuilder, system: BuiltSystem, spec: NodeSpec
) -> SharedLLC:
    """Host complex: memory interface + DDR controller + LLC home agent.

    Params: ``size`` (region bytes; ``None`` means the configured DRAM
    size), ``region_name``, ``channels``, ``ii_ps``, ``seed``.
    """
    if system.llc is not None:
        raise BuildError(
            f"topology {system.topology.name!r} declares more than one host node"
        )
    config = system.config
    params = spec.params
    size = params.get("size", 1 << 40)
    if size is None:
        size = config.host.dram_size
    region = AddressRange(0, size, str(params.get("region_name", "host-dram")))
    system.memif = MemoryInterface(config.host.memif_oneway_ps)
    system.host_controller = MemoryController(
        config.host.dram,
        channels=int(params.get("channels", config.host.mem_channels)),
        ii_ps=int(params.get("ii_ps", 0)),
        seed=int(params.get("seed", 1234)),
    )
    system.memif.attach("host", region, system.host_controller)
    system.host_region = region
    system.llc = SharedLLC(system.sim, config.host, system.memif)
    return system.llc
