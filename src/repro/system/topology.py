"""Declarative system topologies: named node/link graphs.

A :class:`Topology` is the *shape* of a simulated system — which
components exist (each a :class:`NodeSpec` naming a registered
component kind plus JSON-representable params) and how they connect
(:class:`LinkSpec` edges).  The :class:`~repro.system.builder.SystemBuilder`
turns a topology plus a :class:`~repro.config.system.SystemConfig` into
live components.

Topologies register by name in :data:`TOPOLOGIES` so harnesses, sweep
specs and the CLI (``repro topology list|show``) can refer to a layout
with a plain string.  Registered entries are *factories* — they accept
keyword overrides (seeds, device counts) and return a fresh spec.

Topologies are also a *data format*: :meth:`Topology.to_dict` /
:meth:`Topology.from_dict` round-trip a spec through plain JSON,
:func:`load_topology` / :func:`dump_topology` do the same for files
(``repro topology load|dump|validate``), and every ``*.json`` layout
under ``examples/topologies/`` auto-registers at import so shipped
files are first-class citizens of the registry.  Sweep grids refer to
topologies through :func:`resolve_topology`, which accepts either a
registered name (``"fanout-2"``) or a parametric family reference
(``"fanout(6)"`` — see :data:`TOPOLOGY_FAMILIES`).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.system.refs import parse_parametric_ref

HDM_BASE = 0x8_0000_0000  # device HDM windows start at 32 GB


class TopologySchemaError(ValueError):
    """A topology spec (dict or JSON file) is malformed.

    Every malformed input — wrong container types, missing/unknown
    keys, duplicate node names, dangling link endpoints, unknown
    component kinds — raises this one type with a message naming the
    offending element, so callers never see a bare ``KeyError``.
    """


class UnknownTopologyError(ValueError):
    """A name/reference does not identify a registered topology.

    The listing-style counterpart of
    :class:`repro.config.UnknownProfileError`: the message always
    enumerates the valid options.
    """


@dataclass(frozen=True)
class NodeSpec:
    """One component instance: a unique name, a registered kind, params."""

    name: str
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class LinkSpec:
    """An edge of the topology graph (``kind`` names the fabric)."""

    a: str
    b: str
    kind: str = "cxl.flexbus"

    def other(self, name: str) -> str:
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise ValueError(f"{name!r} is not an endpoint of {self.a}--{self.b}")

    def touches(self, name: str) -> bool:
        return name in (self.a, self.b)


@dataclass(frozen=True)
class Topology:
    """A named node/link graph describing one system layout."""

    name: str
    description: str = ""
    nodes: Tuple[NodeSpec, ...] = ()
    links: Tuple[LinkSpec, ...] = ()

    def validate(self) -> None:
        names = [n.name for n in self.nodes]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ValueError(
                f"topology {self.name!r} has duplicate node names: {dupes}"
            )
        known = set(names)
        for link in self.links:
            for end in (link.a, link.b):
                if end not in known:
                    raise ValueError(
                        f"topology {self.name!r}: link {link.a}--{link.b} "
                        f"references unknown node {end!r}"
                    )

    def node(self, name: str) -> NodeSpec:
        for spec in self.nodes:
            if spec.name == name:
                return spec
        raise KeyError(
            f"topology {self.name!r} has no node {name!r}; "
            f"nodes: {[n.name for n in self.nodes]}"
        )

    def by_kind(self, kind: str) -> Tuple[NodeSpec, ...]:
        return tuple(n for n in self.nodes if n.kind == kind)

    def links_of(self, name: str) -> Tuple[LinkSpec, ...]:
        return tuple(link for link in self.links if link.touches(name))

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "nodes": [
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "params": {key: spec.params[key] for key in spec.params},
                }
                for spec in self.nodes
            ],
            "links": [
                {"a": link.a, "b": link.b, "kind": link.kind}
                for link in self.links
            ],
        }

    _TOP_KEYS = frozenset({"name", "description", "nodes", "links"})
    _NODE_KEYS = frozenset({"name", "kind", "params"})
    _LINK_KEYS = frozenset({"a", "b", "kind"})

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, object],
        default_name: Optional[str] = None,
        check_kinds: bool = True,
    ) -> "Topology":
        """Parse the JSON spec format with full schema validation.

        Every malformed input raises :class:`TopologySchemaError` with a
        message naming the offending element; ``check_kinds`` (default
        on) additionally verifies every node's component kind against
        the component registry, so a spec that cannot possibly build
        fails at load time, not at build time.
        """
        if not isinstance(data, Mapping):
            raise TopologySchemaError(
                f"topology spec must be a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - cls._TOP_KEYS)
        if unknown:
            raise TopologySchemaError(
                f"topology spec has unknown key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(sorted(cls._TOP_KEYS))}"
            )
        name = data.get("name", default_name)
        if not isinstance(name, str) or not name:
            raise TopologySchemaError(
                "topology spec needs a non-empty string 'name' "
                f"(got {name!r})"
            )

        def fail(msg: str) -> None:
            raise TopologySchemaError(f"topology {name!r}: {msg}")

        description = data.get("description", "")
        if not isinstance(description, str):
            fail(f"'description' must be a string, got {description!r}")

        raw_nodes = data.get("nodes", [])
        if isinstance(raw_nodes, (str, bytes)) or not isinstance(raw_nodes, (list, tuple)):
            fail(f"'nodes' must be a list of node objects, got {raw_nodes!r}")
        nodes: List[NodeSpec] = []
        for i, entry in enumerate(raw_nodes):
            if not isinstance(entry, Mapping):
                fail(f"nodes[{i}] must be an object, got {entry!r}")
            bad = sorted(set(entry) - cls._NODE_KEYS)
            if bad:
                fail(
                    f"nodes[{i}] has unknown key(s) {', '.join(map(repr, bad))}; "
                    f"valid keys: {', '.join(sorted(cls._NODE_KEYS))}"
                )
            node_name = entry.get("name")
            if not isinstance(node_name, str) or not node_name:
                fail(f"nodes[{i}] needs a non-empty string 'name' (got {node_name!r})")
            kind = entry.get("kind")
            if not isinstance(kind, str) or not kind:
                fail(f"node {node_name!r} needs a non-empty string 'kind' (got {kind!r})")
            params = entry.get("params", {})
            if not isinstance(params, Mapping):
                fail(f"node {node_name!r}: 'params' must be an object, got {params!r}")
            if any(not isinstance(key, str) for key in params):
                fail(f"node {node_name!r}: every params key must be a string")
            nodes.append(NodeSpec(node_name, kind, dict(params)))

        raw_links = data.get("links", [])
        if isinstance(raw_links, (str, bytes)) or not isinstance(raw_links, (list, tuple)):
            fail(f"'links' must be a list of link objects, got {raw_links!r}")
        links: List[LinkSpec] = []
        for i, entry in enumerate(raw_links):
            if not isinstance(entry, Mapping):
                fail(f"links[{i}] must be an object, got {entry!r}")
            bad = sorted(set(entry) - cls._LINK_KEYS)
            if bad:
                fail(
                    f"links[{i}] has unknown key(s) {', '.join(map(repr, bad))}; "
                    f"valid keys: {', '.join(sorted(cls._LINK_KEYS))}"
                )
            ends = []
            for end in ("a", "b"):
                value = entry.get(end)
                if not isinstance(value, str) or not value:
                    fail(f"links[{i}] needs a non-empty string {end!r} endpoint (got {value!r})")
                ends.append(value)
            kind = entry.get("kind", "cxl.flexbus")
            if not isinstance(kind, str) or not kind:
                fail(f"links[{i}]: 'kind' must be a non-empty string, got {kind!r}")
            links.append(LinkSpec(ends[0], ends[1], kind))

        topology = cls(
            name=name,
            description=description,
            nodes=tuple(nodes),
            links=tuple(links),
        )
        # Duplicate node names and dangling link endpoints are graph
        # errors; re-raise them under the one schema-error type.
        try:
            topology.validate()
        except ValueError as exc:
            raise TopologySchemaError(str(exc)) from None
        if check_kinds:
            # Importing the catalogue registers every built-in factory;
            # deferred so the topology module itself stays import-light.
            from repro.system import components  # noqa: F401
            from repro.system.registry import COMPONENT_KINDS

            for spec in topology.nodes:
                if spec.kind not in COMPONENT_KINDS:
                    fail(
                        f"node {spec.name!r} has unknown component kind "
                        f"{spec.kind!r}; registered kinds: "
                        f"{', '.join(sorted(COMPONENT_KINDS))}"
                    )
        return topology

    def describe(self) -> str:
        """Multi-line rendering used by ``repro topology show``."""
        lines = [f"topology {self.name}"]
        if self.description:
            lines.append(f"  {self.description}")
        lines.append(f"  nodes ({len(self.nodes)}):")
        for spec in self.nodes:
            params = ", ".join(f"{k}={v}" for k, v in sorted(spec.params.items()))
            suffix = f"  [{params}]" if params else ""
            lines.append(f"    {spec.name:<12} {spec.kind}{suffix}")
        lines.append(f"  links ({len(self.links)}):")
        for link in self.links:
            lines.append(f"    {link.a} <-> {link.b}  ({link.kind})")
        return "\n".join(lines)


# ---------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------
TopologyFactory = Callable[..., Topology]

TOPOLOGIES: Dict[str, TopologyFactory] = {}


def register_topology(name: str) -> Callable[[TopologyFactory], TopologyFactory]:
    """Decorator: register a topology factory under ``name``."""

    def decorate(factory: TopologyFactory) -> TopologyFactory:
        if name in TOPOLOGIES:
            raise ValueError(f"topology {name!r} already registered")
        TOPOLOGIES[name] = factory
        return factory

    return decorate


def topology_by_name(name: str, **overrides) -> Topology:
    """Instantiate a registered topology, forwarding keyword overrides."""
    try:
        factory = TOPOLOGIES[name]
    except KeyError:
        raise UnknownTopologyError(
            f"unknown topology {name!r}; "
            f"registered: {', '.join(sorted(TOPOLOGIES))}"
        ) from None
    return factory(**overrides)


def topology_names() -> Tuple[str, ...]:
    return tuple(sorted(TOPOLOGIES))


def topology_description(name: str) -> str:
    """First docstring line of a registered factory (for listings)."""
    factory = TOPOLOGIES[name]
    doc = (factory.__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


# ---------------------------------------------------------------------
# JSON files
# ---------------------------------------------------------------------
def load_topology(path: Union[str, Path], check_kinds: bool = True) -> Topology:
    """Load and validate a topology spec from a JSON file.

    Unreadable files, invalid JSON, and schema violations all raise
    :class:`TopologySchemaError` naming the file and the problem.  The
    file's stem is the fallback name when the spec omits ``"name"``.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TopologySchemaError(f"cannot read topology spec {path}: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TopologySchemaError(f"invalid JSON in {path}: {exc}") from None
    return Topology.from_dict(data, default_name=path.stem, check_kinds=check_kinds)


def dump_topology(
    topology: Topology, path: Optional[Union[str, Path]] = None
) -> str:
    """Render ``topology`` as JSON text, writing it to ``path`` if given.

    The output round-trips through :func:`load_topology` /
    :meth:`Topology.from_dict` bit-identically.
    """
    text = json.dumps(topology.to_dict(), indent=2, sort_keys=True) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


def register_topology_file(path: Union[str, Path]) -> Optional[str]:
    """Register a JSON layout file as a named (lazy) topology factory.

    Only the name/description are read eagerly; the full spec is parsed
    and schema-checked when the topology is instantiated, so a broken
    file never breaks *import* — it surfaces through ``repro topology
    validate`` (the CI smoke job) or at first use.  Returns the
    registered name, or ``None`` when the file is skipped (unparseable,
    or its name is already taken).
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, Mapping):
        return None
    name = data.get("name") or path.stem
    if not isinstance(name, str) or name in TOPOLOGIES:
        return None

    def factory(**overrides) -> Topology:
        if overrides:
            raise TypeError(
                f"topology {name!r} is loaded from {path.name} and "
                f"accepts no overrides (got {', '.join(sorted(overrides))})"
            )
        return load_topology(path)

    description = data.get("description")
    factory.__doc__ = (
        description if isinstance(description, str) and description
        else f"JSON layout from {path.name}"
    )
    TOPOLOGIES[name] = factory
    return name


#: Shipped JSON layouts (repo checkouts only; absent in installed trees).
SHIPPED_TOPOLOGY_DIR = Path(__file__).resolve().parents[3] / "examples" / "topologies"


def _register_shipped_layouts(directory: Path = SHIPPED_TOPOLOGY_DIR) -> None:
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        register_topology_file(path)


# ---------------------------------------------------------------------
# Parametric families and sweep-grid references
# ---------------------------------------------------------------------
#: Families take positional scale arguments — one (``"fanout(8)"``,
#: device count) or several (``"supernode(4, 536870912)"``, host count
#: plus lease granule) — so a sweep grid can hold plain JSON strings
#: and still sweep a structural axis.
TOPOLOGY_FAMILIES: Dict[str, Callable[..., Topology]] = {}

def register_topology_family(name: str, factory: Callable[..., Topology]) -> None:
    """Register a parametric family reachable as ``name(args...)`` references."""
    if name in TOPOLOGY_FAMILIES:
        raise ValueError(f"topology family {name!r} already registered")
    TOPOLOGY_FAMILIES[name] = factory


def parse_topology_ref(
    ref: str,
) -> Tuple[str, Optional[Tuple[Union[int, float], ...]]]:
    """``"fanout(4)"`` → ``("fanout", (4,))``; ``"microbench"`` → ``("microbench", None)``.

    Family references take one or more comma-separated numeric
    arguments (``"supernode(2, 536870912)"``) through the shared
    :func:`~repro.system.refs.parse_parametric_ref` grammar; malformed
    ones raise :class:`TopologySchemaError` naming the offending token.
    Strings without parentheses pass through as plain registry names.
    """
    if not isinstance(ref, str) or not ref.strip():
        raise TopologySchemaError(
            f"topology reference must be a non-empty string, got {ref!r}"
        )
    ref = ref.strip()
    if "(" not in ref and ")" not in ref:
        return ref, None
    try:
        return parse_parametric_ref(ref)
    except ValueError as exc:
        raise TopologySchemaError(f"topology {exc}") from None


def validate_topology_ref(ref: Union[str, Mapping, "Topology"]) -> None:
    """Check that ``ref`` identifies a topology the sweep layer can build.

    Accepts a registered name, a family reference, a :class:`Topology`
    instance, or an *inline* JSON spec (a node/link object straight in
    a sweep grid) — inline specs schema-validate in full, so a
    malformed one fails the sweep up-front like a typo'd name.  Family
    *arguments* are deliberately not range-checked here: a sweep spec
    with ``fanout(0)`` validates (the family exists) and fails at run
    time inside that one spec, exercising per-spec failure isolation
    instead of killing the whole sweep up-front.
    """
    if isinstance(ref, Topology):
        return
    if isinstance(ref, Mapping):
        Topology.from_dict(ref)
        return
    name, args = parse_topology_ref(ref)
    if args is not None:
        if name not in TOPOLOGY_FAMILIES:
            raise UnknownTopologyError(
                f"unknown topology family {name!r} in {ref!r}; "
                f"families: {', '.join(sorted(TOPOLOGY_FAMILIES))}"
            )
    elif name not in TOPOLOGIES:
        raise UnknownTopologyError(
            f"unknown topology {ref!r}; "
            f"registered: {', '.join(sorted(TOPOLOGIES))}; "
            f"families: {', '.join(f'{f}(n)' for f in sorted(TOPOLOGY_FAMILIES))}"
        )


def resolve_topology(
    ref: Union[str, Mapping, "Topology"], **overrides
) -> Topology:
    """Turn a topology reference into a :class:`Topology` instance.

    Accepts an instance (passed through), an inline JSON spec dict
    (parsed with full schema validation), a registered name, or a
    family reference like ``"fanout(6)"`` / ``"supernode(2, 1073741824)"``.
    This is the single entry point the sweep/experiment layer uses for
    its ``topology`` params.
    """
    if isinstance(ref, Topology):
        if overrides:
            raise TypeError("topology overrides require a name, not an instance")
        return ref
    if isinstance(ref, Mapping):
        if overrides:
            raise TypeError(
                "topology overrides require a name, not an inline spec"
            )
        return Topology.from_dict(ref)
    name, args = parse_topology_ref(ref)
    if args is not None:
        try:
            family = TOPOLOGY_FAMILIES[name]
        except KeyError:
            raise UnknownTopologyError(
                f"unknown topology family {name!r} in {ref!r}; "
                f"families: {', '.join(sorted(TOPOLOGY_FAMILIES))}"
            ) from None
        return family(*args, **overrides)
    return topology_by_name(name, **overrides)


# ---------------------------------------------------------------------
# Built-in layouts
# ---------------------------------------------------------------------
@register_topology("microbench")
def microbench_topology(seed: int = 1234) -> Topology:
    """§VI-A calibration testbench: one type-1 device, LSU, DMA, NoC."""
    return Topology(
        name="microbench",
        description="single-device calibration layout (Figs. 12-16)",
        nodes=(
            NodeSpec("host", "host", {"seed": seed}),
            NodeSpec("cxl-dev", "cxl.type1"),
            NodeSpec("lsu", "lsu"),
            NodeSpec("dma", "dma"),
            NodeSpec("noc", "noc"),
        ),
        links=(
            LinkSpec("lsu", "cxl-dev", "d2h"),
            LinkSpec("cxl-dev", "host", "cxl.flexbus"),
            LinkSpec("dma", "host", "pcie"),
        ),
    )


@register_topology("rao-cxl")
def rao_cxl_topology(pe_count: Optional[int] = None) -> Topology:
    """CXL-NIC RAO offload system (Fig. 8b): NIC with DCOH/HMC on the LLC."""
    params: Dict[str, object] = {}
    if pe_count is not None:
        params["pe_count"] = pe_count
    return Topology(
        name="rao-cxl",
        description="host + CXL.cache-attached RAO NIC",
        nodes=(
            NodeSpec("host", "host", {"region_name": "host"}),
            NodeSpec("cxl-nic", "nic.cxl_rao", params),
        ),
        links=(LinkSpec("cxl-nic", "host", "cxl.flexbus"),),
    )


@register_topology("rao-pcie")
def rao_pcie_topology() -> Topology:
    """PCIe-NIC RAO baseline (Fig. 8a): DMA read-modify-write NIC."""
    return Topology(
        name="rao-pcie",
        description="standalone PCIe RAO NIC (DMA RMW baseline)",
        nodes=(NodeSpec("pcie-nic", "nic.pcie_rao"),),
    )


@register_topology("rpc")
def rpc_topology() -> Topology:
    """RPC offload comparison (Fig. 18): RpcNIC vs. CXL-NIC pipelines."""
    return Topology(
        name="rpc",
        description="RpcNIC (PCIe) and CXL-NIC RPC pipelines side by side",
        nodes=(
            NodeSpec("rpcnic", "rpc.rpcnic"),
            NodeSpec("cxl-rpc", "rpc.cxl"),
        ),
    )


@register_topology("pcie-dma")
def pcie_dma_topology() -> Topology:
    """Bare PCIe DMA engine (the offload harness's baseline substrate)."""
    return Topology(
        name="pcie-dma",
        description="one descriptor-driven PCIe DMA engine, no host complex",
        nodes=(NodeSpec("dma", "dma"),),
    )


@register_topology("cohet-default")
def cohet_default_topology(hdm_bytes: int = 1 << 30) -> Topology:
    """Default Cohet platform: one host node, one type-2 XPU with HDM."""
    return Topology(
        name="cohet-default",
        description="host + one type-2 accelerator (CohetSystem.build_default)",
        nodes=(
            NodeSpec("host", "host", {"size": None}),
            NodeSpec("xpu0", "cxl.type2", {"hdm_bytes": hdm_bytes}),
        ),
        links=(LinkSpec("xpu0", "host", "cxl.flexbus"),),
    )


def fanout_topology(devices: int = 2, seed: int = 1234) -> Topology:
    """Multi-device fan-out: N type-1 devices (each with an LSU) share
    one host LLC home agent, contending on the host path."""
    if devices < 1:
        raise ValueError("fan-out topology needs at least one device")
    nodes = [NodeSpec("host", "host", {"seed": seed})]
    links = []
    for i in range(devices):
        dev = f"dev{i}"
        lsu = f"lsu{i}"
        nodes.append(NodeSpec(dev, "cxl.type1"))
        nodes.append(NodeSpec(lsu, "lsu", {"device": dev}))
        links.append(LinkSpec(lsu, dev, "d2h"))
        links.append(LinkSpec(dev, "host", "cxl.flexbus"))
    return Topology(
        name=f"fanout-{devices}",
        description=f"{devices}-device fan-out sharing one LLC home agent",
        nodes=tuple(nodes),
        links=tuple(links),
    )


@register_topology("fanout-2")
def fanout2_topology(seed: int = 1234) -> Topology:
    """Two type-1 devices fanning into one host LLC home agent."""
    return fanout_topology(2, seed=seed)


@register_topology("fanout-4")
def fanout4_topology(seed: int = 1234) -> Topology:
    """Four type-1 devices fanning into one host LLC home agent."""
    return fanout_topology(4, seed=seed)


@register_topology("supernode-2host")
def supernode_2host_topology(
    fabric_memory_bytes: int = 4 << 30,
    memory_granule: int = 1 << 30,
    switch_traversal_ps: int = 70_000,
) -> Topology:
    """Two hosts sharing fabric-attached memory behind CXL switches."""
    return supernode_topology(
        2,
        fabric_memory_bytes=fabric_memory_bytes,
        memory_granule=memory_granule,
        switch_traversal_ps=switch_traversal_ps,
    )


def supernode_topology(
    hosts: int = 2,
    fabric_memory_bytes: int = 4 << 30,
    memory_granule: int = 1 << 30,
    switch_traversal_ps: int = 70_000,
) -> Topology:
    """Multi-host supernode layout (§VIII): every host links to the
    switch fabric, which fronts the leasable fabric-attached memory."""
    nodes = [NodeSpec(f"host{i}", "supernode.host") for i in range(hosts)]
    nodes.append(
        NodeSpec(
            "fabric",
            "supernode.fabric",
            {
                "fabric_memory_bytes": fabric_memory_bytes,
                "memory_granule": memory_granule,
                "switch_traversal_ps": switch_traversal_ps,
            },
        )
    )
    links = tuple(
        LinkSpec(f"host{i}", "fabric", "cxl.switch") for i in range(hosts)
    )
    return Topology(
        name=f"supernode-{hosts}host",
        description=f"{hosts} hosts + fabric-attached memory over CXL switches",
        nodes=tuple(nodes),
        links=links,
    )


def _integral_arg(family: str, knob: str, value: Union[int, float]) -> int:
    """Family args arrive as ints or floats; count-like knobs must be whole."""
    if isinstance(value, float):
        if not value.is_integer():
            raise TopologySchemaError(
                f"topology family {family!r}: {knob} must be an integer, "
                f"got {value!r}"
            )
        return int(value)
    return value


def _fanout_family(devices: Union[int, float] = 2, **overrides) -> Topology:
    """``fanout(n)``: n type-1 devices sharing one host LLC home agent."""
    return fanout_topology(_integral_arg("fanout", "devices", devices), **overrides)


def _supernode_family(
    hosts: Union[int, float] = 2,
    memory_granule: Union[int, float] = 1 << 30,
    **overrides,
) -> Topology:
    """``supernode(hosts)`` / ``supernode(hosts, granule)``: multi-host
    layout with an optional fabric lease-granule size in bytes."""
    return supernode_topology(
        _integral_arg("supernode", "hosts", hosts),
        memory_granule=_integral_arg("supernode", "memory_granule", memory_granule),
        **overrides,
    )


# Parametric families: sweep grids scale these with ``family(args...)`` refs.
register_topology_family("fanout", _fanout_family)
register_topology_family("supernode", _supernode_family)

# Shipped JSON layouts join the registry alongside the in-code ones.
_register_shipped_layouts()
