"""Declarative system topologies: named node/link graphs.

A :class:`Topology` is the *shape* of a simulated system — which
components exist (each a :class:`NodeSpec` naming a registered
component kind plus JSON-representable params) and how they connect
(:class:`LinkSpec` edges).  The :class:`~repro.system.builder.SystemBuilder`
turns a topology plus a :class:`~repro.config.system.SystemConfig` into
live components.

Topologies register by name in :data:`TOPOLOGIES` so harnesses, sweep
specs and the CLI (``repro topology list|show``) can refer to a layout
with a plain string.  Registered entries are *factories* — they accept
keyword overrides (seeds, device counts) and return a fresh spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

HDM_BASE = 0x8_0000_0000  # device HDM windows start at 32 GB


@dataclass(frozen=True)
class NodeSpec:
    """One component instance: a unique name, a registered kind, params."""

    name: str
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class LinkSpec:
    """An edge of the topology graph (``kind`` names the fabric)."""

    a: str
    b: str
    kind: str = "cxl.flexbus"

    def other(self, name: str) -> str:
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise ValueError(f"{name!r} is not an endpoint of {self.a}--{self.b}")

    def touches(self, name: str) -> bool:
        return name in (self.a, self.b)


@dataclass(frozen=True)
class Topology:
    """A named node/link graph describing one system layout."""

    name: str
    description: str = ""
    nodes: Tuple[NodeSpec, ...] = ()
    links: Tuple[LinkSpec, ...] = ()

    def validate(self) -> None:
        names = [n.name for n in self.nodes]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ValueError(
                f"topology {self.name!r} has duplicate node names: {dupes}"
            )
        known = set(names)
        for link in self.links:
            for end in (link.a, link.b):
                if end not in known:
                    raise ValueError(
                        f"topology {self.name!r}: link {link.a}--{link.b} "
                        f"references unknown node {end!r}"
                    )

    def node(self, name: str) -> NodeSpec:
        for spec in self.nodes:
            if spec.name == name:
                return spec
        raise KeyError(
            f"topology {self.name!r} has no node {name!r}; "
            f"nodes: {[n.name for n in self.nodes]}"
        )

    def by_kind(self, kind: str) -> Tuple[NodeSpec, ...]:
        return tuple(n for n in self.nodes if n.kind == kind)

    def links_of(self, name: str) -> Tuple[LinkSpec, ...]:
        return tuple(link for link in self.links if link.touches(name))

    def describe(self) -> str:
        """Multi-line rendering used by ``repro topology show``."""
        lines = [f"topology {self.name}"]
        if self.description:
            lines.append(f"  {self.description}")
        lines.append(f"  nodes ({len(self.nodes)}):")
        for spec in self.nodes:
            params = ", ".join(f"{k}={v}" for k, v in sorted(spec.params.items()))
            suffix = f"  [{params}]" if params else ""
            lines.append(f"    {spec.name:<12} {spec.kind}{suffix}")
        lines.append(f"  links ({len(self.links)}):")
        for link in self.links:
            lines.append(f"    {link.a} <-> {link.b}  ({link.kind})")
        return "\n".join(lines)


# ---------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------
TopologyFactory = Callable[..., Topology]

TOPOLOGIES: Dict[str, TopologyFactory] = {}


def register_topology(name: str) -> Callable[[TopologyFactory], TopologyFactory]:
    """Decorator: register a topology factory under ``name``."""

    def decorate(factory: TopologyFactory) -> TopologyFactory:
        if name in TOPOLOGIES:
            raise ValueError(f"topology {name!r} already registered")
        TOPOLOGIES[name] = factory
        return factory

    return decorate


def topology_by_name(name: str, **overrides) -> Topology:
    """Instantiate a registered topology, forwarding keyword overrides."""
    try:
        factory = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; "
            f"registered: {', '.join(sorted(TOPOLOGIES))}"
        ) from None
    return factory(**overrides)


def topology_names() -> Tuple[str, ...]:
    return tuple(sorted(TOPOLOGIES))


def topology_description(name: str) -> str:
    """First docstring line of a registered factory (for listings)."""
    factory = TOPOLOGIES[name]
    doc = (factory.__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


# ---------------------------------------------------------------------
# Built-in layouts
# ---------------------------------------------------------------------
@register_topology("microbench")
def microbench_topology(seed: int = 1234) -> Topology:
    """§VI-A calibration testbench: one type-1 device, LSU, DMA, NoC."""
    return Topology(
        name="microbench",
        description="single-device calibration layout (Figs. 12-16)",
        nodes=(
            NodeSpec("host", "host", {"seed": seed}),
            NodeSpec("cxl-dev", "cxl.type1"),
            NodeSpec("lsu", "lsu"),
            NodeSpec("dma", "dma"),
            NodeSpec("noc", "noc"),
        ),
        links=(
            LinkSpec("lsu", "cxl-dev", "d2h"),
            LinkSpec("cxl-dev", "host", "cxl.flexbus"),
            LinkSpec("dma", "host", "pcie"),
        ),
    )


@register_topology("rao-cxl")
def rao_cxl_topology(pe_count: Optional[int] = None) -> Topology:
    """CXL-NIC RAO offload system (Fig. 8b): NIC with DCOH/HMC on the LLC."""
    params: Dict[str, object] = {}
    if pe_count is not None:
        params["pe_count"] = pe_count
    return Topology(
        name="rao-cxl",
        description="host + CXL.cache-attached RAO NIC",
        nodes=(
            NodeSpec("host", "host", {"region_name": "host"}),
            NodeSpec("cxl-nic", "nic.cxl_rao", params),
        ),
        links=(LinkSpec("cxl-nic", "host", "cxl.flexbus"),),
    )


@register_topology("rao-pcie")
def rao_pcie_topology() -> Topology:
    """PCIe-NIC RAO baseline (Fig. 8a): DMA read-modify-write NIC."""
    return Topology(
        name="rao-pcie",
        description="standalone PCIe RAO NIC (DMA RMW baseline)",
        nodes=(NodeSpec("pcie-nic", "nic.pcie_rao"),),
    )


@register_topology("rpc")
def rpc_topology() -> Topology:
    """RPC offload comparison (Fig. 18): RpcNIC vs. CXL-NIC pipelines."""
    return Topology(
        name="rpc",
        description="RpcNIC (PCIe) and CXL-NIC RPC pipelines side by side",
        nodes=(
            NodeSpec("rpcnic", "rpc.rpcnic"),
            NodeSpec("cxl-rpc", "rpc.cxl"),
        ),
    )


@register_topology("pcie-dma")
def pcie_dma_topology() -> Topology:
    """Bare PCIe DMA engine (the offload harness's baseline substrate)."""
    return Topology(
        name="pcie-dma",
        description="one descriptor-driven PCIe DMA engine, no host complex",
        nodes=(NodeSpec("dma", "dma"),),
    )


@register_topology("cohet-default")
def cohet_default_topology(hdm_bytes: int = 1 << 30) -> Topology:
    """Default Cohet platform: one host node, one type-2 XPU with HDM."""
    return Topology(
        name="cohet-default",
        description="host + one type-2 accelerator (CohetSystem.build_default)",
        nodes=(
            NodeSpec("host", "host", {"size": None}),
            NodeSpec("xpu0", "cxl.type2", {"hdm_bytes": hdm_bytes}),
        ),
        links=(LinkSpec("xpu0", "host", "cxl.flexbus"),),
    )


def fanout_topology(devices: int = 2, seed: int = 1234) -> Topology:
    """Multi-device fan-out: N type-1 devices (each with an LSU) share
    one host LLC home agent, contending on the host path."""
    if devices < 1:
        raise ValueError("fan-out topology needs at least one device")
    nodes = [NodeSpec("host", "host", {"seed": seed})]
    links = []
    for i in range(devices):
        dev = f"dev{i}"
        lsu = f"lsu{i}"
        nodes.append(NodeSpec(dev, "cxl.type1"))
        nodes.append(NodeSpec(lsu, "lsu", {"device": dev}))
        links.append(LinkSpec(lsu, dev, "d2h"))
        links.append(LinkSpec(dev, "host", "cxl.flexbus"))
    return Topology(
        name=f"fanout-{devices}",
        description=f"{devices}-device fan-out sharing one LLC home agent",
        nodes=tuple(nodes),
        links=tuple(links),
    )


@register_topology("fanout-2")
def fanout2_topology(seed: int = 1234) -> Topology:
    """Two type-1 devices fanning into one host LLC home agent."""
    return fanout_topology(2, seed=seed)


@register_topology("fanout-4")
def fanout4_topology(seed: int = 1234) -> Topology:
    """Four type-1 devices fanning into one host LLC home agent."""
    return fanout_topology(4, seed=seed)


@register_topology("supernode-2host")
def supernode_2host_topology(
    fabric_memory_bytes: int = 4 << 30,
    memory_granule: int = 1 << 30,
    switch_traversal_ps: int = 70_000,
) -> Topology:
    """Two hosts sharing fabric-attached memory behind CXL switches."""
    return supernode_topology(
        2,
        fabric_memory_bytes=fabric_memory_bytes,
        memory_granule=memory_granule,
        switch_traversal_ps=switch_traversal_ps,
    )


def supernode_topology(
    hosts: int = 2,
    fabric_memory_bytes: int = 4 << 30,
    memory_granule: int = 1 << 30,
    switch_traversal_ps: int = 70_000,
) -> Topology:
    """Multi-host supernode layout (§VIII): every host links to the
    switch fabric, which fronts the leasable fabric-attached memory."""
    nodes = [NodeSpec(f"host{i}", "supernode.host") for i in range(hosts)]
    nodes.append(
        NodeSpec(
            "fabric",
            "supernode.fabric",
            {
                "fabric_memory_bytes": fabric_memory_bytes,
                "memory_granule": memory_granule,
                "switch_traversal_ps": switch_traversal_ps,
            },
        )
    )
    links = tuple(
        LinkSpec(f"host{i}", "fabric", "cxl.switch") for i in range(hosts)
    )
    return Topology(
        name=f"supernode-{hosts}host",
        description=f"{hosts} hosts + fabric-attached memory over CXL switches",
        nodes=tuple(nodes),
        links=links,
    )
