"""Pre-build validation of a topology against a system configuration.

A topology can be perfectly well-formed as a *graph* (every schema
check in :meth:`Topology.from_dict` passes) and still be unbuildable or
physically nonsensical against a given :class:`SystemConfig` — more
flexbus ports than the host exposes, HDM windows that overflow the
host's decode capacity, a fabric lease granule larger than the pool it
carves.  :func:`validate_topology_config` checks those *resource*
constraints up-front, so ``SystemBuilder.build`` fails with one
listing-style report before any component is constructed, matching the
:class:`~repro.config.UnknownProfileError` /
:class:`~repro.system.topology.UnknownTopologyError` convention of
always enumerating what is wrong.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.config.system import SystemConfig
from repro.system.topology import Topology


class TopologyConfigError(ValueError):
    """A topology cannot run against this configuration.

    The message lists *every* violation (port budgets, HDM capacity,
    fabric granules), one per line, so a spec author fixes the layout
    in one pass instead of replaying build failures.
    """


#: Link-endpoint budget per component kind: how many fabric ports each
#: block exposes.  A node may widen its own budget with a ``"ports"``
#: param (e.g. a switch-rich host), so the table encodes defaults, not
#: hard silicon limits.  Kinds absent here are unconstrained.
DEFAULT_PORT_BUDGETS: Dict[str, int] = {
    "host": 16,              # flexbus/PCIe root ports on the socket
    "cxl.type1": 2,          # one host link + one device-side link
    "cxl.type2": 2,
    "cxl.type3": 2,
    "lsu": 1,                # drives exactly one device
    "dma": 2,                # host link + optional device-side link
    "supernode.host": 1,     # one leaf-switch port
    "supernode.fabric": 64,  # leaf ports on the switch complex
}

#: Ports on a supernode's root switch (mirrors the CxlSwitch default):
#: one per host leaf switch, one per leasable fabric-memory granule.
ROOT_SWITCH_PORTS = 8


def _port_budget(spec, kind_budgets: Dict[str, int]) -> int:
    override = spec.params.get("ports")
    if override is not None:
        return int(override)
    return kind_budgets.get(spec.kind, -1)  # -1: unconstrained


def hdm_capacity_bytes(config: SystemConfig) -> int:
    """The host's HDM decode budget for device-attached memory.

    Modeling convention: the host can decode at most as much
    host-managed device memory as it has local DRAM (32 GB on the
    calibrated profiles) — HDM windows are carved upward from
    :data:`~repro.system.topology.HDM_BASE` and the directory state
    backing them lives in host DRAM.
    """
    return config.host.dram_size


def validate_topology_config(
    topology: Topology, config: SystemConfig
) -> None:
    """Raise :class:`TopologyConfigError` listing every resource violation.

    Checks, in order:

    * at most one ``host`` complex (the builder wires a single LLC home
      agent);
    * per-node port budgets (:data:`DEFAULT_PORT_BUDGETS`, overridable
      per node via a ``"ports"`` param) against the declared links;
    * total type-2/3 ``hdm_bytes`` against :func:`hdm_capacity_bytes`
      — and each window individually positive where declared;
    * ``supernode.fabric`` lease granules: positive and no larger than
      the fabric pool.

    Graph-shape errors (duplicate nodes, dangling links) stay with
    :meth:`Topology.validate`; this pass only judges the topology
    against ``config``'s resources.
    """
    problems: List[str] = []

    hosts = topology.by_kind("host")
    if len(hosts) > 1:
        problems.append(
            f"declares {len(hosts)} 'host' complexes "
            f"({', '.join(spec.name for spec in hosts)}); the builder "
            "wires exactly one LLC home agent"
        )

    # One pass over the links gives every node's port count; this runs
    # on every build, so it must stay O(nodes + links).
    ports_used: Counter = Counter()
    for link in topology.links:
        ports_used[link.a] += 1
        ports_used[link.b] += 1
    for spec in topology.nodes:
        budget = _port_budget(spec, DEFAULT_PORT_BUDGETS)
        if budget < 0:
            continue
        ports = ports_used.get(spec.name, 0)
        if ports > budget:
            problems.append(
                f"node {spec.name!r} ({spec.kind}) uses {ports} link ports "
                f"but budgets {budget} (override with a 'ports' param)"
            )

    capacity = hdm_capacity_bytes(config)
    hdm_total = 0
    for kind in ("cxl.type2", "cxl.type3"):
        for spec in topology.by_kind(kind):
            declared = spec.params.get("hdm_bytes", 0)
            try:
                declared = int(declared)
            except (TypeError, ValueError):
                problems.append(
                    f"node {spec.name!r} ({kind}): hdm_bytes must be an "
                    f"integer, got {spec.params.get('hdm_bytes')!r}"
                )
                continue
            if declared <= 0:
                problems.append(
                    f"node {spec.name!r} ({kind}) needs a positive hdm_bytes "
                    f"(got {declared})"
                )
            hdm_total += max(declared, 0)
    if hdm_total > capacity:
        problems.append(
            f"total HDM demand {hdm_total} bytes exceeds the host's decode "
            f"capacity {capacity} bytes (config {config.name!r})"
        )

    for spec in topology.by_kind("supernode.fabric"):
        pool = int(spec.params.get("fabric_memory_bytes", 4 << 30))
        granule = int(spec.params.get("memory_granule", 1 << 30))
        if granule <= 0:
            problems.append(
                f"node {spec.name!r} (supernode.fabric) needs a positive "
                f"memory_granule (got {granule})"
            )
            continue
        if granule > pool:
            problems.append(
                f"node {spec.name!r} (supernode.fabric): memory_granule "
                f"{granule} exceeds the fabric pool of {pool} bytes"
            )
            continue
        # The root switch fronts one port per leaf (host) plus one per
        # leasable granule; an over-granulated pool runs it out of
        # ports mid-build (CxlSwitch defaults to 8).
        granules = pool // granule
        host_count = len(topology.by_kind("supernode.host"))
        root_ports = int(spec.params.get("root_ports", ROOT_SWITCH_PORTS))
        if granules + host_count > root_ports:
            problems.append(
                f"node {spec.name!r} (supernode.fabric): {granules} "
                f"granules + {host_count} host leaves need "
                f"{granules + host_count} root-switch ports but only "
                f"{root_ports} exist (raise memory_granule or shrink "
                "the pool)"
            )

    if problems:
        raise TopologyConfigError(
            f"topology {topology.name!r} cannot run against config "
            f"{config.name!r}:\n  - " + "\n  - ".join(problems)
        )
