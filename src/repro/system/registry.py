"""Component-kind registry for the system builder.

Every buildable hardware block registers a factory under a short kind
string (``"cxl.type1"``, ``"nic.cxl_rao"``, ...).  A topology's
:class:`~repro.system.topology.NodeSpec` names one of these kinds; the
:class:`~repro.system.builder.SystemBuilder` dispatches construction
through this table, so new device types become buildable everywhere
(harnesses, sweeps, the CLI) by registering here — no harness edits.

This module is deliberately import-light (stdlib only) so component
modules can register themselves without import cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.builder import BuiltSystem, SystemBuilder
    from repro.system.topology import NodeSpec

#: ``factory(builder, system, spec) -> component`` — the returned object
#: becomes ``system.nodes[spec.name]``.
ComponentFactory = Callable[["SystemBuilder", "BuiltSystem", "NodeSpec"], object]

COMPONENT_KINDS: Dict[str, ComponentFactory] = {}


def register_component(kind: str) -> Callable[[ComponentFactory], ComponentFactory]:
    """Decorator: register ``factory`` under ``kind``.

    Re-registering an existing kind raises — a silent overwrite would
    make system construction depend on import order.
    """

    def decorate(factory: ComponentFactory) -> ComponentFactory:
        if kind in COMPONENT_KINDS:
            raise ValueError(f"component kind {kind!r} already registered")
        COMPONENT_KINDS[kind] = factory
        return factory

    return decorate


def component_factory(kind: str) -> ComponentFactory:
    """Look up a factory; unknown kinds list the valid options."""
    try:
        return COMPONENT_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown component kind {kind!r}; "
            f"registered kinds: {', '.join(sorted(COMPONENT_KINDS))}"
        ) from None


def component_kinds() -> Tuple[str, ...]:
    return tuple(sorted(COMPONENT_KINDS))
