"""Device models: LSU microbenchmark unit, DMA engines, XPU, PMU."""

from repro.devices.pmu import Pmu
from repro.devices.lsu import LoadStoreUnit, LsuReport
from repro.devices.dma import DmaEngine, DmaReport
from repro.devices.xpu import Xpu, ProcessingElement

__all__ = [
    "Pmu",
    "LoadStoreUnit",
    "LsuReport",
    "DmaEngine",
    "DmaReport",
    "Xpu",
    "ProcessingElement",
]
