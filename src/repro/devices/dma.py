"""DMA read/write engines for the PCIe device models.

A one-shot transfer pays the descriptor setup (engine processing plus a
fixed PHY round trip) and then the wire time of its TLP-segmented
payload.  Queued descriptor streams pipeline: the engine accepts a new
descriptor every ``desc_ii`` and overlaps its wire time with the next
descriptor's processing, so throughput is payload/(desc_ii + wire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.config.system import DmaParams
from repro.devices.pmu import Pmu
from repro.interconnect.pcie import PcieLink, TlpType
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram


@dataclass
class DmaReport:
    latencies: Histogram
    bandwidth_gbps: Optional[float]
    transfers: int
    bytes_moved: int

    @property
    def median_ns(self) -> float:
        return self.latencies.median / 1_000

    @property
    def median_us(self) -> float:
        return self.latencies.median / 1_000_000


class DmaEngine(Component):
    """One direction's DMA engine (read or write look identical on the
    PHY, §VI-B.2 notes read/write symmetry)."""

    def __init__(self, sim: Simulator, params: DmaParams, name: str = "dma") -> None:
        super().__init__(sim, name)
        self.params = params
        self.link = PcieLink(sim, params, name=f"{name}.pcie")
        self.pmu = Pmu(f"{name}.pmu")
        self._engine_free_ps = 0
        self.transfers = 0
        self.bytes_moved = 0

    # ------------------------------------------------------------------
    # One-shot transfer (latency path, Fig. 14)
    # ------------------------------------------------------------------
    def transfer(self, size: int, on_done: Optional[Callable[[], None]] = None) -> int:
        """Start a one-shot DMA; returns the completion time (ps)."""
        if size <= 0:
            raise ValueError("transfer size must be positive")
        self.transfers += 1
        self.bytes_moved += size
        start = max(self.sim.now, self._engine_free_ps)
        done = start + self.params.setup_ps + self.params.wire_ps(size)
        # The engine frees up once it has handed the payload to the link.
        self._engine_free_ps = start + self.params.setup_ps
        if on_done is not None:
            self.sim.schedule_at(done, on_done, label=self.name)
        return done

    def measure_latency(self, size: int, repeats: int = 100) -> DmaReport:
        """Serialized one-shot transfers; median reproduces Fig. 14."""
        self.pmu.reset()
        remaining = [repeats]

        def issue() -> None:
            if remaining[0] <= 0:
                return
            remaining[0] -= 1
            req_id = repeats - remaining[0]
            self.pmu.issued(req_id, self.sim.now)
            self.transfer(size, lambda: complete(req_id))

        def complete(req_id: int) -> None:
            self.pmu.completed(req_id, self.sim.now)
            issue()

        issue()
        self.sim.run()
        return DmaReport(
            latencies=self.pmu.latencies,
            bandwidth_gbps=None,
            transfers=repeats,
            bytes_moved=repeats * size,
        )

    # ------------------------------------------------------------------
    # Pipelined descriptor stream (bandwidth path, Fig. 16)
    # ------------------------------------------------------------------
    def measure_bandwidth(self, size: int, descriptors: int = 2048, warmup: int = 64) -> DmaReport:
        """Queue ``descriptors`` back-to-back transfers of ``size`` bytes."""
        self.pmu.reset()
        warmup = min(warmup, descriptors // 4)
        base = self.sim.now
        per_descriptor = self.params.pipelined_ps(size)
        completion = base + self.params.setup_ps  # first completion after setup
        for req_id in range(descriptors):
            self.pmu.issued(req_id, base)
            completion += per_descriptor
            self.sim.schedule_at(completion, self.pmu.completed, req_id, completion)
        self.sim.run()
        bandwidth = self.pmu.bandwidth_gbps(size, warmup=warmup)
        self.transfers += descriptors
        self.bytes_moved += descriptors * size
        return DmaReport(
            latencies=self.pmu.latencies,
            bandwidth_gbps=bandwidth,
            transfers=descriptors,
            bytes_moved=descriptors * size,
        )

    # ------------------------------------------------------------------
    # RAO building block: strictly ordered 64 B read/write pairs
    # ------------------------------------------------------------------
    def rmw_pair_ps(self) -> int:
        """Cost of one read + one write at cacheline size, serialized.

        PCIe's relaxed ordering forces each RAO to wait for the previous
        write's acknowledgement (§V-A.1), so the pair cannot overlap.
        """
        return 2 * self.params.transfer_ps(64)


from repro.system.registry import register_component  # noqa: E402


@register_component("dma")
def _build_dma(builder, system, spec) -> DmaEngine:
    """Builder factory: descriptor-driven PCIe DMA engine."""
    return DmaEngine(system.sim, system.config.dma, name=spec.name)
