"""Generic XPU: processing elements over the CXL device substrate.

An XPU is a pool of processing elements (PEs), each of which executes
work items that read/write host memory through the DCOH (CXL.cache) or
device memory (CXL.mem).  The NIC models specialize this for RAO and
RPC; the runtime uses it as the compute side of a command queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, List, Optional
from collections import deque

from repro.config.system import DeviceProfile
from repro.cxl.dcoh import Dcoh
from repro.sim.component import Component
from repro.sim.engine import Simulator


@dataclass
class WorkItem:
    """One unit of XPU work: a callable plus a fixed compute cost."""

    run: Callable[[], None]
    compute_ps: int = 0


class ProcessingElement(Component):
    """One PE: executes work items serially."""

    def __init__(self, sim: Simulator, profile: DeviceProfile, name: str) -> None:
        super().__init__(sim, name)
        self.profile = profile
        self._queue: Deque[WorkItem] = deque()
        self._busy = False
        self.completed = 0
        self.busy_ps = 0

    def submit(self, item: WorkItem) -> None:
        self._queue.append(item)
        if not self._busy:
            self._run_next()

    def _run_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        item = self._queue.popleft()
        start = self.sim.now

        def done() -> None:
            item.run()
            self.completed += 1
            self.busy_ps += self.sim.now - start
            self._run_next()

        self.schedule(item.compute_ps, done)

    @property
    def idle(self) -> bool:
        return not self._busy and not self._queue

    @property
    def backlog(self) -> int:
        return len(self._queue)


class Xpu(Component):
    """A pool of PEs with round-robin dispatch."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        pe_count: int = 4,
        dcoh: Optional[Dcoh] = None,
        name: str = "xpu",
    ) -> None:
        super().__init__(sim, name)
        if pe_count <= 0:
            raise ValueError("need at least one PE")
        self.profile = profile
        self.dcoh = dcoh
        self.pes: List[ProcessingElement] = [
            ProcessingElement(sim, profile, f"{name}.pe{i}") for i in range(pe_count)
        ]
        self._rr = 0

    def submit(self, item: WorkItem) -> ProcessingElement:
        """Dispatch to the least-loaded PE (ties broken round-robin)."""
        pe = min(self.pes, key=lambda p: (p.backlog + (0 if p.idle else 1), self._order(p)))
        self._rr += 1
        pe.submit(item)
        return pe

    def _order(self, pe: ProcessingElement) -> int:
        index = self.pes.index(pe)
        return (index - self._rr) % len(self.pes)

    @property
    def completed(self) -> int:
        return sum(pe.completed for pe in self.pes)

    @property
    def idle(self) -> bool:
        return all(pe.idle for pe in self.pes)
