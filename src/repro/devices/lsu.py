"""Load/store unit: the CXL.cache calibration microbenchmark (§VI-A.3).

The LSU generates host-memory requests with configurable access
patterns.  Two modes:

* latency mode — requests are serialized (the next issues only after
  the previous completes), reproducing the median-latency methodology
  of Figs. 12/13;
* bandwidth mode — requests are pipelined under an outstanding-window
  credit pool, reproducing Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cxl.dcoh import Dcoh
from repro.cxl.transactions import DcohResult
from repro.devices.pmu import Pmu
from repro.mem.address import CACHELINE
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.queueing import CreditPool
from repro.sim.stats import Histogram


@dataclass
class LsuReport:
    """Result of one LSU measurement run."""

    latencies: Histogram
    bandwidth_gbps: Optional[float]
    hmc_hits: int
    requests: int

    @property
    def median_ns(self) -> float:
        return self.latencies.median / 1_000

    @property
    def p25_ns(self) -> float:
        return self.latencies.p25 / 1_000

    @property
    def p75_ns(self) -> float:
        return self.latencies.p75 / 1_000


class LoadStoreUnit(Component):
    """LSU issuing 64 B loads/stores through the DCOH."""

    def __init__(self, sim: Simulator, dcoh: Dcoh, name: str = "lsu") -> None:
        super().__init__(sim, name, clock=None)
        self.dcoh = dcoh
        self.profile = dcoh.profile
        self.pmu = Pmu(f"{name}.pmu")

    # ------------------------------------------------------------------
    # Latency mode
    # ------------------------------------------------------------------
    def run_latency(
        self,
        addrs: Sequence[int],
        exclusive: bool = False,
        extra_rt_ps: int = 0,
    ) -> LsuReport:
        """Serialized loads over ``addrs``; returns per-request latencies."""
        self.pmu.reset()
        issue_ps = self.profile.cycles_ps(self.profile.lsu_issue_cycles)
        complete_ps = self.profile.cycles_ps(self.profile.lsu_complete_cycles)
        pending = list(addrs)
        index = 0

        def issue_next() -> None:
            nonlocal index
            if index >= len(pending):
                return
            req_id = index
            addr = pending[index]
            index += 1
            self.pmu.issued(req_id, self.sim.now)

            def done(_result: DcohResult) -> None:
                self.schedule(complete_ps, finish, req_id)

            self.schedule(issue_ps, self.dcoh.read, addr, done, exclusive, extra_rt_ps)

        def finish(req_id: int) -> None:
            self.pmu.completed(req_id, self.sim.now)
            issue_next()

        issue_next()
        self.sim.run()
        hits = self.dcoh.hmc.array.hits
        return LsuReport(
            latencies=self.pmu.latencies,
            bandwidth_gbps=None,
            hmc_hits=hits,
            requests=len(pending),
        )

    # ------------------------------------------------------------------
    # Bandwidth mode
    # ------------------------------------------------------------------
    def run_bandwidth(
        self,
        addrs: Sequence[int],
        exclusive: bool = False,
        warmup: int = 128,
    ) -> LsuReport:
        """Pipelined loads under the profile's outstanding window."""
        self.pmu.reset()
        credits = CreditPool(self.profile.max_outstanding, f"{self.name}.mshr")
        issue_ii = self.profile.clock_period_ps  # one issue slot per cycle
        pending = list(addrs)
        index = 0

        def try_issue() -> None:
            if index >= len(pending):
                return
            if credits.acquire(on_grant=issue_one):
                issue_one()

        def issue_one() -> None:
            # Runs while holding one credit (granted now or handed over
            # by a completing request's release()).
            nonlocal index
            if index >= len(pending):
                credits.release()
                return
            req_id = index
            addr = pending[index]
            index += 1
            self.pmu.issued(req_id, self.sim.now)

            def done(_result: DcohResult, rid: int = req_id) -> None:
                self.pmu.completed(rid, self.sim.now)
                credits.release()

            self.dcoh.read(addr, done, exclusive)
            # Next issue slot on the following device cycle.
            self.schedule(issue_ii, try_issue)

        try_issue()
        self.sim.run()
        bandwidth = self.pmu.bandwidth_gbps(CACHELINE, from_issue=True)
        return LsuReport(
            latencies=self.pmu.latencies,
            bandwidth_gbps=bandwidth,
            hmc_hits=self.dcoh.hmc.array.hits,
            requests=len(pending),
        )

    # ------------------------------------------------------------------
    # Preconditioning helpers mirroring the paper's methodology
    # ------------------------------------------------------------------
    def warm_hmc(self, addrs: Sequence[int]) -> None:
        """Touch every line once so subsequent accesses hit the HMC."""
        for addr in addrs:
            self.dcoh.hmc.fill(addr)

    def sequential_lines(self, base: int, count: int) -> List[int]:
        return [base + i * CACHELINE for i in range(count)]


from repro.system.registry import register_component  # noqa: E402


@register_component("lsu")
def _build_lsu(builder, system, spec) -> LoadStoreUnit:
    """Builder factory: LSU driving a device's DCOH.

    Params: ``device`` — name of the device node to issue through;
    defaults to the linked neighbour that exposes a ``dcoh``.
    """
    device_name = spec.params.get("device")
    if device_name is not None:
        device = system.node(str(device_name))
        if not hasattr(device, "dcoh"):
            raise ValueError(f"lsu {spec.name!r}: node {device_name!r} has no dcoh")
    else:
        device = system.attached_node(spec.name, "dcoh")
    return LoadStoreUnit(system.sim, device.dcoh, name=spec.name)
