"""Performance monitoring unit: request/response timestamp collection.

Mirrors the purpose-designed PMU on the paper's FPGA (§VI-A.3): it
records issue/completion timestamps per request and derives latency
distributions and achieved bandwidth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.stats import Histogram


class Pmu:
    """Timestamp recorder for one measurement run."""

    def __init__(self, name: str = "pmu") -> None:
        self.name = name
        self._issue_ps: Dict[int, int] = {}
        # Completion-path hot loop appends raw latencies to a plain
        # list; the Histogram is populated lazily in one batched extend
        # when `latencies` is first read (and again only for samples
        # recorded since the previous read).
        self._lat_values: List[int] = []
        self._lat_flushed = 0
        self._latencies = Histogram(f"{name}.latency")
        self.completions: List[Tuple[int, int]] = []   # (req id, completion ps)
        self.first_issue_ps: Optional[int] = None
        self.last_completion_ps: Optional[int] = None

    def issued(self, req_id: int, now_ps: int) -> None:
        self._issue_ps[req_id] = now_ps
        if self.first_issue_ps is None:
            self.first_issue_ps = now_ps

    def completed(self, req_id: int, now_ps: int) -> None:
        issue = self._issue_ps.pop(req_id, None)
        if issue is None:
            raise KeyError(f"completion for unknown request {req_id}")
        self._lat_values.append(now_ps - issue)
        self.completions.append((req_id, now_ps))
        self.last_completion_ps = now_ps

    @property
    def latencies(self) -> Histogram:
        """Latency distribution (batched flush of pending samples)."""
        flushed = self._lat_flushed
        values = self._lat_values
        if flushed < len(values):
            self._latencies.extend(values[flushed:])
            self._lat_flushed = len(values)
        return self._latencies

    @property
    def outstanding(self) -> int:
        return len(self._issue_ps)

    def bandwidth_gbps(
        self, bytes_per_request: int, warmup: int = 0, from_issue: bool = False
    ) -> float:
        """Achieved bandwidth over the completion stream.

        With ``from_issue`` the window opens at the first issue (total
        bytes / total test time — the paper's Fig. 15 methodology);
        otherwise ``warmup`` completions are discarded and steady-state
        throughput is measured between completions.
        """
        if len(self.completions) <= warmup + 1:
            raise ValueError("not enough completions for a bandwidth estimate")
        if from_issue:
            if self.first_issue_ps is None:
                raise ValueError("no issues recorded")
            t_start = self.first_issue_ps
            n = len(self.completions)
        else:
            t_start = self.completions[warmup][1]
            n = len(self.completions) - warmup - 1
        t_end = self.completions[-1][1]
        if t_end <= t_start:
            raise ValueError("degenerate completion interval")
        return n * bytes_per_request / (t_end - t_start) * 1_000  # B/ps -> GB/s

    def reset(self) -> None:
        self._issue_ps.clear()
        self._lat_values.clear()
        self._lat_flushed = 0
        self._latencies.reset()
        self.completions.clear()
        self.first_issue_ps = None
        self.last_completion_ps = None
