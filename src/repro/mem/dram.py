"""DDR5 bank timing model.

A closed-page controller: after each access the row is precharged, so
the common case costs tRCD + tCL + burst.  Refresh steals the bank for
tRFC every tREFI, and a bounded arbitration jitter models command-bus
scheduling; together these produce the latency spread visible in the
paper's Fig. 12 whiskers without injecting arbitrary noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config.system import DramParams


@dataclass
class DramAccess:
    """Result of one DRAM access."""

    addr: int
    bank: int
    latency_ps: int
    refresh_collision: bool


class DramBankModel:
    """Per-bank availability tracking with periodic refresh."""

    def __init__(self, params: DramParams, seed: int = 1234) -> None:
        self.params = params
        self._rng = random.Random(seed)
        self._bank_free_ps = [0] * params.banks
        self.accesses = 0
        self.refresh_collisions = 0

    def bank_of(self, addr: int) -> int:
        return (addr // self.params.row_bytes) % self.params.banks

    def _refresh_penalty(self, now_ps: int) -> int:
        """Residual tRFC if ``now_ps`` lands inside a refresh window."""
        phase = now_ps % self.params.trefi_ps
        if phase < self.params.trfc_ps:
            return self.params.trfc_ps - phase
        return 0

    def access(self, addr: int, now_ps: int) -> DramAccess:
        """Issue one closed-page access; returns latency including queueing.

        The bank's data burst occupies the channel for ``burst_ps``; the
        access pipeline (tRCD + tCL + burst) determines latency.  Column
        accesses pipeline, so back-to-back requests serialize only on
        the burst, not on the full access latency.
        """
        self.accesses += 1
        bank = self.bank_of(addr)
        start = max(now_ps, self._bank_free_ps[bank])
        refresh = self._refresh_penalty(start)
        if refresh:
            self.refresh_collisions += 1
            start += refresh
        jitter = self._rng.randint(-self.params.jitter_ps, self.params.jitter_ps)
        service = max(self.params.row_hit_ps, self.params.closed_access_ps + jitter)
        finish = start + service
        self._bank_free_ps[bank] = start + self.params.burst_ps
        return DramAccess(
            addr=addr,
            bank=bank,
            latency_ps=finish - now_ps,
            refresh_collision=bool(refresh),
        )

    def median_access_ps(self) -> int:
        """Nominal (jitter-free, conflict-free) access cost."""
        return self.params.closed_access_ps

    def reset(self) -> None:
        self._bank_free_ps = [0] * self.params.banks
        self.accesses = 0
        self.refresh_collisions = 0
