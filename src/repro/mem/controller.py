"""Memory controller: channel interleaving plus bank timing.

The controller fronts one or more DRAM channels, routes each line to a
channel via the interleaver and asks the bank model for the access
latency.  It also enforces the calibrated LLC-miss initiation interval,
which bounds sustained memory bandwidth.
"""

from __future__ import annotations

from typing import List

from repro.config.system import DramParams
from repro.mem.address import Interleaver
from repro.mem.dram import DramAccess, DramBankModel


class MemoryController:
    """Multi-channel DDR controller with occupancy tracking."""

    def __init__(
        self,
        params: DramParams,
        channels: int = 2,
        ii_ps: int = 0,
        seed: int = 1234,
    ) -> None:
        self.params = params
        self.interleaver = Interleaver(channels)
        self.channels: List[DramBankModel] = [
            DramBankModel(params, seed=seed + i) for i in range(channels)
        ]
        self.ii_ps = ii_ps
        self._next_free_ps = 0
        self.requests = 0

    def service_start(self, now_ps: int) -> int:
        """Apply the controller initiation interval; returns service start."""
        start = max(now_ps, self._next_free_ps)
        self._next_free_ps = start + self.ii_ps
        return start

    def access(self, addr: int, now_ps: int) -> DramAccess:
        """One read/write of the line containing ``addr``."""
        self.requests += 1
        start = self.service_start(now_ps)
        channel, local = self.interleaver.map(addr)
        result = self.channels[channel].access(local, start)
        # Report latency relative to the caller's clock, including any
        # wait for the controller to free up.
        total = (start - now_ps) + result.latency_ps
        return DramAccess(
            addr=addr,
            bank=result.bank,
            latency_ps=total,
            refresh_collision=result.refresh_collision,
        )

    def reset(self) -> None:
        for channel in self.channels:
            channel.reset()
        self._next_free_ps = 0
        self.requests = 0
