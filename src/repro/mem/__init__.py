"""Memory substrate: address ranges, DDR5 timing, controllers, routing."""

from repro.mem.address import AddressRange, Interleaver, line_base, line_offset
from repro.mem.dram import DramBankModel, DramAccess
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.mem.technologies import TECHNOLOGIES, NvmBankModel, make_controller

__all__ = [
    "AddressRange",
    "Interleaver",
    "line_base",
    "line_offset",
    "DramBankModel",
    "DramAccess",
    "MemoryController",
    "MemoryInterface",
    "TECHNOLOGIES",
    "NvmBankModel",
    "make_controller",
]
