"""Memory interface: routes LLC/DMA requests to host or device memory.

This is the module labelled "Memory Interface" in Fig. 6: it inspects
the physical address, forwards the request to the host controller or
(for CXL.mem) to the device-attached memory, and accounts the routing
hop each way.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController


class MemoryInterface:
    """Address-routed front door to every memory controller in the pool."""

    def __init__(self, oneway_ps: int) -> None:
        self.oneway_ps = oneway_ps
        self._targets: Dict[str, Tuple[AddressRange, MemoryController]] = {}
        self.routed = 0

    def attach(self, name: str, region: AddressRange, controller: MemoryController) -> None:
        """Register a memory target; ranges must not overlap."""
        for existing_name, (existing, _ctrl) in self._targets.items():
            if existing.overlaps(region):
                raise ValueError(
                    f"range {region} overlaps {existing} ({existing_name!r})"
                )
        self._targets[name] = (region, controller)

    def target_of(self, addr: int) -> Optional[str]:
        for name, (region, _ctrl) in self._targets.items():
            if region.contains(addr):
                return name
        return None

    def controller_of(self, addr: int) -> MemoryController:
        name = self.target_of(addr)
        if name is None:
            raise LookupError(f"address {addr:#x} maps to no memory target")
        return self._targets[name][1]

    def region(self, name: str) -> AddressRange:
        return self._targets[name][0]

    def access_ps(self, addr: int, now_ps: int) -> int:
        """Round-trip latency for one line access through the interface."""
        self.routed += 1
        controller = self.controller_of(addr)
        inner_start = now_ps + self.oneway_ps
        result = controller.access(addr, inner_start)
        return self.oneway_ps + result.latency_ps + self.oneway_ps

    @property
    def targets(self) -> Dict[str, AddressRange]:
        return {name: region for name, (region, _ctrl) in self._targets.items()}
