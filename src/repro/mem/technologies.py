"""Device-memory technologies: DDR5, NVM, and HBM timing presets.

§IV-B.3: "The device memory can directly leverage various existing
memory models in gem5, including DDR3/4/5, non-volatile memory (NVM),
and high bandwidth memory (HBM)."  This module provides the equivalent
parameter sets for SimCXL's bank model, plus an asymmetric-write NVM
wrapper, so type-2/3 devices can be instantiated over any of them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

from repro.config.system import DramParams
from repro.mem.controller import MemoryController
from repro.mem.dram import DramAccess, DramBankModel

# DDR5-4400: the default host/device technology (calibrated).
DDR5_4400 = DramParams()

# DDR4-3200: higher CAS in ns terms, slower burst.
DDR4_3200 = DramParams(
    trcd_ps=14_060,
    tcl_ps=14_060,
    trp_ps=14_060,
    burst_ps=2_500,     # 64B over a single 64-bit channel at 3200 MT/s
    trfc_ps=350_000,
    trefi_ps=7_800_000,
    banks=16,
    row_bytes=8_192,
)

# HBM2e-style stack: slightly higher access latency, massive parallelism
# (many pseudo-channels -> tiny per-line occupancy).
HBM2E = DramParams(
    trcd_ps=17_000,
    tcl_ps=17_000,
    trp_ps=17_000,
    burst_ps=400,       # 64B across a wide interface
    trfc_ps=160_000,
    trefi_ps=3_900_000,
    banks=128,
    row_bytes=2_048,
)

# Optane-class NVM: long reads, much longer writes (handled by
# NvmBankModel's write multiplier).
NVM_OPTANE = DramParams(
    trcd_ps=120_000,
    tcl_ps=120_000,
    trp_ps=0,
    burst_ps=7_200,
    trfc_ps=0,          # no refresh
    trefi_ps=1 << 62,
    banks=16,
    row_bytes=4_096,
    jitter_ps=12_000,
)

TECHNOLOGIES: Dict[str, DramParams] = {
    "ddr5": DDR5_4400,
    "ddr4": DDR4_3200,
    "hbm": HBM2E,
    "nvm": NVM_OPTANE,
}


class NvmBankModel(DramBankModel):
    """NVM: asymmetric read/write with a write-occupancy multiplier."""

    def __init__(self, params: DramParams, write_multiplier: float = 3.0, seed: int = 1234):
        super().__init__(params, seed=seed)
        if write_multiplier < 1.0:
            raise ValueError("write multiplier must be >= 1")
        self.write_multiplier = write_multiplier
        self.writes = 0

    def write(self, addr: int, now_ps: int) -> DramAccess:
        """A write: same pipeline, but the media stays busy far longer."""
        self.writes += 1
        result = self.access(addr, now_ps)
        extra = round(self.params.closed_access_ps * (self.write_multiplier - 1.0))
        bank = result.bank
        self._bank_free_ps[bank] = max(
            self._bank_free_ps[bank], now_ps + result.latency_ps + extra
        )
        return DramAccess(
            addr=result.addr,
            bank=bank,
            latency_ps=result.latency_ps + extra,
            refresh_collision=result.refresh_collision,
        )


def make_controller(
    technology: str,
    channels: int = 1,
    ii_ps: int = 0,
    seed: int = 1234,
) -> MemoryController:
    """Build a memory controller for the named technology."""
    try:
        params = TECHNOLOGIES[technology]
    except KeyError:
        raise ValueError(
            f"unknown memory technology {technology!r}; options: {sorted(TECHNOLOGIES)}"
        ) from None
    return MemoryController(params, channels=channels, ii_ps=ii_ps, seed=seed)


def nominal_read_ns(technology: str) -> float:
    """Media-only read latency (ns), for quick technology comparisons."""
    return TECHNOLOGIES[technology].closed_access_ps / 1_000
