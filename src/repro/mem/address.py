"""Physical address ranges and channel interleaving."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

CACHELINE = 64


def line_base(addr: int, line: int = CACHELINE) -> int:
    """Base address of the cacheline containing ``addr``."""
    return addr - (addr % line)


def line_offset(addr: int, line: int = CACHELINE) -> int:
    return addr % line


@dataclass(frozen=True)
class AddressRange:
    """A half-open physical address range ``[start, end)``."""

    start: int
    end: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty address range [{self.start}, {self.end})")

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.start < other.end and other.start < self.end

    def offset(self, addr: int) -> int:
        if not self.contains(addr):
            raise ValueError(f"address {addr:#x} outside range {self}")
        return addr - self.start

    def __str__(self) -> str:
        label = f" {self.name}" if self.name else ""
        return f"[{self.start:#x}, {self.end:#x}){label}"


class Interleaver:
    """Cacheline-granularity channel interleaving.

    Maps a physical address to ``(channel, channel-local address)`` and
    back; the mapping is a bijection, which the property tests verify.
    """

    def __init__(self, channels: int, granule: int = CACHELINE) -> None:
        if channels <= 0:
            raise ValueError("need at least one channel")
        if granule <= 0 or granule % CACHELINE:
            raise ValueError("granule must be a positive multiple of a cacheline")
        self.channels = channels
        self.granule = granule

    def map(self, addr: int) -> tuple:
        granule_index, offset = divmod(addr, self.granule)
        channel = granule_index % self.channels
        local = (granule_index // self.channels) * self.granule + offset
        return channel, local

    def unmap(self, channel: int, local: int) -> int:
        if not 0 <= channel < self.channels:
            raise ValueError(f"channel {channel} out of range")
        local_granule, offset = divmod(local, self.granule)
        granule_index = local_granule * self.channels + channel
        return granule_index * self.granule + offset


def split_evenly(region: AddressRange, parts: int) -> List[AddressRange]:
    """Split ``region`` into ``parts`` contiguous sub-ranges."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    size = region.size // parts
    if size == 0:
        raise ValueError("region too small to split")
    ranges = []
    start = region.start
    for i in range(parts):
        end = region.end if i == parts - 1 else start + size
        ranges.append(AddressRange(start, end, f"{region.name}/{i}"))
        start = end
    return ranges
