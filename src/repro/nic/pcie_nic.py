"""PCIe-NIC RAO offload (Fig. 8a).

Every RAO is an indivisible read-modify-write executed over PCIe DMA:
one DMA read, the ALU op, one DMA write.  PCIe's relaxed ordering and
split transactions cannot guarantee that a later read will not pass an
earlier write to the same address, so the NIC conservatively waits for
each write's acknowledgement before issuing the next RAO — the
serialization that caps PCIe RAO throughput (§V-A.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config.system import SystemConfig
from repro.devices.dma import DmaEngine
from repro.nic.base import HostValues, NicBase, RaoRunResult
from repro.rao.circustent import RaoRequest
from repro.rao.ops import apply_atomic
from repro.sim.engine import Simulator


class PcieRaoNic(NicBase):
    """RAO offloading on a conventional PCIe NIC."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        values: Optional[HostValues] = None,
        name: str = "pcie-nic",
    ) -> None:
        super().__init__(sim, name, values)
        self.config = config
        self.dma = DmaEngine(sim, config.dma, name=f"{name}.dma")
        self.reads_issued = 0
        self.writes_issued = 0

    def run(self, requests: List[RaoRequest]) -> RaoRunResult:
        """Process the request stream to completion."""
        proc_ps = self.config.rao.request_proc_ps
        modify_ps = self.config.rao.modify_ps
        start_ps = self.sim.now
        pending = list(requests)
        index = 0

        def next_request() -> None:
            nonlocal index
            if index >= len(pending):
                return
            request = pending[index]
            index += 1
            # RX parse + queue occupies the request pipeline.
            self.schedule(proc_ps // 2, do_reads, request, list(request.reads))

        def do_reads(request: RaoRequest, reads: List[int]) -> None:
            if reads:
                addr = reads.pop(0)
                self.reads_issued += 1
                # Index-array loads are themselves DMA round trips.
                self.dma.transfer(64, lambda: do_reads(request, reads))
                return
            self.schedule(0, rmw_read, request)

        def rmw_read(request: RaoRequest) -> None:
            self.reads_issued += 1
            self.dma.transfer(64, lambda: modify(request))

        def modify(request: RaoRequest) -> None:
            current = self.values.read(request.target)
            new, _old = apply_atomic(request.op, current, request.operand)
            self.values.write(request.target, new)
            self.schedule(modify_ps, rmw_write, request)

        def rmw_write(request: RaoRequest) -> None:
            self.writes_issued += 1
            # The RAW hazard rule: wait for this write's ack before the
            # next RAO may begin.
            self.dma.transfer(64, lambda: respond(request))

        def respond(request: RaoRequest) -> None:
            self.send_response(request)
            self.schedule(proc_ps - proc_ps // 2, next_request)

        next_request()
        self.sim.run()
        return RaoRunResult(
            ops=len(pending),
            elapsed_ps=self.sim.now - start_ps,
            reads_issued=self.reads_issued,
            writes_issued=self.writes_issued,
        )


from repro.system.registry import register_component  # noqa: E402


@register_component("nic.pcie_rao")
def _build_pcie_rao_nic(builder, system, spec) -> PcieRaoNic:
    """Builder factory: PCIe RAO NIC (needs no host complex)."""
    return PcieRaoNic(system.sim, system.config, HostValues(), name=spec.name)
