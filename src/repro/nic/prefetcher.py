"""Multi-stride RPC prefetcher (§V-B.2).

Records cache-miss addresses, detects per-stream strides, and issues
prefetches into the HMC.  Two properties drive the Fig. 18b results:

* training cost — a stream must repeat its stride ``train_threshold``
  times before prefetches launch, so short streams (small messages,
  fragments between nesting hops) see little coverage;
* pointer chasing — a nesting hop breaks the stream, so deeply nested
  messages (Bench2) defeat the prefetcher almost entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class StrideEntry:
    """One tracked stream in the stride table."""

    last_addr: int
    stride: int = 0
    confidence: int = 0


class MultiStridePrefetcher:
    """Stride detector over the miss stream."""

    def __init__(
        self,
        table_entries: int = 16,
        train_threshold: int = 2,
        degree: int = 4,
        match_window: int = 8192,
    ) -> None:
        if table_entries <= 0 or degree <= 0 or train_threshold <= 0:
            raise ValueError("prefetcher parameters must be positive")
        self.table_entries = table_entries
        self.train_threshold = train_threshold
        self.degree = degree
        self.match_window = match_window
        self._table: List[StrideEntry] = []
        self.misses_observed = 0
        self.prefetches_issued = 0

    def observe_miss(self, addr: int) -> List[int]:
        """Record a demand miss; returns addresses to prefetch (if any)."""
        self.misses_observed += 1
        entry = self._match(addr)
        if entry is None:
            self._insert(addr)
            return []
        stride = addr - entry.last_addr
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 1
        entry.last_addr = addr
        if entry.confidence >= self.train_threshold:
            prefetches = [addr + entry.stride * (i + 1) for i in range(self.degree)]
            self.prefetches_issued += len(prefetches)
            return prefetches
        return []

    def _match(self, addr: int) -> Optional[StrideEntry]:
        best = None
        best_distance = self.match_window + 1
        for entry in self._table:
            distance = abs(addr - entry.last_addr)
            if distance <= self.match_window and distance < best_distance:
                best = entry
                best_distance = distance
        return best

    def _insert(self, addr: int) -> None:
        if len(self._table) >= self.table_entries:
            self._table.pop(0)
        self._table.append(StrideEntry(last_addr=addr))

    def reset(self) -> None:
        self._table.clear()
        self.misses_observed = 0
        self.prefetches_issued = 0


class PrefetchBuffer:
    """In-flight and arrived prefetches with arrival timestamps."""

    def __init__(self) -> None:
        self._arrival_ps: Dict[int, int] = {}
        self.useful = 0
        self.useless = 0

    def issue(self, addr: int, now_ps: int, latency_ps: int) -> None:
        # Re-issues keep the earliest arrival.
        arrival = now_ps + latency_ps
        existing = self._arrival_ps.get(addr)
        if existing is None or arrival < existing:
            self._arrival_ps[addr] = arrival

    def residual_ps(self, addr: int, now_ps: int, miss_ps: int) -> Optional[int]:
        """Remaining wait if ``addr`` was prefetched, else None.

        A prefetch that has fully arrived costs nothing extra; one still
        in flight exposes only its residual latency (timeliness).
        """
        arrival = self._arrival_ps.pop(addr, None)
        if arrival is None:
            return None
        self.useful += 1
        return max(0, min(arrival - now_ps, miss_ps))

    @property
    def outstanding(self) -> int:
        return len(self._arrival_ps)
