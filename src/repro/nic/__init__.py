"""NIC designs: PCIe-NIC and CXL-NIC offloading engines."""

from repro.nic.base import HostValues, MemoryTranslationTable, NicBase, RaoRunResult
from repro.nic.pcie_nic import PcieRaoNic
from repro.nic.cxl_nic import CxlRaoNic
from repro.nic.prefetcher import MultiStridePrefetcher
from repro.nic.rdma import RdmaFabric, RemoteNode

__all__ = [
    "HostValues",
    "MemoryTranslationTable",
    "NicBase",
    "RaoRunResult",
    "PcieRaoNic",
    "CxlRaoNic",
    "MultiStridePrefetcher",
    "RdmaFabric",
    "RemoteNode",
]
