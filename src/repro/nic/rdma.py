"""RDMA network fabric delivering RAO/RPC requests to the NIC.

The evaluation measures NIC-side processing; the network is a request
source with a fixed node-to-node latency and per-message serialization,
matching the five-node topology of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.component import Component
from repro.sim.engine import Simulator


@dataclass
class RemoteNode:
    """A peer server issuing requests into the fabric."""

    node_id: int
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"node{self.node_id}"


class RdmaFabric(Component):
    """Star fabric: remote nodes -> the NIC under test."""

    def __init__(
        self,
        sim: Simulator,
        nodes: int = 4,
        latency_ps: int = 1_500_000,     # ~1.5 us network one-way
        message_gap_ps: int = 5_000,     # per-message serialization at the port
        name: str = "rdma",
    ) -> None:
        super().__init__(sim, name)
        if nodes <= 0:
            raise ValueError("fabric needs at least one remote node")
        self.nodes = [RemoteNode(i + 1) for i in range(nodes)]
        self.latency_ps = latency_ps
        self.message_gap_ps = message_gap_ps
        self._port_free_ps: Dict[int, int] = {n.node_id: 0 for n in self.nodes}
        self.messages = 0

    def send(
        self,
        source: int,
        payload: object,
        deliver: Callable[[object], None],
    ) -> int:
        """Inject a message from ``source``; returns its delivery time."""
        if source not in self._port_free_ps:
            raise ValueError(f"unknown source node {source}")
        start = max(self.sim.now, self._port_free_ps[source])
        self._port_free_ps[source] = start + self.message_gap_ps
        arrive = start + self.latency_ps
        self.sim.schedule_at(arrive, deliver, payload, label=self.name)
        self.messages += 1
        return arrive

    def broadcast_stream(
        self,
        payloads: List[object],
        deliver: Callable[[object], None],
    ) -> None:
        """Spread a request stream round-robin over all remote nodes."""
        for i, payload in enumerate(payloads):
            self.send(self.nodes[i % len(self.nodes)].node_id, payload, deliver)
