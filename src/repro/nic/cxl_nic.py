"""CXL-NIC RAO offload (Fig. 8b / Fig. 9).

The NIC is a CXL type-1/2 device: its RAO PEs execute read-modify-write
against the HMC through the DCOH.  Hot lines stay cached (CENTRAL,
STRIDE1), so most RAOs never cross the PHY; the PE locks the target
line for the RMW window to preserve atomicity, and hardware coherence
makes results visible to the host without explicit writebacks.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cache.llc import SharedLLC
from repro.config.system import SystemConfig
from repro.cxl.dcoh import Dcoh
from repro.cxl.device import Type1Device
from repro.cxl.transactions import DcohResult
from repro.nic.base import HostValues, NicBase, RaoRunResult
from repro.rao.circustent import RaoRequest
from repro.rao.ops import apply_atomic
from repro.sim.engine import Simulator


class CxlRaoNic(NicBase):
    """RAO offloading on a CXL.cache-attached NIC."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        llc: SharedLLC,
        values: Optional[HostValues] = None,
        pe_count: Optional[int] = None,
        name: str = "cxl-nic",
    ) -> None:
        super().__init__(sim, name, values)
        self.config = config
        self.device = Type1Device(sim, config.device, llc, name=name)
        self.dcoh: Dcoh = self.device.dcoh
        self.hmc = self.device.hmc
        self.pe_count = pe_count if pe_count is not None else config.rao.pe_count
        if self.pe_count <= 0:
            raise ValueError("need at least one RAO PE")
        self.hmc_hits = 0
        self.hmc_misses = 0
        self.dirty_evict_stalls = 0

    def warm(self, lines: Optional[int] = None, base: int = 0x7000_0000) -> None:
        """Bring the HMC to steady state: full of dirty lines.

        A long-running RAO service reaches this state quickly; without
        it, short measurement runs would never observe the dirty-evict
        cost that dominates cache-thrashing patterns.  The pass is
        untimed (callers measure from the start of :meth:`run`).
        """
        count = lines if lines is not None else self.hmc.array.num_sets * self.hmc.array.ways
        for i in range(count):
            addr = base + i * 64

            def owned(_result: DcohResult, a: int = addr) -> None:
                self.hmc.mark_modified(a)

            self.dcoh.read(addr, owned, exclusive=True)
        self.sim.run()
        self.hmc_hits = 0
        self.hmc_misses = 0
        self.hmc.array.reset_stats()

    def run(self, requests: List[RaoRequest]) -> RaoRunResult:
        """Process the stream with ``pe_count`` parallel PEs.

        Requests are dealt round-robin to PEs; each PE is serial, and
        line locking serializes racing PEs on the same address.
        """
        proc_ps = self.config.rao.request_proc_ps
        modify_ps = self.config.rao.modify_ps
        evict_ps = self.config.rao.dirty_evict_ps
        pe_ps = self.config.device.cycles_ps(self.config.rao.pe_access_cycles)
        start_ps = self.sim.now
        pending = list(requests)
        cursor = [0]

        def pe_loop() -> None:
            if cursor[0] >= len(pending):
                return
            request = pending[cursor[0]]
            cursor[0] += 1
            self.schedule(proc_ps // 2, do_reads, request, list(request.reads))

        def do_reads(request: RaoRequest, reads: List[int]) -> None:
            if reads:
                addr = reads.pop(0)

                def read_done(result: DcohResult) -> None:
                    self._count(result)
                    stall = pe_ps + (evict_ps if result.dirty_victim else 0)
                    self.schedule(stall, do_reads, request, reads)

                self.dcoh.read(addr, read_done, exclusive=False)
                return
            self.schedule(0, acquire, request)

        def acquire(request: RaoRequest) -> None:
            # Atomicity: another PE holding the line's lock serializes us.
            block = self.hmc.peek(request.target)
            if block is not None and block.locked:
                self.schedule(modify_ps + pe_ps, acquire, request)
                return

            def owned(result: DcohResult) -> None:
                self._count(result)
                # Lock the line against snoops for the RMW window.
                self.hmc.lock(request.target)
                stall = pe_ps + (evict_ps if result.dirty_victim else 0)
                if result.dirty_victim:
                    self.dirty_evict_stalls += 1
                self.schedule(stall + modify_ps, commit, request)

            self.dcoh.read(request.target, owned, exclusive=True)

        def commit(request: RaoRequest) -> None:
            current = self.values.read(request.target)
            new, _old = apply_atomic(request.op, current, request.operand)
            self.values.write(request.target, new)
            self.hmc.mark_modified(request.target)
            self.hmc.unlock(request.target)
            self.send_response(request)
            self.schedule(proc_ps - proc_ps // 2, pe_loop)

        for _ in range(min(self.pe_count, len(pending))):
            pe_loop()
        self.sim.run()
        return RaoRunResult(
            ops=len(pending),
            elapsed_ps=self.sim.now - start_ps,
            reads_issued=self.dcoh.reads,
            writes_issued=0,
        )

    def _count(self, result: DcohResult) -> None:
        if result.hmc_hit:
            self.hmc_hits += 1
        else:
            self.hmc_misses += 1


from repro.system.registry import register_component  # noqa: E402


@register_component("nic.cxl_rao")
def _build_cxl_rao_nic(builder, system, spec) -> CxlRaoNic:
    """Builder factory: RAO NIC on the host LLC; params: ``pe_count``."""
    llc = system.require_llc(f"{spec.name} (nic.cxl_rao)")
    pe_count = spec.params.get("pe_count")
    return CxlRaoNic(
        system.sim, system.config, llc, HostValues(),
        pe_count=None if pe_count is None else int(pe_count),
        name=spec.name,
    )
