"""Common NIC infrastructure: rings, MTTs, and the host value store.

The RAO designs in Fig. 9 share RX/TX buffers, a doorbell BAR, and a
memory translation table (MTT) that maps RDMA keys to host physical
addresses (with a small on-NIC MTT cache).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from dataclasses import dataclass

from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.queueing import BoundedQueue


@dataclass
class RaoRunResult:
    """Outcome of one RAO stream run on either NIC design."""

    ops: int
    elapsed_ps: int
    reads_issued: int
    writes_issued: int

    @property
    def throughput_mops(self) -> float:
        if self.elapsed_ps <= 0:
            raise ValueError("empty run")
        return self.ops / (self.elapsed_ps / 1e6)  # ops per microsecond


class HostValues:
    """Functional view of host memory for correctness checking.

    Timing flows through the cache/DMA models; values flow through
    here, so tests can assert that offloaded atomics produce exactly
    the same results a CPU would.
    """

    def __init__(self) -> None:
        self._values: Dict[int, int] = {}

    def read(self, addr: int) -> int:
        return self._values.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self._values[addr] = value

    def snapshot(self) -> Dict[int, int]:
        return dict(self._values)


class MemoryTranslationTable:
    """RDMA key -> host address registrations with an on-NIC cache."""

    def __init__(self, cache_entries: int = 128) -> None:
        self._table: Dict[int, Tuple[int, int]] = {}   # key -> (base, size)
        self._cache: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self.cache_entries = cache_entries
        self.hits = 0
        self.misses = 0

    def register(self, key: int, base: int, size: int) -> None:
        if key in self._table:
            raise ValueError(f"MTT key {key} already registered")
        if size <= 0:
            raise ValueError("MTT region size must be positive")
        self._table[key] = (base, size)

    def translate(self, key: int, offset: int) -> int:
        entry = self._cache.get(key)
        if entry is not None:
            self.hits += 1
            self._cache.move_to_end(key)
        else:
            self.misses += 1
            if key not in self._table:
                raise KeyError(f"MTT key {key} not registered")
            entry = self._table[key]
            if len(self._cache) >= self.cache_entries:
                self._cache.popitem(last=False)
            self._cache[key] = entry
        base, size = entry
        if not 0 <= offset < size:
            raise ValueError(f"offset {offset} outside MTT region of size {size}")
        return base + offset

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class NicBase(Component):
    """Shared NIC plumbing: RX/TX rings, doorbell, MTT, value store."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        values: Optional[HostValues] = None,
        rx_depth: int = 1024,
        tx_depth: int = 1024,
        rx_policy: str = "raise",
    ) -> None:
        super().__init__(sim, name)
        self.rx = BoundedQueue(rx_depth, f"{name}.rx", policy=rx_policy)
        self.tx = BoundedQueue(tx_depth, f"{name}.tx")
        self.mtt = MemoryTranslationTable()
        self.values = values if values is not None else HostValues()
        self.doorbells = 0
        self.responses_sent = 0

    def ring_doorbell(self) -> None:
        self.doorbells += 1

    def ingest(self, payload: object) -> bool:
        """Accept one arriving payload into the RX ring.

        Under the default ``rx_policy="raise"`` an overflowing ring
        fails loud (:class:`~repro.sim.queueing.QueueFullError`); with
        ``rx_policy="drop"`` overflow counts in ``rx.dropped`` and the
        payload is lost — degraded-mode availability accounting instead
        of a crash.  Returns True when the payload was enqueued.
        """
        return self.rx.push(payload)

    def send_response(self, payload: object) -> None:
        if self.tx.full:
            # The TX serializer drains the oldest entry onto the wire.
            self.tx.pop()
        self.tx.push(payload)
        self.responses_sent += 1
