"""Cohet / SimCXL reproduction.

A CXL-driven coherent heterogeneous computing framework (Cohet) plus a
full-system, hardware-calibrated, cycle-level simulator (SimCXL) —
reproducing "Cohet: A CXL-Driven Coherent Heterogeneous Computing
Framework with Hardware-Calibrated Full-System Simulation" (HPCA 2026).

Quickstart::

    from repro import CohetSystem, asic_system
    system = CohetSystem.build_default(asic_system())
    ptr = system.process.malloc(1 << 20)       # plain malloc
    queue = system.queue("xpu0")               # OpenCL-style queue

Custom systems::

    from repro import SystemBuilder, fpga_system
    system = SystemBuilder(fpga_system()).build("fanout-2")

Experiments::

    from repro.harness import run_experiment
    print(run_experiment("fig17").text)
"""

from repro.config import asic_system, fpga_system
from repro.core import CohetSystem, CohetProcess, CommandQueue, Kernel
from repro.sim import Simulator
from repro.system import SystemBuilder, Topology

__version__ = "1.0.0"

__all__ = [
    "asic_system",
    "fpga_system",
    "CohetSystem",
    "CohetProcess",
    "CommandQueue",
    "Kernel",
    "Simulator",
    "SystemBuilder",
    "Topology",
    "__version__",
]
