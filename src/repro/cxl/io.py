"""CXL.io: configuration space, BAR sizing, enumeration, MMIO.

CXL.io is PCIe-equivalent: at boot the BIOS walks config space, sizes
each BAR by the write-all-ones protocol, assigns physical windows, and
writes the base addresses back.  A kernel driver later mmaps the BAR
window so the CPU can ring doorbells via MMIO (§IV-B.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mem.address import AddressRange


@dataclass
class BarRegister:
    """One base address register."""

    index: int
    size: int
    base: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0 or self.size & (self.size - 1):
            raise ValueError(f"BAR size must be a power of two, got {self.size}")

    @property
    def size_mask(self) -> int:
        """Value read back after writing all-ones (lower bits clamped)."""
        return (~(self.size - 1)) & 0xFFFF_FFFF_FFFF_FFFF

    @property
    def mapped(self) -> bool:
        return self.base is not None

    def window(self) -> AddressRange:
        if self.base is None:
            raise RuntimeError(f"BAR{self.index} not mapped")
        return AddressRange(self.base, self.base + self.size, f"BAR{self.index}")


class ConfigSpace:
    """A device's PCI/CXL configuration space."""

    VENDOR_CXL = 0x1E98  # CXL consortium vendor id used for our models

    def __init__(
        self,
        vendor_id: int,
        device_id: int,
        device_type: int,
        bars: List[BarRegister],
    ) -> None:
        self.vendor_id = vendor_id
        self.device_id = device_id
        self.device_type = device_type  # 1, 2 or 3
        self.bars = {bar.index: bar for bar in bars}
        self._sizing: Dict[int, bool] = {}

    def read(self, register: str, index: int = 0) -> int:
        if register == "vendor_id":
            return self.vendor_id
        if register == "device_id":
            return self.device_id
        if register == "device_type":
            return self.device_type
        if register == "bar":
            bar = self.bars[index]
            if self._sizing.get(index):
                self._sizing[index] = False
                return bar.size_mask
            return bar.base if bar.base is not None else 0
        raise KeyError(f"unknown config register {register!r}")

    def write(self, register: str, value: int, index: int = 0) -> None:
        if register == "bar":
            bar = self.bars[index]
            if value == 0xFFFF_FFFF_FFFF_FFFF:
                self._sizing[index] = True
            else:
                if value % bar.size:
                    raise ValueError(
                        f"BAR{index} base {value:#x} not aligned to size {bar.size:#x}"
                    )
                bar.base = value
            return
        raise KeyError(f"unknown or read-only config register {register!r}")


@dataclass
class EnumeratedDevice:
    """Result of BIOS enumeration for one device."""

    bus: int
    slot: int
    config: ConfigSpace
    bar_windows: Dict[int, AddressRange] = field(default_factory=dict)


def enumerate_devices(
    devices: List[Tuple[int, int, ConfigSpace]],
    mmio_base: int = 0xC000_0000_0000,
) -> List[EnumeratedDevice]:
    """BIOS walk: size every BAR and assign MMIO windows.

    ``devices`` is a list of ``(bus, slot, config_space)``.  Windows are
    packed upward from ``mmio_base`` with natural alignment.
    """
    cursor = mmio_base
    enumerated = []
    for bus, slot, config in devices:
        if config.read("vendor_id") == 0xFFFF:
            continue  # empty slot
        entry = EnumeratedDevice(bus, slot, config)
        for index in sorted(config.bars):
            # Write all-ones, read back the size mask, decode the size.
            config.write("bar", 0xFFFF_FFFF_FFFF_FFFF, index=index)
            mask = config.read("bar", index=index)
            size = (~mask & 0xFFFF_FFFF_FFFF_FFFF) + 1
            base = (cursor + size - 1) // size * size  # natural alignment
            config.write("bar", base, index=index)
            cursor = base + size
            entry.bar_windows[index] = config.bars[index].window()
        enumerated.append(entry)
    return enumerated


class CxlIoPort:
    """The /dev/cxl_acc surface: open/mmap/doorbell over CXL.io."""

    def __init__(self, enumerated: EnumeratedDevice) -> None:
        self.enumerated = enumerated
        self._mapped: Dict[int, AddressRange] = {}
        self.doorbell_rings = 0

    def mmap(self, bar_index: int) -> AddressRange:
        window = self.enumerated.bar_windows[bar_index]
        self._mapped[bar_index] = window
        return window

    def is_mapped(self, addr: int) -> bool:
        return any(window.contains(addr) for window in self._mapped.values())

    def ring_doorbell(self) -> None:
        self.doorbell_rings += 1
