"""CXL switch and fabric models (the §VIII extension toward CXL 3.x).

A :class:`CxlSwitch` connects child nodes (hosts/devices) through
upstream/downstream ports, adding a per-hop traversal cost.  A
:class:`SwitchFabric` composes switches into a tree and answers routing
queries (hop count, latency) between any two endpoints — the substrate
for multi-node supernodes and for the hierarchical coherence protocol
in :mod:`repro.cache.hierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel.fabric import FabricManager


class RoutingError(LookupError):
    pass


@dataclass
class SwitchPort:
    name: str
    endpoint: Optional[str] = None     # leaf attached here (None = inter-switch)
    peer_switch: Optional[str] = None


class CxlSwitch:
    """One switch: ports plus a traversal latency."""

    def __init__(self, name: str, traversal_ps: int = 70_000, ports: int = 8) -> None:
        if ports < 2:
            raise ValueError("a switch needs at least two ports")
        self.name = name
        self.traversal_ps = traversal_ps
        self.max_ports = ports
        self.ports: List[SwitchPort] = []
        self.fabric_manager = FabricManager(name=f"{name}.fm")
        self.packets_routed = 0

    def attach_endpoint(self, endpoint: str) -> SwitchPort:
        port = self._new_port()
        port.endpoint = endpoint
        return port

    def attach_switch(self, other: "CxlSwitch") -> None:
        mine = self._new_port()
        theirs = other._new_port()
        mine.peer_switch = other.name
        theirs.peer_switch = self.name

    def _new_port(self) -> SwitchPort:
        if len(self.ports) >= self.max_ports:
            raise RoutingError(f"{self.name}: out of ports")
        port = SwitchPort(f"{self.name}.p{len(self.ports)}")
        self.ports.append(port)
        return port

    @property
    def endpoints(self) -> List[str]:
        return [p.endpoint for p in self.ports if p.endpoint is not None]

    @property
    def neighbors(self) -> List[str]:
        return [p.peer_switch for p in self.ports if p.peer_switch is not None]


class SwitchFabric:
    """A tree/mesh of CXL switches with shortest-path routing."""

    def __init__(self) -> None:
        self._switches: Dict[str, CxlSwitch] = {}

    def add_switch(self, switch: CxlSwitch) -> CxlSwitch:
        if switch.name in self._switches:
            raise ValueError(f"switch {switch.name!r} already in fabric")
        self._switches[switch.name] = switch
        return switch

    def switch(self, name: str) -> CxlSwitch:
        return self._switches[name]

    def _home_of(self, endpoint: str) -> str:
        for name, switch in self._switches.items():
            if endpoint in switch.endpoints:
                return name
        raise RoutingError(f"endpoint {endpoint!r} not attached to any switch")

    def route(self, src: str, dst: str) -> List[str]:
        """Switch names traversed from ``src`` to ``dst`` (BFS)."""
        start = self._home_of(src)
        goal = self._home_of(dst)
        if start == goal:
            return [start]
        frontier = [(start, [start])]
        seen = {start}
        while frontier:
            current, path = frontier.pop(0)
            for neighbor in self._switches[current].neighbors:
                if neighbor in seen:
                    continue
                next_path = path + [neighbor]
                if neighbor == goal:
                    return next_path
                seen.add(neighbor)
                frontier.append((neighbor, next_path))
        raise RoutingError(f"no path between {src!r} and {dst!r}")

    def latency_ps(self, src: str, dst: str) -> int:
        """One-way fabric latency: sum of switch traversals on the path."""
        path = self.route(src, dst)
        for name in path:
            self._switches[name].packets_routed += 1
        return sum(self._switches[name].traversal_ps for name in path)

    def hop_count(self, src: str, dst: str) -> int:
        return len(self.route(src, dst))

    @property
    def switches(self) -> List[str]:
        return sorted(self._switches)
