"""CXL device types.

Type-1: CXL.io + CXL.cache (e.g. a SmartNIC without device memory).
Type-2: all three sub-protocols (accelerator with device memory).
Type-3: CXL.io + CXL.mem (memory expander).

Each device assembles its protocol blocks (config space, HMC + DCOH,
HDM window) against a host attachment: the shared LLC and the memory
interface.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cache.hmc import HostMemoryCache
from repro.cache.llc import SharedLLC
from repro.config.system import DeviceProfile, HostParams
from repro.cxl.dcoh import Dcoh
from repro.cxl.io import BarRegister, ConfigSpace
from repro.cxl.mem import CxlMemPath
from repro.interconnect.flexbus import FlexBus
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.mem.interface import MemoryInterface
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.system.registry import register_component


class DeviceType(enum.IntEnum):
    TYPE1 = 1
    TYPE2 = 2
    TYPE3 = 3


class CxlDevice(Component):
    """Base class: every CXL device has CXL.io (config space + BARs)."""

    DEVICE_ID = 0x0C00

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        device_type: DeviceType,
        name: str,
        bar_size: int = 1 << 20,
    ) -> None:
        super().__init__(sim, name)
        self.profile = profile
        self.device_type = device_type
        self.config_space = ConfigSpace(
            vendor_id=ConfigSpace.VENDOR_CXL,
            device_id=self.DEVICE_ID + int(device_type),
            device_type=int(device_type),
            bars=[BarRegister(0, bar_size)],
        )
        self.flexbus = FlexBus(sim, profile, name=f"{name}.flexbus")

    @property
    def supports_cache(self) -> bool:
        return self.device_type in (DeviceType.TYPE1, DeviceType.TYPE2)

    @property
    def supports_mem(self) -> bool:
        return self.device_type in (DeviceType.TYPE2, DeviceType.TYPE3)


class Type1Device(CxlDevice):
    """CXL.io + CXL.cache accelerator (no device memory)."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        llc: SharedLLC,
        name: str = "type1",
    ) -> None:
        super().__init__(sim, profile, DeviceType.TYPE1, name)
        self.hmc = HostMemoryCache(sim, profile, name=f"{name}.hmc")
        self.dcoh = Dcoh(sim, profile, self.hmc, self.flexbus, llc, name=f"{name}.dcoh")


class Type2Device(CxlDevice):
    """Full accelerator: CXL.io + CXL.cache + CXL.mem."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        host: HostParams,
        llc: SharedLLC,
        memif: MemoryInterface,
        hdm: AddressRange,
        name: str = "type2",
        hdm_controller: Optional[MemoryController] = None,
    ) -> None:
        super().__init__(sim, profile, DeviceType.TYPE2, name)
        self.hmc = HostMemoryCache(sim, profile, name=f"{name}.hmc")
        self.dcoh = Dcoh(sim, profile, self.hmc, self.flexbus, llc, name=f"{name}.dcoh")
        self.hdm = hdm
        self.hdm_controller = hdm_controller or MemoryController(host.dram, channels=1)
        memif.attach(name, hdm, self.hdm_controller)
        self.mem_path = CxlMemPath(
            sim, host, profile, self.flexbus, hdm, self.hdm_controller,
            name=f"{name}.cxl.mem",
        )


@register_component("cxl.type1")
def _build_type1(builder, system, spec) -> Type1Device:
    """Builder factory: CXL.cache accelerator on the host LLC."""
    llc = system.require_llc(f"{spec.name} (cxl.type1)")
    return Type1Device(system.sim, system.config.device, llc, name=spec.name)


@register_component("cxl.type2")
def _build_type2(builder, system, spec) -> Type2Device:
    """Builder factory: full accelerator; params: ``hdm_bytes``."""
    llc = system.require_llc(f"{spec.name} (cxl.type2)")
    hdm = builder.alloc_hdm(spec.name, int(spec.params.get("hdm_bytes", 0)))
    return Type2Device(
        system.sim, system.config.device, system.config.host, llc,
        system.memif, hdm, name=spec.name,
    )


class Type3Device(CxlDevice):
    """Memory expander: CXL.io + CXL.mem only (no HMC/DCOH)."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        host: HostParams,
        memif: MemoryInterface,
        hdm: AddressRange,
        name: str = "expander",
        hdm_controller: Optional[MemoryController] = None,
    ) -> None:
        super().__init__(sim, profile, DeviceType.TYPE3, name)
        self.hdm = hdm
        self.hdm_controller = hdm_controller or MemoryController(host.dram, channels=1)
        memif.attach(name, hdm, self.hdm_controller)
        self.mem_path = CxlMemPath(
            sim, host, profile, self.flexbus, hdm, self.hdm_controller,
            name=f"{name}.cxl.mem",
        )


@register_component("cxl.type3")
def _build_type3(builder, system, spec) -> Type3Device:
    """Builder factory: memory expander; params: ``hdm_bytes``."""
    system.require_llc(f"{spec.name} (cxl.type3)")  # host complex (memif)
    hdm = builder.alloc_hdm(spec.name, int(spec.params.get("hdm_bytes", 0)))
    return Type3Device(
        system.sim, system.config.device, system.config.host,
        system.memif, hdm, name=spec.name,
    )
