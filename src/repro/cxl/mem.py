"""CXL.mem: host load/store access to device-attached memory (HDM).

The memory interface routes LLC-miss addresses that fall in the
device's HDM window across the Flex Bus to the device memory
controller.  From software's point of view the HDM range is just
another (CPU-less) NUMA node.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config.system import DeviceProfile, HostParams
from repro.interconnect.flexbus import FlexBus, FlexBusChannel
from repro.mem.address import AddressRange
from repro.mem.controller import MemoryController
from repro.sim.component import Component
from repro.sim.engine import Simulator


class CxlMemPath(Component):
    """H2D access path to one device's HDM region."""

    def __init__(
        self,
        sim: Simulator,
        host: HostParams,
        profile: DeviceProfile,
        flexbus: FlexBus,
        hdm: AddressRange,
        controller: MemoryController,
        name: str = "cxl.mem",
    ) -> None:
        super().__init__(sim, name)
        self.host = host
        self.profile = profile
        self.flexbus = flexbus
        self.hdm = hdm
        self.controller = controller
        self.reads = 0
        self.writes = 0

    def access_ps(self, addr: int, write: bool = False) -> int:
        """Round-trip latency of one H2D cacheline access."""
        if not self.hdm.contains(addr):
            raise ValueError(f"address {addr:#x} outside HDM window {self.hdm}")
        if write:
            self.writes += 1
        else:
            self.reads += 1
        self.flexbus.traffic[FlexBusChannel.MEM] += 1
        inner_start = self.sim.now + self.flexbus.oneway_ps
        device_mem = self.controller.access(addr, inner_start)
        return 2 * self.flexbus.oneway_ps + device_mem.latency_ps

    def access(self, addr: int, on_done: Callable[[], None], write: bool = False) -> None:
        self.schedule(self.access_ps(addr, write=write), on_done)

    def construction_overhead(self) -> float:
        """Relative cost of building an object in HDM vs. host memory.

        The paper measures at most 8% extra for CXL.mem message
        construction versus host memory (§VI-E.2); derived here from
        the PHY round trip amortized over write-combined streaming.
        """
        host_line_ps = self.host.dram.closed_access_ps
        hdm_line_ps = host_line_ps + 2 * self.flexbus.oneway_ps
        # Write-combining buffers hide most of the PHY round trip; only
        # one line per 64-entry drain window exposes it.
        exposed = host_line_ps + (hdm_line_ps - host_line_ps) / 64
        return exposed / host_line_ps
