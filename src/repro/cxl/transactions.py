"""CXL.cache transaction records shared between the DCOH and devices."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class D2HOpcode(enum.Enum):
    """Device-to-host request opcodes modeled from the CXL.cache spec."""

    RD_SHARED = "RdShared"
    RD_OWN = "RdOwn"
    RD_CURR = "RdCurr"
    ITOM_WR = "ItoMWr"
    DIRTY_EVICT = "DirtyEvict"
    CLEAN_EVICT = "CleanEvict"
    NC_PUSH = "NC-P"


@dataclass
class D2HRequest:
    """One in-flight device-to-host transaction."""

    opcode: D2HOpcode
    addr: int
    issued_ps: int
    completed_ps: Optional[int] = None

    @property
    def latency_ps(self) -> Optional[int]:
        if self.completed_ps is None:
            return None
        return self.completed_ps - self.issued_ps


@dataclass
class DcohResult:
    """Outcome of a DCOH read/write, delivered to the completion callback.

    ``hmc_hit``     — the line was serviced entirely in the device HMC.
    ``llc_hit``     — serviced by the host LLC (one PHY round trip).
    ``dirty_victim``— filling the line evicted a dirty HMC victim, which
                      costs a DirtyEvict writeback round (the caller
                      decides whether that sits on its critical path).
    """

    addr: int
    hmc_hit: bool
    llc_hit: bool
    dirty_victim: bool

    @property
    def mem_hit(self) -> bool:
        return not self.hmc_hit and not self.llc_hit
