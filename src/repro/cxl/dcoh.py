"""Device coherency engine (DCOH).

The DCOH fronts the HMC: device requests check the HMC first and, on a
miss, cross the Flex Bus to the host home agent (the shared LLC) using
the CXL.cache protocol.  All timing comes from the calibrated device
profile; the host side charges its own ingress/LLC/memory costs inside
:class:`repro.cache.llc.SharedLLC`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.block import MesiState
from repro.cache.hmc import HostMemoryCache
from repro.cache.llc import LlcOp, SharedLLC
from repro.config.system import DeviceProfile
from repro.cxl.transactions import DcohResult
from repro.interconnect.flexbus import FlexBus, FlexBusChannel
from repro.mem.address import line_base
from repro.sim.component import Component
from repro.sim.engine import Simulator


class Dcoh(Component):
    """Device coherency engine driving the HMC and the CXL.cache link."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        hmc: HostMemoryCache,
        flexbus: FlexBus,
        llc: SharedLLC,
        name: str = "DCOH",
    ) -> None:
        super().__init__(sim, name)
        self.profile = profile
        self.hmc = hmc
        self.flexbus = flexbus
        self.llc = llc
        llc.register_peer(name, hmc)
        self.reads = 0
        self.writes = 0
        self.nc_pushes = 0
        self.evictions_issued = 0

    # ------------------------------------------------------------------
    # D2H coherent read (load or read-for-ownership)
    # ------------------------------------------------------------------
    def read(
        self,
        addr: int,
        on_done: Callable[[DcohResult], None],
        exclusive: bool = False,
        extra_rt_ps: int = 0,
    ) -> None:
        """Coherently read ``addr``; ``on_done(result)`` fires at completion.

        ``extra_rt_ps`` adds NUMA routing distance (round trip) for
        targets on distant nodes.
        """
        self.reads += 1
        addr = line_base(addr)
        req_ps = self.profile.cycles_ps(self.profile.dcoh_request_cycles)
        self.sim.schedule_after(
            req_ps, self._tag_lookup, (addr, on_done, exclusive, extra_rt_ps)
        )

    def _tag_lookup(
        self,
        addr: int,
        on_done: Callable[[DcohResult], None],
        exclusive: bool,
        extra_rt_ps: int,
    ) -> None:
        start = self.hmc.service_start(self.sim.now)
        tag_done = start + self.hmc.tag_ps
        block = self.hmc.lookup(addr)
        usable = block is not None and (not exclusive or block.state.writable)
        if usable:
            data_done = tag_done + self.hmc.data_ps
            resp = self.profile.cycles_ps(self.profile.dcoh_response_cycles)
            result = DcohResult(addr, hmc_hit=True, llc_hit=False, dirty_victim=False)
            self.sim.schedule_after(data_done + resp - self.sim.now, on_done, (result,))
            return
        # Miss (or ownership upgrade): go to the host home agent.
        self.sim.schedule_after(
            tag_done - self.sim.now,
            self._to_host,
            (addr, on_done, exclusive, extra_rt_ps),
        )

    def _to_host(
        self,
        addr: int,
        on_done: Callable[[DcohResult], None],
        exclusive: bool,
        extra_rt_ps: int,
    ) -> None:
        op = LlcOp.RD_OWN if exclusive else LlcOp.RD_SHARED
        outbound_extra = extra_rt_ps // 2
        inbound_extra = extra_rt_ps - outbound_extra
        llc_was_hit_holder = [False]
        # index/tag computed once; the fill after the host round trip
        # reuses it.
        probe = self.hmc.array.index_tag(addr)

        def at_host() -> None:
            llc_was_hit_holder[0] = self.llc.holds(addr)
            self.llc.request(self.name, op, addr, host_done)

        def host_done() -> None:
            self.sim.schedule_after(
                self.flexbus.oneway_ps + inbound_extra, back_at_device
            )

        def back_at_device() -> None:
            fill_ps = self.profile.cycles_ps(
                self.profile.dcoh_fill_cycles + self.profile.hmc_fill_cycles
            )
            state = MesiState.EXCLUSIVE if exclusive else MesiState.SHARED
            _block, victim = self.hmc.fill(addr, state, probe=probe)
            dirty_victim = victim is not None and victim[1].dirty
            if dirty_victim:
                self.evictions_issued += 1
                # The writeback round itself runs off the critical path.
                self.llc.request(self.name, LlcOp.DIRTY_EVICT, victim[0], lambda: None)
            resp = self.profile.cycles_ps(self.profile.dcoh_response_cycles)
            result = DcohResult(
                addr,
                hmc_hit=False,
                llc_hit=llc_was_hit_holder[0],
                dirty_victim=dirty_victim,
            )
            self.sim.schedule_after(fill_ps + resp, on_done, (result,))

        self.flexbus.traffic[FlexBusChannel.CACHE] += 1
        self.sim.schedule_after(self.flexbus.oneway_ps + outbound_extra, at_host)

    # ------------------------------------------------------------------
    # D2H coherent write: read-for-ownership then silent M upgrade
    # ------------------------------------------------------------------
    def write(
        self,
        addr: int,
        on_done: Callable[[DcohResult], None],
        extra_rt_ps: int = 0,
    ) -> None:
        self.writes += 1
        addr = line_base(addr)

        def owned(result: DcohResult) -> None:
            # Between the RFO fill and this upgrade, a concurrent miss
            # from another stream can victimize the just-filled line —
            # the array doesn't pin in-flight lines the way MSHRs do.
            # Ownership was still granted, so re-install straight in M.
            if self.hmc.peek(addr) is None:
                _block, victim = self.hmc.fill(addr, MesiState.MODIFIED)
                if victim is not None and victim[1].dirty:
                    self.evictions_issued += 1
                    self.llc.request(
                        self.name, LlcOp.DIRTY_EVICT, victim[0], lambda: None
                    )
            else:
                self.hmc.mark_modified(addr)
            on_done(result)

        self.read(addr, owned, exclusive=True, extra_rt_ps=extra_rt_ps)

    # ------------------------------------------------------------------
    # NC-P: push a line into the host LLC, invalidating the HMC copy
    # ------------------------------------------------------------------
    def nc_push(self, addr: int, on_done: Optional[Callable[[], None]] = None) -> None:
        self.nc_pushes += 1
        addr = line_base(addr)
        self.hmc.invalidate(addr)

        def at_host() -> None:
            self.llc.request(self.name, LlcOp.NC_PUSH, addr, pushed)

        def pushed() -> None:
            if on_done is not None:
                on_done()

        req_ps = self.profile.cycles_ps(self.profile.dcoh_request_cycles)
        self.flexbus.traffic[FlexBusChannel.CACHE] += 1
        self.schedule(req_ps + self.flexbus.oneway_ps, at_host)

    # ------------------------------------------------------------------
    # Explicit dirty eviction (Fig. 7 phase 3)
    # ------------------------------------------------------------------
    def evict(self, addr: int, on_done: Callable[[], None]) -> None:
        addr = line_base(addr)
        block = self.hmc.peek(addr)
        if block is None:
            self.schedule(0, on_done)
            return
        op = LlcOp.DIRTY_EVICT if block.dirty else LlcOp.CLEAN_EVICT
        self.evictions_issued += 1

        def at_host() -> None:
            self.llc.request(self.name, op, addr, host_done)

        def host_done() -> None:
            self.schedule(self.flexbus.oneway_ps, back)

        def back() -> None:
            self.hmc.invalidate(addr)
            on_done()

        req_ps = self.profile.cycles_ps(self.profile.dcoh_request_cycles)
        self.flexbus.traffic[FlexBusChannel.CACHE] += 1
        self.schedule(req_ps + self.flexbus.oneway_ps, at_host)
