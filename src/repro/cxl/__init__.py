"""CXL sub-protocol implementations and device types."""

from repro.cxl.transactions import D2HRequest, DcohResult
from repro.cxl.dcoh import Dcoh
from repro.cxl.io import BarRegister, ConfigSpace, CxlIoPort, enumerate_devices
from repro.cxl.mem import CxlMemPath
from repro.cxl.device import CxlDevice, DeviceType, Type1Device, Type2Device, Type3Device
from repro.cxl.switch import CxlSwitch, SwitchFabric

__all__ = [
    "D2HRequest",
    "DcohResult",
    "Dcoh",
    "BarRegister",
    "ConfigSpace",
    "CxlIoPort",
    "enumerate_devices",
    "CxlMemPath",
    "CxlDevice",
    "DeviceType",
    "Type1Device",
    "Type2Device",
    "Type3Device",
    "CxlSwitch",
    "SwitchFabric",
]
