"""The per-process unified page table shared by CPUs and XPUs.

Cohet's central OS structure (§III-C): one page table serves every
compute unit.  Entries may exist without a physical frame (allocated by
``malloc`` before first touch), which is what enables overcommit; the
fault path assigns frames on first access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

PAGE_SIZE = 4096


def vpn_of(vaddr: int) -> int:
    return vaddr // PAGE_SIZE


def page_offset(vaddr: int) -> int:
    return vaddr % PAGE_SIZE


@dataclass
class PageTableEntry:
    """One PTE.  ``pfn is None`` means allocated-but-untouched."""

    vpn: int
    pfn: Optional[int] = None
    node: Optional[int] = None
    writable: bool = True
    dirty: bool = False
    accessed: bool = False
    blocked: bool = False   # device access blocked during migration

    @property
    def present(self) -> bool:
        return self.pfn is not None

    def physical(self, vaddr: int) -> int:
        if self.pfn is None:
            raise PageFault(vaddr)
        return self.pfn * PAGE_SIZE + page_offset(vaddr)


class PageFault(Exception):
    """Raised on access to a page without a frame; HMM services it."""

    def __init__(self, vaddr: int) -> None:
        super().__init__(f"page fault at {vaddr:#x}")
        self.vaddr = vaddr


class UnifiedPageTable:
    """Single page table for one process, shared by CPU and XPU threads."""

    def __init__(self, pid: int = 0) -> None:
        self.pid = pid
        self._entries: Dict[int, PageTableEntry] = {}
        self.generation = 0
        self._invalidation_listeners: List[Callable[[int], None]] = []
        self.faults = 0

    def __len__(self) -> int:
        return len(self._entries)

    def on_invalidate(self, listener: Callable[[int], None]) -> None:
        """Register a VPN-invalidation listener (device ATCs via IOMMU)."""
        self._invalidation_listeners.append(listener)

    def map(self, vaddr: int, writable: bool = True) -> PageTableEntry:
        """Create a frame-less entry (malloc semantics)."""
        vpn = vpn_of(vaddr)
        if vpn in self._entries:
            raise ValueError(f"page {vpn:#x} already mapped")
        entry = PageTableEntry(vpn=vpn, writable=writable)
        self._entries[vpn] = entry
        return entry

    def entry(self, vaddr: int) -> PageTableEntry:
        vpn = vpn_of(vaddr)
        try:
            return self._entries[vpn]
        except KeyError:
            raise PageFault(vaddr) from None

    def lookup(self, vaddr: int) -> Optional[PageTableEntry]:
        return self._entries.get(vpn_of(vaddr))

    def translate(self, vaddr: int, write: bool = False) -> int:
        """Resolve a virtual address; raises :class:`PageFault` when the
        page is absent, frame-less, or blocked for migration."""
        entry = self.entry(vaddr)
        if entry.blocked or not entry.present:
            self.faults += 1
            raise PageFault(vaddr)
        if write and not entry.writable:
            raise PermissionError(f"write to read-only page {vaddr:#x}")
        entry.accessed = True
        if write:
            entry.dirty = True
        return entry.physical(vaddr)

    def assign_frame(self, vaddr: int, pfn: int, node: int) -> PageTableEntry:
        entry = self.entry(vaddr)
        if entry.present:
            raise ValueError(f"page {entry.vpn:#x} already has frame {entry.pfn}")
        entry.pfn = pfn
        entry.node = node
        return entry

    def remap(self, vaddr: int, pfn: int, node: int) -> PageTableEntry:
        """Point the PTE at a new frame (page migration) and bump the
        generation so stale cached translations are detectable."""
        entry = self.entry(vaddr)
        entry.pfn = pfn
        entry.node = node
        self.generation += 1
        self._notify(entry.vpn)
        return entry

    def unmap(self, vaddr: int) -> PageTableEntry:
        vpn = vpn_of(vaddr)
        entry = self._entries.pop(vpn, None)
        if entry is None:
            raise PageFault(vaddr)
        self.generation += 1
        self._notify(vpn)
        return entry

    def block(self, vaddr: int) -> None:
        self.entry(vaddr).blocked = True

    def unblock(self, vaddr: int) -> None:
        self.entry(vaddr).blocked = False

    def _notify(self, vpn: int) -> None:
        for listener in self._invalidation_listeners:
            listener(vpn)

    def entries(self) -> Iterator[PageTableEntry]:
        return iter(self._entries.values())

    def resident_bytes(self) -> int:
        return sum(PAGE_SIZE for e in self._entries.values() if e.present)

    def mapped_bytes(self) -> int:
        return len(self._entries) * PAGE_SIZE
