"""OS-level models: unified page table, HMM, NUMA, ATS/IOMMU, drivers."""

from repro.kernel.page_table import PAGE_SIZE, PageTableEntry, UnifiedPageTable
from repro.kernel.numa import NodeKind, NumaNode, NumaRegistry, numa_init
from repro.kernel.ats import Atc, Iommu
from repro.kernel.hmm import Hmm, MigrationError
from repro.kernel.driver import XpuDriver
from repro.kernel.fabric import FabricManager, ResourceError
from repro.kernel.migration import AdaptiveMigrator, MigrationDecision

__all__ = [
    "PAGE_SIZE",
    "PageTableEntry",
    "UnifiedPageTable",
    "NodeKind",
    "NumaNode",
    "NumaRegistry",
    "numa_init",
    "Atc",
    "Iommu",
    "Hmm",
    "MigrationError",
    "XpuDriver",
    "FabricManager",
    "ResourceError",
    "AdaptiveMigrator",
    "MigrationDecision",
]
