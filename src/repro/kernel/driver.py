"""The XPU device driver.

At boot the driver probes the device over CXL.io (config space), learns
its memory size, registers an instance with HMM (including the ATS
callbacks), and creates the ``/dev/cxl_acc`` surface that user space
opens and mmaps (§IV-B.1).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.cxl.device import CxlDevice, DeviceType
from repro.cxl.io import CxlIoPort, EnumeratedDevice
from repro.kernel.ats import Atc, Iommu
from repro.kernel.hmm import Hmm


class XpuDriver:
    """Kernel driver binding one CXL device into Cohet."""

    def __init__(
        self,
        device: CxlDevice,
        enumerated: EnumeratedDevice,
        hmm: Hmm,
        memory_node: Optional[int] = None,
        atc_entries: int = 64,
    ) -> None:
        self.device = device
        self.enumerated = enumerated
        self.hmm = hmm
        self.memory_node = memory_node
        self.io_port = CxlIoPort(enumerated)
        self.blocked_vpns: Set[int] = set()
        self.atc: Optional[Atc] = None
        if device.supports_cache:
            self.atc = Atc(f"{device.name}.atc", hmm.iommu, entries=atc_entries)
        self.registration = hmm.register_device(
            device.name,
            memory_node,
            block_access=self._block_access,
            resume_access=self._resume_access,
        )
        self._char_dev_open = False

    # ------------------------------------------------------------------
    # Probe / user-space surface
    # ------------------------------------------------------------------
    def probe(self) -> dict:
        """Read device identity and capabilities over CXL.io."""
        cfg = self.device.config_space
        return {
            "vendor_id": cfg.read("vendor_id"),
            "device_id": cfg.read("device_id"),
            "device_type": DeviceType(cfg.read("device_type")),
            "supports_cache": self.device.supports_cache,
            "supports_mem": self.device.supports_mem,
        }

    def open(self) -> "XpuDriver":
        """open(/dev/cxl_acc)"""
        self._char_dev_open = True
        return self

    def mmap_bar(self, index: int = 0):
        if not self._char_dev_open:
            raise RuntimeError("device node not open")
        return self.io_port.mmap(index)

    def release(self) -> None:
        self._char_dev_open = False

    # ------------------------------------------------------------------
    # HMM callbacks (ATS invalidation protocol)
    # ------------------------------------------------------------------
    def _block_access(self, vpn: int) -> None:
        self.blocked_vpns.add(vpn)

    def _resume_access(self, vpn: int) -> None:
        self.blocked_vpns.discard(vpn)

    def device_may_access(self, vpn: int) -> bool:
        return vpn not in self.blocked_vpns
