"""NUMA nodes and the modified ``numa_init`` routine.

The kernel recognizes CPUs and XPUs as separate NUMA nodes (§III-C.2):
host DRAM binds to CPU nodes, device HDM becomes CPU-less (or
XPU-bound) nodes, and every node's frames come from one physical range
of the unified memory pool.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.kernel.page_table import PAGE_SIZE
from repro.mem.address import AddressRange


class NodeKind(enum.Enum):
    CPU = "cpu"
    XPU = "xpu"
    MEMORY_ONLY = "memory"   # e.g. a type-3 expander: CPU-less node


class OutOfMemory(RuntimeError):
    pass


class NumaNode:
    """One NUMA node: compute binding plus a physical frame allocator."""

    def __init__(
        self,
        node_id: int,
        kind: NodeKind,
        region: AddressRange,
        name: str = "",
    ) -> None:
        self.node_id = node_id
        self.kind = kind
        self.region = region
        self.name = name or f"node{node_id}"
        self._next_frame = region.start // PAGE_SIZE
        self._limit_frame = region.end // PAGE_SIZE
        self._free: List[int] = []
        self.allocated_frames = 0

    @property
    def total_frames(self) -> int:
        return self._limit_frame - self.region.start // PAGE_SIZE

    @property
    def free_frames(self) -> int:
        return (self._limit_frame - self._next_frame) + len(self._free)

    def alloc_frame(self) -> int:
        if self._free:
            frame = self._free.pop()
        elif self._next_frame < self._limit_frame:
            frame = self._next_frame
            self._next_frame += 1
        else:
            raise OutOfMemory(f"{self.name}: out of frames")
        self.allocated_frames += 1
        return frame

    def free_frame(self, pfn: int) -> None:
        base = self.region.start // PAGE_SIZE
        if not base <= pfn < self._limit_frame:
            raise ValueError(f"{self.name}: frame {pfn} not from this node")
        self._free.append(pfn)
        self.allocated_frames -= 1

    def owns_frame(self, pfn: int) -> bool:
        return self.region.contains(pfn * PAGE_SIZE)


class NumaRegistry:
    """All NUMA nodes of one host, with allocation policies."""

    def __init__(self) -> None:
        self._nodes: Dict[int, NumaNode] = {}
        self._rr_cursor = 0

    def add(self, node: NumaNode) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> NumaNode:
        return self._nodes[node_id]

    @property
    def nodes(self) -> Sequence[NumaNode]:
        return [self._nodes[k] for k in sorted(self._nodes)]

    def by_kind(self, kind: NodeKind) -> List[NumaNode]:
        return [n for n in self.nodes if n.kind is kind]

    def alloc_on(self, node_id: int) -> int:
        return self._nodes[node_id].alloc_frame()

    def alloc_local(self, preferred: int) -> int:
        """Local-first allocation with fallback to any node with space."""
        order = [preferred] + [n.node_id for n in self.nodes if n.node_id != preferred]
        for node_id in order:
            node = self._nodes[node_id]
            if node.free_frames > 0:
                return node.alloc_frame()
        raise OutOfMemory("all NUMA nodes exhausted")

    def alloc_interleaved(self) -> int:
        """Round-robin page interleaving across all nodes."""
        nodes = self.nodes
        for _ in range(len(nodes)):
            node = nodes[self._rr_cursor % len(nodes)]
            self._rr_cursor += 1
            if node.free_frames > 0:
                return node.alloc_frame()
        raise OutOfMemory("all NUMA nodes exhausted")

    def node_of_frame(self, pfn: int) -> NumaNode:
        for node in self.nodes:
            if node.owns_frame(pfn):
                return node
        raise LookupError(f"frame {pfn} belongs to no node")


def numa_init(
    host_regions: Sequence[AddressRange],
    device_regions: Sequence[AddressRange] = (),
    expander_regions: Sequence[AddressRange] = (),
) -> NumaRegistry:
    """The modified kernel ``numa_init``: inspect available memory and
    bind each range to a CPU, XPU, or CPU-less node by its type."""
    registry = NumaRegistry()
    node_id = 0
    for region in host_regions:
        registry.add(NumaNode(node_id, NodeKind.CPU, region, f"cpu-node{node_id}"))
        node_id += 1
    for region in device_regions:
        registry.add(NumaNode(node_id, NodeKind.XPU, region, f"xpu-node{node_id}"))
        node_id += 1
    for region in expander_regions:
        registry.add(
            NumaNode(node_id, NodeKind.MEMORY_ONLY, region, f"cxl-node{node_id}")
        )
        node_id += 1
    return registry
