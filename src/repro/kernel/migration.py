"""Adaptive page migration (the optimization §III-C.2 leaves open).

Tracks per-page access counts by accessor NUMA node and migrates a page
to the node that dominates its traffic once (a) enough samples have
accumulated and (b) the remote share crosses a threshold.  Migration
runs through HMM's full ATS handshake (block device -> remap -> IOMMU
invalidate -> resume), so every cost of moving a page is the real one.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel.hmm import Hmm, MigrationError
from repro.kernel.numa import OutOfMemory
from repro.kernel.page_table import PAGE_SIZE, vpn_of


@dataclass
class MigrationDecision:
    vpn: int
    from_node: int
    to_node: int
    samples: int
    remote_share: float


class AdaptiveMigrator:
    """Hot-page tracking + threshold migration policy."""

    def __init__(
        self,
        hmm: Hmm,
        min_samples: int = 16,
        remote_share_threshold: float = 0.75,
        cooldown_samples: int = 32,
    ) -> None:
        if not 0.5 < remote_share_threshold <= 1.0:
            raise ValueError("remote share threshold must be in (0.5, 1.0]")
        self.hmm = hmm
        self.min_samples = min_samples
        self.remote_share_threshold = remote_share_threshold
        self.cooldown_samples = cooldown_samples
        self._counts: Dict[int, Counter] = defaultdict(Counter)
        self._cooldown: Dict[int, int] = {}
        self.decisions: List[MigrationDecision] = []
        self.migrations_performed = 0
        self.migrations_denied = 0

    # ------------------------------------------------------------------
    # Observation (call on every access; cheap)
    # ------------------------------------------------------------------
    def record_access(self, vaddr: int, accessor_node: int) -> Optional[MigrationDecision]:
        """Record one access; may trigger a migration synchronously."""
        vpn = vpn_of(vaddr)
        counts = self._counts[vpn]
        counts[accessor_node] += 1
        remaining_cooldown = self._cooldown.get(vpn, 0)
        if remaining_cooldown:
            self._cooldown[vpn] = remaining_cooldown - 1
            return None
        total = sum(counts.values())
        if total < self.min_samples:
            return None
        return self._maybe_migrate(vaddr, vpn, counts, total)

    def _maybe_migrate(
        self, vaddr: int, vpn: int, counts: Counter, total: int
    ) -> Optional[MigrationDecision]:
        entry = self.hmm.page_table.lookup(vaddr)
        if entry is None or not entry.present:
            return None
        home = entry.node
        hottest_node, hottest_count = counts.most_common(1)[0]
        if hottest_node == home:
            return None
        share = hottest_count / total
        if share < self.remote_share_threshold:
            return None
        decision = MigrationDecision(vpn, home, hottest_node, total, share)
        try:
            self.hmm.migrate_page(vaddr, hottest_node)
        except (MigrationError, OutOfMemory):
            self.migrations_denied += 1
            return None
        self.migrations_performed += 1
        self.decisions.append(decision)
        # Restart the window so ping-pong requires sustained evidence.
        self._counts[vpn] = Counter()
        self._cooldown[vpn] = self.cooldown_samples
        return decision

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def access_profile(self, vaddr: int) -> Dict[int, int]:
        return dict(self._counts[vpn_of(vaddr)])

    def hot_pages(self, top: int = 10) -> List[Tuple[int, int]]:
        """``(vpn, total_accesses)`` of the most-touched pages."""
        totals = [(vpn, sum(c.values())) for vpn, c in self._counts.items()]
        totals.sort(key=lambda item: item[1], reverse=True)
        return totals[:top]
