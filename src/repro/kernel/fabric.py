"""CXL fabric manager: the distributed resource scheduler in the switch.

Hosts request fabric-attached memory and XPUs from the pool; the
manager binds them until released (§III-C.1).  This models the
disaggregation story: compute and memory scale independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.mem.address import AddressRange


class ResourceError(RuntimeError):
    pass


@dataclass
class XpuResource:
    name: str
    profile_name: str
    bound_to: Optional[str] = None


@dataclass
class MemoryResource:
    name: str
    region: AddressRange
    bound_to: Optional[str] = None


class FabricManager:
    """Resource scheduler living in a CXL switch."""

    def __init__(self, name: str = "fabric0") -> None:
        self.name = name
        self._xpus: Dict[str, XpuResource] = {}
        self._memory: Dict[str, MemoryResource] = {}
        self.allocations = 0
        self.releases = 0

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def add_xpu(self, name: str, profile_name: str) -> None:
        if name in self._xpus:
            raise ValueError(f"XPU {name!r} already in fabric")
        self._xpus[name] = XpuResource(name, profile_name)

    def add_memory(self, name: str, region: AddressRange) -> None:
        if name in self._memory:
            raise ValueError(f"memory {name!r} already in fabric")
        self._memory[name] = MemoryResource(name, region)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate_xpu(self, host: str, profile_name: Optional[str] = None) -> XpuResource:
        for xpu in self._xpus.values():
            if xpu.bound_to is None and (
                profile_name is None or xpu.profile_name == profile_name
            ):
                xpu.bound_to = host
                self.allocations += 1
                return xpu
        raise ResourceError(f"no free XPU (profile={profile_name!r}) in {self.name}")

    def allocate_memory(self, host: str, min_bytes: int) -> MemoryResource:
        for mem in self._memory.values():
            if mem.bound_to is None and mem.region.size >= min_bytes:
                mem.bound_to = host
                self.allocations += 1
                return mem
        raise ResourceError(f"no free memory >= {min_bytes} bytes in {self.name}")

    def release(self, resource_name: str) -> None:
        resource = self._xpus.get(resource_name) or self._memory.get(resource_name)
        if resource is None:
            raise ResourceError(f"unknown resource {resource_name!r}")
        if resource.bound_to is None:
            raise ResourceError(f"resource {resource_name!r} is not allocated")
        resource.bound_to = None
        self.releases += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def holdings(self, host: str) -> List[str]:
        names = [x.name for x in self._xpus.values() if x.bound_to == host]
        names += [m.name for m in self._memory.values() if m.bound_to == host]
        return sorted(names)

    @property
    def free_xpus(self) -> int:
        return sum(1 for x in self._xpus.values() if x.bound_to is None)

    @property
    def free_memory_bytes(self) -> int:
        return sum(m.region.size for m in self._memory.values() if m.bound_to is None)
