"""Address translation service: device ATC + host IOMMU.

When an XPU thread touches a virtual address it consults its
device-side address translation cache (ATC, the device TLB).  A miss
forwards the request to the host IOMMU, which walks the unified page
table and returns the mapping (§III-C.1).  Page-table updates flow the
other way: the IOMMU invalidates the matching ATC entries per the ATS
protocol.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.kernel.page_table import PAGE_SIZE, PageFault, UnifiedPageTable, vpn_of


class Iommu:
    """Host-side IOMMU: page-table walker plus ATC invalidation fan-out."""

    def __init__(self, page_table: UnifiedPageTable, walk_ps: int = 250_000) -> None:
        self.page_table = page_table
        self.walk_ps = walk_ps
        self._atcs: Dict[str, "Atc"] = {}
        self.walks = 0
        self.invalidations = 0
        page_table.on_invalidate(self._invalidate_vpn)

    def register_atc(self, atc: "Atc") -> None:
        if atc.name in self._atcs:
            raise ValueError(f"ATC {atc.name!r} already registered")
        self._atcs[atc.name] = atc

    def walk(self, vaddr: int, write: bool = False) -> Tuple[int, int]:
        """Walk the page table; returns ``(pfn, node)``.

        Raises :class:`PageFault` for frame-less pages so HMM can run
        the fault path first.
        """
        self.walks += 1
        self.page_table.translate(vaddr, write=write)
        entry = self.page_table.entry(vaddr)
        assert entry.pfn is not None and entry.node is not None
        return entry.pfn, entry.node

    def _invalidate_vpn(self, vpn: int) -> None:
        self.invalidations += 1
        for atc in self._atcs.values():
            atc.invalidate(vpn)


class Atc:
    """Device-side address translation cache (LRU)."""

    def __init__(self, name: str, iommu: Iommu, entries: int = 64) -> None:
        if entries <= 0:
            raise ValueError("ATC needs at least one entry")
        self.name = name
        self.iommu = iommu
        self.capacity = entries
        self._cache: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        iommu.register_atc(self)

    def translate(self, vaddr: int, write: bool = False) -> int:
        """Resolve ``vaddr`` to a physical address, filling on miss."""
        vpn = vpn_of(vaddr)
        cached = self._cache.get(vpn)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(vpn)
            pfn, _node = cached
            return pfn * PAGE_SIZE + vaddr % PAGE_SIZE
        self.misses += 1
        pfn, node = self.iommu.walk(vaddr, write=write)
        self._fill(vpn, pfn, node)
        return pfn * PAGE_SIZE + vaddr % PAGE_SIZE

    def node_of(self, vaddr: int) -> int:
        """NUMA node of the frame backing ``vaddr`` (translating first)."""
        vpn = vpn_of(vaddr)
        cached = self._cache.get(vpn)
        if cached is None:
            self.translate(vaddr)
            cached = self._cache[vpn]
        return cached[1]

    def _fill(self, vpn: int, pfn: int, node: int) -> None:
        if len(self._cache) >= self.capacity:
            self._cache.popitem(last=False)
        self._cache[vpn] = (pfn, node)

    def invalidate(self, vpn: int) -> None:
        if self._cache.pop(vpn, None) is not None:
            self.invalidated += 1

    def invalidate_all(self) -> None:
        self.invalidated += len(self._cache)
        self._cache.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, vaddr: int) -> bool:
        return vpn_of(vaddr) in self._cache
