"""Heterogeneous memory management (HMM).

HMM merges device memory with host memory into one system pool,
maintains the unified page table, and exposes plain ``mmap``/``malloc``
upward (§III-C.2).  Device drivers register instances with callbacks;
before the page table changes (migration, unmap), HMM blocks device
access to the affected pages, performs the update, triggers the IOMMU
invalidation, and resumes the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.kernel.ats import Iommu
from repro.kernel.numa import NumaNode, NumaRegistry
from repro.kernel.page_table import (
    PAGE_SIZE,
    PageFault,
    PageTableEntry,
    UnifiedPageTable,
)


class MigrationError(RuntimeError):
    pass


@dataclass
class DeviceRegistration:
    """A driver-registered device instance with its HMM callbacks."""

    name: str
    memory_node: Optional[int]
    block_access: Callable[[int], None]      # vpn -> None
    resume_access: Callable[[int], None]
    migrations_seen: int = 0


class Hmm:
    """The HMM core for one process address space."""

    def __init__(
        self,
        page_table: UnifiedPageTable,
        numa: NumaRegistry,
        iommu: Optional[Iommu] = None,
    ) -> None:
        self.page_table = page_table
        self.numa = numa
        self.iommu = iommu or Iommu(page_table)
        self._devices: Dict[str, DeviceRegistration] = {}
        self.faults_serviced = 0
        self.migrations = 0

    # ------------------------------------------------------------------
    # Driver interface
    # ------------------------------------------------------------------
    def register_device(
        self,
        name: str,
        memory_node: Optional[int],
        block_access: Callable[[int], None],
        resume_access: Callable[[int], None],
    ) -> DeviceRegistration:
        if name in self._devices:
            raise ValueError(f"device {name!r} already registered with HMM")
        registration = DeviceRegistration(name, memory_node, block_access, resume_access)
        self._devices[name] = registration
        return registration

    @property
    def devices(self) -> List[DeviceRegistration]:
        return list(self._devices.values())

    # ------------------------------------------------------------------
    # Fault path: first touch assigns a frame near the accessor
    # ------------------------------------------------------------------
    def handle_fault(self, vaddr: int, accessor_node: int) -> PageTableEntry:
        """Service a page fault with first-touch placement."""
        entry = self.page_table.entry(vaddr)
        if entry.blocked:
            raise MigrationError(f"page {entry.vpn:#x} is mid-migration")
        if entry.present:
            return entry
        pfn = self.numa.alloc_local(accessor_node)
        node = self.numa.node_of_frame(pfn).node_id
        self.faults_serviced += 1
        return self.page_table.assign_frame(vaddr, pfn, node)

    def touch(self, vaddr: int, accessor_node: int, write: bool = False) -> int:
        """Translate, servicing the fault if needed; returns the PA."""
        try:
            return self.page_table.translate(vaddr, write=write)
        except PageFault:
            self.handle_fault(vaddr, accessor_node)
            return self.page_table.translate(vaddr, write=write)

    # ------------------------------------------------------------------
    # Page migration (§III-C.2 update protocol)
    # ------------------------------------------------------------------
    def migrate_page(self, vaddr: int, target_node: int) -> PageTableEntry:
        """Move one page to ``target_node`` with the full ATS handshake:

        1. block device access to the PTE,
        2. allocate the new frame and update the PTE,
        3. IOMMU invalidation (propagates to every ATC),
        4. free the old frame and resume device access.
        """
        entry = self.page_table.entry(vaddr)
        if not entry.present:
            raise MigrationError(f"page {entry.vpn:#x} has no frame to migrate")
        if entry.node == target_node:
            return entry
        old_pfn = entry.pfn
        old_node = self.numa.node(entry.node)

        for device in self._devices.values():
            device.block_access(entry.vpn)
            device.migrations_seen += 1
        self.page_table.block(vaddr)
        try:
            new_pfn = self.numa.alloc_on(target_node)
            # remap bumps the generation and fans out ATC invalidations.
            self.page_table.remap(vaddr, new_pfn, target_node)
            old_node.free_frame(old_pfn)
        finally:
            self.page_table.unblock(vaddr)
            for device in self._devices.values():
                device.resume_access(entry.vpn)
        self.migrations += 1
        return entry

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def release_page(self, vaddr: int) -> None:
        entry = self.page_table.lookup(vaddr)
        if entry is None:
            return
        if entry.present:
            self.numa.node(entry.node).free_frame(entry.pfn)
        self.page_table.unmap(vaddr)

    def resident_by_node(self) -> Dict[int, int]:
        """Bytes resident per NUMA node (for placement assertions)."""
        out: Dict[int, int] = {}
        for entry in self.page_table.entries():
            if entry.present:
                out[entry.node] = out.get(entry.node, 0) + PAGE_SIZE
        return out
