"""Declarative fault plans: named, schema-validated failure timelines.

A :class:`FaultPlan` is the *adversity* of a simulated scenario the
same way a :class:`~repro.system.topology.Topology` is its shape and a
:class:`~repro.workloads.base.Workload` is its traffic: a declarative,
registry-addressable object that expands into a timeline of
:class:`FaultEvent`\\ s — a host going down and coming back, a link
degrading by a latency factor, a flapping link, a device dropping off
the bus, a lossy link corrupting messages.  The
:class:`~repro.faults.controller.FaultController` installs a plan
against any builder-constructed system and answers time-windowed
queries while a workload runs.

Plans register by name in :data:`FAULT_PLANS` so harnesses, sweep
grids and the CLI (``repro fault list|show|validate``) can refer to a
failure scenario with a plain string, and they round-trip through
plain JSON (:func:`load_fault_plan` / :func:`dump_fault_plan`) with
full schema validation — every malformed input raises
:class:`FaultSchemaError` naming the offending field, mirroring
:class:`~repro.system.topology.TopologySchemaError` and
:class:`~repro.workloads.base.WorkloadSchemaError`.

Event targets name topology elements: a plain node name
(``"host0"``) or a link written ``"a--b"`` (order-insensitive).  A
plan does **not** hard-bind to one topology — events whose targets
match nothing in the installed system are *inert* (recorded, not
errors), so the same plan sweeps across a topology grid.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.system.refs import parse_parametric_ref


class FaultSchemaError(ValueError):
    """A fault plan (dict or JSON file) or fault reference is malformed.

    Every malformed input — wrong container types, unknown keys,
    missing per-kind fields, out-of-range values — raises this one
    type with a message naming the offending field, so callers never
    see a bare ``KeyError``.
    """


class UnknownFaultPlanError(ValueError):
    """A name/reference does not identify a registered fault plan.

    Listing-style, matching
    :class:`repro.system.topology.UnknownTopologyError`: the message
    always enumerates the valid options.
    """


#: Link separator in event targets: ``"dev0--host"`` names the edge
#: between ``dev0`` and ``host`` regardless of endpoint order.
LINK_SEP = "--"


@dataclass(frozen=True)
class FaultEvent:
    """One timed failure (and its paired recovery) on one target.

    ``at_ps`` is the onset; ``for_ps`` is the outage duration, so the
    paired recovery happens at ``at_ps + for_ps`` (``None`` means the
    fault persists to the end of the run).  Kind-specific knobs:
    ``factor`` (link_degrade latency multiplier), ``period_ps`` /
    ``duty`` (link_flap cycle and down-fraction), ``rate``
    (msg_corrupt probability per message).
    """

    kind: str
    target: str
    at_ps: int = 0
    for_ps: Optional[int] = None
    factor: Optional[float] = None
    period_ps: Optional[int] = None
    duty: Optional[float] = None
    rate: Optional[float] = None

    KINDS = ("host_down", "link_degrade", "link_flap", "device_drop", "msg_corrupt")
    #: Kinds whose target is a ``"a--b"`` link (the rest target nodes).
    LINK_KINDS = ("link_degrade", "link_flap", "msg_corrupt")
    #: Kind -> the extra fields it requires (all others must stay unset).
    KIND_FIELDS = {
        "host_down": (),
        "device_drop": (),
        "link_degrade": ("factor",),
        "link_flap": ("period_ps", "duty"),
        "msg_corrupt": ("rate",),
    }

    def __post_init__(self) -> None:
        def fail(msg: str) -> None:
            raise FaultSchemaError(f"fault event {self.kind!r} on {self.target!r}: {msg}")

        if self.kind not in self.KINDS:
            raise FaultSchemaError(
                f"fault event kind must be one of {', '.join(self.KINDS)}; "
                f"got {self.kind!r}"
            )
        if not isinstance(self.target, str) or not self.target:
            fail(f"'target' must be a non-empty string, got {self.target!r}")
        if self.is_link:
            ends = self.target.split(LINK_SEP)
            if len(ends) != 2 or not all(ends):
                fail(
                    f"'target' must name a link as 'a{LINK_SEP}b', "
                    f"got {self.target!r}"
                )
        elif LINK_SEP in self.target:
            fail(f"'target' must be a node name, not a link ({self.target!r})")
        if not isinstance(self.at_ps, int) or isinstance(self.at_ps, bool) or self.at_ps < 0:
            fail(f"'at_ps' must be a non-negative integer, got {self.at_ps!r}")
        if self.for_ps is not None and (
            not isinstance(self.for_ps, int)
            or isinstance(self.for_ps, bool)
            or self.for_ps <= 0
        ):
            fail(f"'for_ps' must be a positive integer or null, got {self.for_ps!r}")
        required = self.KIND_FIELDS[self.kind]
        for name in ("factor", "period_ps", "duty", "rate"):
            value = getattr(self, name)
            if name in required and value is None:
                fail(f"missing required field {name!r}")
            if name not in required and value is not None:
                fail(f"field {name!r} does not apply to kind {self.kind!r}")
        if self.factor is not None and (
            not isinstance(self.factor, (int, float))
            or isinstance(self.factor, bool)
            or self.factor < 1
        ):
            fail(f"'factor' must be a number >= 1, got {self.factor!r}")
        if self.period_ps is not None and (
            not isinstance(self.period_ps, int)
            or isinstance(self.period_ps, bool)
            or self.period_ps <= 0
        ):
            fail(f"'period_ps' must be a positive integer, got {self.period_ps!r}")
        if self.duty is not None and (
            not isinstance(self.duty, (int, float))
            or isinstance(self.duty, bool)
            or not 0 < self.duty < 1
        ):
            fail(f"'duty' must be a fraction in (0, 1), got {self.duty!r}")
        if self.rate is not None and (
            not isinstance(self.rate, (int, float))
            or isinstance(self.rate, bool)
            or not 0 < self.rate <= 1
        ):
            fail(f"'rate' must be a probability in (0, 1], got {self.rate!r}")

    @property
    def is_link(self) -> bool:
        return self.kind in self.LINK_KINDS

    @property
    def link_key(self) -> Tuple[str, str]:
        """Order-insensitive link identity (sorted endpoint pair)."""
        a, b = self.target.split(LINK_SEP)
        return tuple(sorted((a, b)))  # type: ignore[return-value]

    @property
    def recovers_at_ps(self) -> Optional[int]:
        """Paired recovery time, or ``None`` for an unrecovered fault."""
        return None if self.for_ps is None else self.at_ps + self.for_ps

    def active_at(self, t_ps: int) -> bool:
        """Is this fault in effect at ``t_ps``?

        A flap is active only during the *down* fraction of each period
        (the first ``duty * period_ps`` of every cycle inside its
        window); every other kind is active for its whole window.
        """
        if t_ps < self.at_ps:
            return False
        end = self.recovers_at_ps
        if end is not None and t_ps >= end:
            return False
        if self.kind == "link_flap":
            phase = (t_ps - self.at_ps) % self.period_ps
            return phase < self.duty * self.period_ps
        return True

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form; only the fields this kind carries."""
        data: Dict[str, object] = {"kind": self.kind, "target": self.target}
        if self.at_ps:
            data["at_ps"] = self.at_ps
        if self.for_ps is not None:
            data["for_ps"] = self.for_ps
        for name in self.KIND_FIELDS[self.kind]:
            data[name] = getattr(self, name)
        return data

    def describe(self) -> str:
        """One-line rendering used by ``repro fault show``."""
        knobs = ", ".join(
            f"{name}={getattr(self, name)}" for name in self.KIND_FIELDS[self.kind]
        )
        window = f"at {self.at_ps / 1e6:g}us"
        if self.for_ps is not None:
            window += f" for {self.for_ps / 1e6:g}us"
        else:
            window += " onward"
        return f"{self.kind:<13} {self.target:<16} {window}" + (
            f"  [{knobs}]" if knobs else ""
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named timeline of fault events (possibly empty: the baseline)."""

    name: str
    description: str = ""
    events: Tuple[FaultEvent, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "events": [event.to_dict() for event in self.events],
        }

    _TOP_KEYS = frozenset({"name", "description", "events"})
    _EVENT_KEYS = frozenset(
        {"kind", "target", "at_ps", "for_ps", "factor", "period_ps", "duty", "rate"}
    )

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], default_name: Optional[str] = None
    ) -> "FaultPlan":
        """Parse the JSON plan format with full schema validation.

        Every malformed input raises :class:`FaultSchemaError` with a
        message naming the offending field, so a broken plan fails at
        load time, not mid-sweep.
        """
        if not isinstance(data, Mapping):
            raise FaultSchemaError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - cls._TOP_KEYS)
        if unknown:
            raise FaultSchemaError(
                f"fault plan has unknown key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(sorted(cls._TOP_KEYS))}"
            )
        name = data.get("name", default_name)
        if not isinstance(name, str) or not name:
            raise FaultSchemaError(
                f"fault plan needs a non-empty string 'name' (got {name!r})"
            )

        def fail(msg: str) -> None:
            raise FaultSchemaError(f"fault plan {name!r}: {msg}")

        description = data.get("description", "")
        if not isinstance(description, str):
            fail(f"'description' must be a string, got {description!r}")

        raw_events = data.get("events", [])
        if isinstance(raw_events, (str, bytes)) or not isinstance(
            raw_events, (list, tuple)
        ):
            fail(f"'events' must be a list of event objects, got {raw_events!r}")
        events: List[FaultEvent] = []
        for i, entry in enumerate(raw_events):
            if not isinstance(entry, Mapping):
                fail(f"events[{i}] must be an object, got {entry!r}")
            bad = sorted(set(entry) - cls._EVENT_KEYS)
            if bad:
                fail(
                    f"events[{i}] has unknown key(s) {', '.join(map(repr, bad))}; "
                    f"valid keys: {', '.join(sorted(cls._EVENT_KEYS))}"
                )
            kind = entry.get("kind")
            if not isinstance(kind, str) or not kind:
                fail(f"events[{i}] needs a non-empty string 'kind' (got {kind!r})")
            target = entry.get("target")
            if not isinstance(target, str) or not target:
                fail(f"events[{i}] needs a non-empty string 'target' (got {target!r})")
            try:
                events.append(FaultEvent(**{k: entry[k] for k in entry}))
            except FaultSchemaError as exc:
                fail(f"events[{i}]: {exc}")
            except TypeError as exc:  # pragma: no cover - guarded by key check
                fail(f"events[{i}]: {exc}")
        return cls(name=name, description=description, events=tuple(events))

    def describe(self) -> str:
        """Multi-line rendering used by ``repro fault show``."""
        lines = [f"fault plan {self.name}"]
        if self.description:
            lines.append(f"  {self.description}")
        lines.append(f"  events ({len(self.events)}):")
        for event in self.events:
            lines.append(f"    {event.describe()}")
        if not self.events:
            lines.append("    (none — fault-free baseline)")
        return "\n".join(lines)


def corrupt_draw(seed: int, key: str, index: int, rate: float) -> bool:
    """Deterministic pseudo-random corruption draw.

    Hash-based (not :mod:`random`) so fault outcomes depend only on
    ``(seed, key, index)`` — the same seed and plan reproduce an
    identical run, which is what the determinism and record→replay
    parity guarantees rest on.  Shared by the fault controller and the
    RPC wire-corruption path so the two layers cannot drift.
    """
    if rate <= 0:
        return False
    if rate >= 1:
        return True
    token = f"{seed}:{key}:{index}".encode()
    return (zlib.crc32(token) % 1_000_000) < int(rate * 1_000_000)


# ---------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------
FaultPlanFactory = Callable[..., FaultPlan]

FAULT_PLANS: Dict[str, FaultPlanFactory] = {}


def register_fault_plan(name: str) -> Callable[[FaultPlanFactory], FaultPlanFactory]:
    """Decorator: register a fault-plan factory under ``name``."""

    def decorate(factory: FaultPlanFactory) -> FaultPlanFactory:
        if name in FAULT_PLANS:
            raise ValueError(f"fault plan {name!r} already registered")
        FAULT_PLANS[name] = factory
        return factory

    return decorate


def fault_plan_by_name(name: str, *args) -> FaultPlan:
    """Instantiate a registered fault plan, forwarding positional knobs."""
    try:
        factory = FAULT_PLANS[name]
    except KeyError:
        raise UnknownFaultPlanError(
            f"unknown fault plan {name!r}; "
            f"registered: {', '.join(sorted(FAULT_PLANS))}"
        ) from None
    return factory(*args)


def fault_plan_names() -> Tuple[str, ...]:
    return tuple(sorted(FAULT_PLANS))


def fault_plan_description(name: str) -> str:
    """First docstring line of a registered factory (for listings)."""
    factory = FAULT_PLANS[name]
    doc = (factory.__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


# ---------------------------------------------------------------------
# JSON files
# ---------------------------------------------------------------------
def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Load and validate a fault plan from a JSON file.

    Unreadable files, invalid JSON, and schema violations all raise
    :class:`FaultSchemaError` naming the file and the problem.  The
    file's stem is the fallback name when the plan omits ``"name"``.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise FaultSchemaError(f"cannot read fault plan {path}: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FaultSchemaError(f"invalid JSON in {path}: {exc}") from None
    return FaultPlan.from_dict(data, default_name=path.stem)


def dump_fault_plan(
    plan: FaultPlan, path: Optional[Union[str, Path]] = None
) -> str:
    """Render ``plan`` as JSON text, writing it to ``path`` if given.

    The output round-trips through :func:`load_fault_plan` /
    :meth:`FaultPlan.from_dict` bit-identically.
    """
    text = json.dumps(plan.to_dict(), indent=2, sort_keys=True) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


def register_fault_plan_file(path: Union[str, Path]) -> Optional[str]:
    """Register a JSON plan file as a named (lazy) fault-plan factory.

    Only the name/description are read eagerly; the full plan is
    parsed and schema-checked at first use, so a broken file never
    breaks *import* — it surfaces through ``repro fault validate``.
    Returns the registered name, or ``None`` when the file is skipped
    (unparseable, or its name is already taken).
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, Mapping):
        return None
    name = data.get("name") or path.stem
    if not isinstance(name, str) or name in FAULT_PLANS:
        return None

    def factory(*args) -> FaultPlan:
        if args:
            raise TypeError(
                f"fault plan {name!r} is loaded from {path.name} and "
                f"accepts no arguments"
            )
        return load_fault_plan(path)

    description = data.get("description")
    factory.__doc__ = (
        description if isinstance(description, str) and description
        else f"JSON fault plan from {path.name}"
    )
    FAULT_PLANS[name] = factory
    return name


#: Shipped JSON plans (repo checkouts only; absent in installed trees).
SHIPPED_FAULT_DIR = Path(__file__).resolve().parents[3] / "examples" / "faults"


def _register_shipped_plans(directory: Path = SHIPPED_FAULT_DIR) -> None:
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        register_fault_plan_file(path)


# ---------------------------------------------------------------------
# References: sweep-grid strings and the resolve entry point
# ---------------------------------------------------------------------
def parse_fault_ref(ref: str) -> Tuple[str, Tuple[Union[int, float], ...]]:
    """``"link-degrade(8)"`` → ``("link-degrade", (8,))``; bare names get ``()``.

    The argument grammar is the shared
    :func:`~repro.system.refs.parse_parametric_ref` (the same one
    topology and workload references use); malformed references raise
    :class:`FaultSchemaError` naming the offending token.
    """
    if not isinstance(ref, str) or not ref.strip():
        raise FaultSchemaError(
            f"fault reference must be a non-empty string, got {ref!r}"
        )
    ref = ref.strip()
    if "(" not in ref and ")" not in ref:
        return ref, ()
    try:
        return parse_parametric_ref(ref)
    except ValueError as exc:
        raise FaultSchemaError(f"fault {exc}") from None


def validate_fault_ref(ref: Union[str, Mapping, FaultPlan]) -> None:
    """Check that ``ref`` identifies a fault plan the sweep layer can use.

    Accepts a :class:`FaultPlan` instance, an *inline* JSON plan dict
    (schema-validated in full, so a malformed one fails the sweep
    up-front), a registered name, or a parametric reference.  Factory
    *arguments* are deliberately not range-checked here — a bad
    argument fails at run time inside that one spec, exercising
    per-spec failure isolation, the same contract as
    :func:`repro.system.topology.validate_topology_ref`.
    """
    if isinstance(ref, FaultPlan):
        return
    if isinstance(ref, Mapping):
        FaultPlan.from_dict(ref)
        return
    name, _args = parse_fault_ref(ref)
    if name not in FAULT_PLANS:
        raise UnknownFaultPlanError(
            f"unknown fault plan {ref!r}; "
            f"registered: {', '.join(sorted(FAULT_PLANS))}"
        )


def resolve_fault_plan(
    ref: Union[str, Mapping, FaultPlan, None]
) -> Optional[FaultPlan]:
    """Turn a fault reference into a :class:`FaultPlan` instance.

    Accepts ``None`` (no faults — passed through), an instance, an
    inline JSON plan dict (parsed with full schema validation), a
    registered name, or a parametric reference like
    ``"link-degrade(8)"``.  This is the single entry point the driver,
    experiments and CLI use for their ``fault`` params.
    """
    if ref is None:
        return None
    if isinstance(ref, FaultPlan):
        return ref
    if isinstance(ref, Mapping):
        return FaultPlan.from_dict(ref)
    name, args = parse_fault_ref(ref)
    return fault_plan_by_name(name, *args)
