"""Built-in fault plans.

Each factory returns a fresh :class:`~repro.faults.plan.FaultPlan`.
Plans are written to be *portable across topology families*: events
name both the fan-out elements (``dev0``, ``dev0--host``) and the
supernode elements (``host0``, ``host0--fabric``), and whichever
targets the installed topology lacks are inert — so one plan rides a
sweep grid that mixes both families.

Time windows are sized for the quick CI workloads (tens of
microseconds of simulated time): onsets a few microseconds in, paired
recoveries well before a typical run ends, so availability *and*
post-recovery settling are both exercised.
"""

from __future__ import annotations

from repro.faults.plan import FaultEvent, FaultPlan, register_fault_plan


@register_fault_plan("none")
def none_plan() -> FaultPlan:
    """No faults — the degraded-path baseline (must equal a plain run)."""
    return FaultPlan(
        name="none",
        description="fault-free baseline: the degraded machinery engaged, "
        "zero events — measurements must be bit-identical to a plain run",
    )


@register_fault_plan("link-degrade")
def link_degrade_plan(factor: float = 4.0) -> FaultPlan:
    """Primary link degrades by a latency factor, then recovers."""
    return FaultPlan(
        name=f"link-degrade-{factor:g}x",
        description=f"device/fabric link at {factor:g}x latency for 30us",
        events=(
            FaultEvent(
                "link_degrade", "dev0--host",
                at_ps=2_000_000, for_ps=30_000_000, factor=float(factor),
            ),
            FaultEvent(
                "link_degrade", "host0--fabric",
                at_ps=2_000_000, for_ps=30_000_000, factor=float(factor),
            ),
        ),
    )


@register_fault_plan("link-flap")
def link_flap_plan() -> FaultPlan:
    """Primary link flaps (50% duty, 2us period) for 24us, then recovers."""
    return FaultPlan(
        name="link-flap",
        description="device/fabric link flapping at 2us period, 50% duty",
        events=(
            FaultEvent(
                "link_flap", "dev0--host",
                at_ps=1_000_000, for_ps=24_000_000,
                period_ps=2_000_000, duty=0.5,
            ),
            FaultEvent(
                "link_flap", "host0--fabric",
                at_ps=1_000_000, for_ps=24_000_000,
                period_ps=2_000_000, duty=0.5,
            ),
        ),
    )


@register_fault_plan("host-outage")
def host_outage_plan() -> FaultPlan:
    """One supernode host goes down for 10us, NAKing accesses, then recovers."""
    return FaultPlan(
        name="host-outage",
        description="host0 down from 2us to 12us (coherent accesses NAK)",
        events=(
            FaultEvent("host_down", "host0", at_ps=2_000_000, for_ps=10_000_000),
        ),
    )


@register_fault_plan("dev-drop")
def dev_drop_plan() -> FaultPlan:
    """One fan-out device drops off the bus for 12us, then recovers."""
    return FaultPlan(
        name="dev-drop",
        description="dev0 unreachable from 3us to 15us",
        events=(
            FaultEvent("device_drop", "dev0", at_ps=3_000_000, for_ps=12_000_000),
        ),
    )


@register_fault_plan("msg-corrupt")
def msg_corrupt_plan(rate: float = 0.05) -> FaultPlan:
    """Lossy primary link: messages corrupt at a fixed rate, all run long."""
    return FaultPlan(
        name=f"msg-corrupt-{rate:g}",
        description=f"device/fabric link corrupting {rate:.0%} of messages",
        events=(
            FaultEvent("msg_corrupt", "dev0--host", rate=float(rate)),
            FaultEvent("msg_corrupt", "host0--fabric", rate=float(rate)),
        ),
    )


@register_fault_plan("storm")
def storm_plan() -> FaultPlan:
    """Everything at once: outage + degrade + flap + loss (the drill)."""
    return FaultPlan(
        name="storm",
        description="host0 outage, degraded fabric links, a flapping device "
        "link, and 2% message loss — the combined failure drill",
        events=(
            FaultEvent("host_down", "host0", at_ps=2_000_000, for_ps=8_000_000),
            FaultEvent(
                "link_degrade", "host1--fabric",
                at_ps=4_000_000, for_ps=20_000_000, factor=6.0,
            ),
            FaultEvent(
                "link_degrade", "dev0--host",
                at_ps=4_000_000, for_ps=20_000_000, factor=6.0,
            ),
            FaultEvent(
                "link_flap", "dev1--host",
                at_ps=1_000_000, for_ps=16_000_000,
                period_ps=2_000_000, duty=0.4,
            ),
            FaultEvent("msg_corrupt", "host0--fabric", rate=0.02),
            FaultEvent("msg_corrupt", "dev0--host", rate=0.02),
        ),
    )
