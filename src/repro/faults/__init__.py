"""Fault injection: declarative failure plans and degraded-mode runs.

The third declarative axis of a simulated scenario, alongside shape
(:mod:`repro.system`) and traffic (:mod:`repro.workloads`):

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultEvent`
  schemas, the named registry, JSON load/dump, sweep-grid references;
* :mod:`repro.faults.plans` — built-in plans (``none``,
  ``link-degrade``, ``link-flap``, ``host-outage``, ``dev-drop``,
  ``msg-corrupt``, ``storm``);
* :mod:`repro.faults.controller` — :class:`FaultController` binding a
  plan to a built system, strict/degraded modes, :class:`RetryPolicy`,
  and availability/recovery metrics.

Importing this package registers every built-in plan plus any shipped
JSON plans under ``examples/faults/``.
"""

from repro.faults.controller import (
    MODES,
    FaultActiveError,
    FaultController,
    FaultStats,
    RetryPolicy,
)
from repro.faults.plan import (
    FAULT_PLANS,
    FaultEvent,
    FaultPlan,
    FaultSchemaError,
    UnknownFaultPlanError,
    corrupt_draw,
    dump_fault_plan,
    fault_plan_by_name,
    fault_plan_description,
    fault_plan_names,
    load_fault_plan,
    parse_fault_ref,
    register_fault_plan,
    register_fault_plan_file,
    resolve_fault_plan,
    validate_fault_ref,
    _register_shipped_plans,
)
from repro.faults import plans as _plans  # noqa: F401  (registers built-ins)

# Shipped JSON plans join the registry alongside the in-code ones.
_register_shipped_plans()

__all__ = [
    "MODES",
    "FAULT_PLANS",
    "FaultActiveError",
    "FaultController",
    "FaultEvent",
    "FaultPlan",
    "FaultSchemaError",
    "FaultStats",
    "RetryPolicy",
    "UnknownFaultPlanError",
    "corrupt_draw",
    "dump_fault_plan",
    "fault_plan_by_name",
    "fault_plan_description",
    "fault_plan_names",
    "load_fault_plan",
    "parse_fault_ref",
    "register_fault_plan",
    "register_fault_plan_file",
    "resolve_fault_plan",
    "validate_fault_ref",
]
