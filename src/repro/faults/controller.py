"""FaultController: install a plan against a built system, answer queries.

The controller is the runtime half of the faults layer.  It binds a
:class:`~repro.faults.plan.FaultPlan` to one
:class:`~repro.system.builder.BuiltSystem`:

* events whose targets match a node or link of the installed topology
  become *matched* (the rest are inert — recorded in
  :attr:`FaultController.unmatched`, so a plan stays portable across a
  topology sweep grid);
* matched ``link_degrade`` events wrap the owning device's
  :class:`~repro.interconnect.flexbus.FlexBus` so its one-way PHY
  latency is multiplied by the active degrade factor at simulator time
  — all DCOH traffic through that link genuinely slows;
* matched ``host_down`` events drive
  :meth:`repro.core.supernode.Supernode.set_host_available`, so a down
  host NAKs coherent accesses with
  :class:`~repro.core.supernode.HostDownError`.

Mode selects what happens when an op meets an active fault:
``"strict"`` (the default everywhere) preserves today's fail-loud
semantics — the op raises :class:`FaultActiveError` (or the supernode's
``HostDownError``); ``"degraded"`` opts into graceful degradation —
bounded retry-with-backoff per :class:`RetryPolicy`, then count-and-drop.
:class:`FaultStats` accumulates the availability/recovery metrics the
driver folds into its measurement series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.plan import FaultEvent, FaultPlan, corrupt_draw

MODES = ("strict", "degraded")

LinkKey = Tuple[str, str]


class FaultActiveError(RuntimeError):
    """Strict mode: an operation hit an active fault (fail-loud path)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for degraded-mode paths.

    ``delay_ps(attempt)`` grows exponentially (``backoff_ps << attempt``)
    so repeated NAKs back off instead of hammering a down target; after
    ``max_retries`` failed attempts the op is dropped (and counted).
    """

    max_retries: int = 3
    backoff_ps: int = 500_000  # 500 ns between first retry and the NAK

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError(
                f"retry policy max_retries must be a non-negative integer, "
                f"got {self.max_retries!r}"
            )
        if not isinstance(self.backoff_ps, int) or self.backoff_ps < 0:
            raise ValueError(
                f"retry policy backoff_ps must be a non-negative integer, "
                f"got {self.backoff_ps!r}"
            )

    def delay_ps(self, attempt: int) -> int:
        return self.backoff_ps << min(attempt, 16)


@dataclass
class FaultStats:
    """Availability/recovery accounting for one faulted run."""

    attempted: int = 0
    completed: int = 0
    dropped: int = 0
    retries: int = 0
    corrupted: int = 0
    completion_times_ps: List[int] = field(default_factory=list)

    def record_attempt(self) -> None:
        self.attempted += 1

    def record_completion(self, t_ps: int) -> None:
        self.completed += 1
        self.completion_times_ps.append(t_ps)

    def record_drop(self) -> None:
        self.dropped += 1

    def record_retry(self, count: int = 1) -> None:
        self.retries += count

    def record_corrupt(self) -> None:
        self.corrupted += 1

    @property
    def availability(self) -> float:
        """Fraction of attempted ops that completed (1.0 when idle)."""
        return self.completed / self.attempted if self.attempted else 1.0


def _merge_windows(
    windows: List[Tuple[int, Optional[int]]], end_ps: int
) -> int:
    """Total length of the union of ``[start, end)`` windows, clipped."""
    clipped = []
    for start, end in windows:
        stop = end_ps if end is None else min(end, end_ps)
        if stop > start:
            clipped.append((start, stop))
    total = 0
    cursor = -1
    for start, stop in sorted(clipped):
        start = max(start, cursor)
        if stop > start:
            total += stop - start
            cursor = stop
        cursor = max(cursor, stop)
    return total


class FaultController:
    """Bind one fault plan to one built system and track its effects."""

    def __init__(
        self,
        plan: FaultPlan,
        seed: int = 1234,
        mode: str = "strict",
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(
                f"fault mode must be one of {', '.join(MODES)}; got {mode!r}"
            )
        self.plan = plan
        self.seed = seed
        self.mode = mode
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = FaultStats()
        self.matched: Tuple[FaultEvent, ...] = ()
        self.unmatched: Tuple[FaultEvent, ...] = ()
        self.end_ps: int = 0
        self._installed = False
        self._draws = 0
        self._wrapped: Set[int] = set()
        self._degrades: Dict[LinkKey, List[FaultEvent]] = {}
        self._flaps: Dict[LinkKey, List[FaultEvent]] = {}
        self._corrupts: Dict[LinkKey, List[FaultEvent]] = {}
        self._node_downs: Dict[str, List[FaultEvent]] = {}

    @property
    def degraded(self) -> bool:
        return self.mode == "degraded"

    def register_metrics(self, registry) -> None:
        """Bind fault-effect counters into a metrics registry.

        Pull-based probes over :attr:`stats` (see
        :mod:`repro.obs.metrics`): the fault hot paths keep mutating
        plain integers and pay nothing for observation.
        """
        scope = registry.scoped("faults")
        stats = self.stats
        scope.probe("attempted", lambda: stats.attempted)
        scope.probe("completed", lambda: stats.completed)
        scope.probe("dropped", lambda: stats.dropped)
        scope.probe("retries", lambda: stats.retries)
        scope.probe("corrupted", lambda: stats.corrupted)
        scope.probe("availability", lambda: stats.availability)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, system) -> "FaultController":
        """Match plan events against ``system``'s topology and hook in.

        Idempotent per controller instance (a controller serves one
        run).  Unmatched events are inert by design: the same plan can
        ride a sweep across fan-out *and* supernode topologies, with
        each family feeling only the events that name its elements.
        """
        if self._installed:
            raise RuntimeError("fault controller already installed")
        self._installed = True
        topology = system.topology
        node_names = {spec.name for spec in topology.nodes}
        link_keys = {
            tuple(sorted((link.a, link.b))) for link in topology.links
        }
        matched: List[FaultEvent] = []
        unmatched: List[FaultEvent] = []
        for event in self.plan.events:
            if event.is_link:
                if event.link_key in link_keys:
                    matched.append(event)
                    bucket = {
                        "link_degrade": self._degrades,
                        "link_flap": self._flaps,
                        "msg_corrupt": self._corrupts,
                    }[event.kind]
                    bucket.setdefault(event.link_key, []).append(event)
                else:
                    unmatched.append(event)
            elif event.target in node_names:
                matched.append(event)
                self._node_downs.setdefault(event.target, []).append(event)
            else:
                unmatched.append(event)
        self.matched = tuple(matched)
        self.unmatched = tuple(unmatched)
        for key in self._degrades:
            self._wrap_link(system, key)
        return self

    def _wrap_link(self, system, key: LinkKey) -> None:
        """Make a degraded link's FlexBus time-varying.

        The FlexBus belongs to the device endpoint of the link; its
        ``oneway_ps`` is swapped (via a dynamic subclass) for one that
        multiplies the profile latency by the controller's active
        degrade factor at ``sim.now``.  With no window active the
        factor is exactly 1.0 and the original integer comes back, so
        traffic outside fault windows is untouched.
        """
        controller = self
        for name in key:
            component = system.nodes.get(name)
            bus = getattr(component, "flexbus", None)
            if bus is None or id(bus) in self._wrapped:
                continue
            self._wrapped.add(id(bus))
            base_cls = type(bus)
            base_prop = base_cls.oneway_ps

            class _DegradedFlexBus(base_cls):  # type: ignore[misc, valid-type]
                @property
                def oneway_ps(self) -> int:
                    base = base_prop.fget(self)
                    factor = controller.link_factor(key, self.sim.now)
                    return base if factor == 1.0 else int(round(base * factor))

            _DegradedFlexBus.__name__ = f"{base_cls.__name__}(degraded)"
            bus.__class__ = _DegradedFlexBus

    def apply_supernode(self, supernode, t_ps: int) -> None:
        """Push host availability at ``t_ps`` into a supernode.

        Down hosts then NAK coherent accesses with
        :class:`~repro.core.supernode.HostDownError` — the supernode
        itself stays fault-agnostic.
        """
        for host, events in self._node_downs.items():
            if host in supernode.hosts:
                supernode.set_host_available(
                    host, not any(e.active_at(t_ps) for e in events)
                )

    # ------------------------------------------------------------------
    # Time-windowed queries (matched events only)
    # ------------------------------------------------------------------
    def node_down(self, name: str, t_ps: int) -> bool:
        """Is node ``name`` (host or device) down at ``t_ps``?"""
        return any(
            e.active_at(t_ps) for e in self._node_downs.get(name, ())
        )

    def link_down(self, key: LinkKey, t_ps: int) -> bool:
        """Is the link flapped down at ``t_ps``?"""
        return any(e.active_at(t_ps) for e in self._flaps.get(key, ()))

    def link_factor(self, key: LinkKey, t_ps: int) -> float:
        """Product of the degrade factors active on ``key`` at ``t_ps``."""
        factor = 1.0
        for event in self._degrades.get(key, ()):
            if event.active_at(t_ps):
                factor *= event.factor
        return factor

    def corrupted(self, key: LinkKey, t_ps: int) -> bool:
        """Deterministic draw: was this message corrupted on ``key``?

        One draw per active ``msg_corrupt`` event, consumed in
        deterministic (simulator event) order, so the same seed + plan
        reproduce identical corruption patterns.
        """
        hit = False
        for event in self._corrupts.get(key, ()):
            if event.active_at(t_ps):
                index = self._draws
                self._draws += 1
                if corrupt_draw(self.seed, "--".join(key), index, event.rate):
                    hit = True
        return hit

    def path_down(
        self, nodes: Tuple[str, ...], keys: Tuple[LinkKey, ...], t_ps: int
    ) -> bool:
        """Is any node or link on an op's path faulted at ``t_ps``?"""
        return any(self.node_down(n, t_ps) for n in nodes) or any(
            self.link_down(k, t_ps) for k in keys
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def degraded_time_ps(self, end_ps: Optional[int] = None) -> int:
        """Union length of matched fault windows within ``[0, end_ps)``."""
        end = self.end_ps if end_ps is None else end_ps
        return _merge_windows(
            [(e.at_ps, e.recovers_at_ps) for e in self.matched], end
        )

    def last_recovery_ps(self, end_ps: Optional[int] = None) -> Optional[int]:
        """Latest paired recovery that happened within the run, if any."""
        end = self.end_ps if end_ps is None else end_ps
        times = [
            e.recovers_at_ps
            for e in self.matched
            if e.recovers_at_ps is not None and e.recovers_at_ps <= end
        ]
        return max(times) if times else None

    def settle_time_ps(self, end_ps: Optional[int] = None) -> int:
        """Post-recovery settling: last recovery → first completion after it."""
        recovery = self.last_recovery_ps(end_ps)
        if recovery is None:
            return 0
        after = [t for t in self.stats.completion_times_ps if t >= recovery]
        return (min(after) - recovery) if after else 0

    def availability_series(self) -> Dict[str, float]:
        """``availability`` measurement series (ragged, like ``counts``)."""
        stats = self.stats
        return {
            "attempted": float(stats.attempted),
            "completed": float(stats.completed),
            "dropped": float(stats.dropped),
            "retries": float(stats.retries),
            "corrupted": float(stats.corrupted),
            "rate": stats.availability,
        }

    def recovery_series(self) -> Dict[str, float]:
        """``recovery`` measurement series: degraded time + settling."""
        return {
            "degraded_us": self.degraded_time_ps() / 1e6,
            "settle_us": self.settle_time_ps() / 1e6,
            "matched_events": float(len(self.matched)),
            "unmatched_events": float(len(self.unmatched)),
        }
