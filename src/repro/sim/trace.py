"""Activity tracing for simulated components.

A :class:`TraceLog` collects timestamped records ``(time, component,
event, fields)`` from any component that cares to emit them.  It backs
debugging ("show me every message the DCOH sent between t0 and t1") and
the waveform-style dumps the examples print.  Tracing is opt-in and
zero-cost when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    time_ps: int
    component: str
    event: str
    fields: Tuple[Tuple[str, Any], ...] = ()

    def field(self, name: str, default: Any = None) -> Any:
        for key, value in self.fields:
            if key == name:
                return value
        return default

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"{self.time_ps:>12}ps {self.component:<16} {self.event:<20} {extras}"


class TraceLog:
    """An append-only, filterable trace.

    ``capacity`` bounds the record count.  The default mode drops *new*
    records once full (the head of a run is usually the interesting
    part when debugging startup); ``ring=True`` keeps the *last*
    ``capacity`` records instead, evicting the oldest — the right mode
    for "what led up to the failure" captures on long runs.  Both modes
    count evictions in :attr:`dropped`, and :meth:`render` reports it.
    """

    def __init__(self, capacity: Optional[int] = None, ring: bool = False) -> None:
        if ring and capacity is None:
            raise ValueError("ring=True requires a capacity")
        self.capacity = capacity
        self.ring = ring
        self._records: List[TraceRecord] = []
        # Ring eviction is a rotating overwrite index into _records, so
        # steady-state emits neither shift nor reallocate the list.
        self._ring_head = 0
        self.enabled = True
        self.dropped = 0

    def emit(self, time_ps: int, component: str, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self._records) >= self.capacity:
            self.dropped += 1
            if not self.ring:
                return
            self._records[self._ring_head] = TraceRecord(
                time_ps, component, event, tuple(sorted(fields.items()))
            )
            self._ring_head = (self._ring_head + 1) % self.capacity
            return
        self._records.append(
            TraceRecord(time_ps, component, event, tuple(sorted(fields.items())))
        )

    def records(self) -> List[TraceRecord]:
        """Records in emission order (unrotating the ring if needed)."""
        if self.ring and self._ring_head:
            return self._records[self._ring_head:] + self._records[:self._ring_head]
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(
        self,
        component: Optional[str] = None,
        event: Optional[str] = None,
        since_ps: Optional[int] = None,
        until_ps: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        out = []
        for record in self.records():
            if component is not None and record.component != component:
                continue
            if event is not None and record.event != event:
                continue
            if since_ps is not None and record.time_ps < since_ps:
                continue
            if until_ps is not None and record.time_ps > until_ps:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def counts_by_event(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self._records:
            out[record.event] = out.get(record.event, 0) + 1
        return out

    def first(self, event: str) -> Optional[TraceRecord]:
        for record in self.records():
            if record.event == event:
                return record
        return None

    def render(self, limit: int = 50) -> str:
        records = self.records()
        lines = [str(r) for r in records[:limit]]
        if len(records) > limit:
            lines.append(f"... ({len(records) - limit} more)")
        if self.dropped:
            mode = "oldest" if self.ring else "newest"
            lines.append(f"({self.dropped} {mode} record(s) dropped at capacity)")
        return "\n".join(lines)

    def clear(self) -> None:
        self._records.clear()
        self._ring_head = 0
        self.dropped = 0


class Tracer:
    """A component-bound handle onto a shared :class:`TraceLog`."""

    __slots__ = ("log", "component", "now")

    def __init__(self, log: TraceLog, component: str, now: Callable[[], int]) -> None:
        self.log = log
        self.component = component
        self.now = now

    def emit(self, event: str, **fields: Any) -> None:
        self.log.emit(self.now(), self.component, event, **fields)


class NullTracer:
    """Null-object tracer: ``emit`` is a no-op.

    Components hold :data:`NULL_TRACER` by default so emitting a trace
    point costs one method call and nothing else when tracing is off;
    attaching a real :class:`Tracer` opts a component in.
    """

    __slots__ = ()

    def emit(self, event: str, **fields: Any) -> None:
        pass


#: Shared process-wide null tracer instance.
NULL_TRACER = NullTracer()
