"""Event queue and simulator core.

The engine is a classic calendar built on a binary heap.  Heap entries
are small mutable lists ``[when, seq, callback, args, event]`` so that
ordering is decided by C-level integer comparison on ``when``/``seq``
(the monotonically increasing sequence number keeps same-picosecond
events in scheduling order, which keeps protocol interleavings
deterministic run-to-run) and the drain loop never calls a Python
``__lt__``.  Entries are recycled through a free-list, so steady-state
scheduling does no per-event allocation.

Two scheduling tiers exist:

* :meth:`Simulator.schedule` — the validated public path.  It returns
  an :class:`Event` handle that supports :meth:`Event.cancel`.
* :meth:`Simulator.schedule_after` — the trusted fast path used by
  internal components (:class:`repro.sim.component.Component`,
  :class:`repro.sim.component.Port`).  It skips validation, allocates
  no handle and cannot be cancelled.  Callers must pass a non-negative
  delay; a negative delay would rewind simulated time.

Cancellation is lazy: :meth:`Event.cancel` only marks the handle and
bumps the owning simulator's cancel counter; the dead entry is dropped
when it reaches the top of the heap.  When cancelled entries outnumber
half the calendar the heap is compacted in place.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

# Upper bound on the entry free-list; beyond this, popped entries are
# simply dropped for the garbage collector.
_POOL_MAX = 4096

# Heap compaction threshold: compact when the calendar holds at least
# this many entries and more than half of them are cancelled.
_COMPACT_MIN = 64

# Active profiler, or None.  Module-global (not per-Simulator) so that
# attaching a profiler costs exactly one branch per run() call and the
# unprofiled drain loop stays byte-for-byte identical — the same
# zero-overhead-when-off contract as NULL_TRACER.  Installed via
# set_profiler(); use repro.obs.profiler.profile() as the public entry.
_PROFILER = None


def set_profiler(profiler) -> None:
    """Install (or clear, with ``None``) the process-wide profiler.

    The profiler must expose ``record(callback, args)`` which is
    responsible for *invoking* the callback and attributing its cost,
    and ``add_run(wall_s, executed)`` called once per profiled
    :meth:`Simulator.run`.
    """
    global _PROFILER
    _PROFILER = profiler


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule`; user code only
    holds them to call :meth:`cancel`.
    """

    __slots__ = ("when", "seq", "callback", "args", "cancelled", "label", "_sim")

    def __init__(
        self,
        when: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        label: str = "",
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event dead; the engine drops it lazily when popped."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.label or self.callback!r} @ {self.when}ps, {state})"


class Simulator:
    """Discrete-event simulator with picosecond integer time."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        # Entries are [when, seq, callback, args, event_or_None].
        self._heap: List[list] = []
        self._executed: int = 0
        self._cancelled: int = 0
        self._pool: List[list] = []

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Total number of events that have fired."""
        return self._executed

    def schedule(
        self,
        delay_ps: int,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay_ps`` from now."""
        if delay_ps < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ps})")
        self._seq += 1
        when = self._now + delay_ps
        event = Event(when, self._seq, callback, args, label, self)
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = when
            entry[1] = self._seq
            entry[2] = callback
            entry[3] = args
            entry[4] = event
        else:
            entry = [when, self._seq, callback, args, event]
        heapq.heappush(self._heap, entry)
        return event

    def schedule_at(
        self,
        when_ps: int,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when_ps``."""
        return self.schedule(when_ps - self._now, callback, *args, label=label)

    def schedule_after(
        self,
        delay_ps: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> None:
        """Trusted fast-path scheduling for internal components.

        Skips validation, allocates no :class:`Event` handle (so the
        event cannot be cancelled or labelled) and passes ``args`` as a
        tuple rather than varargs.  The caller guarantees
        ``delay_ps >= 0``.  Ordering relative to :meth:`schedule` is
        preserved: both paths share one sequence counter.
        """
        seq = self._seq + 1
        self._seq = seq
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = self._now + delay_ps
            entry[1] = seq
            entry[2] = callback
            entry[3] = args
            # entry[4] is already None for pooled entries.
        else:
            entry = [self._now + delay_ps, seq, callback, args, None]
        heapq.heappush(self._heap, entry)

    def _note_cancel(self) -> None:
        """Lazy-deletion bookkeeping; compacts a mostly-dead calendar."""
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= _COMPACT_MIN and self._cancelled * 2 > len(heap):
            live = [e for e in heap if e[4] is None or not e[4].cancelled]
            heap[:] = live
            heapq.heapify(heap)
            self._cancelled = 0

    def _recycle(self, entry: list) -> None:
        entry[2] = entry[3] = entry[4] = None
        if len(self._pool) < _POOL_MAX:
            self._pool.append(entry)

    def _next_live_when(self) -> Optional[int]:
        """Timestamp of the next non-cancelled event, draining dead ones."""
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[4]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                self._recycle(entry)
                continue
            return entry[0]
        return None

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the calendar.

        Runs until the calendar is empty, until simulated time would pass
        ``until_ps``, or until ``max_events`` events have fired, whichever
        comes first.  Returns the number of events executed by this call.

        Regardless of which condition stops the run, when ``until_ps``
        is given and no live event remains at or before it, the clock
        advances to ``until_ps`` (idle time passes).
        """
        if _PROFILER is not None:
            return self._run_profiled(_PROFILER, until_ps, max_events)
        executed_before = self._executed
        # Hot loop: hoist bound methods and attributes into locals and
        # inline entry recycling.  The heap and pool list objects are
        # stable across callbacks (callbacks only push onto them), so
        # holding references is safe.
        heap = self._heap
        pool = self._pool
        heappop = heapq.heappop
        limit = None if max_events is None else executed_before + max_events
        while heap:
            entry = heap[0]
            event = entry[4]
            if event is not None and event.cancelled:
                heappop(heap)
                self._cancelled -= 1
                entry[2] = entry[3] = entry[4] = None
                if len(pool) < _POOL_MAX:
                    pool.append(entry)
                continue
            if until_ps is not None and entry[0] > until_ps:
                break
            if limit is not None and self._executed >= limit:
                break
            heappop(heap)
            self._now = entry[0]
            self._executed += 1
            callback = entry[2]
            args = entry[3]
            if event is not None:
                # Detach the handle so a stale cancel() after firing
                # cannot inflate the lazy-deletion counter.
                event._sim = None
            entry[2] = entry[3] = entry[4] = None
            if len(pool) < _POOL_MAX:
                pool.append(entry)
            callback(*args)
        # Unified horizon handling for every exit path (calendar empty,
        # event beyond horizon, or max_events reached).
        if until_ps is not None and until_ps > self._now:
            next_when = self._next_live_when()
            if next_when is None or next_when > until_ps:
                self._now = until_ps
        return self._executed - executed_before

    def _run_profiled(
        self,
        profiler,
        until_ps: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Profiled mirror of :meth:`run`.

        Same drain semantics, but each callback fires through
        ``profiler.record`` (which samples wall time and attributes it
        per component) and the whole call is timed for events/sec.
        Kept as a separate method so the unprofiled hot loop carries
        zero extra per-event work.
        """
        from time import perf_counter

        executed_before = self._executed
        heap = self._heap
        pool = self._pool
        heappop = heapq.heappop
        record = profiler.record
        limit = None if max_events is None else executed_before + max_events
        run_start = perf_counter()
        while heap:
            entry = heap[0]
            event = entry[4]
            if event is not None and event.cancelled:
                heappop(heap)
                self._cancelled -= 1
                entry[2] = entry[3] = entry[4] = None
                if len(pool) < _POOL_MAX:
                    pool.append(entry)
                continue
            if until_ps is not None and entry[0] > until_ps:
                break
            if limit is not None and self._executed >= limit:
                break
            heappop(heap)
            self._now = entry[0]
            self._executed += 1
            callback = entry[2]
            args = entry[3]
            if event is not None:
                event._sim = None
            entry[2] = entry[3] = entry[4] = None
            if len(pool) < _POOL_MAX:
                pool.append(entry)
            record(callback, args)
        profiler.add_run(perf_counter() - run_start, self._executed - executed_before)
        if until_ps is not None and until_ps > self._now:
            next_when = self._next_live_when()
            if next_when is None or next_when > until_ps:
                self._now = until_ps
        return self._executed - executed_before

    def step(self) -> bool:
        """Fire exactly one live event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[4]
            if event is not None and event.cancelled:
                self._cancelled -= 1
                self._recycle(entry)
                continue
            self._now = entry[0]
            self._executed += 1
            callback = entry[2]
            args = entry[3]
            if event is not None:
                event._sim = None
            self._recycle(entry)
            callback(*args)
            return True
        return False

    def reset(self) -> None:
        """Clear the calendar and rewind time to zero."""
        # Detach outstanding handles so a stale cancel() on a pre-reset
        # Event cannot inflate the lazy-deletion counter.
        for entry in self._heap:
            event = entry[4]
            if event is not None:
                event._sim = None
        self._heap.clear()
        self._now = 0
        self._seq = 0
        self._executed = 0
        self._cancelled = 0
        self._pool.clear()
