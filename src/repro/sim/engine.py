"""Event queue and simulator core.

The engine is a classic calendar built on a binary heap.  Events carry a
monotonically increasing sequence number so that two events scheduled for
the same picosecond fire in scheduling order, which keeps protocol
interleavings deterministic run-to-run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule`; user code only
    holds them to call :meth:`cancel`.
    """

    __slots__ = ("when", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        when: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        label: str = "",
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Mark the event dead; the engine drops it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.label or self.callback!r} @ {self.when}ps, {state})"


class Simulator:
    """Discrete-event simulator with picosecond integer time."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: List[Event] = []
        self._executed: int = 0

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Total number of events that have fired."""
        return self._executed

    def schedule(
        self,
        delay_ps: int,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay_ps`` from now."""
        if delay_ps < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ps})")
        self._seq += 1
        event = Event(self._now + delay_ps, self._seq, callback, args, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        when_ps: int,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when_ps``."""
        return self.schedule(when_ps - self._now, callback, *args, label=label)

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the calendar.

        Runs until the calendar is empty, until simulated time would pass
        ``until_ps``, or until ``max_events`` events have fired, whichever
        comes first.  Returns the number of events executed by this call.
        """
        executed_before = self._executed
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until_ps is not None and event.when > until_ps:
                self._now = until_ps
                break
            if max_events is not None and self._executed - executed_before >= max_events:
                break
            heapq.heappop(self._heap)
            self._now = event.when
            self._executed += 1
            event.callback(*event.args)
        else:
            if until_ps is not None and until_ps > self._now:
                self._now = until_ps
        return self._executed - executed_before

    def step(self) -> bool:
        """Fire exactly one live event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.when
            self._executed += 1
            event.callback(*event.args)
            return True
        return False

    def reset(self) -> None:
        """Clear the calendar and rewind time to zero."""
        self._heap.clear()
        self._now = 0
        self._seq = 0
        self._executed = 0
