"""Bounded queues and credit-based flow control.

CXL channels and NIC rings are finite; back-pressure is what turns
latency parameters into bandwidth curves.  :class:`BoundedQueue` is an
occupancy-tracked FIFO and :class:`CreditPool` models the outstanding
request window (MSHRs, DMA descriptor contexts, PE slots).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional


class QueueFullError(RuntimeError):
    """Raised when pushing into a full :class:`BoundedQueue`."""


class BoundedQueue:
    """FIFO with a fixed capacity and occupancy statistics.

    ``policy`` picks what a push into a full queue does: ``"raise"``
    (the default, and the only behaviour before the fault layer
    existed) raises :class:`QueueFullError`; ``"drop"`` counts the
    item in :attr:`dropped` and discards it — the lossy-ingress model
    degraded-mode NICs use, where overflow is an availability metric,
    not a crash.
    """

    POLICIES = ("raise", "drop")

    def __init__(
        self, capacity: int, name: str = "queue", policy: str = "raise"
    ) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        if policy not in self.POLICIES:
            raise ValueError(
                f"queue policy must be one of {', '.join(self.POLICIES)}; "
                f"got {policy!r}"
            )
        self.capacity = capacity
        self.name = name
        self.policy = policy
        self._items: Deque[Any] = deque()
        self.max_occupancy = 0
        self.total_pushed = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item: Any) -> bool:
        """Enqueue ``item``; returns True unless the drop policy ate it."""
        if self.full:
            if self.policy == "drop":
                self.dropped += 1
                return False
            raise QueueFullError(f"queue {self.name!r} full (capacity {self.capacity})")
        self._items.append(item)
        self.total_pushed += 1
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)
        return True

    def try_push(self, item: Any) -> bool:
        """Push without raising; returns False when full."""
        if self.full:
            return False
        self.push(item)
        return True

    def pop(self) -> Any:
        if not self._items:
            raise IndexError(f"queue {self.name!r} is empty")
        return self._items.popleft()

    def peek(self) -> Any:
        if not self._items:
            raise IndexError(f"queue {self.name!r} is empty")
        return self._items[0]


class CreditPool:
    """A pool of N credits with a wait-list of continuation callbacks.

    ``acquire`` either grabs a credit immediately (returns True) or, when
    a callback is supplied, parks it to be resumed by a later ``release``.
    """

    def __init__(self, credits: int, name: str = "credits") -> None:
        if credits <= 0:
            raise ValueError("credit pool must start with at least one credit")
        self.capacity = credits
        self.available = credits
        self.name = name
        self._waiters: Deque[Callable[[], None]] = deque()
        self.peak_in_use = 0

    @property
    def in_use(self) -> int:
        return self.capacity - self.available

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self, on_grant: Optional[Callable[[], None]] = None) -> bool:
        """Take a credit now, or queue ``on_grant`` for later.

        Returns True when the credit was granted synchronously.
        """
        if self.available > 0 and not self._waiters:
            self.available -= 1
            if self.in_use > self.peak_in_use:
                self.peak_in_use = self.in_use
            return True
        if on_grant is None:
            return False
        self._waiters.append(on_grant)
        return False

    def release(self) -> None:
        """Return a credit, waking the oldest waiter if any."""
        if self._waiters:
            # Hand the credit straight to the waiter; availability is
            # unchanged because the credit never becomes idle.
            waiter = self._waiters.popleft()
            waiter()
            return
        if self.available >= self.capacity:
            raise RuntimeError(f"credit pool {self.name!r} over-released")
        self.available += 1


def drain(queue: BoundedQueue) -> List[Any]:
    """Pop everything out of ``queue`` (test helper)."""
    items = []
    while not queue.empty:
        items.append(queue.pop())
    return items
