"""Discrete-event simulation kernel used by every SimCXL subsystem.

Time is an integer number of picoseconds, which lets multiple clock
domains (e.g. a 400 MHz FPGA device and a 2.4 GHz host) coexist without
floating-point drift.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.clock import Clock, GHZ, MHZ, NS, PS, US
from repro.sim.component import Component, Port
from repro.sim.queueing import BoundedQueue, CreditPool, QueueFullError
from repro.sim.stats import Counter, Histogram, RunningMean
from repro.sim.trace import NULL_TRACER, NullTracer, TraceLog, TraceRecord, Tracer

__all__ = [
    "Event",
    "Simulator",
    "Clock",
    "GHZ",
    "MHZ",
    "NS",
    "PS",
    "US",
    "Component",
    "Port",
    "BoundedQueue",
    "CreditPool",
    "QueueFullError",
    "Counter",
    "Histogram",
    "RunningMean",
    "TraceLog",
    "TraceRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]
