"""Statistics primitives: counters, running means, and histograms.

Experiments report medians, percentiles and means the same way the
paper's performance-monitoring unit does (request/response timestamps).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class RunningMean:
    """Streaming mean/variance (Welford's algorithm)."""

    __slots__ = ("count", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class Histogram:
    """Sample store supporting exact quantiles.

    Keeps raw samples; experiment populations here are small (thousands),
    so exact order statistics are cheaper than maintaining sketches and
    match how the paper reports medians and 25th/75th percentiles.
    """

    def __init__(self, name: str = "histogram") -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def add(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(values)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def _ensure_sorted(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def percentile(self, q: float) -> float:
        """Exact linear-interpolated percentile, ``q`` in [0, 100]."""
        data = self._ensure_sorted()
        if not data:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} out of range")
        if len(data) == 1:
            return data[0]
        rank = (q / 100.0) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        return data[low] * (1.0 - frac) + data[high] * frac

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p25(self) -> float:
        return self.percentile(25.0)

    @property
    def p75(self) -> float:
        return self.percentile(75.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    @property
    def min(self) -> float:
        return self._ensure_sorted()[0]

    @property
    def max(self) -> float:
        return self._ensure_sorted()[-1]

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        return sum(self._samples) / len(self._samples)

    @property
    def stddev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mean = self.mean
        var = sum((s - mean) ** 2 for s in self._samples) / (len(self._samples) - 1)
        return math.sqrt(var)

    def summary(self) -> Dict[str, float]:
        """Five-number-ish summary (plus SLO tails) used by the harness."""
        return {
            "count": float(len(self._samples)),
            "min": self.min,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
            "mean": self.mean,
        }

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = None
