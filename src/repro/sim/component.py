"""Component and port abstractions.

A :class:`Component` owns a reference to the simulator and (optionally)
a clock domain.  :class:`Port` gives point-to-point, latency-annotated
message delivery between components; it is the Python analogue of the
gem5 port pairs in Fig. 6 (cache port, PIO port, DMA port, mem ports).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.clock import Clock
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER, TraceLog, Tracer


class Component:
    """Base class for every simulated hardware block.

    Every component carries a ``tracer``; by default it is the shared
    null tracer, so ``self.tracer.emit(...)`` is zero-cost until a real
    trace log is attached with :meth:`attach_trace`.
    """

    #: Class-level default: tracing disabled at zero cost.
    tracer = NULL_TRACER

    def __init__(self, sim: Simulator, name: str, clock: Optional[Clock] = None) -> None:
        self.sim = sim
        self.name = name
        self.clock = clock

    def attach_trace(self, log: TraceLog) -> Tracer:
        """Bind this component to ``log``; returns the new tracer."""
        self.tracer = Tracer(log, self.name, lambda: self.sim.now)
        return self.tracer

    def register_metrics(self, registry) -> None:
        """Bind this component's counters into a metrics registry.

        The base implementation duck-types over the shared counter
        attribute names (``hits``, ``sent``, ...) exactly like
        :func:`repro.obs.metrics.instrument_system`; subclasses with
        richer state override and add their own probes.  Pull-based, so
        a component that is never registered pays nothing.
        """
        from repro.obs.metrics import _probe_counters

        _probe_counters(registry, self.name, self)

    def delay_cycles(self, n: float) -> int:
        """Convert ``n`` cycles of this component's clock to picoseconds."""
        if self.clock is None:
            raise RuntimeError(f"component {self.name!r} has no clock domain")
        return self.clock.cycles(n)

    def schedule(self, delay_ps: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule on the fast path (not cancellable, no label).

        Keeps the negative-delay guard: this is the generic entry point
        for arbitrary components, and silently rewinding simulated time
        would corrupt event ordering with no error.  Audited hot loops
        that guarantee non-negative delays call ``sim.schedule_after``
        directly.
        """
        if delay_ps < 0:
            raise ValueError(
                f"{self.name}: cannot schedule into the past (delay={delay_ps})"
            )
        self.sim.schedule_after(delay_ps, callback, args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class Port:
    """One direction of a point-to-point link between two components.

    Messages sent on the port arrive at the peer's handler after the
    configured latency.  Bind the two directions separately::

        req = Port(sim, "dev.req", latency_ps=1000)
        req.connect(host.handle_request)
        req.send(packet)
    """

    def __init__(self, sim: Simulator, name: str, latency_ps: int = 0) -> None:
        self.sim = sim
        self.name = name
        self.latency_ps = latency_ps
        self._handler: Optional[Callable[[Any], None]] = None
        self.sent = 0
        self.delivered = 0

    def connect(self, handler: Callable[[Any], None]) -> None:
        if self._handler is not None:
            raise RuntimeError(f"port {self.name!r} is already connected")
        self._handler = handler

    @property
    def connected(self) -> bool:
        return self._handler is not None

    def send(self, payload: Any, extra_delay_ps: int = 0) -> None:
        """Deliver ``payload`` to the peer after port latency."""
        if self._handler is None:
            raise RuntimeError(f"port {self.name!r} is not connected")
        self.sent += 1
        delay_ps = self.latency_ps + extra_delay_ps
        if delay_ps < 0:
            raise ValueError(
                f"port {self.name!r}: cannot deliver into the past (delay={delay_ps})"
            )
        self.sim.schedule_after(delay_ps, self._deliver, (payload,))

    def _deliver(self, payload: Any) -> None:
        self.delivered += 1
        assert self._handler is not None
        self._handler(payload)
