"""Conservative parallel simulation of Supernode coherent traffic.

Supernode hosts are independent builder-constructed systems that only
interact through the switch fabric, so an N-host run parallelises with
the classic conservative (windowed lockstep) scheme:

* every host becomes a **lane**: its share of the op stream, a host-
  local virtual clock, a mirror of its local-agent replica set, and a
  full replica of the global directory;
* simulated time advances in **windows** whose width is the minimum
  fabric-crossing latency between two hosts (the lookahead) — within a
  window no host's action can affect another host, so lanes run
  completely independently;
* at each window barrier lanes exchange the global-coherence requests
  they issued, merge them into one deterministic stream (sorted by
  issue time, then host index, then per-host sequence), and every lane
  applies the *whole* merged stream to its replicated directory.  All
  replicas therefore evolve identically, with no coordinator process.

Because the merged fabric-boundary event order is a pure function of
the window schedule — never of process count or OS scheduling — running
the lanes serially in-process (``jobs=1``) and running them on forked
worker processes (``jobs>=2``) produce **bit-identical** measurements.
The parity tests and the CI ``parallel-smoke`` job pin exactly that.

Cross-process exchange is pickle-free: each lane owns a fixed-size
``multiprocessing.Array('q')`` outbox (a header carrying the lane's
next-event time plus flat ``(t, seq, line, excl)`` request slots), and
two ``multiprocessing.Barrier`` waits per window separate the write and
read phases.  A lane whose calendar drains early keeps participating in
the barriers with an empty outbox until every lane is done, so an
idle host can never stall the window sync.

Fault plans work in windowed mode too: each lane evaluates the
time-windowed plan queries against its own clock and consumes
corruption draws from a lane-local (per-link) counter, so fault
outcomes are equally independent of the process count.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Per-access issue pacing of the windowed model (ps).  Keeps every
#: lane's virtual clock advancing even through local-hit streaks, and
#: bounds how many requests one lane can emit per window (used to size
#: the shared outboxes).  Matches the legacy synchronous fault path's
#: pacing so fault-plan timelines mean the same thing in both models.
WINDOW_ISSUE_GAP_PS = 50_000

#: Window width stand-in for single-host systems (no fabric crossing
#: exists, so one window covers the whole run).
_NO_CROSSING_PS = 1 << 62

_FORK_CONTEXT = "fork"


class ParallelSimError(RuntimeError):
    """The windowed-parallel runner hit an internal invariant failure."""


def min_crossing_ps(supernode) -> int:
    """Minimum one-way fabric latency between two distinct hosts (ps).

    This is the conservative lookahead: within a window narrower than
    this, no host's coherence action can reach another host.  Computed
    from static routes (without the ``packets_routed`` side effect of
    :meth:`~repro.cxl.switch.SwitchFabric.latency_ps`).
    """
    fabric = supernode.fabric
    hosts = sorted(supernode.hosts)
    best: Optional[int] = None
    for i, src in enumerate(hosts):
        for dst in hosts[i + 1:]:
            path = fabric.route(src, dst)
            cost = sum(fabric.switch(name).traversal_ps for name in path)
            if best is None or cost < best:
                best = cost
    return best if best is not None else _NO_CROSSING_PS


def remote_latency_table(supernode) -> Dict[str, int]:
    """Paid fabric latency per host for one remote access (ps).

    Mirrors :meth:`Supernode.coherent_access`'s miss cost — a round
    trip to the fabric's memory endpoint — precomputed once so lanes
    never route (or mutate switch counters) inside the hot loop.
    """
    fabric = supernode.fabric
    endpoint = supernode._any_fabric_endpoint()
    table: Dict[str, int] = {}
    for host in sorted(supernode.hosts):
        path = fabric.route(host, endpoint)
        oneway = sum(fabric.switch(name).traversal_ps for name in path)
        table[host] = 2 * oneway
    return table


# ---------------------------------------------------------------------
# Lanes
# ---------------------------------------------------------------------
@dataclass
class _FaultContext:
    """Static fault-plan bindings one lane evaluates on its own clock."""

    controller: object
    fabric_name: str
    link_key: Tuple[str, str]
    recovery_times: Tuple[int, ...]


class _Lane:
    """One host's share of the run: ops, clock, replicas, counters."""

    __slots__ = (
        "idx", "host", "lines", "excl", "delays", "n", "i", "seq",
        "remote_latency_ps", "clock", "replicas",
        "accesses", "latency_ps", "local_hits", "global_requests",
        "remote_accesses", "naks",
        "fault", "attempted", "completed", "dropped", "retries",
        "corrupted", "draws", "min_after", "op_t", "op_attempt",
        "op_redeliver", "op_started",
    )

    def __init__(
        self,
        idx: int,
        host: str,
        lines: Sequence[int],
        excl: Sequence[int],
        delays: Sequence[int],
        remote_latency_ps: int,
        fault: Optional[_FaultContext] = None,
    ) -> None:
        self.idx = idx
        self.host = host
        self.lines = list(lines)
        self.excl = list(excl)
        self.delays = list(delays)
        self.n = len(self.lines)
        self.i = 0
        self.seq = 0
        self.remote_latency_ps = remote_latency_ps
        self.clock = 0
        self.replicas: Dict[int, bool] = {}
        self.accesses = 0
        self.latency_ps = 0
        self.local_hits = 0
        self.global_requests = 0
        self.remote_accesses = 0
        self.naks = 0
        self.fault = fault
        self.attempted = 0
        self.completed = 0
        self.dropped = 0
        self.retries = 0
        self.corrupted = 0
        self.draws = 0
        self.min_after: List[int] = (
            [-1] * len(fault.recovery_times) if fault is not None else []
        )
        # Mid-op resume state for the faulted path (retries can carry an
        # op across window boundaries).
        self.op_t: Optional[int] = None
        self.op_attempt = 0
        self.op_redeliver = 0
        self.op_started = False

    # -- hot loop -------------------------------------------------------
    def probe(self, line: int, excl: bool) -> int:
        """Local-agent probe; returns the paid latency (0 on a hit).

        Mirrors :meth:`LocalAgent.access` + the supernode miss cost: a
        miss fills the replica immediately (own fills are visible to
        this lane within the window) and the matching global request is
        emitted by the caller for the barrier merge.
        """
        held = self.replicas.get(line)
        if held is not None and (not excl or held):
            self.local_hits += 1
            return 0
        self.global_requests += 1
        self.remote_accesses += 1
        self.replicas[line] = excl
        return self.remote_latency_ps

    def run_window(
        self, window_end: int, out: List[Tuple[int, int, int, int, int]]
    ) -> int:
        """Advance this lane to ``window_end``; returns the next event
        time (``-1`` once the lane's calendar is empty).

        Emitted global requests are appended to ``out`` as
        ``(t, host_idx, seq, line, excl)`` tuples.
        """
        if self.fault is not None:
            return self._run_window_faulted(window_end, out)
        while self.i < self.n:
            t = self.clock + self.delays[self.i] + WINDOW_ISSUE_GAP_PS
            if t >= window_end:
                return t
            line = self.lines[self.i]
            excl = bool(self.excl[self.i])
            held = self.replicas.get(line)
            if held is not None and (not excl or held):
                self.local_hits += 1
                paid = 0
            else:
                self.global_requests += 1
                self.remote_accesses += 1
                self.replicas[line] = excl
                out.append((t, self.idx, self.seq, line, int(excl)))
                self.seq += 1
                paid = self.remote_latency_ps
                self.latency_ps += paid
            self.accesses += 1
            self.clock = t + paid
            self.i += 1
        return -1

    # -- faulted variant ------------------------------------------------
    def _corrupt_hit(self, t: int) -> bool:
        """Lane-local corruption draws (one per active msg_corrupt event).

        The legacy synchronous path consumes a controller-global draw
        counter; a windowed lane draws from its own per-link counter so
        outcomes stay independent of how lanes interleave — identical
        for the serial and parallel windowed runs by construction.
        """
        from repro.faults.plan import corrupt_draw

        ctx = self.fault
        controller = ctx.controller
        hit = False
        key_str = "--".join(ctx.link_key)
        for event in controller._corrupts.get(ctx.link_key, ()):
            if event.active_at(t):
                index = self.draws
                self.draws += 1
                if corrupt_draw(controller.seed, key_str, index, event.rate):
                    hit = True
        return hit

    def _run_window_faulted(
        self, window_end: int, out: List[Tuple[int, int, int, int, int]]
    ) -> int:
        """Fault-aware window step, mirroring the legacy virtual-clock
        loop (:meth:`WorkloadDriver._drive_supernode_faulted`) op for op:
        link/fabric outages raise-or-retry, down hosts NAK, degraded
        latency scales by the active factor, corrupted completions
        retransmit, and completions/drops feed the availability stats.
        """
        from repro.core.supernode import HostDownError
        from repro.faults.controller import FaultActiveError

        ctx = self.fault
        controller = ctx.controller
        retry = controller.retry
        key = ctx.link_key
        fabric_name = ctx.fabric_name
        while True:
            if self.op_t is None:
                if self.i >= self.n:
                    return -1
                self.op_t = (
                    self.clock + self.delays[self.i] + WINDOW_ISSUE_GAP_PS
                )
                self.op_attempt = 0
                self.op_redeliver = 0
                self.op_started = False
            t = self.op_t
            if t >= window_end:
                return t
            if not self.op_started:
                self.op_started = True
                self.attempted += 1
            line = self.lines[self.i]
            excl = bool(self.excl[self.i])
            if controller.link_down(key, t) or controller.node_down(
                fabric_name, t
            ):
                down: Optional[str] = "link"
            elif controller.node_down(self.host, t):
                self.naks += 1
                down = "host"
            else:
                down = None
            if down is not None:
                if not controller.degraded:
                    if down == "host":
                        raise HostDownError(
                            f"supernode host {self.host!r} is down: coherent "
                            f"access NAKed ({self.naks} so far)"
                        )
                    raise FaultActiveError(
                        f"path {key[0]}--{key[1]} is down at {t}ps"
                    )
                if self.op_attempt < retry.max_retries:
                    self.retries += 1
                    self.op_t = t + retry.delay_ps(self.op_attempt)
                    self.op_attempt += 1
                    continue
                self.dropped += 1
                self.clock = t
                self._finish_op()
                continue
            held = self.replicas.get(line)
            if held is not None and (not excl or held):
                self.local_hits += 1
                latency = 0
            else:
                self.global_requests += 1
                self.remote_accesses += 1
                self.replicas[line] = excl
                out.append((t, self.idx, self.seq, line, int(excl)))
                self.seq += 1
                latency = self.remote_latency_ps
            factor = controller.link_factor(key, t)
            paid = latency if factor == 1.0 else int(round(latency * factor))
            t += paid
            if self._corrupt_hit(t):
                self.corrupted += 1
                if not controller.degraded:
                    raise FaultActiveError(
                        f"message on {key[0]}--{key[1]} corrupted at {t}ps"
                    )
                if self.op_redeliver < retry.max_retries:
                    self.op_redeliver += 1
                    self.retries += 1
                    self.op_t = t  # retransmit re-pays another access
                    continue
                self.dropped += 1
                self.clock = t
                self._finish_op()
                continue
            self.accesses += 1
            self.latency_ps += paid
            self.completed += 1
            self._record_completion(t)
            self.clock = t
            self._finish_op()

    def _finish_op(self) -> None:
        self.i += 1
        self.op_t = None

    def _record_completion(self, t: int) -> None:
        for j, recovery in enumerate(self.fault.recovery_times):
            if t >= recovery and (self.min_after[j] < 0 or t < self.min_after[j]):
                self.min_after[j] = t


# ---------------------------------------------------------------------
# Replicated global directory
# ---------------------------------------------------------------------
class _Directory:
    """One worker's replica of the global agent's line directory.

    Every worker applies the *same* merged request stream, so all
    replicas evolve identically; lanes hosted by this worker get their
    replica mirrors invalidated as grants land (the
    :meth:`HierarchicalDomain._wire_invalidations` behavior).
    """

    __slots__ = ("owner", "sharers", "requests", "invalidations")

    def __init__(self) -> None:
        self.owner: Dict[int, int] = {}
        self.sharers: Dict[int, set] = {}
        self.requests = 0
        self.invalidations = 0

    def apply(
        self,
        merged: List[Tuple[int, int, int, int, int]],
        lanes_by_idx: Dict[int, _Lane],
    ) -> None:
        owner_map = self.owner
        sharers_map = self.sharers
        for _t, h, _seq, line, excl in merged:
            self.requests += 1
            owner = owner_map.get(line)
            sharers = sharers_map.get(line)
            if sharers is None:
                sharers = sharers_map[line] = set()
            invalidate: set = set()
            if excl:
                if owner is not None and owner != h:
                    invalidate.add(owner)
                for s in sharers:
                    if s != h:
                        invalidate.add(s)
                owner_map[line] = h
                sharers.clear()
            else:
                if owner is not None and owner != h:
                    invalidate.add(owner)
                    sharers.add(owner)
                    owner_map[line] = None
                sharers.add(h)
            if invalidate:
                self.invalidations += len(invalidate)
                for victim in invalidate:
                    lane = lanes_by_idx.get(victim)
                    if lane is not None:
                        lane.replicas.pop(line, None)


# ---------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------
@dataclass
class LaneResult:
    """Per-host outcome of a windowed run (serial and parallel alike)."""

    host: str
    accesses: int = 0
    latency_ps: int = 0
    local_hits: int = 0
    global_requests: int = 0
    remote_accesses: int = 0
    naks: int = 0
    clock_ps: int = 0
    attempted: int = 0
    completed: int = 0
    dropped: int = 0
    retries: int = 0
    corrupted: int = 0
    min_after: List[int] = field(default_factory=list)


@dataclass
class WindowedOutcome:
    """Outcome of one windowed supernode run."""

    lanes: List[LaneResult]
    window_ps: int
    windows: int
    workers: int
    end_ps: int


def _lane_result(lane: _Lane) -> LaneResult:
    return LaneResult(
        host=lane.host,
        accesses=lane.accesses,
        latency_ps=lane.latency_ps,
        local_hits=lane.local_hits,
        global_requests=lane.global_requests,
        remote_accesses=lane.remote_accesses,
        naks=lane.naks,
        clock_ps=lane.clock,
        attempted=lane.attempted,
        completed=lane.completed,
        dropped=lane.dropped,
        retries=lane.retries,
        corrupted=lane.corrupted,
        min_after=list(lane.min_after),
    )


def _next_window_start(nexts: Sequence[int], window_ps: int) -> int:
    """First window boundary at or before the earliest pending event.

    Lanes report their next event time (or ``-1`` when drained); all
    workers compute the same skip, so empty windows cost nothing and
    the run terminates when every lane is drained (returns ``-1``).
    """
    alive = [t for t in nexts if t >= 0]
    if not alive:
        return -1
    return (min(alive) // window_ps) * window_ps


def _run_serial(lanes: List[_Lane], window_ps: int) -> Tuple[List[LaneResult], int]:
    """The windowed model executed in-process — the parity baseline.

    Identical lane/window/merge code to the parallel runner; the only
    difference is that one loop owns every lane and no IPC happens.
    """
    directory = _Directory()
    lanes_by_idx = {lane.idx: lane for lane in lanes}
    window_start = 0
    windows = 0
    while True:
        windows += 1
        window_end = window_start + window_ps
        merged: List[Tuple[int, int, int, int, int]] = []
        nexts = [lane.run_window(window_end, merged) for lane in lanes]
        merged.sort()
        directory.apply(merged, lanes_by_idx)
        window_start = _next_window_start(nexts, window_ps)
        if window_start < 0:
            break
    return [_lane_result(lane) for lane in lanes], windows


# Shared-outbox layout: [next_t, count, (t, seq, line, excl) * capacity].
_OUTBOX_HEADER = 2
_REQ_INTS = 4
# Fixed per-lane result slots followed by the min-after-recovery times.
_RESULT_FIELDS = (
    "accesses", "latency_ps", "local_hits", "global_requests",
    "remote_accesses", "naks", "clock_ps", "attempted", "completed",
    "dropped", "retries", "corrupted",
)


def _worker_entry(
    worker_idx: int,
    workers: int,
    lanes: List[_Lane],
    window_ps: int,
    outboxes,
    results,
    barrier,
    windows_out,
) -> None:
    """One forked worker: drive ``lanes[worker_idx::workers]`` in lockstep.

    Every worker reads *all* outboxes and applies the full merged
    request stream to its own directory replica, so no coordinator
    process exists and the merge order is independent of scheduling.
    """
    my_lanes = lanes[worker_idx::workers]
    lanes_by_idx = {lane.idx: lane for lane in my_lanes}
    directory = _Directory()
    window_start = 0
    windows = 0
    while True:
        windows += 1
        window_end = window_start + window_ps
        for lane in my_lanes:
            out: List[Tuple[int, int, int, int, int]] = []
            nxt = lane.run_window(window_end, out)
            box = outboxes[lane.idx]
            capacity = (len(box) - _OUTBOX_HEADER) // _REQ_INTS
            if len(out) > capacity:
                raise ParallelSimError(
                    f"lane {lane.host}: {len(out)} requests in one window "
                    f"exceed the outbox capacity {capacity}"
                )
            box[0] = nxt
            box[1] = len(out)
            cursor = _OUTBOX_HEADER
            for t, _h, seq, line, excl in out:
                box[cursor] = t
                box[cursor + 1] = seq
                box[cursor + 2] = line
                box[cursor + 3] = excl
                cursor += _REQ_INTS
        barrier.wait()
        merged = []
        nexts = []
        for idx in range(len(lanes)):
            box = outboxes[idx]
            nexts.append(box[0])
            cursor = _OUTBOX_HEADER
            for _ in range(box[1]):
                merged.append(
                    (box[cursor], idx, box[cursor + 1],
                     box[cursor + 2], box[cursor + 3])
                )
                cursor += _REQ_INTS
        barrier.wait()  # readers done before anyone rewrites an outbox
        merged.sort()
        directory.apply(merged, lanes_by_idx)
        window_start = _next_window_start(nexts, window_ps)
        if window_start < 0:
            break
    if worker_idx == 0:
        windows_out.value = windows
    for lane in my_lanes:
        slot = results[lane.idx]
        for j, name in enumerate(_RESULT_FIELDS):
            slot[j] = getattr(lane, name if name != "clock_ps" else "clock")
        for j, value in enumerate(lane.min_after):
            slot[len(_RESULT_FIELDS) + j] = value


def _run_parallel(
    lanes: List[_Lane], window_ps: int, workers: int
) -> Tuple[List[LaneResult], int]:
    ctx = multiprocessing.get_context(_FORK_CONTEXT)
    # Every op advances a lane's clock by at least the issue gap, so one
    # window can hold at most width/gap ops — plus one op carried over a
    # boundary and slack for retransmit timing.
    if window_ps >= _NO_CROSSING_PS:
        capacity = max(len(lane.lines) for lane in lanes) + 1
    else:
        capacity = window_ps // WINDOW_ISSUE_GAP_PS + 8
    extra = max((len(lane.min_after) for lane in lanes), default=0)
    outboxes = [
        ctx.Array("q", _OUTBOX_HEADER + capacity * _REQ_INTS, lock=False)
        for _ in lanes
    ]
    results = [
        ctx.Array("q", len(_RESULT_FIELDS) + extra, lock=False)
        for _ in lanes
    ]
    windows_out = ctx.Value("q", 0, lock=False)
    barrier = ctx.Barrier(workers)
    processes = [
        ctx.Process(
            target=_worker_entry,
            args=(w, workers, lanes, window_ps, outboxes, results,
                  barrier, windows_out),
            daemon=True,
        )
        for w in range(workers)
    ]
    for proc in processes:
        proc.start()
    for proc in processes:
        proc.join()
    failed = [proc.exitcode for proc in processes if proc.exitcode]
    if failed:
        raise ParallelSimError(
            f"windowed workers exited with codes {failed} — see stderr "
            f"for the lane traceback"
        )
    outcomes: List[LaneResult] = []
    for lane in lanes:
        slot = results[lane.idx]
        values = {name: slot[j] for j, name in enumerate(_RESULT_FIELDS)}
        outcomes.append(
            LaneResult(
                host=lane.host,
                min_after=[
                    slot[len(_RESULT_FIELDS) + j]
                    for j in range(len(lane.min_after))
                ],
                **values,
            )
        )
    return outcomes, int(windows_out.value)


def run_windowed_supernode(
    supernode,
    fabric_name: str,
    per_host_ops: Dict[str, Tuple[Sequence[int], Sequence[int], Sequence[int]]],
    jobs: int = 1,
    controller=None,
) -> WindowedOutcome:
    """Run one windowed supernode simulation; serial and parallel agree.

    ``per_host_ops`` maps each host (sorted order = lane index order) to
    its ``(lines, excl, delays)`` arrays — already rebased to system
    addresses and line-aligned.  ``jobs=1`` runs every lane in-process;
    ``jobs>=2`` forks ``min(jobs, hosts)`` workers.  When the platform
    has no fork start method the runner silently degrades to serial —
    the results are bit-identical either way.
    """
    hosts = sorted(supernode.hosts)
    window_ps = min(min_crossing_ps(supernode), _NO_CROSSING_PS)
    latency_table = remote_latency_table(supernode)
    recovery_times: Tuple[int, ...] = ()
    if controller is not None:
        recovery_times = tuple(sorted({
            e.recovers_at_ps
            for e in controller.matched
            if e.recovers_at_ps is not None
        }))
    lanes: List[_Lane] = []
    for idx, host in enumerate(hosts):
        lines, excl, delays = per_host_ops[host]
        fault = None
        if controller is not None:
            fault = _FaultContext(
                controller=controller,
                fabric_name=fabric_name,
                link_key=tuple(sorted((host, fabric_name))),
                recovery_times=recovery_times,
            )
        lanes.append(
            _Lane(idx, host, lines, excl, delays, latency_table[host], fault)
        )
    workers = max(1, min(int(jobs), len(lanes)))
    if workers > 1 and _FORK_CONTEXT not in multiprocessing.get_all_start_methods():
        workers = 1
    if controller is not None and not controller.degraded:
        # Strict mode fails loud with typed exceptions
        # (HostDownError/FaultActiveError); those must propagate to the
        # caller, not die inside a forked worker — and the results are
        # bit-identical either way.
        workers = 1
    if workers == 1:
        results, windows = _run_serial(lanes, window_ps)
    else:
        results, windows = _run_parallel(lanes, window_ps, workers)
    end_ps = max((r.clock_ps for r in results), default=0)
    return WindowedOutcome(
        lanes=results,
        window_ps=window_ps,
        windows=windows,
        workers=workers,
        end_ps=end_ps,
    )
