"""Clock domains and time-unit helpers.

All engine time is integer picoseconds.  A :class:`Clock` converts
between cycles of a particular frequency and picoseconds, and can round
an arbitrary time up to its next edge, which is how components model
synchronous hand-off between domains (e.g. a 400 MHz device feeding a
2.4 GHz host pipeline).
"""

from __future__ import annotations

PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000


def MHZ(value: float) -> int:
    """Period in picoseconds of a clock at ``value`` MHz."""
    return round(1_000_000 / value)


def GHZ(value: float) -> int:
    """Period in picoseconds of a clock at ``value`` GHz."""
    return round(1_000 / value)


class Clock:
    """A fixed-frequency clock domain."""

    __slots__ = ("period_ps", "name")

    def __init__(self, period_ps: int, name: str = "clk") -> None:
        if period_ps <= 0:
            raise ValueError("clock period must be positive")
        self.period_ps = period_ps
        self.name = name

    @classmethod
    def from_mhz(cls, mhz: float, name: str = "clk") -> "Clock":
        return cls(MHZ(mhz), name)

    @classmethod
    def from_ghz(cls, ghz: float, name: str = "clk") -> "Clock":
        return cls(GHZ(ghz), name)

    @property
    def freq_ghz(self) -> float:
        return 1_000 / self.period_ps

    def cycles(self, n: float) -> int:
        """Duration of ``n`` cycles in picoseconds (rounded)."""
        return round(n * self.period_ps)

    def to_cycles(self, ps: int) -> float:
        """How many cycles of this clock fit in ``ps`` picoseconds."""
        return ps / self.period_ps

    def next_edge(self, now_ps: int) -> int:
        """Earliest clock edge at or after ``now_ps``."""
        remainder = now_ps % self.period_ps
        if remainder == 0:
            return now_ps
        return now_ps + self.period_ps - remainder

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock({self.name}, {self.freq_ghz:.3f} GHz)"
