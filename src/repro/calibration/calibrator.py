"""Parameter calibrator: fit one model knob against a reference target.

The shipped presets were produced by exactly this procedure; the class
stays in the library so users can re-calibrate after changing the
model (the paper's §VI-A.4 methodology: tune SimCXL's configurable
parameters until it matches the testbed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple


@dataclass
class CalibrationTarget:
    """A measurable with its reference value and tolerance."""

    name: str
    reference: float
    tolerance: float = 0.03

    def within(self, measured: float) -> bool:
        return abs(measured - self.reference) <= self.tolerance * abs(self.reference)


class Calibrator:
    """Monotonic 1-D bisection fit of ``measure(param) -> value``.

    ``measure`` must be monotonic in the parameter over the bracket
    (true for every latency/II knob in SimCXL: more picoseconds, more
    latency / less bandwidth).
    """

    def __init__(
        self,
        measure: Callable[[float], float],
        target: CalibrationTarget,
        increasing: bool = True,
    ) -> None:
        self.measure = measure
        self.target = target
        self.increasing = increasing
        self.evaluations = 0

    def fit(
        self,
        low: float,
        high: float,
        max_iters: int = 40,
        rel_tol: float = 1e-3,
    ) -> Tuple[float, float]:
        """Returns ``(param, measured)`` with measured ~= reference."""
        if low >= high:
            raise ValueError("need low < high bracket")
        reference = self.target.reference

        def signed(value: float) -> float:
            delta = value - reference
            return delta if self.increasing else -delta

        lo_val = self.measure(low)
        hi_val = self.measure(high)
        self.evaluations += 2
        if signed(lo_val) > 0 or signed(hi_val) < 0:
            raise ValueError(
                f"target {reference} not bracketed: f({low})={lo_val}, f({high})={hi_val}"
            )
        best = (low, lo_val)
        for _ in range(max_iters):
            mid = (low + high) / 2
            val = self.measure(mid)
            self.evaluations += 1
            if abs(val - reference) < abs(best[1] - reference):
                best = (mid, val)
            if abs(val - reference) <= rel_tol * abs(reference):
                return mid, val
            if signed(val) < 0:
                low = mid
            else:
                high = mid
        return best
