"""Ground-truth measurements from the paper's hardware testbed.

These numbers are transcribed from the paper (Figs. 12-18 and §VI).
They play the role of the physical Agilex FPGA + Xeon testbed: SimCXL's
parameters are fitted against them, and the test suite asserts the
simulated results stay within tolerance (the paper reports a 3% MAPE).
"""

from __future__ import annotations

from typing import Dict

# ---------------------------------------------------------------------
# Fig. 13 — median 64 B load latency (ns)
# ---------------------------------------------------------------------
LOAD_LATENCY_NS: Dict[str, Dict[str, float]] = {
    "CXL-FPGA@400MHz": {"hmc_hit": 115.0, "llc_hit": 575.6, "mem_hit": 688.3},
    "CXL-ASIC@1.5GHz": {"hmc_hit": 10.0, "llc_hit": 217.0, "mem_hit": 260.0},
}

# DMA read latency at 64 B granularity (ns), same figure.
DMA_LATENCY_64B_NS: Dict[str, float] = {
    "PCIe-FPGA@400MHz": 2170.0,
    "PCIe-ASIC@1.5GHz": 1170.0,
}

# ---------------------------------------------------------------------
# Fig. 14 — H2D DMA read latency vs. message granularity (ns), FPGA.
# Below 8 KB the setup overhead dominates (~2.2-2.5 us); beyond it the
# wire time takes over.  Values follow the measured curve shape.
# ---------------------------------------------------------------------
DMA_LATENCY_NS: Dict[int, float] = {
    64: 2170.0,
    256: 2180.0,
    1024: 2215.0,
    4096: 2345.0,
    8192: 2525.0,
    16384: 2880.0,
    65536: 5030.0,
    262144: 13600.0,
}

# ---------------------------------------------------------------------
# Fig. 15 — average 64 B load bandwidth (GB/s)
# ---------------------------------------------------------------------
LOAD_BANDWIDTH_GBPS: Dict[str, Dict[str, float]] = {
    "CXL-FPGA@400MHz": {"hmc_hit": 25.07, "llc_hit": 14.10, "mem_hit": 13.49},
    "CXL-ASIC@1.5GHz": {"hmc_hit": 90.22, "llc_hit": 47.41, "mem_hit": 46.10},
}

DMA_BANDWIDTH_64B_GBPS: Dict[str, float] = {
    "PCIe-FPGA@400MHz": 0.92,
    "PCIe-ASIC@1.5GHz": 1.82,
}

# ---------------------------------------------------------------------
# Fig. 16 — H2D DMA read bandwidth vs. message granularity (GB/s), FPGA
# ---------------------------------------------------------------------
DMA_BANDWIDTH_GBPS: Dict[int, float] = {
    64: 0.92,
    256: 3.45,
    1024: 9.85,
    4096: 16.5,
    8192: 19.2,
    16384: 20.9,
    65536: 22.3,
    262144: 22.9,
}

# ---------------------------------------------------------------------
# Fig. 12 — CXL.cache mem-hit load latency per NUMA node (median ns)
# ---------------------------------------------------------------------
NUMA_MEDIAN_NS: Dict[int, float] = {
    0: 758.0,
    1: 761.0,
    2: 770.0,
    3: 776.0,
    4: 710.0,
    5: 708.0,
    6: 693.0,
    7: 688.0,
}

# ---------------------------------------------------------------------
# Fig. 17 — CXL-RAO vs. PCIe-RAO throughput speedups (CircusTent)
# The paper states RAND 5.5x and CENTRAL 40.2x as the extremes and
# STRIDE1 22.4x; SG/SCATTER/GATHER are "moderate" (bars between the
# extremes; transcribed approximately from the figure).
# ---------------------------------------------------------------------
RAO_SPEEDUP: Dict[str, float] = {
    "RAND": 5.5,
    "STRIDE1": 22.4,
    "CENTRAL": 40.2,
    "SG": 6.5,
    "SCATTER": 7.5,
    "GATHER": 7.5,
}

# ---------------------------------------------------------------------
# Fig. 18a — deserialization speedup CXL-NIC vs. RpcNIC
# Stated extremes: Bench1 2.05x (max), Bench5 1.33x (min); others
# transcribed approximately; the paper's overall average is 1.86x
# across (de)serialization.
# ---------------------------------------------------------------------
RPC_DESER_SPEEDUP: Dict[str, float] = {
    "Bench0": 1.6,
    "Bench1": 2.05,
    "Bench2": 1.45,
    "Bench3": 1.55,
    "Bench4": 1.5,
    "Bench5": 1.33,
}

# Fig. 18b — serialization speedups vs. RpcNIC.
RPC_SER_SPEEDUP_MEM: Dict[str, float] = {
    "Bench0": 3.3,
    "Bench1": 4.06,
    "Bench2": 3.0,
    "Bench3": 3.2,
    "Bench4": 2.8,
    "Bench5": 2.0,
}

RPC_SER_SPEEDUP_CACHE_PF: Dict[str, float] = {
    "Bench0": 1.5,
    "Bench1": 1.65,
    "Bench2": 1.34,
    "Bench3": 1.5,
    "Bench4": 1.45,
    "Bench5": 1.4,
}

# Prefetcher gain over no-prefetch serialization: 12% average, 3.6%
# minimum on the deeply nested Bench2.
RPC_PREFETCH_GAIN_AVG = 0.12
RPC_PREFETCH_GAIN_MIN = 0.036

# §VI headline numbers.
HEADLINE_LATENCY_REDUCTION = 0.68     # CXL.cache vs DMA at 64 B
HEADLINE_BANDWIDTH_RATIO = 14.4       # CXL.cache vs DMA at 64 B
TARGET_MAPE = 0.03
