"""Error metrics for hardware calibration."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple


def absolute_percentage_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference|."""
    if reference == 0:
        raise ValueError("reference value must be nonzero")
    return abs(measured - reference) / abs(reference)


def mape(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean absolute percentage error over ``(measured, reference)`` pairs."""
    errors = [absolute_percentage_error(m, r) for m, r in pairs]
    if not errors:
        raise ValueError("no calibration points")
    return sum(errors) / len(errors)


def mape_by_key(
    measured: Mapping[str, float], reference: Mapping[str, float]
) -> Dict[str, float]:
    """Per-key absolute percentage error for matching keys."""
    common = set(measured) & set(reference)
    if not common:
        raise ValueError("no overlapping calibration keys")
    return {
        key: absolute_percentage_error(measured[key], reference[key])
        for key in sorted(common)
    }


def _numeric_pairs(
    measured: Mapping, reference: Mapping
) -> Iterable[Tuple[float, float]]:
    """Yield ``(measured, reference)`` numeric leaves with matching keys.

    Keys are compared as strings so that series loaded back from JSON
    (where integer keys become strings) still pair with in-memory
    reference data; nested mappings are descended recursively.
    """
    ref_by_str = {str(k): v for k, v in reference.items()}
    for key, value in measured.items():
        ref_value = ref_by_str.get(str(key))
        if ref_value is None:
            continue
        if isinstance(value, Mapping) and isinstance(ref_value, Mapping):
            yield from _numeric_pairs(value, ref_value)
        elif (
            isinstance(value, (int, float))
            and isinstance(ref_value, (int, float))
            and not isinstance(value, bool)
            and not isinstance(ref_value, bool)
        ):
            yield (float(value), float(ref_value))


def series_mape(measured: Mapping, reference: Mapping) -> float:
    """MAPE between two (possibly nested) numeric series mappings.

    Used by the experiment report layer to compare stored (JSON
    round-tripped) series against :mod:`repro.calibration.reference`
    data.  Raises :class:`ValueError` when the mappings share no
    numeric points.
    """
    return mape(_numeric_pairs(measured, reference))
