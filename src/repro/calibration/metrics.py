"""Error metrics for hardware calibration."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple


def absolute_percentage_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference|."""
    if reference == 0:
        raise ValueError("reference value must be nonzero")
    return abs(measured - reference) / abs(reference)


def mape(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean absolute percentage error over ``(measured, reference)`` pairs."""
    errors = [absolute_percentage_error(m, r) for m, r in pairs]
    if not errors:
        raise ValueError("no calibration points")
    return sum(errors) / len(errors)


def mape_by_key(
    measured: Mapping[str, float], reference: Mapping[str, float]
) -> Dict[str, float]:
    """Per-key absolute percentage error for matching keys."""
    common = set(measured) & set(reference)
    if not common:
        raise ValueError("no overlapping calibration keys")
    return {
        key: absolute_percentage_error(measured[key], reference[key])
        for key in sorted(common)
    }
