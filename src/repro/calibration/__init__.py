"""Hardware calibration: reference measurements, metrics, fitting."""

from repro.calibration.reference import (
    DMA_BANDWIDTH_GBPS,
    DMA_LATENCY_NS,
    LOAD_BANDWIDTH_GBPS,
    LOAD_LATENCY_NS,
    NUMA_MEDIAN_NS,
    RAO_SPEEDUP,
    RPC_DESER_SPEEDUP,
    RPC_SER_SPEEDUP_MEM,
)
from repro.calibration.metrics import absolute_percentage_error, mape
from repro.calibration.microbench import CxlTestbench
from repro.calibration.calibrator import Calibrator, CalibrationTarget

__all__ = [
    "DMA_BANDWIDTH_GBPS",
    "DMA_LATENCY_NS",
    "LOAD_BANDWIDTH_GBPS",
    "LOAD_LATENCY_NS",
    "NUMA_MEDIAN_NS",
    "RAO_SPEEDUP",
    "RPC_DESER_SPEEDUP",
    "RPC_SER_SPEEDUP_MEM",
    "absolute_percentage_error",
    "mape",
    "CxlTestbench",
    "Calibrator",
    "CalibrationTarget",
]
