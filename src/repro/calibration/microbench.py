"""Calibration microbenchmark testbench.

Builds the §VI-A hardware through the :mod:`repro.system` construction
layer — the ``"microbench"`` topology assembles an LSU behind a type-1
CXL device, the shared LLC, host memory, and a DMA engine — then runs
the four preconditioned measurements (HMC hit, LLC hit, mem hit, DMA)
for latency and bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config.system import SystemConfig
from repro.devices.dma import DmaReport
from repro.devices.lsu import LsuReport
from repro.mem.address import CACHELINE
from repro.system import SystemBuilder


class CxlTestbench:
    """One-shot testbench; build a fresh instance per measurement."""

    def __init__(self, config: SystemConfig, seed: int = 1234) -> None:
        self.config = config
        self.system = SystemBuilder(config).build("microbench", seed=seed)
        self.sim = self.system.sim
        self.memif = self.system.memif
        self.controller = self.system.host_controller
        self.region = self.system.host_region
        self.llc = self.system.llc
        self.device = self.system.node("cxl-dev")
        self.lsu = self.system.node("lsu")
        self.dma = self.system.node("dma")
        self.topology = self.system.node("noc")

    # ------------------------------------------------------------------
    # Fig. 13 / Fig. 15 tiers
    # ------------------------------------------------------------------
    def _addresses(self, count: int, base: int = 0x100000) -> List[int]:
        return self.lsu.sequential_lines(base, count)

    def latency_hmc_hit(self, count: int = 32, trials: int = 32) -> LsuReport:
        """Repeating address sequences keep hitting the HMC."""
        addrs = self._addresses(count)
        self.lsu.warm_hmc(addrs)
        return self.lsu.run_latency(addrs * trials)

    def latency_llc_hit(self, count: int = 32, trials: int = 32) -> LsuReport:
        """CLDEMOTE pushes the lines to the LLC before each trial."""
        samples = None
        base = 0x100000
        for trial in range(trials):
            addrs = self._addresses(count, base + trial * count * CACHELINE * 2)
            for addr in addrs:
                self.llc.demote(addr)
            report = self.lsu.run_latency(addrs)
            samples = self._merge(samples, report)
        return samples

    def latency_mem_hit(self, count: int = 32, trials: int = 32, node: int = 7) -> LsuReport:
        """CLFLUSH pushes the lines all the way to memory; NUMA distance
        selects which node's memory the pages live on (Fig. 12)."""
        samples = None
        base = 0x200000
        extra = self.topology.extra_ps(node)
        for trial in range(trials):
            addrs = self._addresses(count, base + trial * count * CACHELINE * 2)
            for addr in addrs:
                self.llc.flush(addr)
            report = self.lsu.run_latency(addrs, extra_rt_ps=extra)
            samples = self._merge(samples, report)
        return samples

    @staticmethod
    def _merge(acc: Optional[LsuReport], new: LsuReport) -> LsuReport:
        if acc is None:
            return new
        acc.latencies.extend(new.latencies.samples)
        return LsuReport(
            latencies=acc.latencies,
            bandwidth_gbps=None,
            hmc_hits=new.hmc_hits,
            requests=acc.requests + new.requests,
        )

    def bandwidth_hmc_hit(self, count: int = 2048) -> LsuReport:
        addrs = self._addresses(count)
        self.lsu.warm_hmc(addrs)
        return self.lsu.run_bandwidth(addrs)

    def bandwidth_llc_hit(self, count: int = 2048) -> LsuReport:
        addrs = self._addresses(count)
        for addr in addrs:
            self.llc.demote(addr)
        return self.lsu.run_bandwidth(addrs)

    def bandwidth_mem_hit(self, count: int = 2048) -> LsuReport:
        addrs = self._addresses(count)
        for addr in addrs:
            self.llc.flush(addr)
        return self.lsu.run_bandwidth(addrs)

    # ------------------------------------------------------------------
    # DMA measurements (Figs. 14/16)
    # ------------------------------------------------------------------
    def dma_latency(self, size: int = 64, repeats: int = 100) -> DmaReport:
        return self.dma.measure_latency(size, repeats=repeats)

    def dma_bandwidth(self, size: int = 64, descriptors: int = 2048) -> DmaReport:
        return self.dma.measure_bandwidth(size, descriptors=descriptors)
