"""Synthetic traffic generators: the built-in workload library.

Each factory registers in :data:`~repro.workloads.base.WORKLOADS` and
returns a :class:`~repro.workloads.base.Workload` whose stream is fully
determined by the expansion seed.  Address arguments are in cache
lines (the driver rebases whole streams, so generators only encode
*relative* locality); counts are total operations, so experiment wall
time scales linearly with the first knob of every factory.

``phases([...])`` composes any workloads into one mixed-behavior
stream: phase ``i`` expands under a seed derived from the base seed and
its position, then streams are concatenated in order — a warm-up scan
followed by skewed random traffic followed by a sharing storm is one
registry entry, not a new harness.
"""

from __future__ import annotations

import bisect
import random
from typing import Iterable, List, Sequence, Union

from repro.mem.address import CACHELINE
from repro.workloads.base import (
    Workload,
    WorkloadOp,
    register_workload,
    resolve_workload,
)

#: Generators keep their footprints inside this many lines unless a
#: knob says otherwise, so every built-in workload fits one HMC/LLC-ish
#: working set and two workloads with distinct bases never alias.
DEFAULT_FOOTPRINT_LINES = 4096


def _line(index: int) -> int:
    return index * CACHELINE


@register_workload("sequential")
def sequential(count: Union[int, float] = 256, stride: Union[int, float] = 1) -> Workload:
    """Sequential/strided read stream (stride in cache lines)."""
    count, stride = int(count), int(stride)
    if count < 1 or stride < 1:
        raise ValueError("sequential(count, stride) needs count >= 1, stride >= 1")

    def generate(_rng: random.Random) -> Iterable[WorkloadOp]:
        return [
            WorkloadOp("read", _line(i * stride)) for i in range(count)
        ]

    return Workload(
        name=f"sequential({count},{stride})" if stride != 1 else f"sequential({count})",
        description=sequential.__doc__.splitlines()[0],
        params={"count": count, "stride": stride},
        generate=generate,
    )


@register_workload("uniform")
def uniform(
    count: Union[int, float] = 256, lines: Union[int, float] = DEFAULT_FOOTPRINT_LINES
) -> Workload:
    """Uniform random reads over a fixed working set."""
    count, lines = int(count), int(lines)
    if count < 1 or lines < 1:
        raise ValueError("uniform(count, lines) needs count >= 1, lines >= 1")

    def generate(rng: random.Random) -> Iterable[WorkloadOp]:
        return [
            WorkloadOp("read", _line(rng.randrange(lines))) for _ in range(count)
        ]

    return Workload(
        name=f"uniform({count},{lines})",
        description=uniform.__doc__.splitlines()[0],
        params={"count": count, "lines": lines},
        generate=generate,
    )


@register_workload("zipf")
def zipf(
    count: Union[int, float] = 256,
    alpha: Union[int, float] = 1.2,
    lines: Union[int, float] = DEFAULT_FOOTPRINT_LINES,
) -> Workload:
    """Zipf-skewed random reads (rank-``alpha`` popularity over the set)."""
    count, alpha, lines = int(count), float(alpha), int(lines)
    if count < 1 or lines < 1 or alpha <= 0:
        raise ValueError("zipf(count, alpha, lines) needs positive knobs")

    # Precompute the rank CDF once per expansion; the stream itself only
    # draws uniforms, so the cost stays O(lines + count).
    def generate(rng: random.Random) -> Iterable[WorkloadOp]:
        weights = [1.0 / (rank + 1) ** alpha for rank in range(lines)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        ops = []
        for _ in range(count):
            rank = bisect.bisect_left(cdf, rng.random())
            ops.append(WorkloadOp("read", _line(min(rank, lines - 1))))
        return ops

    return Workload(
        name=f"zipf({count},{alpha:g})",
        description=zipf.__doc__.splitlines()[0],
        params={"count": count, "alpha": alpha, "lines": lines},
        generate=generate,
    )


@register_workload("pointer-chase")
def pointer_chase(
    count: Union[int, float] = 256, lines: Union[int, float] = 512
) -> Workload:
    """Pointer chase: a random permutation cycle walked dependently."""
    count, lines = int(count), int(lines)
    if count < 1 or lines < 2:
        raise ValueError("pointer-chase(count, lines) needs count >= 1, lines >= 2")

    def generate(rng: random.Random) -> Iterable[WorkloadOp]:
        order = list(range(lines))
        rng.shuffle(order)
        next_of = {order[i]: order[(i + 1) % lines] for i in range(lines)}
        ops = []
        node = order[0]
        for _ in range(count):
            ops.append(WorkloadOp("read", _line(node)))
            node = next_of[node]
        return ops

    return Workload(
        name=f"pointer-chase({count},{lines})",
        description=pointer_chase.__doc__.splitlines()[0],
        params={"count": count, "lines": lines},
        generate=generate,
    )


@register_workload("producer-consumer")
def producer_consumer(
    count: Union[int, float] = 128, lines: Union[int, float] = 64
) -> Workload:
    """Producer/consumer sharing: stream 0 writes lines stream 1 reads."""
    count, lines = int(count), int(lines)
    if count < 1 or lines < 1:
        raise ValueError("producer-consumer(count, lines) needs positive knobs")

    def generate(_rng: random.Random) -> Iterable[WorkloadOp]:
        ops = []
        for i in range(count):
            addr = _line(i % lines)
            ops.append(WorkloadOp("write", addr, stream=0))
            ops.append(WorkloadOp("read", addr, stream=1))
        return ops

    return Workload(
        name=f"producer-consumer({count},{lines})",
        description=producer_consumer.__doc__.splitlines()[0],
        params={"count": count, "lines": lines},
        generate=generate,
    )


@register_workload("rw-mix")
def rw_mix(
    count: Union[int, float] = 256,
    read_fraction: Union[int, float] = 0.7,
    lines: Union[int, float] = DEFAULT_FOOTPRINT_LINES,
) -> Workload:
    """Read/write mix at a given read fraction over a random working set."""
    count, read_fraction, lines = int(count), float(read_fraction), int(lines)
    if count < 1 or lines < 1 or not 0.0 <= read_fraction <= 1.0:
        raise ValueError(
            "rw-mix(count, read_fraction, lines) needs count/lines >= 1 "
            "and read_fraction in [0, 1]"
        )

    def generate(rng: random.Random) -> Iterable[WorkloadOp]:
        return [
            WorkloadOp(
                "read" if rng.random() < read_fraction else "write",
                _line(rng.randrange(lines)),
            )
            for _ in range(count)
        ]

    return Workload(
        name=f"rw-mix({count},{read_fraction:g})",
        description=rw_mix.__doc__.splitlines()[0],
        params={"count": count, "read_fraction": read_fraction, "lines": lines},
        generate=generate,
    )


# ---------------------------------------------------------------------
# Phase composition
# ---------------------------------------------------------------------
def phases(parts: Sequence[Union[str, Workload]], name: str = "") -> Workload:
    """Compose workloads into one mixed-behavior stream, run in order.

    Each part may be a :class:`Workload` or a reference string; phase
    ``i`` expands under ``seed + i`` (derived, so the composition is as
    deterministic as its parts) and the streams concatenate.  Stream
    ids pass through untouched — a two-stream sharing phase stays
    two-stream inside a composition.
    """
    if not parts:
        raise ValueError("phases([...]) needs at least one workload")
    resolved = [resolve_workload(part) for part in parts]
    label = name or "phases(" + "+".join(w.name for w in resolved) + ")"

    def generate(rng: random.Random) -> Iterable[WorkloadOp]:
        # Derive one sub-seed per phase from the composition's rng so
        # the whole stream is a pure function of the expansion seed.
        ops: List[WorkloadOp] = []
        for part in resolved:
            ops.extend(part.ops(seed=rng.randrange(2**31)))
        return ops

    return Workload(
        name=label,
        description="phase composition: " + " then ".join(w.name for w in resolved),
        params={"phases": [w.name for w in resolved]},
        generate=generate,
    )


@register_workload("mixed")
def mixed(count: Union[int, float] = 128) -> Workload:
    """Phase-composed mix: sequential warm-up, Zipf reads, r/w storm."""
    count = int(count)
    if count < 1:
        raise ValueError("mixed(count) needs count >= 1")
    return phases(
        [
            sequential(count),
            zipf(count, 1.2, max(count, 2)),
            rw_mix(count, 0.5, max(count // 2, 1)),
        ],
        name=f"mixed({count})",
    )
