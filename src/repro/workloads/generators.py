"""Synthetic traffic generators: the built-in workload library.

Each factory registers in :data:`~repro.workloads.base.WORKLOADS` and
returns a :class:`~repro.workloads.base.Workload` whose stream is fully
determined by the expansion seed.  Address arguments are in cache
lines (the driver rebases whole streams, so generators only encode
*relative* locality); counts are total operations, so experiment wall
time scales linearly with the first knob of every factory.

``phases([...])`` composes any workloads into one mixed-behavior
stream: phase ``i`` expands under a seed derived from the base seed and
its position, then streams are concatenated in order — a warm-up scan
followed by skewed random traffic followed by a sharing storm is one
registry entry, not a new harness.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Union

import numpy as np

from repro.mem.address import CACHELINE
from repro.workloads.base import (
    Workload,
    WorkloadOp,
    register_workload,
    resolve_workload,
)
from repro.workloads.vectorized import (
    KIND_READ,
    KIND_WRITE,
    OpBatch,
    numpy_rng,
)

#: Generators keep their footprints inside this many lines unless a
#: knob says otherwise, so every built-in workload fits one HMC/LLC-ish
#: working set and two workloads with distinct bases never alias.
DEFAULT_FOOTPRINT_LINES = 4096


def _line(index: int) -> int:
    return index * CACHELINE


@register_workload("sequential")
def sequential(count: Union[int, float] = 256, stride: Union[int, float] = 1) -> Workload:
    """Sequential/strided read stream (stride in cache lines)."""
    count, stride = int(count), int(stride)
    if count < 1 or stride < 1:
        raise ValueError("sequential(count, stride) needs count >= 1, stride >= 1")

    def generate_batch(_rng: random.Random) -> OpBatch:
        return OpBatch.reads(np.arange(count, dtype=np.int64) * stride)

    return Workload(
        name=f"sequential({count},{stride})" if stride != 1 else f"sequential({count})",
        description=sequential.__doc__.splitlines()[0],
        params={"count": count, "stride": stride},
        generate_batch=generate_batch,
    )


@register_workload("uniform")
def uniform(
    count: Union[int, float] = 256, lines: Union[int, float] = DEFAULT_FOOTPRINT_LINES
) -> Workload:
    """Uniform random reads over a fixed working set."""
    count, lines = int(count), int(lines)
    if count < 1 or lines < 1:
        raise ValueError("uniform(count, lines) needs count >= 1, lines >= 1")

    def generate_batch(rng: random.Random) -> OpBatch:
        ng = numpy_rng(rng)
        return OpBatch.reads(ng.integers(0, lines, size=count, dtype=np.int64))

    return Workload(
        name=f"uniform({count},{lines})",
        description=uniform.__doc__.splitlines()[0],
        params={"count": count, "lines": lines},
        generate_batch=generate_batch,
    )


@register_workload("zipf")
def zipf(
    count: Union[int, float] = 256,
    alpha: Union[int, float] = 1.2,
    lines: Union[int, float] = DEFAULT_FOOTPRINT_LINES,
) -> Workload:
    """Zipf-skewed random reads (rank-``alpha`` popularity over the set)."""
    count, alpha, lines = int(count), float(alpha), int(lines)
    if count < 1 or lines < 1 or alpha <= 0:
        raise ValueError("zipf(count, alpha, lines) needs positive knobs")

    # Precompute the rank CDF once per expansion; the stream itself only
    # draws uniforms, so the cost stays O(lines + count).
    def generate_batch(rng: random.Random) -> OpBatch:
        ng = numpy_rng(rng)
        weights = 1.0 / np.power(np.arange(1, lines + 1, dtype=np.float64), alpha)
        cdf = np.cumsum(weights / weights.sum())
        ranks = np.searchsorted(cdf, ng.random(count), side="left")
        return OpBatch.reads(np.minimum(ranks, lines - 1).astype(np.int64))

    return Workload(
        name=f"zipf({count},{alpha:g})",
        description=zipf.__doc__.splitlines()[0],
        params={"count": count, "alpha": alpha, "lines": lines},
        generate_batch=generate_batch,
    )


@register_workload("pointer-chase")
def pointer_chase(
    count: Union[int, float] = 256, lines: Union[int, float] = 512
) -> Workload:
    """Pointer chase: a random permutation cycle walked dependently."""
    count, lines = int(count), int(lines)
    if count < 1 or lines < 2:
        raise ValueError("pointer-chase(count, lines) needs count >= 1, lines >= 2")

    # Dependent walk — each address is the previous op's pointee, so
    # this one stays scalar; Workload.batch() columnarizes the op list.
    def generate(rng: random.Random) -> List[WorkloadOp]:
        order = list(range(lines))
        rng.shuffle(order)
        next_of = {order[i]: order[(i + 1) % lines] for i in range(lines)}
        ops = []
        node = order[0]
        for _ in range(count):
            ops.append(WorkloadOp("read", _line(node)))
            node = next_of[node]
        return ops

    return Workload(
        name=f"pointer-chase({count},{lines})",
        description=pointer_chase.__doc__.splitlines()[0],
        params={"count": count, "lines": lines},
        generate=generate,
    )


@register_workload("producer-consumer")
def producer_consumer(
    count: Union[int, float] = 128, lines: Union[int, float] = 64
) -> Workload:
    """Producer/consumer sharing: stream 0 writes lines stream 1 reads."""
    count, lines = int(count), int(lines)
    if count < 1 or lines < 1:
        raise ValueError("producer-consumer(count, lines) needs positive knobs")

    def generate_batch(_rng: random.Random) -> OpBatch:
        # Interleaved write/read pairs over the shared lines: rows
        # 2i/2i+1 are stream 0's write and stream 1's read of line i%lines.
        line_idx = np.repeat(np.arange(count, dtype=np.int64) % lines, 2)
        kinds = np.tile(
            np.array([KIND_WRITE, KIND_READ], dtype=np.uint8), count
        )
        streams = np.tile(np.array([0, 1], dtype=np.int64), count)
        return OpBatch(
            kinds=kinds,
            addrs=line_idx * CACHELINE,
            sizes=np.full(2 * count, CACHELINE, dtype=np.int64),
            delays=np.zeros(2 * count, dtype=np.int64),
            streams=streams,
        )

    return Workload(
        name=f"producer-consumer({count},{lines})",
        description=producer_consumer.__doc__.splitlines()[0],
        params={"count": count, "lines": lines},
        generate_batch=generate_batch,
    )


@register_workload("rw-mix")
def rw_mix(
    count: Union[int, float] = 256,
    read_fraction: Union[int, float] = 0.7,
    lines: Union[int, float] = DEFAULT_FOOTPRINT_LINES,
) -> Workload:
    """Read/write mix at a given read fraction over a random working set."""
    count, read_fraction, lines = int(count), float(read_fraction), int(lines)
    if count < 1 or lines < 1 or not 0.0 <= read_fraction <= 1.0:
        raise ValueError(
            "rw-mix(count, read_fraction, lines) needs count/lines >= 1 "
            "and read_fraction in [0, 1]"
        )

    def generate_batch(rng: random.Random) -> OpBatch:
        ng = numpy_rng(rng)
        kinds = np.where(
            ng.random(count) < read_fraction, KIND_READ, KIND_WRITE
        ).astype(np.uint8)
        line_idx = ng.integers(0, lines, size=count, dtype=np.int64)
        return OpBatch(
            kinds=kinds,
            addrs=line_idx * CACHELINE,
            sizes=np.full(count, CACHELINE, dtype=np.int64),
            delays=np.zeros(count, dtype=np.int64),
            streams=np.zeros(count, dtype=np.int64),
        )

    return Workload(
        name=f"rw-mix({count},{read_fraction:g})",
        description=rw_mix.__doc__.splitlines()[0],
        params={"count": count, "read_fraction": read_fraction, "lines": lines},
        generate_batch=generate_batch,
    )


# ---------------------------------------------------------------------
# Phase composition
# ---------------------------------------------------------------------
def phases(parts: Sequence[Union[str, Workload]], name: str = "") -> Workload:
    """Compose workloads into one mixed-behavior stream, run in order.

    Each part may be a :class:`Workload` or a reference string; phase
    ``i`` expands under ``seed + i`` (derived, so the composition is as
    deterministic as its parts) and the streams concatenate.  Stream
    ids pass through untouched — a two-stream sharing phase stays
    two-stream inside a composition.
    """
    if not parts:
        raise ValueError("phases([...]) needs at least one workload")
    resolved = [resolve_workload(part) for part in parts]
    label = name or "phases(" + "+".join(w.name for w in resolved) + ")"

    def generate_batch(rng: random.Random) -> OpBatch:
        # Derive one sub-seed per phase from the composition's rng so
        # the whole stream is a pure function of the expansion seed.
        batches: List[OpBatch] = [
            part.batch(seed=rng.randrange(2**31)) for part in resolved
        ]
        return batches[0].concat(batches[1:])

    return Workload(
        name=label,
        description="phase composition: " + " then ".join(w.name for w in resolved),
        params={"phases": [w.name for w in resolved]},
        generate_batch=generate_batch,
    )


@register_workload("mixed")
def mixed(count: Union[int, float] = 128) -> Workload:
    """Phase-composed mix: sequential warm-up, Zipf reads, r/w storm."""
    count = int(count)
    if count < 1:
        raise ValueError("mixed(count) needs count >= 1")
    return phases(
        [
            sequential(count),
            zipf(count, 1.2, max(count, 2)),
            rw_mix(count, 0.5, max(count // 2, 1)),
        ],
        name=f"mixed({count})",
    )
