"""WorkloadDriver: issue any workload through any built system.

The driver closes the loop between the two declarative layers — a
:class:`~repro.workloads.base.Workload` (traffic) and a
:class:`~repro.system.topology.Topology` (shape).  It builds the
topology through the :class:`~repro.system.builder.SystemBuilder` and
dispatches the op stream by what the built system exposes:

* **LSU mode** — topologies with ``lsu`` nodes (microbench, fan-outs,
  anything JSON-loaded with a load/store unit): each stream becomes a
  serialized issue chain on its round-robin LSU, ops flow through the
  DCOH/HMC/LLC path under the discrete-event core, and the measurement
  reports per-stream latency medians and bandwidth.
* **Supernode mode** — topologies with a ``supernode.fabric`` node:
  streams map round-robin onto the per-host systems built by
  ``make_supernode_host``, reads/writes become shared/exclusive
  coherent accesses through the two-level coherence domain, and the
  measurement reports per-host fabric traffic and filter rates.

Measurements are deterministic: the same workload + seed + topology +
config produce a bit-identical :class:`WorkloadMeasurement`, which is
what makes trace record → replay reproduce a run exactly.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.config.system import SystemConfig
from repro.system import SystemBuilder, Topology, resolve_topology
from repro.workloads.base import Workload, WorkloadOp, resolve_workload

#: Streams rebase into the host map at this address — one shared base
#: (not per-stream), so ops that alias in workload space alias in the
#: system too (producer/consumer sharing relies on this).
WINDOW_BASE = 0x20_0000


class WorkloadDriverError(ValueError):
    """The target system exposes nothing the driver can issue through."""


@dataclass
class WorkloadMeasurement:
    """Deterministic outcome of driving one workload through one system."""

    workload: str
    topology: str
    mode: str  # "lsu" | "supernode"
    seed: int
    ops: int
    reads: int
    writes: int
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form; equality of two dicts is measurement parity."""
        return {
            "workload": self.workload,
            "topology": self.topology,
            "mode": self.mode,
            "seed": self.seed,
            "ops": self.ops,
            "reads": self.reads,
            "writes": self.writes,
            "series": {k: dict(v) for k, v in self.series.items()},
        }

    def render(self) -> str:
        """Human-readable table used by ``repro workload replay``."""
        from repro.harness.tables import render_series

        title = (
            f"workload {self.workload} on {self.topology} ({self.mode} mode, "
            f"seed {self.seed}): {self.ops} ops "
            f"({self.reads} reads / {self.writes} writes)"
        )
        return render_series(
            "host" if self.mode == "supernode" else "stream",
            self.series,
            title=title,
            fmt="{:.3f}",
        )


class WorkloadDriver:
    """Drive workloads through :class:`SystemBuilder`-constructed systems."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config

    def run(
        self,
        workload: Union[str, Workload],
        topology: Union[str, Topology, Dict[str, object]] = "microbench",
        seed: int = 1234,
        streams: Optional[int] = None,
    ) -> WorkloadMeasurement:
        """Expand ``workload`` under ``seed`` and issue it through ``topology``.

        ``streams`` re-stripes a *single-stream* workload round-robin
        across that many issue chains (so e.g. ``zipf`` can load every
        LSU of a fan-out); workloads that already declare multiple
        streams (producer/consumer sharing) keep their own mapping.
        """
        resolved_workload = resolve_workload(workload)
        ops = resolved_workload.ops(seed)
        if streams is not None and streams > 1 and all(
            op.stream == 0 for op in ops
        ):
            ops = [
                WorkloadOp(op.kind, op.addr, op.size, op.delay_ps, i % streams)
                for i, op in enumerate(ops)
            ]
        resolved_topology = resolve_topology(topology)
        system = SystemBuilder(self.config).build(resolved_topology)
        if resolved_topology.by_kind("supernode.fabric"):
            series = self._drive_supernode(system, resolved_topology, ops)
            mode = "supernode"
        elif resolved_topology.by_kind("lsu"):
            series = self._drive_lsus(system, resolved_topology, ops)
            mode = "lsu"
        else:
            kinds = sorted({spec.kind for spec in resolved_topology.nodes})
            raise WorkloadDriverError(
                f"topology {resolved_topology.name!r} exposes no 'lsu' or "
                f"'supernode.fabric' node to drive a workload through "
                f"(kinds present: {', '.join(kinds)})"
            )
        return WorkloadMeasurement(
            workload=resolved_workload.name,
            topology=resolved_topology.name,
            mode=mode,
            seed=seed,
            ops=len(ops),
            reads=sum(1 for op in ops if op.kind == "read"),
            writes=sum(1 for op in ops if op.kind == "write"),
            series=series,
        )

    # ------------------------------------------------------------------
    # LSU mode
    # ------------------------------------------------------------------
    def _drive_lsus(
        self, system, topology: Topology, ops: List[WorkloadOp]
    ) -> Dict[str, Dict[str, float]]:
        lsus = [system.node(spec.name) for spec in topology.by_kind("lsu")]
        chains: Dict[int, List[WorkloadOp]] = {}
        for op in ops:
            chains.setdefault(op.stream, []).append(op)

        stats: Dict[int, Dict[str, object]] = {}
        for stream in sorted(chains):
            lsu = lsus[stream % len(lsus)]
            stats[stream] = self._issue_chain(lsu, chains[stream])
        system.sim.run()

        series: Dict[str, Dict[str, float]] = {
            "ops": {},
            "lat_median_ns": {},
            "bandwidth_gbps": {},
        }
        all_latencies: List[int] = []
        total_bytes = 0
        first = None
        last = 0
        for stream, state in sorted(stats.items()):
            key = f"s{stream}"
            latencies = state["latencies"]
            series["ops"][key] = float(len(latencies))
            series["lat_median_ns"][key] = (
                statistics.median(latencies) / 1_000 if latencies else 0.0
            )
            elapsed = state["last_done_ps"] - state["first_issue_ps"]
            series["bandwidth_gbps"][key] = (
                state["bytes"] / elapsed * 1_000 if elapsed > 0 else 0.0
            )
            all_latencies.extend(latencies)
            total_bytes += state["bytes"]
            if state["latencies"]:
                first = (
                    state["first_issue_ps"]
                    if first is None
                    else min(first, state["first_issue_ps"])
                )
                last = max(last, state["last_done_ps"])
        span = (last - first) if first is not None else 0
        series["ops"]["all"] = float(len(all_latencies))
        series["lat_median_ns"]["all"] = (
            statistics.median(all_latencies) / 1_000 if all_latencies else 0.0
        )
        series["bandwidth_gbps"]["all"] = (
            total_bytes / span * 1_000 if span > 0 else 0.0
        )
        return series

    @staticmethod
    def _issue_chain(lsu, ops: List[WorkloadOp]) -> Dict[str, object]:
        """Serialized issue chain for one stream on one LSU.

        Each op waits its ``delay_ps`` think time after the previous
        completion, then pays the LSU issue/complete stages around the
        DCOH access — the per-op latency excludes the think time.
        Several chains coexist on one simulator (and even one LSU), so
        nothing here drains the engine.
        """
        profile = lsu.profile
        issue_ps = profile.cycles_ps(profile.lsu_issue_cycles)
        complete_ps = profile.cycles_ps(profile.lsu_complete_cycles)
        state: Dict[str, object] = {
            "latencies": [],
            "bytes": 0,
            "first_issue_ps": -1,
            "last_done_ps": 0,
            "index": 0,
            "issued_ps": 0,
        }

        def issue_next() -> None:
            if state["index"] >= len(ops):
                return
            op = ops[state["index"]]
            state["index"] += 1

            def start() -> None:
                state["issued_ps"] = lsu.sim.now
                if state["first_issue_ps"] < 0:
                    state["first_issue_ps"] = lsu.sim.now
                if op.kind == "write":
                    lsu.schedule(issue_ps, lsu.dcoh.write, WINDOW_BASE + op.addr, done)
                else:
                    lsu.schedule(issue_ps, lsu.dcoh.read, WINDOW_BASE + op.addr, done)

            def done(_result) -> None:
                lsu.schedule(complete_ps, finish)

            def finish() -> None:
                state["latencies"].append(lsu.sim.now - state["issued_ps"])
                state["bytes"] += op.size
                state["last_done_ps"] = lsu.sim.now
                issue_next()

            lsu.schedule(op.delay_ps, start)

        issue_next()
        return state

    # ------------------------------------------------------------------
    # Supernode mode
    # ------------------------------------------------------------------
    @staticmethod
    def _drive_supernode(
        system, topology: Topology, ops: List[WorkloadOp]
    ) -> Dict[str, Dict[str, float]]:
        fabric_name = topology.by_kind("supernode.fabric")[0].name
        supernode = system.node(fabric_name)
        hosts = sorted(supernode.hosts)
        per_host: Dict[str, Dict[str, float]] = {
            host: {"accesses": 0.0, "latency_ps": 0.0} for host in hosts
        }
        for op in ops:
            host = hosts[op.stream % len(hosts)]
            latency = supernode.coherent_access(
                host, WINDOW_BASE + op.addr, exclusive=op.kind == "write"
            )
            per_host[host]["accesses"] += 1.0
            per_host[host]["latency_ps"] += float(latency)

        series: Dict[str, Dict[str, float]] = {
            "accesses": {},
            "remote_accesses": {},
            "fabric_latency_us": {},
            "filter_rate": {},
        }
        for host in hosts:
            entry = supernode.hosts[host]
            agent = supernode.domain.locals[supernode._child_of[host]]
            series["accesses"][host] = per_host[host]["accesses"]
            series["remote_accesses"][host] = float(entry.remote_accesses)
            series["fabric_latency_us"][host] = per_host[host]["latency_ps"] / 1e6
            series["filter_rate"][host] = agent.filter_rate
        series["accesses"]["all"] = float(len(ops))
        series["remote_accesses"]["all"] = float(
            sum(supernode.hosts[h].remote_accesses for h in hosts)
        )
        series["fabric_latency_us"]["all"] = (
            sum(per_host[h]["latency_ps"] for h in hosts) / 1e6
        )
        total_local = sum(
            supernode.domain.locals[supernode._child_of[h]].local_hits for h in hosts
        )
        total_global = sum(
            supernode.domain.locals[supernode._child_of[h]].global_requests
            for h in hosts
        )
        series["filter_rate"]["all"] = (
            total_local / (total_local + total_global)
            if (total_local + total_global)
            else 0.0
        )
        return series
