"""WorkloadDriver: issue any workload through any built system.

The driver closes the loop between the two declarative layers — a
:class:`~repro.workloads.base.Workload` (traffic) and a
:class:`~repro.system.topology.Topology` (shape).  It builds the
topology through the :class:`~repro.system.builder.SystemBuilder` and
dispatches the op stream by what the built system exposes:

* **LSU mode** — topologies with ``lsu`` nodes (microbench, fan-outs,
  anything JSON-loaded with a load/store unit): each stream becomes a
  serialized issue chain on its round-robin LSU, ops flow through the
  DCOH/HMC/LLC path under the discrete-event core, and the measurement
  reports per-stream latency medians and bandwidth.
* **Supernode mode** — topologies with a ``supernode.fabric`` node:
  streams map round-robin onto the per-host systems built by
  ``make_supernode_host``, reads/writes become shared/exclusive
  coherent accesses through the two-level coherence domain, and the
  measurement reports per-host fabric traffic and filter rates.

Measurements are deterministic: the same workload + seed + topology +
config produce a bit-identical :class:`WorkloadMeasurement`, which is
what makes trace record → replay reproduce a run exactly.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.config.system import SystemConfig
from repro.mem.address import CACHELINE
from repro.system import SystemBuilder, Topology, resolve_topology
from repro.workloads.base import Workload, WorkloadOp, resolve_workload
from repro.workloads.vectorized import KIND_WRITE, OpBatch

#: Streams rebase into the host map at this address — one shared base
#: (not per-stream), so ops that alias in workload space alias in the
#: system too (producer/consumer sharing relies on this).
WINDOW_BASE = 0x20_0000

#: Supernode coherent accesses are synchronous (no simulator clock), so
#: fault windows are evaluated against a virtual clock: think time plus
#: paid fabric latency plus this per-access issue pacing, which keeps
#: the clock advancing even through local-hit streaks.
SUPERNODE_ISSUE_GAP_PS = 50_000


class WorkloadDriverError(ValueError):
    """The target system exposes nothing the driver can issue through."""


@dataclass
class WorkloadMeasurement:
    """Deterministic outcome of driving one workload through one system."""

    workload: str
    topology: str
    mode: str  # "lsu" | "supernode"
    seed: int
    ops: int
    reads: int
    writes: int
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    fault: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form; equality of two dicts is measurement parity."""
        return {
            "workload": self.workload,
            "topology": self.topology,
            "mode": self.mode,
            "seed": self.seed,
            "ops": self.ops,
            "reads": self.reads,
            "writes": self.writes,
            "series": {k: dict(v) for k, v in self.series.items()},
            "fault": self.fault,
        }

    def render(self) -> str:
        """Human-readable table used by ``repro workload replay``."""
        from repro.harness.tables import render_series

        under = f" under fault plan {self.fault}" if self.fault else ""
        title = (
            f"workload {self.workload} on {self.topology}{under} "
            f"({self.mode} mode, "
            f"seed {self.seed}): {self.ops} ops "
            f"({self.reads} reads / {self.writes} writes)"
        )
        return render_series(
            "host" if self.mode == "supernode" else "stream",
            self.series,
            title=title,
            fmt="{:.3f}",
        )


class WorkloadDriver:
    """Drive workloads through :class:`SystemBuilder`-constructed systems."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config

    def run(
        self,
        workload: Union[str, Workload],
        topology: Union[str, Topology, Dict[str, object]] = "microbench",
        seed: int = 1234,
        streams: Optional[int] = None,
        fault: Union[str, Dict[str, object], None] = None,
        fault_mode: str = "strict",
        fault_retries: int = 3,
        fault_backoff_ps: int = 500_000,
        sim_parallel: Union[int, str, None] = None,
        metrics=None,
        metrics_interval_ps: int = 1_000_000,
    ) -> WorkloadMeasurement:
        """Expand ``workload`` under ``seed`` and issue it through ``topology``.

        ``streams`` re-stripes a *single-stream* workload round-robin
        across that many issue chains (so e.g. ``zipf`` can load every
        LSU of a fan-out); workloads that already declare multiple
        streams (producer/consumer sharing) keep their own mapping.

        ``fault`` (a :class:`~repro.faults.plan.FaultPlan` reference)
        installs a failure timeline against the built system before
        driving.  ``fault_mode`` selects what an op hitting an active
        fault does: ``"strict"`` (default) fails loud —
        :class:`~repro.faults.controller.FaultActiveError` /
        :class:`~repro.core.supernode.HostDownError` — while
        ``"degraded"`` opts into bounded retry-with-backoff
        (``fault_retries`` retries, ``fault_backoff_ps`` initial
        backoff) followed by count-and-drop, and the measurement grows
        ``availability``/``recovery``/``lat_p99_ns`` series.  With
        ``fault=None`` this method is byte-for-byte the historical
        no-fault path.

        ``sim_parallel`` switches supernode topologies to the windowed
        conservative model (:mod:`repro.sim.parallel`): ``1`` runs the
        windowed lanes in-process, ``N >= 2`` forks up to ``N`` worker
        processes, ``"auto"`` uses
        :func:`~repro.experiments.runner.default_jobs`, and ``0`` /
        ``None`` keep the historical synchronous path.  The windowed
        measurement is bit-identical across every ``sim_parallel >= 1``
        value — that parity is CI-gated.

        ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
        opts into observation: the built system's counters bind as
        pull-based probes (:func:`~repro.obs.metrics.instrument_system`,
        plus the fault controller's stats when present), and LSU-mode
        runs additionally take a registry snapshot every
        ``metrics_interval_ps`` of simulated time.  A final snapshot at
        end-of-run always lands.  Observation never perturbs the
        measurement: the returned series are bit-identical with or
        without a registry attached (one caveat: under a fault plan the
        availability window's end rounds up to the last snapshot tick,
        since observation keeps the clock alive up to one interval past
        the final op).
        """
        jobs = self._resolve_sim_parallel(sim_parallel)
        resolved_workload = resolve_workload(workload)
        batch = resolved_workload.batch(seed)
        if streams is not None and streams > 1 and not batch.streams.any():
            batch = batch.restripe(streams)
        ops: Optional[List[WorkloadOp]] = None
        resolved_topology = resolve_topology(topology)
        system = SystemBuilder(self.config).build(resolved_topology)
        controller = None
        if fault is not None:
            from repro.faults import (
                FaultController,
                RetryPolicy,
                resolve_fault_plan,
            )

            plan = resolve_fault_plan(fault)
            controller = FaultController(
                plan,
                seed=seed,
                mode=fault_mode,
                retry=RetryPolicy(fault_retries, fault_backoff_ps),
            ).install(system)
        if metrics is not None:
            from repro.obs.metrics import MetricSnapshotter, instrument_system

            instrument_system(system, metrics)
            if controller is not None:
                controller.register_metrics(metrics)
            # Periodic simulated-time snapshots only make sense where a
            # shared event calendar advances (LSU mode); the snapshot
            # event reads instruments and reschedules itself while live
            # work remains, so it never extends the run.
            if resolved_topology.by_kind("lsu") and jobs is None:
                MetricSnapshotter(
                    system.sim, metrics, metrics_interval_ps
                ).start()
        if resolved_topology.by_kind("supernode.fabric"):
            if jobs is not None:
                series = self._drive_supernode_windowed(
                    system, resolved_topology, batch, controller, jobs
                )
            else:
                ops = batch.to_ops()
                series = self._drive_supernode(
                    system, resolved_topology, ops, controller
                )
            mode = "supernode"
        elif resolved_topology.by_kind("lsu"):
            if jobs is not None:
                raise WorkloadDriverError(
                    f"sim_parallel applies to supernode topologies only; "
                    f"topology {resolved_topology.name!r} is driven through "
                    f"its LSUs on one event calendar"
                )
            ops = batch.to_ops()
            series = self._drive_lsus(system, resolved_topology, ops, controller)
            mode = "lsu"
        else:
            kinds = sorted({spec.kind for spec in resolved_topology.nodes})
            raise WorkloadDriverError(
                f"topology {resolved_topology.name!r} exposes no 'lsu' or "
                f"'supernode.fabric' node to drive a workload through "
                f"(kinds present: {', '.join(kinds)})"
            )
        if metrics is not None:
            metrics.snapshot(system.sim.now)
        if controller is not None:
            if mode == "lsu":
                controller.end_ps = system.sim.now
            series["availability"] = controller.availability_series()
            series["recovery"] = controller.recovery_series()
        return WorkloadMeasurement(
            workload=resolved_workload.name,
            topology=resolved_topology.name,
            mode=mode,
            seed=seed,
            ops=len(batch),
            reads=batch.read_count,
            writes=batch.write_count,
            series=series,
            fault=None if controller is None else controller.plan.name,
        )

    @staticmethod
    def _resolve_sim_parallel(value: Union[int, str, None]) -> Optional[int]:
        """``None``/``0`` → legacy path; ``"auto"`` → default jobs; N → N."""
        if value is None:
            return None
        if isinstance(value, str):
            if value.strip().lower() == "auto":
                from repro.experiments.runner import default_jobs

                return default_jobs()
            raise WorkloadDriverError(
                f"sim_parallel must be a non-negative integer or 'auto', "
                f"got {value!r}"
            )
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise WorkloadDriverError(
                f"sim_parallel must be a non-negative integer or 'auto', "
                f"got {value!r}"
            )
        return None if value == 0 else value

    # ------------------------------------------------------------------
    # LSU mode
    # ------------------------------------------------------------------
    def _drive_lsus(
        self, system, topology: Topology, ops: List[WorkloadOp],
        controller=None,
    ) -> Dict[str, Dict[str, float]]:
        lsu_specs = topology.by_kind("lsu")
        lsus = [system.node(spec.name) for spec in lsu_specs]
        chains: Dict[int, List[WorkloadOp]] = {}
        for op in ops:
            chains.setdefault(op.stream, []).append(op)

        stats: Dict[int, Dict[str, object]] = {}
        for stream in sorted(chains):
            index = stream % len(lsus)
            if controller is None:
                stats[stream] = self._issue_chain(lsus[index], chains[stream])
            else:
                stats[stream] = self._issue_chain_faulted(
                    lsus[index],
                    chains[stream],
                    controller,
                    self._fault_binding(topology, lsu_specs[index]),
                )
        system.sim.run()

        series: Dict[str, Dict[str, float]] = {
            "ops": {},
            "lat_median_ns": {},
            "bandwidth_gbps": {},
        }
        all_latencies: List[int] = []
        total_bytes = 0
        first = None
        last = 0
        for stream, state in sorted(stats.items()):
            key = f"s{stream}"
            latencies = state["latencies"]
            series["ops"][key] = float(len(latencies))
            series["lat_median_ns"][key] = (
                statistics.median(latencies) / 1_000 if latencies else 0.0
            )
            elapsed = state["last_done_ps"] - state["first_issue_ps"]
            series["bandwidth_gbps"][key] = (
                state["bytes"] / elapsed * 1_000 if elapsed > 0 else 0.0
            )
            all_latencies.extend(latencies)
            total_bytes += state["bytes"]
            if state["latencies"]:
                first = (
                    state["first_issue_ps"]
                    if first is None
                    else min(first, state["first_issue_ps"])
                )
                last = max(last, state["last_done_ps"])
        span = (last - first) if first is not None else 0
        series["ops"]["all"] = float(len(all_latencies))
        series["lat_median_ns"]["all"] = (
            statistics.median(all_latencies) / 1_000 if all_latencies else 0.0
        )
        series["bandwidth_gbps"]["all"] = (
            total_bytes / span * 1_000 if span > 0 else 0.0
        )
        if controller is not None:
            # Tail latency is what fault plans exist to move; nearest-rank
            # p99 over completed ops, per stream and pooled.
            series["lat_p99_ns"] = {}
            for stream, state in sorted(stats.items()):
                series["lat_p99_ns"][f"s{stream}"] = (
                    self._p99_ns(state["latencies"])
                )
            series["lat_p99_ns"]["all"] = self._p99_ns(all_latencies)
        return series

    @staticmethod
    def _p99_ns(latencies: List[int]) -> float:
        """Nearest-rank 99th percentile, in nanoseconds (0.0 when empty)."""
        if not latencies:
            return 0.0
        ranked = sorted(latencies)
        rank = max(0, -(-99 * len(ranked) // 100) - 1)
        return ranked[rank] / 1_000

    @staticmethod
    def _fault_binding(topology: Topology, lsu_spec):
        """The nodes and links whose faults block one LSU's issue path.

        An LSU op traverses its d2h link, its device, and the device's
        uplink(s) to the host — a ``device_drop`` on the device, a
        ``host_down`` on the host node, or a flap on either link all
        stall this chain.
        """
        device = lsu_spec.params.get("device")
        if device is None:
            for link in topology.links_of(lsu_spec.name):
                other = link.other(lsu_spec.name)
                if topology.node(other).kind.startswith("cxl."):
                    device = other
                    break
        nodes = {lsu_spec.name}
        keys = {
            tuple(sorted((link.a, link.b)))
            for link in topology.links_of(lsu_spec.name)
        }
        if device is not None:
            nodes.add(device)
            for link in topology.links_of(device):
                keys.add(tuple(sorted((link.a, link.b))))
                nodes.add(link.other(device))
        return tuple(sorted(nodes)), tuple(sorted(keys))

    @staticmethod
    def _issue_chain_faulted(
        lsu, ops: List[WorkloadOp], controller, binding
    ) -> Dict[str, object]:
        """Fault-aware variant of :meth:`_issue_chain` for one stream.

        With no fault active the chain schedules exactly the same event
        sequence as the plain chain (the guards are synchronous checks
        that fall through), so an empty plan reproduces a plain run
        bit-identically.  When the op's path is faulted: strict mode
        raises :class:`~repro.faults.controller.FaultActiveError` out
        of the simulator; degraded mode retries with bounded backoff
        and finally counts the op as dropped.  Corrupted completions
        retransmit (re-paying the issue/access/complete pipeline) with
        the same bound.
        """
        from repro.faults.controller import FaultActiveError

        nodes, keys = binding
        retry = controller.retry
        stats = controller.stats
        profile = lsu.profile
        issue_ps = profile.cycles_ps(profile.lsu_issue_cycles)
        complete_ps = profile.cycles_ps(profile.lsu_complete_cycles)
        state: Dict[str, object] = {
            "latencies": [],
            "bytes": 0,
            "first_issue_ps": -1,
            "last_done_ps": 0,
            "index": 0,
            "issued_ps": 0,
        }

        def issue_next() -> None:
            if state["index"] >= len(ops):
                return
            op = ops[state["index"]]
            state["index"] += 1
            # Per-op fault bookkeeping: first-issue time (latency spans
            # every retry/retransmit), down-retry and retransmit budgets.
            op_state = {"issued_ps": -1, "attempt": 0, "redeliver": 0}

            def start() -> None:
                now = lsu.sim.now
                if op_state["issued_ps"] < 0:
                    op_state["issued_ps"] = now
                    if state["first_issue_ps"] < 0:
                        state["first_issue_ps"] = now
                    stats.record_attempt()
                state["issued_ps"] = op_state["issued_ps"]
                if controller.path_down(nodes, keys, now):
                    if not controller.degraded:
                        raise FaultActiveError(
                            f"{lsu.name}: op {op.kind} @0x{op.addr:x} hit an "
                            f"active fault at {now}ps (path nodes "
                            f"{', '.join(nodes)})"
                        )
                    if op_state["attempt"] < retry.max_retries:
                        delay = retry.delay_ps(op_state["attempt"])
                        op_state["attempt"] += 1
                        stats.record_retry()
                        lsu.schedule(delay, start)
                        return
                    stats.record_drop()
                    issue_next()
                    return
                if op.kind == "write":
                    lsu.schedule(issue_ps, lsu.dcoh.write, WINDOW_BASE + op.addr, done)
                else:
                    lsu.schedule(issue_ps, lsu.dcoh.read, WINDOW_BASE + op.addr, done)

            def done(_result) -> None:
                lsu.schedule(complete_ps, finish)

            def finish() -> None:
                now = lsu.sim.now
                corrupted = False
                for key in keys:
                    corrupted = controller.corrupted(key, now) or corrupted
                if corrupted:
                    stats.record_corrupt()
                    if not controller.degraded:
                        raise FaultActiveError(
                            f"{lsu.name}: op {op.kind} @0x{op.addr:x} "
                            f"corrupted on the wire at {now}ps"
                        )
                    if op_state["redeliver"] < retry.max_retries:
                        op_state["redeliver"] += 1
                        stats.record_retry()
                        start()  # retransmit re-pays the whole pipeline
                        return
                    stats.record_drop()
                    issue_next()
                    return
                state["latencies"].append(now - op_state["issued_ps"])
                state["bytes"] += op.size
                state["last_done_ps"] = now
                stats.record_completion(now)
                issue_next()

            lsu.schedule(op.delay_ps, start)

        issue_next()
        return state

    @staticmethod
    def _issue_chain(lsu, ops: List[WorkloadOp]) -> Dict[str, object]:
        """Serialized issue chain for one stream on one LSU.

        Each op waits its ``delay_ps`` think time after the previous
        completion, then pays the LSU issue/complete stages around the
        DCOH access — the per-op latency excludes the think time.
        Several chains coexist on one simulator (and even one LSU), so
        nothing here drains the engine.
        """
        profile = lsu.profile
        issue_ps = profile.cycles_ps(profile.lsu_issue_cycles)
        complete_ps = profile.cycles_ps(profile.lsu_complete_cycles)
        state: Dict[str, object] = {
            "latencies": [],
            "bytes": 0,
            "first_issue_ps": -1,
            "last_done_ps": 0,
            "index": 0,
            "issued_ps": 0,
        }

        def issue_next() -> None:
            if state["index"] >= len(ops):
                return
            op = ops[state["index"]]
            state["index"] += 1

            def start() -> None:
                state["issued_ps"] = lsu.sim.now
                if state["first_issue_ps"] < 0:
                    state["first_issue_ps"] = lsu.sim.now
                if op.kind == "write":
                    lsu.schedule(issue_ps, lsu.dcoh.write, WINDOW_BASE + op.addr, done)
                else:
                    lsu.schedule(issue_ps, lsu.dcoh.read, WINDOW_BASE + op.addr, done)

            def done(_result) -> None:
                lsu.schedule(complete_ps, finish)

            def finish() -> None:
                state["latencies"].append(lsu.sim.now - state["issued_ps"])
                state["bytes"] += op.size
                state["last_done_ps"] = lsu.sim.now
                issue_next()

            lsu.schedule(op.delay_ps, start)

        issue_next()
        return state

    # ------------------------------------------------------------------
    # Supernode mode
    # ------------------------------------------------------------------
    @staticmethod
    def _drive_supernode(
        system, topology: Topology, ops: List[WorkloadOp], controller=None
    ) -> Dict[str, Dict[str, float]]:
        fabric_name = topology.by_kind("supernode.fabric")[0].name
        supernode = system.node(fabric_name)
        hosts = sorted(supernode.hosts)
        per_host: Dict[str, Dict[str, float]] = {
            host: {"accesses": 0.0, "latency_ps": 0.0} for host in hosts
        }
        if controller is None:
            for op in ops:
                host = hosts[op.stream % len(hosts)]
                latency = supernode.coherent_access(
                    host, WINDOW_BASE + op.addr, exclusive=op.kind == "write"
                )
                per_host[host]["accesses"] += 1.0
                per_host[host]["latency_ps"] += float(latency)
        else:
            WorkloadDriver._drive_supernode_faulted(
                supernode, fabric_name, topology, ops, controller, per_host
            )

        series: Dict[str, Dict[str, float]] = {
            "accesses": {},
            "remote_accesses": {},
            "fabric_latency_us": {},
            "filter_rate": {},
        }
        for host in hosts:
            entry = supernode.hosts[host]
            agent = supernode.domain.locals[supernode._child_of[host]]
            series["accesses"][host] = per_host[host]["accesses"]
            series["remote_accesses"][host] = float(entry.remote_accesses)
            series["fabric_latency_us"][host] = per_host[host]["latency_ps"] / 1e6
            series["filter_rate"][host] = agent.filter_rate
        series["accesses"]["all"] = float(len(ops))
        series["remote_accesses"]["all"] = float(
            sum(supernode.hosts[h].remote_accesses for h in hosts)
        )
        series["fabric_latency_us"]["all"] = (
            sum(per_host[h]["latency_ps"] for h in hosts) / 1e6
        )
        total_local = sum(
            supernode.domain.locals[supernode._child_of[h]].local_hits for h in hosts
        )
        total_global = sum(
            supernode.domain.locals[supernode._child_of[h]].global_requests
            for h in hosts
        )
        series["filter_rate"]["all"] = (
            total_local / (total_local + total_global)
            if (total_local + total_global)
            else 0.0
        )
        if controller is not None:
            series["naks"] = {
                host: float(supernode.hosts[host].naks) for host in hosts
            }
            series["naks"]["all"] = float(
                sum(supernode.hosts[h].naks for h in hosts)
            )
        return series

    @staticmethod
    def _drive_supernode_faulted(
        supernode, fabric_name: str, topology: Topology,
        ops: List[WorkloadOp], controller, per_host,
    ) -> None:
        """Issue coherent ops under a fault plan, on a virtual clock.

        Supernode accesses are synchronous, so fault windows are
        evaluated against an accumulated clock (think time + paid
        fabric latency + a fixed issue gap).  Down hosts NAK via
        :class:`~repro.core.supernode.HostDownError`; flapped links and
        a downed fabric raise
        :class:`~repro.faults.controller.FaultActiveError`; degraded
        mode turns both into bounded retry-with-backoff then drop.
        With an empty plan every op takes the plain path and pays
        exactly the plain latency, so the core series stay
        bit-identical to a no-fault run.
        """
        from repro.core.supernode import HostDownError
        from repro.faults.controller import FaultActiveError

        hosts = sorted(supernode.hosts)
        keys = {
            host: tuple(sorted((host, fabric_name))) for host in hosts
        }
        retry = controller.retry
        stats = controller.stats
        t = 0
        for op in ops:
            host = hosts[op.stream % len(hosts)]
            key = keys[host]
            t += op.delay_ps + SUPERNODE_ISSUE_GAP_PS
            stats.record_attempt()
            attempt = 0
            redeliver = 0
            while True:
                controller.apply_supernode(supernode, t)
                try:
                    if controller.link_down(key, t) or controller.node_down(
                        fabric_name, t
                    ):
                        raise FaultActiveError(
                            f"path {key[0]}--{key[1]} is down at {t}ps"
                        )
                    latency = supernode.coherent_access(
                        host, WINDOW_BASE + op.addr,
                        exclusive=op.kind == "write",
                    )
                except (HostDownError, FaultActiveError):
                    if not controller.degraded:
                        raise
                    if attempt < retry.max_retries:
                        stats.record_retry()
                        t += retry.delay_ps(attempt)
                        attempt += 1
                        continue
                    stats.record_drop()
                    break
                factor = controller.link_factor(key, t)
                paid = latency if factor == 1.0 else int(round(latency * factor))
                t += paid
                if controller.corrupted(key, t):
                    stats.record_corrupt()
                    if not controller.degraded:
                        raise FaultActiveError(
                            f"message on {key[0]}--{key[1]} corrupted at {t}ps"
                        )
                    if redeliver < retry.max_retries:
                        redeliver += 1
                        stats.record_retry()
                        continue  # retransmit pays another access
                    stats.record_drop()
                    break
                per_host[host]["accesses"] += 1.0
                per_host[host]["latency_ps"] += float(paid)
                stats.record_completion(t)
                break
        controller.end_ps = t

    @staticmethod
    def _drive_supernode_windowed(
        system, topology: Topology, batch: OpBatch, controller, jobs: int
    ) -> Dict[str, Dict[str, float]]:
        """Drive coherent traffic through the windowed conservative model.

        The batch is split into per-host substreams with array ops and
        handed to :func:`repro.sim.parallel.run_windowed_supernode`;
        the series are rebuilt from the per-lane counters (the lanes
        never touch the shared supernode objects, which is what makes
        them process-safe).  ``jobs=1`` and ``jobs>=2`` share the lane
        and merge code, so the measurement is bit-identical across
        every ``jobs`` value.
        """
        from repro.sim.parallel import run_windowed_supernode

        fabric_name = topology.by_kind("supernode.fabric")[0].name
        supernode = system.node(fabric_name)
        hosts = sorted(supernode.hosts)
        host_idx = batch.streams % len(hosts)
        lines = (WINDOW_BASE + batch.addrs) & ~np.int64(CACHELINE - 1)
        excl = (batch.kinds == KIND_WRITE).astype(np.int64)
        per_host_ops = {}
        for h, host in enumerate(hosts):
            mask = host_idx == h
            per_host_ops[host] = (
                lines[mask].tolist(),
                excl[mask].tolist(),
                batch.delays[mask].tolist(),
            )
        outcome = run_windowed_supernode(
            supernode, fabric_name, per_host_ops, jobs=jobs,
            controller=controller,
        )

        series: Dict[str, Dict[str, float]] = {
            "accesses": {},
            "remote_accesses": {},
            "fabric_latency_us": {},
            "filter_rate": {},
        }
        total_local = 0
        total_global = 0
        for lane in outcome.lanes:
            series["accesses"][lane.host] = float(lane.accesses)
            series["remote_accesses"][lane.host] = float(lane.remote_accesses)
            series["fabric_latency_us"][lane.host] = lane.latency_ps / 1e6
            probes = lane.local_hits + lane.global_requests
            series["filter_rate"][lane.host] = (
                lane.local_hits / probes if probes else 0.0
            )
            total_local += lane.local_hits
            total_global += lane.global_requests
        series["accesses"]["all"] = float(len(batch))
        series["remote_accesses"]["all"] = float(
            sum(lane.remote_accesses for lane in outcome.lanes)
        )
        series["fabric_latency_us"]["all"] = (
            sum(lane.latency_ps for lane in outcome.lanes) / 1e6
        )
        series["filter_rate"]["all"] = (
            total_local / (total_local + total_global)
            if (total_local + total_global)
            else 0.0
        )
        if controller is not None:
            series["naks"] = {
                lane.host: float(lane.naks) for lane in outcome.lanes
            }
            series["naks"]["all"] = float(
                sum(lane.naks for lane in outcome.lanes)
            )
            # Fold the per-lane fault accounting back into the
            # controller so the availability/recovery tail in run()
            # works unchanged.  For each recovery time, the earliest
            # completion at-or-after it across all lanes is exactly the
            # settle-time input the synchronous path would record.
            stats = controller.stats
            stats.attempted = sum(l.attempted for l in outcome.lanes)
            stats.completed = sum(l.completed for l in outcome.lanes)
            stats.dropped = sum(l.dropped for l in outcome.lanes)
            stats.retries = sum(l.retries for l in outcome.lanes)
            stats.corrupted = sum(l.corrupted for l in outcome.lanes)
            merged: List[int] = []
            slots = len(outcome.lanes[0].min_after) if outcome.lanes else 0
            for j in range(slots):
                candidates = [
                    l.min_after[j]
                    for l in outcome.lanes
                    if l.min_after[j] >= 0
                ]
                if candidates:
                    merged.append(min(candidates))
            stats.completion_times_ps = merged
            controller.end_ps = outcome.end_ps
        return series
