"""Batched workload representation: op streams as numpy arrays.

A :class:`OpBatch` is the columnar form of a
:class:`~repro.workloads.base.WorkloadOp` stream — five parallel arrays
(kind, address, size, delay, stream) instead of one dataclass per op.
Generators that can express their stream as array math attach a
``generate_batch`` to their :class:`~repro.workloads.base.Workload`;
:meth:`Workload.ops` then *derives* the scalar view from the batch, so
the two representations cannot drift — they are one stream, stored
columnar.

The batch is what the hot paths consume: the
:class:`~repro.workloads.driver.WorkloadDriver` re-stripes and splits
per-host substreams with array ops, and bulk cache probes
(:meth:`CacheArray.lookup_many`) take the address column directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.mem.address import CACHELINE
from repro.workloads.base import WorkloadOp, WorkloadSchemaError

#: Kind encoding of the ``kinds`` column.
KIND_READ = 0
KIND_WRITE = 1

_KIND_NAMES = ("read", "write")


def _column(values, dtype, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=dtype)
    if array.ndim != 1:
        raise WorkloadSchemaError(
            f"op batch column {name!r} must be one-dimensional, "
            f"got shape {array.shape}"
        )
    return array


@dataclass(frozen=True)
class OpBatch:
    """A workload op stream as five parallel columns.

    ``kinds`` holds :data:`KIND_READ`/:data:`KIND_WRITE`; the remaining
    columns mirror the :class:`WorkloadOp` fields.  Row ``i`` of every
    column together is exactly ``to_ops()[i]``.
    """

    kinds: np.ndarray
    addrs: np.ndarray
    sizes: np.ndarray
    delays: np.ndarray
    streams: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", _column(self.kinds, np.uint8, "kinds"))
        for name in ("addrs", "sizes", "delays", "streams"):
            object.__setattr__(
                self, name, _column(getattr(self, name), np.int64, name)
            )
        n = len(self.kinds)
        for name in ("addrs", "sizes", "delays", "streams"):
            if len(getattr(self, name)) != n:
                raise WorkloadSchemaError(
                    f"op batch column {name!r} has {len(getattr(self, name))} "
                    f"rows but kinds has {n}"
                )
        if n and int(self.kinds.max(initial=0)) > KIND_WRITE:
            raise WorkloadSchemaError(
                "op batch kinds must be KIND_READ (0) or KIND_WRITE (1)"
            )

    # -- construction --------------------------------------------------
    @classmethod
    def from_ops(cls, ops: Sequence[WorkloadOp]) -> "OpBatch":
        """Columnarize a scalar op list; exact round trip with to_ops."""
        return cls(
            kinds=[KIND_WRITE if op.kind == "write" else KIND_READ for op in ops],
            addrs=[op.addr for op in ops],
            sizes=[op.size for op in ops],
            delays=[op.delay_ps for op in ops],
            streams=[op.stream for op in ops],
        )

    @classmethod
    def reads(
        cls,
        line_indices,
        line_bytes: int = CACHELINE,
        delays=None,
        streams=None,
    ) -> "OpBatch":
        """All-read batch over line indices — the common generator shape."""
        idx = _column(line_indices, np.int64, "line_indices")
        n = len(idx)
        return cls(
            kinds=np.zeros(n, dtype=np.uint8),
            addrs=idx * line_bytes,
            sizes=np.full(n, CACHELINE, dtype=np.int64),
            delays=np.zeros(n, dtype=np.int64) if delays is None else delays,
            streams=np.zeros(n, dtype=np.int64) if streams is None else streams,
        )

    # -- views ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def read_count(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_READ))

    @property
    def write_count(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_WRITE))

    def to_ops(self) -> List[WorkloadOp]:
        """Expand into the scalar :class:`WorkloadOp` list, row by row."""
        return [
            WorkloadOp(_KIND_NAMES[k], a, s, d, st)
            for k, a, s, d, st in zip(
                self.kinds.tolist(),
                self.addrs.tolist(),
                self.sizes.tolist(),
                self.delays.tolist(),
                self.streams.tolist(),
            )
        ]

    def restripe(self, streams: int) -> "OpBatch":
        """Round-robin the rows across ``streams`` issue chains.

        The batch twin of the driver's scalar re-striping: op ``i``
        lands on stream ``i % streams``.
        """
        if streams < 1:
            raise WorkloadSchemaError(f"restripe needs streams >= 1, got {streams}")
        return OpBatch(
            kinds=self.kinds,
            addrs=self.addrs,
            sizes=self.sizes,
            delays=self.delays,
            streams=np.arange(len(self), dtype=np.int64) % streams,
        )

    def concat(self, others: Iterable["OpBatch"]) -> "OpBatch":
        """Concatenate batches in order (phase composition)."""
        parts = [self, *others]
        return OpBatch(
            kinds=np.concatenate([p.kinds for p in parts]),
            addrs=np.concatenate([p.addrs for p in parts]),
            sizes=np.concatenate([p.sizes for p in parts]),
            delays=np.concatenate([p.delays for p in parts]),
            streams=np.concatenate([p.streams for p in parts]),
        )


def numpy_rng(rng) -> np.random.Generator:
    """Derive a numpy generator from the workload's scalar ``Random``.

    One 64-bit draw from the expansion rng seeds a PCG64 stream, so a
    batch generator is exactly as seed-deterministic as a scalar one:
    same expansion seed, same arrays.
    """
    return np.random.Generator(np.random.PCG64(rng.getrandbits(64)))
