"""Workload abstraction: named, seeded, deterministic operation streams.

A :class:`Workload` is the *traffic* of a simulated scenario the same
way a :class:`~repro.system.topology.Topology` is its *shape*: a
declarative, registry-addressable object that expands — under a fixed
seed — into one deterministic stream of timed memory operations
(:class:`WorkloadOp`).  The :class:`~repro.workloads.driver.WorkloadDriver`
issues that stream through any builder-constructed system; the trace
layer (:mod:`repro.workloads.trace`) records and replays it
bit-identically.

Workloads register by name in :data:`WORKLOADS` so harnesses, sweep
grids and the CLI (``repro workload list|show|record|replay``) can
refer to an access pattern with a plain string.  Registered entries are
*factories*: they accept positional knobs (op counts, skew exponents,
read fractions) and return a fresh :class:`Workload`, so a sweep grid
can hold parametric references like ``"zipf(512,1.2)"`` as plain JSON
strings — the same convention :data:`~repro.system.topology.TOPOLOGY_FAMILIES`
uses for structural axes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.mem.address import CACHELINE
from repro.system.refs import parse_parametric_ref


class WorkloadSchemaError(ValueError):
    """A workload reference or trace file is malformed.

    The workload-layer counterpart of
    :class:`repro.system.topology.TopologySchemaError`: every malformed
    input raises this one type with a message naming the offending
    element.
    """


class UnknownWorkloadError(ValueError):
    """A name/reference does not identify a registered workload.

    Listing-style, matching :class:`repro.system.topology.UnknownTopologyError`:
    the message always enumerates the valid options.
    """


@dataclass(frozen=True)
class WorkloadOp:
    """One timed memory operation of a workload stream.

    ``addr`` is workload-relative — the driver rebases the whole stream
    into the target system's address map, so two streams touching the
    same ``addr`` share a cache line wherever the workload runs.
    ``delay_ps`` is the think time between the previous completion on
    the same ``stream`` and this issue; ``stream`` indexes the issuing
    agent (LSU or supernode host, assigned round-robin by the driver).
    """

    kind: str  # "read" | "write"
    addr: int
    size: int = CACHELINE
    delay_ps: int = 0
    stream: int = 0

    KINDS = ("read", "write")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise WorkloadSchemaError(
                f"workload op kind must be one of {self.KINDS}, got {self.kind!r}"
            )
        for name in ("addr", "size", "delay_ps", "stream"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise WorkloadSchemaError(
                    f"workload op {name} must be a non-negative integer, "
                    f"got {value!r}"
                )
        if self.size == 0:
            raise WorkloadSchemaError("workload op size must be positive")


#: ``generate(rng) -> iterable of WorkloadOp`` — the rng is the only
#: source of randomness, which is what makes streams seed-deterministic.
OpGenerator = Callable[[random.Random], Iterable[WorkloadOp]]

#: ``generate_batch(rng) -> OpBatch`` — the columnar twin; when present
#: it is the authoritative stream and ``ops()`` derives from it.
BatchGenerator = Callable[[random.Random], "object"]


@dataclass(frozen=True)
class Workload:
    """A named, seeded, deterministic stream of timed memory operations."""

    name: str
    description: str = ""
    params: Dict[str, object] = field(default_factory=dict)
    generate: Optional[OpGenerator] = None
    generate_batch: Optional[BatchGenerator] = None

    def ops(self, seed: int = 1234) -> List[WorkloadOp]:
        """Expand the stream under ``seed``; same seed, same ops.

        When the workload has a batch generator the scalar view is
        derived from the batch, so the two representations are one
        stream by construction.
        """
        if self.generate_batch is not None:
            return self.batch(seed).to_ops()
        if self.generate is None:
            return []
        return list(self.generate(random.Random(seed)))

    def batch(self, seed: int = 1234):
        """Expand the stream under ``seed`` as a columnar ``OpBatch``.

        Batch-native workloads expand directly; scalar-only ones (e.g.
        the dependently-walked pointer chase) columnarize their op
        list, so every workload has a batch view.
        """
        from repro.workloads.vectorized import OpBatch

        if self.generate_batch is not None:
            return self.generate_batch(random.Random(seed))
        return OpBatch.from_ops(
            list(self.generate(random.Random(seed))) if self.generate else []
        )

    def describe(self, seed: int = 1234, preview: int = 8) -> str:
        """Multi-line rendering used by ``repro workload show``."""
        ops = self.ops(seed)
        reads = sum(1 for op in ops if op.kind == "read")
        streams = sorted({op.stream for op in ops})
        lines = [f"workload {self.name}"]
        if self.description:
            lines.append(f"  {self.description}")
        if self.params:
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(self.params.items())
            )
            lines.append(f"  params: {rendered}")
        lines.append(
            f"  ops (seed {seed}): {len(ops)} "
            f"({reads} reads / {len(ops) - reads} writes, "
            f"{len(streams)} stream{'s' if len(streams) != 1 else ''})"
        )
        for op in ops[:preview]:
            lines.append(
                f"    {op.kind:<5} addr=0x{op.addr:06x} size={op.size}"
                f" delay_ps={op.delay_ps} stream={op.stream}"
            )
        if len(ops) > preview:
            lines.append(f"    ... {len(ops) - preview} more")
        return "\n".join(lines)


# ---------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------
WorkloadFactory = Callable[..., Workload]

WORKLOADS: Dict[str, WorkloadFactory] = {}


def register_workload(name: str) -> Callable[[WorkloadFactory], WorkloadFactory]:
    """Decorator: register a workload factory under ``name``."""

    def decorate(factory: WorkloadFactory) -> WorkloadFactory:
        if name in WORKLOADS:
            raise ValueError(f"workload {name!r} already registered")
        WORKLOADS[name] = factory
        return factory

    return decorate


def workload_by_name(name: str, *args) -> Workload:
    """Instantiate a registered workload, forwarding positional knobs."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; "
            f"registered: {', '.join(sorted(WORKLOADS))}"
        ) from None
    return factory(*args)


def workload_names() -> Tuple[str, ...]:
    return tuple(sorted(WORKLOADS))


def workload_description(name: str) -> str:
    """First docstring line of a registered factory (for listings)."""
    factory = WORKLOADS[name]
    doc = (factory.__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


# ---------------------------------------------------------------------
# References: "zipf(512,1.2)"-style parametric strings
# ---------------------------------------------------------------------
def parse_workload_ref(ref: str) -> Tuple[str, Tuple[Union[int, float], ...]]:
    """``"zipf(512,1.2)"`` → ``("zipf", (512, 1.2))``; bare names get ``()``.

    The argument grammar is the shared
    :func:`~repro.system.refs.parse_parametric_ref` (the same one
    topology family references use), so the two sweep axes cannot
    drift; malformed references raise :class:`WorkloadSchemaError`
    naming the offending token.
    """
    if not isinstance(ref, str) or not ref.strip():
        raise WorkloadSchemaError(
            f"workload reference must be a non-empty string, got {ref!r}"
        )
    ref = ref.strip()
    if "(" not in ref and ")" not in ref:
        return ref, ()
    try:
        return parse_parametric_ref(ref)
    except ValueError as exc:
        raise WorkloadSchemaError(f"workload {exc}") from None


def validate_workload_ref(ref: Union[str, Workload]) -> None:
    """Check that ``ref`` is a workload or names a registered factory.

    Factory *arguments* are deliberately not range-checked here: a sweep
    spec with ``zipf(-1)`` validates (the factory exists) and fails at
    run time inside that one spec, exercising per-spec failure
    isolation — the same contract as
    :func:`repro.system.topology.validate_topology_ref`.
    """
    if isinstance(ref, Workload):
        return
    name, _args = parse_workload_ref(ref)
    if name not in WORKLOADS:
        raise UnknownWorkloadError(
            f"unknown workload {ref!r}; "
            f"registered: {', '.join(sorted(WORKLOADS))}"
        )


def resolve_workload(ref: Union[str, Workload]) -> Workload:
    """Turn a workload reference into a :class:`Workload` instance.

    Accepts an instance (passed through), a registered name, or a
    parametric reference like ``"zipf(512,1.2)"``.  This is the single
    entry point the driver, experiments and CLI use for their
    ``workload`` params.
    """
    if isinstance(ref, Workload):
        return ref
    name, args = parse_workload_ref(ref)
    return workload_by_name(name, *args)
