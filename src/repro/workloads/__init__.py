"""Declarative workload subsystem: traffic as first-class objects.

``Workload``s are named, seeded, deterministic streams of timed memory
operations, registered like topologies and component kinds so every
access pattern is a registry entry instead of a harness::

    from repro.config import fpga_system
    from repro.workloads import WorkloadDriver
    m = WorkloadDriver(fpga_system()).run("zipf(256,1.2)", topology="fanout-2")

The layers:

* :mod:`repro.workloads.base` — the ``Workload``/``WorkloadOp``
  abstraction, the registry, and ``"name(args)"`` reference parsing.
* :mod:`repro.workloads.vectorized` — ``OpBatch``, the columnar numpy
  form of a stream; batch-native generators expand straight to arrays
  and ``ops()`` derives the scalar view from the batch.
* :mod:`repro.workloads.generators` — the synthetic library
  (sequential/strided, uniform, Zipf, pointer-chase, producer-consumer,
  read/write mixes) plus the ``phases([...])`` composition combinator.
* :mod:`repro.workloads.trace` — compact JSONL record/replay with
  schema validation, for bit-identical re-driving of any run.
* :mod:`repro.workloads.driver` — ``WorkloadDriver`` issuing streams
  through builder-constructed systems (LSU-bearing layouts and
  per-host Supernode systems alike).

The CLI exposes the subsystem as ``repro workload
list|show|record|replay``; sweeps take ``workload`` as a validated
grid axis.
"""

from repro.workloads.base import (
    WORKLOADS,
    UnknownWorkloadError,
    Workload,
    WorkloadOp,
    WorkloadSchemaError,
    parse_workload_ref,
    register_workload,
    resolve_workload,
    validate_workload_ref,
    workload_by_name,
    workload_description,
    workload_names,
)
from repro.workloads.driver import (
    WINDOW_BASE,
    WorkloadDriver,
    WorkloadDriverError,
    WorkloadMeasurement,
)

# Importing the library registers every built-in generator.
from repro.workloads.generators import phases  # noqa: E402
from repro.workloads.vectorized import (
    KIND_READ,
    KIND_WRITE,
    OpBatch,
    numpy_rng,
)
from repro.workloads.trace import (
    TRACE_SCHEMA,
    dump_trace,
    load_trace,
    op_from_list,
    op_to_list,
    parse_trace,
)

__all__ = [
    "WORKLOADS",
    "UnknownWorkloadError",
    "Workload",
    "WorkloadOp",
    "WorkloadSchemaError",
    "parse_workload_ref",
    "register_workload",
    "resolve_workload",
    "validate_workload_ref",
    "workload_by_name",
    "workload_description",
    "workload_names",
    "WINDOW_BASE",
    "WorkloadDriver",
    "WorkloadDriverError",
    "WorkloadMeasurement",
    "phases",
    "KIND_READ",
    "KIND_WRITE",
    "OpBatch",
    "numpy_rng",
    "TRACE_SCHEMA",
    "dump_trace",
    "load_trace",
    "op_from_list",
    "op_to_list",
    "parse_trace",
]
