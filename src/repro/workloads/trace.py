"""Compact workload traces: JSONL record and bit-identical replay.

A trace file captures one expanded workload stream so any run can be
re-driven without the generator that produced it:

* line 1 — a JSON header object (``schema``, source ``workload`` name,
  expansion ``seed``, op count);
* every further line — one op as a compact 5-element JSON array
  ``[kind, addr, size, delay_ps, stream]``.

:func:`load_trace` returns a :class:`~repro.workloads.base.Workload`
whose stream *is* the recorded op list, so replaying a trace through
the :class:`~repro.workloads.driver.WorkloadDriver` reproduces the
original run's measurements bit-identically — the ops, not the
generator, are what the driver consumes.  Malformed files always raise
:class:`~repro.workloads.base.WorkloadSchemaError` naming the file and
line, mirroring the topology JSON loader's contract.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.workloads.base import Workload, WorkloadOp, WorkloadSchemaError

TRACE_SCHEMA = 1

_HEADER_KEYS = frozenset({"schema", "workload", "seed", "ops"})


def op_to_list(op: WorkloadOp) -> List[object]:
    """One op as the compact JSONL array form; inverse of :func:`op_from_list`."""
    return [op.kind, op.addr, op.size, op.delay_ps, op.stream]


def op_from_list(data: object) -> WorkloadOp:
    """Parse one compact op array, schema-validating every field."""
    if not isinstance(data, Sequence) or isinstance(data, (str, bytes)):
        raise WorkloadSchemaError(
            f"trace op must be a 5-element array, got {data!r}"
        )
    if len(data) != 5:
        raise WorkloadSchemaError(
            f"trace op must have exactly 5 elements "
            f"[kind, addr, size, delay_ps, stream], got {len(data)}"
        )
    kind, addr, size, delay_ps, stream = data
    if not isinstance(kind, str):
        raise WorkloadSchemaError(f"trace op kind must be a string, got {kind!r}")
    # WorkloadOp.__post_init__ validates kinds and integer ranges.
    return WorkloadOp(kind, addr, size, delay_ps, stream)


def dump_trace(
    workload: Workload,
    seed: int = 1234,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Expand ``workload`` under ``seed`` and render the trace text.

    Writes to ``path`` when given; always returns the JSONL text.  The
    output round-trips through :func:`load_trace` bit-identically.
    """
    ops = workload.ops(seed)
    header: Dict[str, object] = {
        "schema": TRACE_SCHEMA,
        "workload": workload.name,
        "seed": seed,
        "ops": len(ops),
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(op_to_list(op), separators=(",", ":")) for op in ops
    )
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


def parse_trace(text: str, source: str = "<trace>") -> Workload:
    """Parse JSONL trace text into a replayable :class:`Workload`."""

    def fail(line_no: int, msg: str) -> None:
        raise WorkloadSchemaError(f"{source}:{line_no}: {msg}")

    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise WorkloadSchemaError(f"{source}: empty trace (no header line)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise WorkloadSchemaError(f"{source}:1: invalid JSON header: {exc}") from None
    if not isinstance(header, dict):
        fail(1, f"trace header must be a JSON object, got {header!r}")
    unknown = sorted(set(header) - _HEADER_KEYS)
    if unknown:
        fail(
            1,
            f"trace header has unknown key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys: {', '.join(sorted(_HEADER_KEYS))}",
        )
    schema = header.get("schema")
    if schema != TRACE_SCHEMA:
        fail(1, f"unsupported trace schema {schema!r} (expected {TRACE_SCHEMA})")
    name = header.get("workload", "trace")
    if not isinstance(name, str) or not name:
        fail(1, f"trace header 'workload' must be a non-empty string, got {name!r}")
    seed = header.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        fail(1, f"trace header 'seed' must be an integer, got {seed!r}")
    declared = header.get("ops")
    if not isinstance(declared, int) or isinstance(declared, bool) or declared < 0:
        fail(1, f"trace header 'ops' must be a non-negative integer, got {declared!r}")

    ops: List[WorkloadOp] = []
    for line_no, line in enumerate(lines[1:], start=2):
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WorkloadSchemaError(
                f"{source}:{line_no}: invalid JSON op: {exc}"
            ) from None
        try:
            ops.append(op_from_list(data))
        except WorkloadSchemaError as exc:
            raise WorkloadSchemaError(f"{source}:{line_no}: {exc}") from None
    if len(ops) != declared:
        raise WorkloadSchemaError(
            f"{source}: header declares {declared} ops but the trace "
            f"holds {len(ops)}"
        )

    recorded = tuple(ops)
    return Workload(
        name=f"trace:{name}",
        description=f"recorded trace of {name} (seed {seed}, {len(recorded)} ops)",
        params={"workload": name, "seed": seed, "ops": len(recorded)},
        generate=lambda _rng: list(recorded),
    )


def load_trace(path: Union[str, Path]) -> Workload:
    """Load and validate a trace file into a replayable workload.

    Unreadable files, invalid JSON, and schema violations all raise
    :class:`WorkloadSchemaError` naming the file and line.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise WorkloadSchemaError(f"cannot read trace {path}: {exc}") from None
    return parse_trace(text, source=str(path))
