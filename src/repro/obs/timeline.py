"""Chrome trace-event export: ``repro timeline <run-dir>``.

Converts a run directory's telemetry into the Chrome trace-event JSON
format (the ``{"traceEvents": [...]}`` object form), loadable in
Perfetto or ``chrome://tracing``.  Each telemetry source becomes a
trace "process"; each worker becomes a "thread" within it.  Finished
specs render as complete ("X") slices spanning their wall duration,
retries as instant ("i") markers, and run start/finish as instants on
the scheduler row.

Timestamps: trace-event ``ts`` is microseconds.  All events are
rebased to the earliest telemetry timestamp so traces start near zero
rather than at the Unix epoch (Perfetto handles either, humans prefer
the former).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.telemetry import read_events

TIMELINE_FILE = "timeline.json"

#: Stable synthetic pids per source role (Perfetto sorts by pid).
_SCHEDULER_PID = 1
_WORKER_PID_BASE = 10


def build_timeline(run_dir: Union[str, Path]) -> Dict[str, object]:
    """Telemetry -> trace-event JSON object (pure; no file output)."""
    events, _skipped = read_events(run_dir)
    trace: List[Dict[str, object]] = []
    if not events:
        return {"traceEvents": trace, "displayTimeUnit": "ms"}
    epoch = min(float(e["ts"]) for e in events)  # type: ignore[arg-type]

    def us(ts: object) -> float:
        return (float(ts) - epoch) * 1e6  # type: ignore[arg-type]

    # One trace thread per (pid, tid); metadata rows name them.
    pids: Dict[str, int] = {}
    tids: Dict[str, int] = {}

    def thread_for(event: Dict[str, object]) -> Dict[str, int]:
        worker = event.get("worker")
        if isinstance(worker, str):
            pid = pids.setdefault(worker, _WORKER_PID_BASE + len(pids))
            name = worker
        else:
            pid = _SCHEDULER_PID
            name = f"scheduler ({event['source']})"
        if name not in tids:
            tids[name] = len(tids) + 1
            trace.append(
                {
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": name},
                }
            )
            trace.append(
                {
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": tids[name], "args": {"name": "specs"},
                }
            )
        return {"pid": pid, "tid": tids[name]}

    have_task_slices = False
    for event in events:
        kind = event["kind"]
        where = thread_for(event)
        if kind == "task_finished":
            have_task_slices = True
            wall_s = float(event["wall_s"])  # type: ignore[arg-type]
            trace.append(
                {
                    "ph": "X",
                    "name": str(event.get("label") or event["task_id"]),
                    "cat": "spec",
                    "ts": us(event["ts"]) - wall_s * 1e6,
                    "dur": wall_s * 1e6,
                    "args": {
                        "spec_hash": event["task_id"],
                        "status": event["status"],
                    },
                    **where,
                }
            )
        elif kind == "task_retried":
            trace.append(
                {
                    "ph": "i",
                    "name": f"retry {event['task_id']}",
                    "cat": "retry",
                    "s": "t",
                    "ts": us(event["ts"]),
                    "args": {
                        "attempt": event["attempt"],
                        "error": str(event["error"])[:200],
                    },
                    **where,
                }
            )
        elif kind in ("run_started", "run_finished", "worker_started",
                      "worker_finished"):
            trace.append(
                {
                    "ph": "i", "name": str(kind), "cat": "lifecycle",
                    "s": "p", "ts": us(event["ts"]), "args": {},
                    **where,
                }
            )

    if not have_task_slices:
        # Pool/serial runs have no per-task worker telemetry; fall back
        # to the scheduler's per-record events so the trace still shows
        # one slice per executed spec.
        for event in events:
            if event["kind"] != "record":
                continue
            where = thread_for(event)
            wall_s = float(event["wall_s"])  # type: ignore[arg-type]
            trace.append(
                {
                    "ph": "X",
                    "name": str(event.get("label") or event["spec_hash"]),
                    "cat": "spec",
                    "ts": us(event["ts"]) - wall_s * 1e6,
                    "dur": wall_s * 1e6,
                    "args": {
                        "spec_hash": event["spec_hash"],
                        "status": event["status"],
                    },
                    **where,
                }
            )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_timeline(
    run_dir: Union[str, Path], out: Optional[Union[str, Path]] = None
) -> Path:
    """Export the run's trace to ``out`` (default ``<run-dir>/timeline.json``)."""
    run_dir = Path(run_dir)
    out_path = Path(out) if out is not None else run_dir / TIMELINE_FILE
    timeline = build_timeline(run_dir)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(timeline) + "\n")
    return out_path
