"""Simulator profiler: events/sec and per-component time attribution.

Activated with ``repro run --profile`` / ``repro sweep --profile`` (or
the :func:`profile` context manager directly).  While active, every
:meth:`Simulator.run` drains through a profiled mirror of the hot loop
(see ``sim/engine.py``): each callback is attributed to a component and
a sampled subset is wall-timed with ``perf_counter``.  Sampling (one
timed callback per ``sample_every``) keeps the measurement from
distorting the thing it measures; event *counts* are exact.

When no profiler is installed the engine's drain loop is untouched —
one branch per ``run()`` call, zero per-event cost.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim import engine as _engine

DEFAULT_SAMPLE_EVERY = 64


def _attribute(callback) -> str:
    """Component name for a callback: owner's ``name``, else qualname."""
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", None)
        if isinstance(name, str) and name:
            return name
        return type(owner).__name__
    qualname = getattr(callback, "__qualname__", None) or repr(callback)
    # Collapse closures: "WorkloadDriver._issue_chain.<locals>.step" ->
    # "WorkloadDriver._issue_chain".
    return qualname.split(".<locals>")[0]


class SimProfiler:
    """Accumulates per-component event counts and sampled callback time."""

    def __init__(self, sample_every: int = DEFAULT_SAMPLE_EVERY):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = int(sample_every)
        self.events: Dict[str, int] = {}
        self.sampled_time_s: Dict[str, float] = {}
        self.samples: Dict[str, int] = {}
        self.total_events = 0
        self.runs = 0
        self.run_wall_s = 0.0
        self._until_sample = self.sample_every

    # Called from the engine's profiled drain loop for every event; it
    # owns invoking the callback so sampled timing brackets exactly the
    # callback body.
    def record(self, callback, args: Tuple) -> None:
        component = _attribute(callback)
        self.events[component] = self.events.get(component, 0) + 1
        self.total_events += 1
        self._until_sample -= 1
        if self._until_sample > 0:
            callback(*args)
            return
        self._until_sample = self.sample_every
        start = perf_counter()
        callback(*args)
        elapsed = perf_counter() - start
        self.sampled_time_s[component] = (
            self.sampled_time_s.get(component, 0.0) + elapsed
        )
        self.samples[component] = self.samples.get(component, 0) + 1

    def add_run(self, wall_s: float, executed: int) -> None:
        """One profiled ``Simulator.run`` finished (any event count)."""
        self.runs += 1
        self.run_wall_s += wall_s

    @property
    def events_per_sec(self) -> float:
        if self.run_wall_s <= 0.0:
            return 0.0
        return self.total_events / self.run_wall_s

    def attribution(self) -> List[Dict[str, object]]:
        """Per-component rows, sorted by estimated time share (desc).

        ``time_frac`` is each component's share of the *sampled* time —
        an unbiased estimate of its share of total callback time.
        """
        total_sampled = sum(self.sampled_time_s.values())
        rows: List[Dict[str, object]] = []
        for component in self.events:
            sampled = self.sampled_time_s.get(component, 0.0)
            rows.append(
                {
                    "component": component,
                    "events": self.events[component],
                    "samples": self.samples.get(component, 0),
                    "sampled_time_s": sampled,
                    "time_frac": (sampled / total_sampled) if total_sampled else 0.0,
                }
            )
        rows.sort(key=lambda r: (-r["time_frac"], -r["events"], r["component"]))  # type: ignore[operator, index]
        return rows

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (attached to records / shown by report)."""
        return {
            "total_events": self.total_events,
            "runs": self.runs,
            "run_wall_s": self.run_wall_s,
            "events_per_sec": self.events_per_sec,
            "sample_every": self.sample_every,
            "components": self.attribution(),
        }

    def render(self, limit: Optional[int] = 12) -> str:
        lines = [
            f"profile: {self.total_events} events in {self.run_wall_s:.3f}s "
            f"({self.events_per_sec:,.0f} events/s, "
            f"{self.runs} run(s), sampling 1/{self.sample_every})"
        ]
        rows = self.attribution()
        shown = rows if limit is None else rows[:limit]
        if shown:
            width = max(9, max(len(str(r["component"])) for r in shown))
            lines.append(f"  {'component':<{width}}  {'events':>10}  {'time%':>6}")
            for row in shown:
                lines.append(
                    f"  {row['component']:<{width}}  {row['events']:>10}"
                    f"  {row['time_frac'] * 100:>5.1f}%"
                )
            if limit is not None and len(rows) > limit:
                lines.append(f"  ... ({len(rows) - limit} more components)")
        return "\n".join(lines)


@contextmanager
def profile(sample_every: int = DEFAULT_SAMPLE_EVERY) -> Iterator[SimProfiler]:
    """Install a :class:`SimProfiler` for the duration of the block.

    Not reentrant: nesting raises, because two active profilers would
    double-invoke callbacks.
    """
    if _engine._PROFILER is not None:
        raise RuntimeError("a simulator profiler is already active")
    profiler = SimProfiler(sample_every=sample_every)
    _engine.set_profiler(profiler)
    try:
        yield profiler
    finally:
        _engine.set_profiler(None)
