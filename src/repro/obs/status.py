"""Live run status: ``repro status <run-dir>``.

Answers "what is this run doing right now" from on-disk state alone —
no coordination with the scheduler or workers.  Three sources combine:

* the telemetry directory (scheduler ``run_started`` totals, per-worker
  ``task_finished``/``task_retried``/``heartbeat`` events),
* the work queue (``queue/tasks`` depth and live leases), and
* the result store (records persisted so far).

All three are read-only and tolerate a run that is mid-flight, finished
or crashed: whatever is present is reported, whatever is absent is
shown as unknown.  The ETA is the usual naive estimator —
``remaining x mean-wall / active-workers`` — which is exactly as honest
as its inputs.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.exec.queue import WorkQueue
from repro.experiments.store import ResultStore
from repro.obs.telemetry import events_by_kind, read_events

#: A worker whose last telemetry event is older than this is shown as
#: stale rather than active (matches the default queue lease timeout).
WORKER_STALE_S = 30.0


def collect_status(
    run_dir: Union[str, Path], now: Optional[float] = None
) -> Dict[str, object]:
    """Snapshot a run directory's state into one JSON-ready dict."""
    run_dir = Path(run_dir)
    now = time.time() if now is None else now
    store = ResultStore(run_dir)
    events, skipped = read_events(run_dir)
    by_kind = events_by_kind(events)

    # --- store: persisted progress -----------------------------------
    done = 0
    failed = 0
    wall_times: List[float] = []
    for record in store.latest().values():
        done += 1
        if not record.ok:
            failed += 1
        if record.wall_time_s > 0:
            wall_times.append(record.wall_time_s)

    # --- scheduler telemetry: totals ----------------------------------
    total: Optional[int] = None
    backend: Optional[str] = None
    run_finished = bool(by_kind.get("run_finished"))
    starts = by_kind.get("run_started", [])
    if starts:
        last = starts[-1]
        total = int(last["total"])  # type: ignore[arg-type]
        backend = str(last["backend"])

    # --- queue: live depth --------------------------------------------
    queue = WorkQueue(run_dir)
    queue_depth: Optional[int] = None
    leases: Optional[int] = None
    if queue.exists():
        queue_depth = len(queue._listdir(queue.tasks_dir))
        leases = len(queue._listdir(queue.leases_dir))

    # --- worker telemetry: per-worker throughput ----------------------
    workers: Dict[str, Dict[str, object]] = {}

    def worker_row(worker: str) -> Dict[str, object]:
        return workers.setdefault(
            worker,
            {
                "worker": worker,
                "finished": 0,
                "failed": 0,
                "retries": 0,
                "wall_s": 0.0,
                "last_seen_s": None,
            },
        )

    for event in events:
        worker = event.get("worker")
        if not isinstance(worker, str):
            continue
        row = worker_row(worker)
        age = now - float(event["ts"])  # type: ignore[arg-type]
        last = row["last_seen_s"]
        if last is None or age < last:  # type: ignore[operator]
            row["last_seen_s"] = age
        kind = event["kind"]
        if kind == "task_finished":
            row["finished"] = int(row["finished"]) + 1
            row["wall_s"] = float(row["wall_s"]) + float(event["wall_s"])  # type: ignore[arg-type]
            if event.get("status") != "ok":
                row["failed"] = int(row["failed"]) + 1
        elif kind == "task_retried":
            row["retries"] = int(row["retries"]) + 1
    for row in workers.values():
        finished = int(row["finished"])
        wall = float(row["wall_s"])
        row["mean_wall_s"] = (wall / finished) if finished else None
        age = row["last_seen_s"]
        row["active"] = (
            not run_finished and age is not None and age <= WORKER_STALE_S
        )

    # --- ETA -----------------------------------------------------------
    remaining: Optional[int] = None
    if total is not None:
        remaining = max(0, total - done)
    elif queue_depth is not None:
        remaining = queue_depth
    eta_s: Optional[float] = None
    if remaining == 0:
        eta_s = 0.0
    elif remaining is not None and wall_times:
        active = sum(1 for row in workers.values() if row["active"])
        mean_wall = sum(wall_times) / len(wall_times)
        eta_s = remaining * mean_wall / max(1, active)

    return {
        "run_dir": str(run_dir),
        "sweep": store.load_sweep_name(),
        "backend": backend,
        "total": total,
        "done": done,
        "failed": failed,
        "remaining": remaining,
        "queue_depth": queue_depth,
        "leases": leases,
        "finished": run_finished,
        "eta_s": eta_s,
        "workers": [workers[w] for w in sorted(workers)],
        "telemetry_events": len(events),
        "telemetry_skipped": skipped,
    }


def _fmt_duration(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_status(status: Dict[str, object]) -> str:
    """Human-readable view of :func:`collect_status`'s snapshot."""
    lines: List[str] = []
    sweep = status["sweep"] or "(unknown sweep)"
    backend = status["backend"]
    header = f"run {status['run_dir']}: sweep {sweep}"
    if backend:
        header += f" [{backend}]"
    lines.append(header)

    total = status["total"]
    done = status["done"]
    progress = f"  progress: {done}"
    if total is not None:
        pct = (100.0 * done / total) if total else 100.0  # type: ignore[operator]
        progress += f"/{total} specs ({pct:.0f}%)"
    else:
        progress += " spec(s) persisted"
    if status["failed"]:
        progress += f", {status['failed']} failed"
    lines.append(progress)

    if status["queue_depth"] is not None:
        lines.append(
            f"  queue: {status['queue_depth']} pending task(s), "
            f"{status['leases']} live lease(s)"
        )
    if status["finished"]:
        lines.append("  state: finished")
    elif status["eta_s"] is not None:
        lines.append(f"  eta: ~{_fmt_duration(float(status['eta_s']))}")

    workers = status["workers"]
    if workers:
        lines.append(f"  workers ({len(workers)}):")  # type: ignore[arg-type]
        width = max(len(str(row["worker"])) for row in workers)  # type: ignore[union-attr]
        for row in workers:  # type: ignore[union-attr]
            finished = row["finished"]
            mean = row["mean_wall_s"]
            mean_txt = f"{mean:.2f}s/spec" if mean else "-"
            seen = row["last_seen_s"]
            seen_txt = f"{seen:.0f}s ago" if seen is not None else "never"
            state = "active" if row["active"] else "idle"
            detail = f"{finished} done, {mean_txt}, seen {seen_txt} [{state}]"
            if row["retries"]:
                detail += f", {row['retries']} retr{'y' if row['retries'] == 1 else 'ies'}"
            if row["failed"]:
                detail += f", {row['failed']} failed"
            lines.append(f"    {row['worker']:<{width}}  {detail}")
    elif status["telemetry_events"] == 0:
        lines.append("  telemetry: none (run executed with telemetry off?)")
    if status["telemetry_skipped"]:
        lines.append(
            f"  telemetry: skipped {status['telemetry_skipped']} "
            f"malformed line(s)"
        )
    return "\n".join(lines)
