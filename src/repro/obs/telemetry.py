"""Run/worker telemetry: schema-validated JSONL lifecycle events.

The sweep scheduler and every queue worker append newline-delimited
JSON events to ``<run-dir>/telemetry/<source>.jsonl`` while a run is in
flight.  One file per source means no cross-process write contention on
shared filesystems (the same single-writer-per-file discipline the
sharded :class:`~repro.experiments.store.ResultStore` uses); readers
merge-sort by timestamp.

Every event carries the base fields ``schema``/``ts``/``kind``/
``source`` plus kind-specific required fields (see :data:`EVENT_KINDS`).
:func:`validate_event` enforces the schema on write (always) and on
read (``strict=True``), so a telemetry directory is a machine-checkable
artifact — CI's obs-smoke job validates every event of a real queue
sweep against it.

The presence of the ``telemetry/`` directory is the worker-side enable
switch: the scheduler creates it when telemetry is on, and
:meth:`TelemetryWriter.attach` returns ``None`` when it is absent, so
externally launched ``repro worker`` processes need no extra flag.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

SCHEMA_VERSION = 1

TELEMETRY_DIR = "telemetry"

#: Required kind-specific fields per event kind (beyond the base
#: ``schema``/``ts``/``kind``/``source`` carried by every event).
EVENT_KINDS: Dict[str, Tuple[str, ...]] = {
    # Scheduler lifecycle.
    "run_started": ("sweep", "total", "cached", "backend", "jobs"),
    "run_finished": ("sweep", "executed", "failed", "wall_s"),
    "spec_cached": ("spec_hash",),
    "record": ("spec_hash", "status", "wall_s"),
    # Worker lifecycle.
    "worker_started": ("worker",),
    "worker_finished": ("worker", "completed", "wall_s"),
    "task_claimed": ("worker", "task_id"),
    "task_finished": ("worker", "task_id", "status", "wall_s"),
    "task_retried": ("worker", "task_id", "attempt", "error"),
    "heartbeat": ("worker", "leased"),
}

_BASE_FIELDS = ("schema", "ts", "kind", "source")


class TelemetrySchemaError(ValueError):
    """An event violates the telemetry schema."""


def validate_event(event: object) -> Dict[str, object]:
    """Validate one event against the schema; return it on success.

    Raises :class:`TelemetrySchemaError` naming the offending field in
    the established listing-error style.
    """
    if not isinstance(event, dict):
        raise TelemetrySchemaError(
            f"telemetry event must be an object, got {type(event).__name__}"
        )
    for field in _BASE_FIELDS:
        if field not in event:
            raise TelemetrySchemaError(f"telemetry event missing field {field!r}")
    if event["schema"] != SCHEMA_VERSION:
        raise TelemetrySchemaError(
            f"unsupported telemetry schema {event['schema']!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if not isinstance(event["ts"], (int, float)) or isinstance(event["ts"], bool):
        raise TelemetrySchemaError(
            f"telemetry field 'ts' must be a number, got {event['ts']!r}"
        )
    kind = event["kind"]
    if kind not in EVENT_KINDS:
        known = ", ".join(sorted(EVENT_KINDS))
        raise TelemetrySchemaError(
            f"unknown telemetry kind {kind!r} (known: {known})"
        )
    for field in EVENT_KINDS[kind]:
        if field not in event:
            raise TelemetrySchemaError(
                f"telemetry kind {kind!r} missing field {field!r}"
            )
    return event


def telemetry_dir(run_dir: Path) -> Path:
    return Path(run_dir) / TELEMETRY_DIR


class TelemetryWriter:
    """Appends schema-validated events to one per-source JSONL file.

    Thread-safe: worker heartbeat threads emit concurrently with the
    worker main loop, so open-append-close happens under a lock.
    """

    def __init__(self, run_dir: Path, source: str):
        self.source = source
        self.path = telemetry_dir(run_dir) / f"{source}.jsonl"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.emitted = 0

    @classmethod
    def attach(cls, run_dir: Path, source: str) -> Optional["TelemetryWriter"]:
        """Writer iff the run has telemetry enabled, else ``None``.

        Telemetry is enabled when ``<run-dir>/telemetry/`` exists — the
        scheduler creates it, so external workers inherit the setting.
        """
        if not telemetry_dir(run_dir).is_dir():
            return None
        return cls(run_dir, source)

    def emit(self, kind: str, **fields: object) -> Dict[str, object]:
        event: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "ts": time.time(),
            "kind": kind,
            "source": self.source,
        }
        event.update(fields)
        validate_event(event)
        line = json.dumps(event, sort_keys=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            self.emitted += 1
        return event


def default_source() -> str:
    """``{hostname}-{pid}``, matching the worker-id convention."""
    return f"{socket.gethostname()}-{os.getpid()}"


def read_events(
    run_dir: Path, strict: bool = False
) -> Tuple[List[Dict[str, object]], int]:
    """Merge all per-source telemetry files, sorted by timestamp.

    Returns ``(events, skipped)``.  Malformed or schema-violating lines
    are counted and skipped by default (a live run may have a partially
    written final line); ``strict=True`` raises instead — that is what
    CI uses to certify a finished run's telemetry.
    """
    directory = telemetry_dir(run_dir)
    events: List[Dict[str, object]] = []
    skipped = 0
    if not directory.is_dir():
        return events, skipped
    for path in sorted(directory.glob("*.jsonl")):
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = validate_event(json.loads(line))
                except (json.JSONDecodeError, TelemetrySchemaError) as exc:
                    if strict:
                        raise TelemetrySchemaError(
                            f"{path.name}:{lineno}: {exc}"
                        ) from exc
                    skipped += 1
                    continue
                events.append(event)
    events.sort(key=lambda e: (e["ts"], e["source"], e["kind"]))
    return events, skipped


def events_by_kind(
    events: Iterable[Dict[str, object]]
) -> Dict[str, List[Dict[str, object]]]:
    out: Dict[str, List[Dict[str, object]]] = {}
    for event in events:
        out.setdefault(str(event["kind"]), []).append(event)
    return out
