"""Hierarchical metrics registry: counters, gauges, histograms, probes.

The registry is the pull-side complement to the push-style
:class:`~repro.sim.trace.TraceLog`: components keep maintaining the
plain integer counters they always had (``CacheArray.hits``,
``Port.sent``, ``Simulator.executed``, ...), and a
:class:`MetricsRegistry` *binds* those counters as named instruments —
optionally alongside push-style counters/gauges/histograms owned by the
registry itself.  Periodic simulated-time :meth:`MetricsRegistry.snapshot`
calls turn every instrument into a ``(time_ps, value)`` time series
next to the final :meth:`MetricsRegistry.summary`.

Because observation is pull-based, a system that never attaches a
registry executes exactly the same instructions as before — the
zero-overhead-when-off contract shared with the ``NullTracer`` pattern
(and pinned by ``repro bench``'s ``obs_overhead`` workload).  Scheduled
snapshots never mutate simulation state, so an instrumented run's
measurement stays bit-identical to an uninstrumented one.

Instrument names are hierarchical dotted paths (``engine.events``,
``llc.array.hits``); :meth:`MetricsRegistry.scoped` returns a view that
prefixes a subtree, which is how per-component registration composes.
Labels distinguish instances sharing a name (``port.sent{dir=rx}``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.stats import Histogram

Labels = Tuple[Tuple[str, str], ...]


class MetricError(ValueError):
    """Conflicting registration (same key, different instrument kind)."""


def metric_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical ``name{k=v,...}`` key; label order never matters."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Instrument:
    """Base: a named, labelled source of one numeric value."""

    kind = "abstract"
    __slots__ = ("name", "labels", "key")

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels: Labels = tuple(sorted((k, str(v)) for k, v in labels.items()))
        self.key = metric_key(name, labels)

    def read(self) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.key}={self.read()})"


class CounterMetric(Instrument):
    """Push-style monotonically increasing counter."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Dict[str, Any]):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def read(self) -> float:
        return self.value


class GaugeMetric(Instrument):
    """Push-style point-in-time value."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Dict[str, Any]):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def read(self) -> float:
        return self.value


class ProbeMetric(Instrument):
    """Pull-style gauge bound to a zero-argument callable.

    This is how existing component counters (``array.hits``,
    ``sim.executed``) register without the component paying anything on
    its hot path.
    """

    kind = "probe"
    __slots__ = ("fn",)

    def __init__(self, name: str, labels: Dict[str, Any], fn: Callable[[], float]):
        super().__init__(name, labels)
        self.fn = fn

    def read(self) -> float:
        return float(self.fn())


class HistogramMetric(Instrument):
    """Push-style sample distribution (exact quantiles, PMU-style)."""

    kind = "histogram"
    __slots__ = ("histogram",)

    def __init__(self, name: str, labels: Dict[str, Any]):
        super().__init__(name, labels)
        self.histogram = Histogram(name)

    def observe(self, value: float) -> None:
        self.histogram.add(value)

    def observe_many(self, values: Iterable[float]) -> None:
        self.histogram.extend(values)

    def read(self) -> float:
        """Snapshot value: the sample count (quantiles live in summary)."""
        return float(len(self.histogram))

    def summary(self) -> Dict[str, float]:
        if not len(self.histogram):
            return {"count": 0.0}
        return self.histogram.summary()


class MetricsRegistry:
    """Hierarchical instrument registry with simulated-time snapshots."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._instruments: Dict[str, Instrument] = {}
        self._series: Dict[str, List[Tuple[int, float]]] = {}
        self.snapshots = 0

    # --------------------------- registration ---------------------------
    def _register(self, instrument: Instrument) -> Instrument:
        existing = self._instruments.get(instrument.key)
        if existing is not None:
            if type(existing) is not type(instrument):
                raise MetricError(
                    f"metric {instrument.key!r} already registered as "
                    f"{existing.kind}, cannot re-register as {instrument.kind}"
                )
            return existing
        self._instruments[instrument.key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        """Get-or-create a counter (idempotent per key)."""
        return self._register(CounterMetric(name, labels))  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> GaugeMetric:
        return self._register(GaugeMetric(name, labels))  # type: ignore[return-value]

    def histogram(self, name: str, **labels: Any) -> HistogramMetric:
        return self._register(HistogramMetric(name, labels))  # type: ignore[return-value]

    def probe(self, name: str, fn: Callable[[], float], **labels: Any) -> ProbeMetric:
        """Bind an existing counter/attribute as a pull-style gauge."""
        return self._register(ProbeMetric(name, labels, fn))  # type: ignore[return-value]

    def scoped(self, prefix: str) -> "ScopedRegistry":
        """A view registering everything under ``<prefix>.``."""
        return ScopedRegistry(self, prefix)

    # ----------------------------- reading ------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, key: str) -> bool:
        return key in self._instruments

    def get(self, key: str) -> Optional[Instrument]:
        return self._instruments.get(key)

    def instruments(self) -> List[Instrument]:
        return [self._instruments[k] for k in sorted(self._instruments)]

    def snapshot(self, time_ps: int) -> Dict[str, float]:
        """Sample every instrument at simulated time ``time_ps``.

        Appends one ``(time_ps, value)`` point per instrument to the
        registry's time series and returns the sampled values.  Reading
        never mutates the instrumented system.
        """
        self.snapshots += 1
        sampled: Dict[str, float] = {}
        for key in sorted(self._instruments):
            value = self._instruments[key].read()
            sampled[key] = value
            self._series.setdefault(key, []).append((int(time_ps), value))
        return sampled

    def series(self) -> Dict[str, List[Tuple[int, float]]]:
        """Per-metric ``[(time_ps, value), ...]`` across all snapshots."""
        return {k: list(v) for k, v in sorted(self._series.items())}

    def summary(self) -> Dict[str, object]:
        """Final value per instrument (histograms: full quantile dict)."""
        out: Dict[str, object] = {}
        for key in sorted(self._instruments):
            instrument = self._instruments[key]
            if isinstance(instrument, HistogramMetric):
                out[key] = instrument.summary()
            else:
                out[key] = instrument.read()
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: summary plus the snapshot time series."""
        return {
            "name": self.name,
            "snapshots": self.snapshots,
            "summary": self.summary(),
            "series": {
                k: [[t, v] for t, v in points]
                for k, points in sorted(self._series.items())
            },
        }

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable summary table, widest-key aligned."""
        summary = self.summary()
        keys = list(summary)
        if limit is not None:
            keys = keys[:limit]
        if not keys:
            return f"metrics registry {self.name!r}: no instruments"
        width = max(len(k) for k in keys)
        lines = [
            f"metrics registry {self.name!r}: {len(self._instruments)} "
            f"instrument(s), {self.snapshots} snapshot(s)"
        ]
        for key in keys:
            value = summary[key]
            if isinstance(value, dict):
                rendered = " ".join(
                    f"{k}={value[k]:g}" for k in ("count", "median", "p99")
                    if k in value
                )
            else:
                rendered = f"{value:g}"
            lines.append(f"  {key:<{width}}  {rendered}")
        if limit is not None and len(summary) > limit:
            lines.append(f"  ... ({len(summary) - limit} more)")
        return "\n".join(lines)


class ScopedRegistry:
    """Prefix view onto a :class:`MetricsRegistry` (hierarchy helper)."""

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self.prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        return self._registry.counter(self._name(name), **labels)

    def gauge(self, name: str, **labels: Any) -> GaugeMetric:
        return self._registry.gauge(self._name(name), **labels)

    def histogram(self, name: str, **labels: Any) -> HistogramMetric:
        return self._registry.histogram(self._name(name), **labels)

    def probe(self, name: str, fn: Callable[[], float], **labels: Any) -> ProbeMetric:
        return self._registry.probe(self._name(name), fn, **labels)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._registry, self._name(prefix))


class NullRegistry:
    """Null-object registry: every instrument it hands out is inert.

    Components that want to hold a metrics handle unconditionally (the
    ``NULL_TRACER`` idiom) default to :data:`NULL_METRICS`; pushing into
    a null instrument costs one no-op method call.
    """

    __slots__ = ()

    class _NullInstrument:
        __slots__ = ()

        def inc(self, amount: float = 1.0) -> None:
            pass

        def set(self, value: float) -> None:
            pass

        def observe(self, value: float) -> None:
            pass

        def observe_many(self, values: Iterable[float]) -> None:
            pass

        def read(self) -> float:
            return 0.0

    _INSTRUMENT = _NullInstrument()

    def counter(self, name: str, **labels: Any):
        return self._INSTRUMENT

    gauge = histogram = counter

    def probe(self, name: str, fn: Callable[[], float], **labels: Any):
        return self._INSTRUMENT

    def scoped(self, prefix: str) -> "NullRegistry":
        return self

    def snapshot(self, time_ps: int) -> Dict[str, float]:
        return {}


#: Shared process-wide null registry instance.
NULL_METRICS = NullRegistry()


#: Integer attributes bound as probes when found on a system node (or
#: one of its :data:`_SUB_OBJECTS` members).  These are the counters the
#: simulator components already maintain on their hot paths.
_COUNTER_ATTRS = (
    "hits",
    "misses",
    "evictions",
    "writebacks",
    "sent",
    "delivered",
    "naks",
    "remote_accesses",
    "local_hits",
    "global_requests",
    "executed",
    "dropped",
)

#: One-level descent into well-known sub-objects of a node.
_SUB_OBJECTS = ("array", "hmc", "dcoh", "pmu", "prefetcher")


def _probe_counters(registry, prefix: str, obj: object) -> int:
    """Register a probe per integer counter attribute found on ``obj``."""
    bound = 0
    for attr in _COUNTER_ATTRS:
        value = getattr(obj, attr, None)
        if isinstance(value, int) and not isinstance(value, bool):
            registry.probe(f"{prefix}.{attr}", lambda o=obj, a=attr: getattr(o, a))
            bound += 1
    return bound


def instrument_system(system, registry: MetricsRegistry) -> int:
    """Bind a built system's existing counters into ``registry``.

    Walks the :class:`~repro.system.builder.BuiltSystem`: the engine
    (events executed/pending/now), the host LLC, every topology node
    (duck-typed counter attributes, one level of well-known
    sub-objects), and supernode per-host fabric counters.  Returns the
    number of instruments bound.  Purely pull-based: nothing on the
    simulation's hot paths changes, which is what keeps instrumented
    runs bit-identical.
    """
    sim = system.sim
    engine = registry.scoped("engine")
    engine.probe("events", lambda: sim.executed)
    engine.probe("pending", lambda: sim.pending)
    engine.probe("now_ps", lambda: sim.now)
    bound = 3
    llc = getattr(system, "llc", None)
    if llc is not None:
        bound += _probe_counters(registry, "llc", llc)
        array = getattr(llc, "array", None)
        if array is not None:
            bound += _probe_counters(registry, "llc.array", array)
    for name, node in sorted(getattr(system, "nodes", {}).items()):
        bound += _probe_counters(registry, name, node)
        for sub_name in _SUB_OBJECTS:
            sub = getattr(node, sub_name, None)
            if sub is not None and not isinstance(sub, (int, float, str)):
                bound += _probe_counters(registry, f"{name}.{sub_name}", sub)
        hosts = getattr(node, "hosts", None)
        if isinstance(hosts, dict):
            for host_name, entry in sorted(hosts.items()):
                bound += _probe_counters(
                    registry, f"{name}.{host_name}", entry
                )
    return bound


class MetricSnapshotter:
    """Periodic simulated-time snapshots driven by the event calendar.

    Schedules itself every ``interval_ps`` and stops as soon as the
    calendar would otherwise be empty (``sim.pending == 0`` at tick
    time), so it never keeps a drained simulation alive.  Snapshot
    callbacks read instruments and nothing else — simulation state is
    untouched.
    """

    def __init__(self, sim, registry: MetricsRegistry, interval_ps: int):
        if interval_ps <= 0:
            raise MetricError(
                f"snapshot interval must be positive, got {interval_ps}"
            )
        self.sim = sim
        self.registry = registry
        self.interval_ps = int(interval_ps)

    def start(self) -> "MetricSnapshotter":
        self.sim.schedule_after(self.interval_ps, self._tick, ())
        return self

    def _tick(self) -> None:
        self.registry.snapshot(self.sim.now)
        if self.sim.pending > 0:
            self.sim.schedule_after(self.interval_ps, self._tick, ())
