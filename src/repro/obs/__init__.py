"""Unified observability layer: metrics, telemetry, status, profiling.

Four pieces, one contract — **zero overhead when off**:

* :mod:`repro.obs.metrics` — pull-based :class:`MetricsRegistry` with
  simulated-time snapshots over the counters components already keep.
* :mod:`repro.obs.telemetry` — schema-validated JSONL lifecycle events
  from the sweep scheduler and queue workers.
* :mod:`repro.obs.status` / :mod:`repro.obs.timeline` — the readers:
  live ``repro status`` and Chrome-trace ``repro timeline``.
* :mod:`repro.obs.profiler` — opt-in (``--profile``) simulator
  profiling with per-component event and time attribution.
"""

from repro.obs.metrics import (
    MetricError,
    MetricSnapshotter,
    MetricsRegistry,
    NULL_METRICS,
    instrument_system,
    metric_key,
)
from repro.obs.profiler import SimProfiler, profile
from repro.obs.status import collect_status, render_status
from repro.obs.telemetry import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    TelemetrySchemaError,
    TelemetryWriter,
    read_events,
    telemetry_dir,
    validate_event,
)
from repro.obs.timeline import build_timeline, write_timeline

__all__ = [
    "EVENT_KINDS",
    "MetricError",
    "MetricSnapshotter",
    "MetricsRegistry",
    "NULL_METRICS",
    "SCHEMA_VERSION",
    "SimProfiler",
    "TelemetrySchemaError",
    "TelemetryWriter",
    "build_timeline",
    "collect_status",
    "instrument_system",
    "metric_key",
    "profile",
    "read_events",
    "render_status",
    "telemetry_dir",
    "validate_event",
    "write_timeline",
]
