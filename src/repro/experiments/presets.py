"""Built-in sweep presets.

``quick`` exercises the orchestrator end-to-end in a few seconds (used
by CI smoke runs and the acceptance sweep); ``paper`` regenerates every
table/figure at the paper's default fidelity.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.spec import SweepSpec

PRESETS: Dict[str, dict] = {
    "quick": {
        "name": "quick",
        "repeats": 1,
        "base_seed": 1234,
        "experiments": [
            {"experiment": "table1"},
            {"experiment": "table2"},
            {"experiment": "fig4"},
            {"experiment": "fig12", "params": {"trials": 3}},
            {"experiment": "fig13", "grid": {"trials": [2, 3]}},
            {"experiment": "fig15"},
            {"experiment": "fig17", "params": {"ops": 256}},
            {"experiment": "fig18a", "params": {"messages": 20}},
            {"experiment": "fig18b", "params": {"messages": 20}},
        ],
    },
    "topology": {
        # Multi-device fan-out scenarios over the system-construction
        # layer; quick sizes so CI can sweep them as a smoke test.
        "name": "topology",
        "repeats": 1,
        "base_seed": 1234,
        "experiments": [
            {"experiment": "fanout2", "params": {"count": 8, "trials": 2, "bw_count": 256}},
            {"experiment": "fanout4", "params": {"count": 8, "trials": 2, "bw_count": 256}},
        ],
    },
    "topology-scale": {
        # The topology itself as a sweep axis: device counts 1..8 of the
        # fan-out family, each point hashed/cached independently.
        "name": "topology-scale",
        "repeats": 1,
        "base_seed": 1234,
        "experiments": [
            {
                "experiment": "topo-scale",
                "params": {"count": 8, "trials": 2, "bw_count": 128},
                "grid": {
                    "topology": [f"fanout({n})" for n in range(1, 9)],
                },
            },
        ],
    },
    "workload-mix": {
        # Traffic as a sweep axis: the same LSU-bearing layout driven
        # by four generators (incl. one phase-composed mix), plus
        # coherent generator traffic through per-host supernode
        # systems.  Quick sizes so CI can sweep it as a smoke test.
        "name": "workload-mix",
        "repeats": 1,
        "base_seed": 1234,
        "experiments": [
            {
                "experiment": "workload-mix",
                "params": {"topology": "fanout-2", "streams": 2},
                "grid": {
                    "workload": [
                        "sequential(128)",
                        "zipf(128,1.2)",
                        "producer-consumer(64,16)",
                        "mixed(64)",
                    ],
                },
            },
            {
                "experiment": "supernode-workload",
                "params": {"hosts": 2},
                "grid": {
                    "workload": ["zipf(128,1.2)", "producer-consumer(64,16)"],
                },
            },
        ],
    },
    "parallel-parity": {
        # The windowed-parallel contract as a sweep: the same supernode
        # scenarios at sim_parallel 1 (windowed, in-process) and 4
        # (windowed, forked workers) — CI's parallel-smoke job diffs the
        # two series bit-for-bit, including under an active fault plan.
        "name": "parallel-parity",
        "repeats": 1,
        "base_seed": 1234,
        "experiments": [
            {
                "experiment": "supernode-workload",
                "params": {"hosts": 4, "streams": 4},
                "grid": {
                    "workload": ["zipf(256,1.2)", "producer-consumer(128,32)"],
                    "sim_parallel": [1, 4],
                },
            },
            {
                "experiment": "fault-tolerance",
                "params": {
                    "topology": "supernode(4)",
                    "workload": "mixed(64)",
                    "streams": 4,
                },
                "grid": {
                    "fault": ["storm", "host-outage"],
                    "sim_parallel": [1, 4],
                },
            },
        ],
    },
    "fault-tolerance": {
        # Failure as a sweep axis: the same workload/topology pairs
        # driven under every built-in fault plan (plus the fault-free
        # baseline, which must match a plain run bit-for-bit — CI's
        # fault-smoke job asserts exactly that).  Quick sizes so CI
        # can sweep it serially as a smoke test.
        "name": "fault-tolerance",
        "repeats": 1,
        "base_seed": 1234,
        "experiments": [
            {
                "experiment": "fault-tolerance",
                "params": {
                    "topology": "fanout-2",
                    "workload": "zipf(96,1.2)",
                    "streams": 2,
                },
                "grid": {
                    "fault": [
                        "none",
                        "link-degrade",
                        "link-flap",
                        "dev-drop",
                        "msg-corrupt(0.1)",
                        "storm",
                    ],
                },
            },
            {
                "experiment": "fault-tolerance",
                "params": {
                    "topology": "supernode(2)",
                    "workload": "producer-consumer(96,24)",
                },
                "grid": {
                    "fault": [
                        "none",
                        "host-outage",
                        "link-degrade",
                        "storm",
                    ],
                },
            },
        ],
    },
    "significance": {
        # The statistical-analysis acceptance scenario: fanout(4) vs
        # fanout(8) under a skewed workload, 10 repeats with distinct
        # injected seeds per repeat, so `repro analyze` has real
        # distributions to contrast.  streams=8 so both fan-outs'
        # LSU populations are actually exercised — with fewer streams
        # the extra devices idle and the topologies tie exactly.
        "name": "significance",
        "repeats": 10,
        "base_seed": 1234,
        "experiments": [
            {
                "experiment": "workload-mix",
                "params": {"workload": "zipf(192,1.1)", "streams": 8},
                "grid": {
                    "topology": ["fanout(4)", "fanout(8)"],
                },
            },
        ],
    },
    "paper": {
        "name": "paper",
        "repeats": 1,
        "base_seed": 1234,
        "experiments": [
            {"experiment": "table1"},
            {"experiment": "table2"},
            {"experiment": "fig4"},
            {"experiment": "fig12"},
            {"experiment": "fig13"},
            {"experiment": "fig14"},
            {"experiment": "fig15"},
            {"experiment": "fig16"},
            {"experiment": "fig17"},
            {"experiment": "fig18a"},
            {"experiment": "fig18b"},
            {"experiment": "headline"},
            {"experiment": "mape"},
        ],
    },
}


def preset_sweep(name: str) -> SweepSpec:
    """Build the named preset's :class:`SweepSpec`."""
    try:
        data = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep preset {name!r}; options: {sorted(PRESETS)}"
        ) from None
    return SweepSpec.from_dict(data)
