"""HTML report rendering over the lazily-computed analysis context.

Follows the fuzzbench ``rendering.py`` shape: the renderer takes a
:class:`~repro.experiments.report.RunAnalysis` (whose properties are
``cached_property``-lazy) and only the pieces the template actually
references get computed.  Plots are produced by
:mod:`repro.experiments.plotting` and embedded inline — SVG as markup,
PNG as base64 ``data:`` URIs — so the report is a single
self-contained file that survives being mailed around.

Everything is deterministic for a given store: iteration orders are
sorted, the default plot backend is byte-stable SVG, and no timestamps
are stamped into the document.  Golden tests hash the output.
"""
from __future__ import annotations

import base64
import html
from pathlib import Path
from typing import List, Optional, Union

from repro.experiments.plotting import PlotError, get_plotter
from repro.experiments.report import (
    MetricComparison,
    RunAnalysis,
    SampleGroup,
)

_STYLE = """
body { font-family: sans-serif; margin: 2em auto; max-width: 60em;
       color: #1a1a1a; }
h1, h2 { border-bottom: 1px solid #ccc; padding-bottom: 0.2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #bbb; padding: 0.3em 0.7em; text-align: left; }
th { background: #f0f0f0; }
tr.significant td { background: #e7f4e7; }
.verdict { font-weight: bold; }
.note { color: #555; font-style: italic; }
figure { margin: 1em 0; }
""".strip()


def _cell(value: object) -> str:
    return f"<td>{html.escape(str(value))}</td>"


def _table(headers: List[str], rows: List[List[object]],
           row_classes: Optional[List[str]] = None) -> str:
    head = "".join(f"<th>{html.escape(h)}</th>" for h in headers)
    body: List[str] = []
    for index, row in enumerate(rows):
        cls = row_classes[index] if row_classes else ""
        attr = f' class="{cls}"' if cls else ""
        body.append(f"<tr{attr}>" + "".join(_cell(c) for c in row) + "</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


def _embed_plot(mime: str, payload: bytes) -> str:
    if mime == "image/svg+xml":
        return payload.decode("utf-8")
    encoded = base64.b64encode(payload).decode("ascii")
    return f'<img src="data:{mime};base64,{encoded}" alt="distribution"/>'


def _groups_section(groups: List[SampleGroup], min_repeats: int) -> str:
    rows = [
        [g.label, g.experiment, g.n,
         "yes" if g.n >= min_repeats else f"no (n<{min_repeats})"]
        for g in groups
    ]
    if not rows:
        rows = [["-", "no successful records", 0, "-"]]
    return "<h2>Sample groups</h2>" + _table(
        ["group", "experiment", "repeats", "testable"], rows
    )


def _comparisons_section(comparisons: List[MetricComparison],
                         alpha: float) -> str:
    rows: List[List[object]] = []
    classes: List[str] = []
    for c in comparisons:
        rows.append([
            c.experiment, c.metric, c.group_a, c.group_b,
            f"{c.n_a}/{c.n_b}", f"{c.median_a:.4g}", f"{c.median_b:.4g}",
            f"{c.a12:.2f}", f"{c.delta:+.2f}",
            f"[{c.ci_low:.4g}, {c.ci_high:.4g}]",
            f"{c.p_value:.2g}", f"{c.p_adjusted:.2g}", c.verdict,
        ])
        classes.append("significant" if c.significant else "")
    section = (
        f"<h2>Pairwise contrasts (Mann&ndash;Whitney, "
        f"Holm-corrected, &alpha;={alpha:g})</h2>"
    )
    section += _table(
        ["experiment", "metric", "A", "B", "n", "median A", "median B",
         "A12", "delta", "CI(median diff)", "p", "p(Holm)", "verdict"],
        rows, classes,
    )
    return section


def _verdicts_section(analysis: RunAnalysis) -> str:
    if not analysis.significant:
        return (
            '<p class="note">No contrast survives Holm&ndash;Bonferroni '
            f"correction at &alpha;={analysis.alpha:g}: observed deltas "
            "are consistent with noise.</p>"
        )
    items = []
    for c in analysis.significant:
        direction = "&gt;" if c.a12 > 0.5 else "&lt;"
        items.append(
            f"<li><span class=\"verdict\">{html.escape(c.metric)}</span>: "
            f"{html.escape(c.group_a)} {direction} {html.escape(c.group_b)} "
            f"(p={c.p_adjusted:.2g} Holm-corrected, A12={c.a12:.2f}, "
            f"over {c.n_a}/{c.n_b} repeats)</li>"
        )
    return "<h2>Verdicts</h2><ul>" + "".join(items) + "</ul>"


def _plots_section(analysis: RunAnalysis, backend: str) -> str:
    """One distribution plot per (experiment, varying metric)."""
    if backend == "none":
        return ""
    plot = get_plotter(backend)
    constant = set(analysis.constant_metrics)
    by_experiment = {}
    for group in analysis.testable_groups:
        by_experiment.setdefault(group.experiment, []).append(group)
    figures: List[str] = []
    for experiment in sorted(by_experiment):
        groups = by_experiment[experiment]
        metrics = sorted(
            {m for g in groups for m in g.metrics} - constant
        )
        if analysis.metric_filter is not None:
            metrics = [m for m in metrics if m in analysis.metric_filter]
        for metric in metrics:
            samples = {
                g.label: g.metrics[metric]
                for g in groups if metric in g.metrics
            }
            if not samples:
                continue
            try:
                mime, payload = plot(f"{experiment}: {metric}", samples)
            except PlotError:
                continue
            figures.append(f"<figure>{_embed_plot(mime, payload)}</figure>")
    if not figures:
        return ""
    return "<h2>Distributions</h2>" + "".join(figures)


def render_html_report(
    analysis: RunAnalysis,
    plots: str = "svg",
) -> str:
    """Render a :class:`RunAnalysis` to one self-contained HTML page."""
    title = f"Analysis: {analysis.name}"
    sections: List[str] = [_groups_section(analysis.groups,
                                           analysis.min_repeats)]
    if not analysis.testable_groups:
        sections.append(
            '<p class="note">No group has &ge; 2 repeats: every stored '
            "value is a point estimate, so this run declines to test for "
            "significance. Re-sweep with <code>--repeats N</code> "
            "(N &ge; 2) to make deltas falsifiable.</p>"
        )
    else:
        if analysis.comparisons:
            sections.append(_comparisons_section(analysis.comparisons,
                                                 analysis.alpha))
            sections.append(_verdicts_section(analysis))
        else:
            sections.append(
                '<p class="note">Testable groups share no varying '
                "metrics: nothing to contrast.</p>"
            )
        sections.append(_plots_section(analysis, plots))
        if analysis.constant_metrics:
            names = ", ".join(
                f"<code>{html.escape(m)}</code>"
                for m in analysis.constant_metrics
            )
            sections.append(
                f'<p class="note">Constant across all repeats '
                f"(excluded from testing): {names}</p>"
            )
    if analysis.declined:
        names = ", ".join(
            html.escape(g.label) for g in analysis.declined
        )
        sections.append(
            f'<p class="note">Declined (fewer than '
            f"{analysis.min_repeats} repeats): {names}</p>"
        )
    body = "".join(s for s in sections if s)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8"/>'
        f"<title>{html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head>"
        f"<body><h1>{html.escape(title)}</h1>{body}</body></html>\n"
    )


def write_html_report(
    analysis: RunAnalysis,
    path: Union[str, Path],
    plots: str = "svg",
) -> Path:
    """Render and write the HTML report; returns the written path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_html_report(analysis, plots=plots),
                      encoding="utf-8")
    return target
