"""Experiment orchestration: declarative sweeps, parallel execution,
persistent results, and report generation.

Layers (each its own module):

* :mod:`repro.experiments.spec` — ``ExperimentSpec``/``SweepSpec``
  declarative descriptions with grid expansion and content hashing.
* :mod:`repro.experiments.runner` — multiprocessing sweep executor
  with per-spec seeding, failure isolation, and a result cache.
* :mod:`repro.experiments.store` — JSONL-backed ``ResultStore``
  persisting every result with spec hash, wall time, git metadata.
* :mod:`repro.experiments.report` — lazily-computed ``RunReport``
  (per-experiment MAPE, markdown summaries) and run-vs-run deltas.
* :mod:`repro.experiments.presets` — built-in sweeps (``quick``,
  ``paper``).

The CLI exposes the subsystem as ``repro sweep``, ``repro report``,
and ``repro compare``.
"""

from repro.experiments.presets import PRESETS, preset_sweep
from repro.experiments.report import RunReport, compare_runs
from repro.experiments.runner import SweepOutcome, run_sweep
from repro.experiments.spec import (
    ExperimentSpec,
    SpecError,
    SweepGroup,
    SweepSpec,
)
from repro.experiments.store import ResultStore, StoredResult

__all__ = [
    "PRESETS",
    "preset_sweep",
    "RunReport",
    "compare_runs",
    "SweepOutcome",
    "run_sweep",
    "ExperimentSpec",
    "SpecError",
    "SweepGroup",
    "SweepSpec",
    "ResultStore",
    "StoredResult",
]
