"""Experiment orchestration: declarative sweeps, distributed execution,
persistent results, and report generation.

Layers (each its own module):

* :mod:`repro.experiments.spec` — ``ExperimentSpec``/``SweepSpec``
  declarative descriptions with grid expansion and content hashing.
* :mod:`repro.experiments.runner` — the sweep scheduler: expansion,
  result cache, per-spec seeding, and dispatch to an executor backend.
* :mod:`repro.experiments.exec` — the distributed execution subsystem:
  advisory locks, the durable work queue, the worker loop behind
  ``repro worker``, and the ``serial``/``pool``/``queue`` backends.
* :mod:`repro.experiments.store` — sharded JSONL ``ResultStore``
  persisting every result with spec hash, wall time, git metadata,
  and per-shard indexes for streaming aggregation.
* :mod:`repro.experiments.report` — lazily-computed ``RunReport``
  (per-experiment MAPE, markdown summaries), run-vs-run deltas, and
  the significance-testing ``RunAnalysis`` over repeat groups.
* :mod:`repro.experiments.stats` — the pure numpy stats core:
  Mann-Whitney U, Holm-Bonferroni, Cliff's delta/A12, seeded
  bootstrap CIs.
* :mod:`repro.experiments.plotting`/:mod:`repro.experiments.rendering`
  — distribution plots (deterministic SVG, optional matplotlib) and
  the self-contained HTML report renderer.
* :mod:`repro.experiments.presets` — built-in sweeps (``quick``,
  ``paper``, ``significance``).

The CLI exposes the subsystem as ``repro sweep``, ``repro worker``,
``repro report``, ``repro compare``, and ``repro analyze``.
"""

from repro.experiments.presets import PRESETS, preset_sweep
from repro.experiments.report import (
    MetricComparison,
    RunAnalysis,
    RunReport,
    SampleGroup,
    analyze_run,
    compare_runs,
    group_samples,
)
from repro.experiments.runner import SweepOutcome, default_jobs, run_sweep
from repro.experiments.spec import (
    ExperimentSpec,
    SpecError,
    SweepGroup,
    SweepSpec,
)
from repro.experiments.store import (
    LoadResult,
    ResultStore,
    StoreCorruptionWarning,
    StoredResult,
)
from repro.experiments.exec import (
    EXECUTORS,
    QueueError,
    UnknownExecutorError,
    WorkQueue,
    WorkerOutcome,
    executor_by_name,
    run_worker,
)

__all__ = [
    "PRESETS",
    "preset_sweep",
    "MetricComparison",
    "RunAnalysis",
    "RunReport",
    "SampleGroup",
    "analyze_run",
    "compare_runs",
    "group_samples",
    "SweepOutcome",
    "default_jobs",
    "run_sweep",
    "ExperimentSpec",
    "SpecError",
    "SweepGroup",
    "SweepSpec",
    "LoadResult",
    "ResultStore",
    "StoreCorruptionWarning",
    "StoredResult",
    "EXECUTORS",
    "QueueError",
    "UnknownExecutorError",
    "WorkQueue",
    "WorkerOutcome",
    "executor_by_name",
    "run_worker",
]
