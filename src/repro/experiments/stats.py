"""Deterministic, dependency-light statistics for sweep analysis.

The analysis layer refuses to call a winner from point estimates; this
module supplies the machinery that makes "A beats B" falsifiable:

* :func:`mann_whitney_u` — the two-sided Mann–Whitney U rank test
  (exact small-sample distribution when tie-free, tie-corrected normal
  approximation otherwise), the standard nonparametric test fuzzbench's
  ``stat_tests.py`` applies to per-trial fuzzing scores.
* :func:`holm_bonferroni` — step-down multiple-comparison correction,
  so sweeping twenty metrics does not manufacture one "significant"
  delta by chance.
* :func:`cliffs_delta` / :func:`a12` — ordinal effect sizes: how often
  a draw from A exceeds a draw from B, independent of scale.
* :func:`bootstrap_ci` / :func:`bootstrap_diff_ci` — percentile
  bootstrap confidence intervals with *explicitly* deterministic
  resampling (a vectorized SplitMix64 index stream, so the same seed
  reproduces the same interval on every numpy version).

Everything is pure: samples in, numbers out, no I/O, numpy only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "StatsError",
    "MannWhitneyResult",
    "mann_whitney_u",
    "holm_bonferroni",
    "holm_reject",
    "cliffs_delta",
    "a12",
    "bootstrap_ci",
    "bootstrap_diff_ci",
    "rankdata",
]


class StatsError(ValueError):
    """A sample is empty, non-numeric, or otherwise untestable."""


def _as_sample(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(list(values), dtype=float)
    if arr.ndim != 1:
        raise StatsError(f"{name} must be a flat sequence of numbers")
    if arr.size == 0:
        raise StatsError(f"{name} is empty; need at least one observation")
    if not np.all(np.isfinite(arr)):
        raise StatsError(f"{name} contains non-finite values")
    return arr


def rankdata(values: np.ndarray) -> np.ndarray:
    """Midranks (1-based, ties averaged) of ``values``."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    # Tie runs share the mean of the ranks they span.
    i = 0
    while i < sorted_vals.size:
        j = i
        while j + 1 < sorted_vals.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


# ------------------------- Mann–Whitney U ------------------------------
@dataclass(frozen=True)
class MannWhitneyResult:
    """Two-sided Mann–Whitney U outcome for samples A and B."""

    u_a: float          # rank-sum statistic of sample A
    u_b: float          # n_a * n_b - u_a
    p_value: float      # two-sided
    method: str         # "exact" | "normal"

    @property
    def u(self) -> float:
        """The conventional test statistic: min(U_A, U_B)."""
        return min(self.u_a, self.u_b)


#: Largest per-sample size for which the tie-free exact distribution is
#: enumerated (the classic recurrence is O(n * m * n*m) — trivial here).
EXACT_LIMIT = 25


def _exact_u_counts(n: int, m: int) -> np.ndarray:
    """Number of rank arrangements per U value for sizes (n, m).

    ``counts[u]`` is the number of ways a tie-free merge of n and m
    observations yields statistic ``u`` for the first sample; the total
    is C(n+m, n).  Standard recurrence
    ``N(u; i, j) = N(u - j; i - 1, j) + N(u; i, j - 1)``
    (the new A-observation either outranks all j B-observations or the
    top B-observation outranks everything) evaluated bottom-up.
    """
    max_u = n * m
    row = [np.zeros(max_u + 1) for _ in range(m + 1)]
    for j in range(m + 1):
        row[j][0] = 1.0          # zero A-observations: U is always 0
    for _i in range(1, n + 1):
        new_row = [np.zeros(max_u + 1) for _ in range(m + 1)]
        new_row[0][0] = 1.0      # zero B-observations: U is always 0
        for j in range(1, m + 1):
            shifted = np.zeros(max_u + 1)
            shifted[j:] = row[j][: max_u + 1 - j]
            new_row[j] = shifted + new_row[j - 1]
        row = new_row
    return row[m]


def mann_whitney_u(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    method: str = "auto",
) -> MannWhitneyResult:
    """Two-sided Mann–Whitney U test between two independent samples.

    ``method`` is ``"auto"`` (exact when both samples are small and
    tie-free, else tie-corrected normal approximation with continuity
    correction), ``"exact"``, or ``"normal"``.  Identical samples — or
    any configuration whose rank variance is zero — report p = 1.0:
    no evidence of a difference, never a division by zero.

    The p-value depends on the data only through ranks, so it is
    invariant under strictly monotone transforms and symmetric under
    swapping the samples.
    """
    a = _as_sample(sample_a, "sample_a")
    b = _as_sample(sample_b, "sample_b")
    if method not in ("auto", "exact", "normal"):
        raise StatsError(
            f"method must be 'auto', 'exact', or 'normal', got {method!r}"
        )
    n_a, n_b = a.size, b.size
    pooled = np.concatenate([a, b])
    ranks = rankdata(pooled)
    r_a = float(np.sum(ranks[:n_a]))
    u_a = r_a - n_a * (n_a + 1) / 2.0
    u_b = n_a * n_b - u_a

    _, tie_counts = np.unique(pooled, return_counts=True)
    has_ties = bool(np.any(tie_counts > 1))

    if method == "exact" and has_ties:
        raise StatsError(
            "exact Mann-Whitney p-values are only defined without ties; "
            "use method='normal' (tie-corrected) instead"
        )
    use_exact = method == "exact" or (
        method == "auto"
        and not has_ties
        and max(n_a, n_b) <= EXACT_LIMIT
    )
    if use_exact:
        counts = _exact_u_counts(n_a, n_b)
        total = counts.sum()
        u_min = min(u_a, u_b)
        # Two-sided: double the tail containing min(U_A, U_B), capped.
        cdf = counts[: int(round(u_min)) + 1].sum() / total
        p = min(1.0, 2.0 * cdf)
        return MannWhitneyResult(u_a, u_b, p, "exact")

    n = n_a + n_b
    mu = n_a * n_b / 2.0
    tie_term = float(np.sum(tie_counts**3 - tie_counts))
    sigma_sq = n_a * n_b / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if sigma_sq <= 0:
        return MannWhitneyResult(u_a, u_b, 1.0, "normal")
    # Continuity correction shrinks |U - mu| by 1/2 toward the mean.
    z = (abs(u_a - mu) - 0.5) / math.sqrt(sigma_sq)
    z = max(z, 0.0)
    p = min(1.0, math.erfc(z / math.sqrt(2.0)))
    return MannWhitneyResult(u_a, u_b, p, "normal")


# ------------------ Holm–Bonferroni step-down correction ---------------
def holm_bonferroni(p_values: Sequence[float]) -> List[float]:
    """Holm step-down adjusted p-values (same order as the input).

    ``adjusted[i] >= p_values[i]`` always, so rejecting on the adjusted
    values can never reject a hypothesis the uncorrected test kept —
    the step-down only controls the family-wise error rate.
    """
    p = [float(v) for v in p_values]
    if not p:
        return []
    for v in p:
        if not (0.0 <= v <= 1.0) or math.isnan(v):
            raise StatsError(f"p-values must be in [0, 1], got {v!r}")
    m = len(p)
    order = sorted(range(m), key=lambda i: p[i])
    adjusted = [0.0] * m
    running = 0.0
    for rank, i in enumerate(order):
        running = max(running, (m - rank) * p[i])
        adjusted[i] = min(1.0, running)
    return adjusted


def holm_reject(p_values: Sequence[float], alpha: float = 0.05) -> List[bool]:
    """Which hypotheses Holm–Bonferroni rejects at level ``alpha``."""
    if not 0.0 < alpha < 1.0:
        raise StatsError(f"alpha must be in (0, 1), got {alpha!r}")
    return [adj <= alpha for adj in holm_bonferroni(p_values)]


# --------------------------- Effect sizes ------------------------------
def cliffs_delta(
    sample_a: Sequence[float], sample_b: Sequence[float]
) -> float:
    """Cliff's delta: P(a > b) - P(a < b) over all cross-sample pairs.

    In [-1, 1]; +1 when every A observation exceeds every B observation,
    -1 for the reverse, 0 for identical samples.
    """
    a = _as_sample(sample_a, "sample_a")
    b = _as_sample(sample_b, "sample_b")
    b_sorted = np.sort(b)
    # For each a: #(b < a) via left insertion, #(b <= a) via right.
    below = np.searchsorted(b_sorted, a, side="left")
    not_above = np.searchsorted(b_sorted, a, side="right")
    greater = float(np.sum(below))
    less = float(np.sum(b.size - not_above))
    return (greater - less) / (a.size * b.size)


def a12(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Vargha–Delaney Â12: P(a > b) + P(a == b)/2, in [0, 1].

    0.5 means stochastic equality; the conventional magnitude bands are
    0.56 (small), 0.64 (medium), 0.71 (large).
    """
    return (cliffs_delta(sample_a, sample_b) + 1.0) / 2.0


# ------------------------ Bootstrap intervals --------------------------
_MASK64 = (1 << 64) - 1


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 mix — a fixed, version-proof bit stream."""
    z = (x + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(_MASK64)
    z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(_MASK64)
    z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & np.uint64(_MASK64)
    return z ^ (z >> np.uint64(31))


def _resample_indices(n: int, resamples: int, seed: int) -> np.ndarray:
    """(resamples, n) index matrix from a seeded SplitMix64 counter.

    numpy's ``Generator`` streams are not guaranteed stable across
    library versions; this is, which keeps committed golden reports
    byte-stable.  Modulo bias at n << 2**64 is far below bootstrap
    noise.
    """
    # Python-int multiply, then mask: numpy warns on wrapping scalars.
    base = np.uint64((seed * 0x2545F4914F6CDD1D) & _MASK64)
    counters = (base + np.arange(resamples * n, dtype=np.uint64)) & np.uint64(_MASK64)
    draws = _splitmix64(counters)
    return (draws % np.uint64(n)).astype(np.intp).reshape(resamples, n)


Statistic = Union[str, Callable[[np.ndarray], float]]

_STATISTICS = {
    "median": np.median,
    "mean": np.mean,
}


def _statistic_fn(statistic: Statistic):
    if callable(statistic):
        return statistic
    try:
        return _STATISTICS[statistic]
    except KeyError:
        raise StatsError(
            f"unknown statistic {statistic!r}; "
            f"options: {sorted(_STATISTICS)} or a callable"
        ) from None


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Statistic = "median",
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Seeded percentile-bootstrap confidence interval for a statistic."""
    a = _as_sample(sample, "sample")
    if not 0.0 < confidence < 1.0:
        raise StatsError(f"confidence must be in (0, 1), got {confidence!r}")
    if resamples < 1:
        raise StatsError(f"resamples must be >= 1, got {resamples}")
    fn = _statistic_fn(statistic)
    idx = _resample_indices(a.size, resamples, seed)
    stats = np.asarray([float(fn(a[row])) for row in idx])
    tail = (1.0 - confidence) / 2.0 * 100.0
    lo, hi = np.percentile(stats, [tail, 100.0 - tail])
    return float(lo), float(hi)


def bootstrap_diff_ci(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    statistic: Statistic = "median",
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """CI for ``statistic(A) - statistic(B)`` under independent resampling.

    The two index streams derive from disjoint seeded counters, so the
    interval is deterministic for a given (samples, seed) pair.
    """
    a = _as_sample(sample_a, "sample_a")
    b = _as_sample(sample_b, "sample_b")
    if not 0.0 < confidence < 1.0:
        raise StatsError(f"confidence must be in (0, 1), got {confidence!r}")
    if resamples < 1:
        raise StatsError(f"resamples must be >= 1, got {resamples}")
    fn = _statistic_fn(statistic)
    idx_a = _resample_indices(a.size, resamples, seed)
    idx_b = _resample_indices(b.size, resamples, seed ^ 0x5DEECE66D)
    diffs = np.asarray([
        float(fn(a[ra])) - float(fn(b[rb]))
        for ra, rb in zip(idx_a, idx_b)
    ])
    tail = (1.0 - confidence) / 2.0 * 100.0
    lo, hi = np.percentile(diffs, [tail, 100.0 - tail])
    return float(lo), float(hi)
