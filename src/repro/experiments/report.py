"""Report generation over stored sweep runs.

:class:`RunReport` wraps one run directory's :class:`ResultStore` and
exposes analysis results as lazily-computed, memoised properties (the
shape fuzzbench's ``ExperimentResults`` uses for template-driven
reports): per-experiment calibration MAPE against the paper reference
series, wall-time aggregates, failure lists, and a markdown summary
table.  :func:`compare_runs` renders a markdown delta table (values
and wall-time speedups) between two stored runs.
"""

from __future__ import annotations

import itertools
import statistics
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.calibration.metrics import series_mape
from repro.experiments.store import ResultStore, StoredResult
from repro.harness.tables import render_markdown_table

_PAPER_PREFIXES = ("paper_", "paper:")


def split_paper_series(
    series: Mapping[str, object],
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Partition a result's series into (measured, paper-reference).

    Experiments embed their reference data under ``paper_<name>`` or
    ``paper:<name>`` keys mirroring a measured series ``<name>``; those
    pairs are what calibration error is computed over.
    """
    measured: Dict[str, object] = {}
    paper: Dict[str, object] = {}
    for key, value in series.items():
        for prefix in _PAPER_PREFIXES:
            if key.startswith(prefix):
                paper[key[len(prefix):]] = value
                break
        else:
            if key == "paper":  # headline uses a bare "paper" column
                paper.update(
                    value if isinstance(value, Mapping) else {"paper": value}
                )
            else:
                measured[key] = value
    return measured, paper


def result_mape(record: StoredResult) -> Optional[float]:
    """Calibration MAPE for one stored result, or None without refs."""
    measured, paper = split_paper_series(record.series)
    if not paper:
        return None
    # A bare "paper" series (headline's shape) sits beside one measured
    # block whose keys mirror the reference's — descend into it.
    if len(measured) == 1 and not (
        {str(k) for k in paper} & {str(k) for k in measured}
    ):
        (only,) = measured.values()
        if isinstance(only, Mapping):
            measured = only
    try:
        return series_mape(measured, paper)
    except ValueError:
        return None


def numeric_series_means(series: Mapping[str, object]) -> Dict[str, float]:
    """Mean of each measured series' numeric leaves (paper refs skipped)."""
    measured, _ = split_paper_series(series)
    means: Dict[str, float] = {}
    for name, values in measured.items():
        if isinstance(values, Mapping):
            leaves = [
                float(v) for v in values.values()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
        elif isinstance(values, (int, float)) and not isinstance(values, bool):
            leaves = [float(values)]
        else:
            leaves = []
        if leaves:
            means[name] = sum(leaves) / len(leaves)
    return means


class RunReport:
    """Lazily-computed analysis over one stored sweep run."""

    def __init__(self, store: Union[ResultStore, str, Path]):
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.name = store.root.name

    @cached_property
    def records(self) -> List[StoredResult]:
        """Newest record per spec, stable order (experiment, hash)."""
        return sorted(
            self.store.latest().values(),
            key=lambda r: (r.experiment, r.spec_hash),
        )

    @cached_property
    def ok_records(self) -> List[StoredResult]:
        return [r for r in self.records if r.ok]

    @cached_property
    def failures(self) -> List[StoredResult]:
        return [r for r in self.records if not r.ok]

    @cached_property
    def experiments(self) -> List[str]:
        return sorted({r.experiment for r in self.records})

    @cached_property
    def mape_by_experiment(self) -> Dict[str, Optional[float]]:
        """Worst (max) calibration MAPE per experiment across its specs."""
        worst: Dict[str, Optional[float]] = {}
        for record in self.ok_records:
            value = result_mape(record)
            if value is None:
                worst.setdefault(record.experiment, None)
            else:
                prior = worst.get(record.experiment)
                worst[record.experiment] = (
                    value if prior is None else max(prior, value)
                )
        return worst

    @cached_property
    def wall_time_by_experiment(self) -> Dict[str, float]:
        """Mean wall time (s) per experiment over successful records.

        Failed specs die early with near-zero wall times that would
        drag the mean down; experiments with no successes fall back to
        the mean over their failed records.
        """
        ok: Dict[str, List[float]] = {}
        everything: Dict[str, List[float]] = {}
        for record in self.records:
            everything.setdefault(record.experiment, []).append(record.wall_time_s)
            if record.ok:
                ok.setdefault(record.experiment, []).append(record.wall_time_s)
        return {
            k: sum(ok.get(k, v)) / len(ok.get(k, v))
            for k, v in everything.items()
        }

    @cached_property
    def total_wall_time_s(self) -> float:
        return sum(r.wall_time_s for r in self.records)

    @cached_property
    def worker_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-worker throughput for queue-backend runs.

        Keyed by worker id (records carry one only when a queue worker
        wrote them — serial/process-backend runs report nothing here).
        ``specs`` counts this worker's newest-per-spec records,
        ``wall_s`` sums their execution time, and the ``*_per_sec``
        rates divide by that busy time — i.e. throughput while
        executing, insulated from queue idle gaps.  ``records_per_sec``
        counts every stored record (retries included) over the same
        busy window, so a worker burning time on failing specs shows a
        records rate above its specs rate.
        """
        specs: Dict[str, int] = {}
        wall: Dict[str, float] = {}
        for record in self.records:
            if not record.worker:
                continue
            specs[record.worker] = specs.get(record.worker, 0) + 1
            wall[record.worker] = wall.get(record.worker, 0.0) + record.wall_time_s
        records: Dict[str, int] = {}
        for record in self.store.iter_records():
            if record.worker:
                records[record.worker] = records.get(record.worker, 0) + 1
        stats: Dict[str, Dict[str, float]] = {}
        for worker in sorted(specs):
            busy = wall[worker]
            stats[worker] = {
                "specs": float(specs[worker]),
                "records": float(records.get(worker, specs[worker])),
                "wall_s": busy,
                "specs_per_sec": specs[worker] / busy if busy else 0.0,
                "records_per_sec": (
                    records.get(worker, specs[worker]) / busy if busy else 0.0
                ),
            }
        return stats

    def worker_markdown(self) -> str:
        """Per-worker throughput table (empty string without workers)."""
        if not self.worker_stats:
            return ""
        rows = []
        for worker, stats in self.worker_stats.items():
            rows.append([
                worker,
                int(stats["specs"]),
                int(stats["records"]),
                f"{stats['wall_s']:.2f}",
                f"{stats['specs_per_sec']:.2f}",
                f"{stats['records_per_sec']:.2f}",
            ])
        return render_markdown_table(
            ["worker", "specs", "records", "busy (s)",
             "specs/sec", "records/sec"],
            rows,
            title="Worker throughput",
        )

    def profile_markdown(self, limit: int = 12) -> str:
        """Aggregated ``--profile`` attribution (empty without profiles).

        Sums per-component event counts and sampled callback time over
        every record that carries a profile payload, so a sweep run with
        ``repro sweep --profile`` reports where simulated-event time
        went across the whole run.
        """
        events: Dict[str, int] = {}
        sampled: Dict[str, float] = {}
        total_events = 0
        wall_s = 0.0
        profiled = 0
        for record in self.records:
            payload = record.profile
            if not isinstance(payload, dict):
                continue
            profiled += 1
            total_events += int(payload.get("total_events", 0))
            wall_s += float(payload.get("run_wall_s", 0.0))
            for row in payload.get("components", []):
                name = str(row.get("component"))
                events[name] = events.get(name, 0) + int(row.get("events", 0))
                sampled[name] = sampled.get(name, 0.0) + float(
                    row.get("sampled_time_s", 0.0)
                )
        if not profiled:
            return ""
        total_sampled = sum(sampled.values())
        ranked = sorted(
            events,
            key=lambda n: (-sampled.get(n, 0.0), -events[n], n),
        )
        rows = []
        for name in ranked[:limit]:
            frac = sampled.get(name, 0.0) / total_sampled if total_sampled else 0.0
            rows.append([name, events[name], f"{frac * 100:.1f}"])
        eps = (total_events / wall_s) if wall_s > 0 else 0.0
        title = (
            f"Simulator profile ({profiled} profiled record(s), "
            f"{total_events} events, {eps:,.0f} events/s)"
        )
        return render_markdown_table(
            ["component", "events", "time %"], rows, title=title
        )

    def markdown(self) -> str:
        """Per-experiment summary table for the whole run."""
        rows = []
        for experiment in self.experiments:
            records = [r for r in self.records if r.experiment == experiment]
            ok = sum(1 for r in records if r.ok)
            error = result_mape_text(self.mape_by_experiment.get(experiment))
            rows.append([
                experiment,
                len(records),
                ok,
                len(records) - ok,
                f"{self.wall_time_by_experiment[experiment]:.2f}",
                error,
            ])
        rows.append([
            "TOTAL",
            len(self.records),
            len(self.ok_records),
            len(self.failures),
            f"{self.total_wall_time_s:.2f}",
            "",
        ])
        return render_markdown_table(
            ["experiment", "specs", "ok", "failed", "mean wall (s)", "MAPE"],
            rows,
            title=f"Run report: {self.name}",
        )


def result_mape_text(value: Optional[float]) -> str:
    return f"{value * 100:.2f}%" if value is not None else "-"


# --------------------- Statistical run analysis ------------------------
@dataclass
class SampleGroup:
    """All repeats of one scenario (spec modulo the seed axis)."""

    key: str
    label: str
    experiment: str
    params: Dict[str, object]
    records: List[StoredResult] = field(default_factory=list)
    #: metric name -> one scalar per repeat, in (repeat, seed) order.
    metrics: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.records)


@dataclass
class MetricComparison:
    """One significance-tested metric contrast between two groups."""

    experiment: str
    metric: str
    group_a: str
    group_b: str
    n_a: int
    n_b: int
    median_a: float
    median_b: float
    p_value: float                    # raw two-sided Mann-Whitney p
    a12: float                        # P(A > B) + P(A == B)/2
    delta: float                      # Cliff's delta
    ci_low: float                     # bootstrap CI on median(A)-median(B)
    ci_high: float
    p_adjusted: float = 1.0           # Holm-Bonferroni over the family
    significant: bool = False

    @property
    def verdict(self) -> str:
        """``A > B`` / ``B > A`` when significant, else ``ns``."""
        if not self.significant:
            return "ns"
        return (
            f"{self.group_a} > {self.group_b}"
            if self.a12 > 0.5
            else f"{self.group_b} > {self.group_a}"
        )


def group_samples(
    records: List[StoredResult],
) -> Dict[str, SampleGroup]:
    """Fold ok records into per-scenario sample groups.

    Records sharing a :attr:`StoredResult.group_key` are repeats of one
    measurement; each contributes one scalar per metric (the mean of
    that series' numeric leaves, matching :func:`compare_runs`).
    Samples are ordered by (repeat, seed, spec hash) so every analysis
    over the same store is deterministic.
    """
    groups: Dict[str, SampleGroup] = {}
    ordered = sorted(records, key=lambda r: (r.repeat, r.seed, r.spec_hash))
    for record in ordered:
        if not record.ok:
            continue
        group = groups.get(record.group_key)
        if group is None:
            group = SampleGroup(
                key=record.group_key,
                label=record.group_label,
                experiment=record.experiment,
                params={
                    k: v for k, v in record.params.items() if k != "seed"
                },
            )
            groups[record.group_key] = group
        group.records.append(record)
        for metric, value in numeric_series_means(record.series).items():
            group.metrics.setdefault(metric, []).append(value)
    return groups


class RunAnalysis:
    """Significance-tested comparison across one run's repeat groups.

    Lazily computed like :class:`RunReport` (the fuzzbench
    ``ExperimentResults`` shape): building the object costs nothing,
    each property materialises on first use, and the HTML renderer can
    therefore pull only what its template references.

    Within each experiment, every pair of sample groups is contrasted
    on every shared metric with a two-sided Mann-Whitney U test,
    Cliff's delta / Â12 effect sizes, and a seeded bootstrap CI on the
    median difference; Holm-Bonferroni correction runs across the
    *entire* family of (pair x metric) tests, so no single metric can
    fish its way to significance.  Groups with fewer than
    ``min_repeats`` samples are never tested — a point estimate gets
    reported as exactly that.
    """

    #: Metrics identical across every repeat and every group carry no
    #: information (op counts, configured sizes); they are excluded
    #: from testing but listed in :attr:`constant_metrics`.
    def __init__(
        self,
        run: Union[RunReport, ResultStore, str, Path],
        alpha: float = 0.05,
        min_repeats: int = 2,
        metrics: Optional[List[str]] = None,
        bootstrap_resamples: int = 2000,
        bootstrap_seed: int = 0,
    ):
        from repro.experiments.stats import StatsError

        if not 0.0 < alpha < 1.0:
            raise StatsError(f"alpha must be in (0, 1), got {alpha!r}")
        if min_repeats < 2:
            raise StatsError(
                f"min_repeats must be >= 2 (one sample per side cannot be "
                f"tested), got {min_repeats}"
            )
        self.report = run if isinstance(run, RunReport) else RunReport(run)
        self.alpha = alpha
        self.min_repeats = min_repeats
        self.metric_filter = list(metrics) if metrics else None
        self.bootstrap_resamples = bootstrap_resamples
        self.bootstrap_seed = bootstrap_seed

    @property
    def name(self) -> str:
        return self.report.name

    @cached_property
    def groups(self) -> List[SampleGroup]:
        """Sample groups, stable (experiment, label) order."""
        groups = group_samples(self.report.records)
        return sorted(groups.values(), key=lambda g: (g.experiment, g.label))

    @cached_property
    def testable_groups(self) -> List[SampleGroup]:
        return [g for g in self.groups if g.n >= self.min_repeats]

    @cached_property
    def declined(self) -> List[SampleGroup]:
        """Groups with too few repeats to test (reported, never tested)."""
        return [g for g in self.groups if g.n < self.min_repeats]

    def _metric_names(self, a: SampleGroup, b: SampleGroup) -> List[str]:
        shared = sorted(set(a.metrics) & set(b.metrics))
        if self.metric_filter is not None:
            shared = [m for m in shared if m in self.metric_filter]
        return shared

    @cached_property
    def constant_metrics(self) -> List[str]:
        """Metrics whose samples never vary anywhere — untestable."""
        seen: Dict[str, set] = {}
        for group in self.testable_groups:
            for metric, samples in group.metrics.items():
                seen.setdefault(metric, set()).update(samples)
        return sorted(m for m, values in seen.items() if len(values) == 1)

    @cached_property
    def comparisons(self) -> List[MetricComparison]:
        """Every (group pair x metric) contrast, Holm-corrected."""
        from repro.experiments.stats import (
            bootstrap_diff_ci,
            cliffs_delta,
            holm_bonferroni,
            mann_whitney_u,
        )

        comparisons: List[MetricComparison] = []
        by_experiment: Dict[str, List[SampleGroup]] = {}
        for group in self.testable_groups:
            by_experiment.setdefault(group.experiment, []).append(group)
        constant = set(self.constant_metrics)
        for experiment in sorted(by_experiment):
            for a, b in itertools.combinations(by_experiment[experiment], 2):
                for metric in self._metric_names(a, b):
                    if metric in constant:
                        continue
                    xs, ys = a.metrics[metric], b.metrics[metric]
                    result = mann_whitney_u(xs, ys)
                    delta = cliffs_delta(xs, ys)
                    ci_low, ci_high = bootstrap_diff_ci(
                        xs, ys,
                        resamples=self.bootstrap_resamples,
                        seed=self.bootstrap_seed,
                    )
                    comparisons.append(MetricComparison(
                        experiment=experiment,
                        metric=metric,
                        group_a=a.label,
                        group_b=b.label,
                        n_a=len(xs),
                        n_b=len(ys),
                        median_a=statistics.median(xs),
                        median_b=statistics.median(ys),
                        p_value=result.p_value,
                        a12=(delta + 1.0) / 2.0,
                        delta=delta,
                        ci_low=ci_low,
                        ci_high=ci_high,
                    ))
        if comparisons:
            adjusted = holm_bonferroni([c.p_value for c in comparisons])
            for comparison, p_adj in zip(comparisons, adjusted):
                comparison.p_adjusted = p_adj
                comparison.significant = p_adj <= self.alpha
        return comparisons

    @cached_property
    def significant(self) -> List[MetricComparison]:
        return [c for c in self.comparisons if c.significant]

    def markdown(self) -> str:
        """Markdown analysis: groups, verdicts, and declined scenarios."""
        sections: List[str] = []
        rows = [
            [g.label, g.experiment, g.n,
             "yes" if g.n >= self.min_repeats else "no (n<2)"]
            for g in self.groups
        ]
        if not rows:
            rows.append(["-", "no successful records", 0, "-"])
        sections.append(render_markdown_table(
            ["group", "experiment", "repeats", "testable"],
            rows,
            title=f"Analysis: {self.name}",
        ))
        if not self.testable_groups:
            sections.append(
                "No group has >= 2 repeats: every stored value is a point "
                "estimate, so this run declines to test for significance. "
                "Re-sweep with --repeats N (N >= 2) to make deltas "
                "falsifiable."
            )
            return "\n\n".join(sections)
        if self.comparisons:
            rows = []
            for c in self.comparisons:
                rows.append([
                    c.experiment, c.metric, c.group_a, c.group_b,
                    f"{c.n_a}/{c.n_b}",
                    f"{c.median_a:.4g}", f"{c.median_b:.4g}",
                    f"{c.a12:.2f}", f"{c.p_value:.2g}",
                    f"{c.p_adjusted:.2g}", c.verdict,
                ])
            sections.append(render_markdown_table(
                ["experiment", "metric", "A", "B", "n", "median A",
                 "median B", "A12", "p", "p(Holm)", "verdict"],
                rows,
                title="Pairwise Mann-Whitney contrasts "
                      f"(alpha={self.alpha:g}, Holm-corrected)",
            ))
            for c in self.significant:
                direction = ">" if c.a12 > 0.5 else "<"
                sections.append(
                    f"- **{c.metric}**: {c.group_a} {direction} {c.group_b} "
                    f"(p={c.p_adjusted:.2g} Holm-corrected, "
                    f"A12={c.a12:.2f}, "
                    f"median diff CI [{c.ci_low:.4g}, {c.ci_high:.4g}] "
                    f"over {c.n_a}/{c.n_b} repeats)"
                )
            if not self.significant:
                sections.append(
                    "No contrast survives Holm-Bonferroni correction at "
                    f"alpha={self.alpha:g}: the observed deltas are "
                    "consistent with noise."
                )
        else:
            sections.append(
                "Testable groups share no varying metrics: nothing to "
                "contrast."
            )
        if self.constant_metrics:
            sections.append(
                "Constant across all repeats (excluded from testing): "
                + ", ".join(f"`{m}`" for m in self.constant_metrics)
            )
        if self.declined:
            names = ", ".join(g.label for g in self.declined)
            sections.append(
                f"Declined (fewer than {self.min_repeats} repeats): {names}"
            )
        return "\n\n".join(sections)


def analyze_run(
    run: Union[RunReport, ResultStore, str, Path],
    alpha: float = 0.05,
    min_repeats: int = 2,
    metrics: Optional[List[str]] = None,
) -> RunAnalysis:
    """Convenience constructor mirroring :func:`compare_runs`'s shape."""
    return RunAnalysis(
        run, alpha=alpha, min_repeats=min_repeats, metrics=metrics
    )


def _cross_run_significance(
    a: RunReport, b: RunReport, alpha: float = 0.05
) -> str:
    """Significance section for :func:`compare_runs`, or empty string.

    Matches repeat groups by :attr:`StoredResult.group_key` across the
    two runs and tests each shared metric A-run-vs-B-run.  Returns ""
    unless *both* runs hold >= 2 repeats for at least one common group
    — so runs without repeats render byte-identically to the plain
    delta table.
    """
    from repro.experiments.stats import (
        cliffs_delta,
        holm_bonferroni,
        mann_whitney_u,
    )

    groups_a = group_samples(a.records)
    groups_b = group_samples(b.records)
    tests: List[Tuple[str, str, List[float], List[float]]] = []
    for key in sorted(set(groups_a) & set(groups_b)):
        ga, gb = groups_a[key], groups_b[key]
        if ga.n < 2 or gb.n < 2:
            continue
        for metric in sorted(set(ga.metrics) & set(gb.metrics)):
            xs, ys = ga.metrics[metric], gb.metrics[metric]
            if len(set(xs)) == 1 and set(xs) == set(ys):
                continue  # constant everywhere: untestable
            tests.append((ga.label, metric, xs, ys))
    if not tests:
        return ""
    rows: List[List[object]] = []
    raw = [mann_whitney_u(xs, ys).p_value for _, _, xs, ys in tests]
    adjusted = holm_bonferroni(raw)
    for (label, metric, xs, ys), p, p_adj in zip(tests, raw, adjusted):
        delta = cliffs_delta(xs, ys)
        a12_value = (delta + 1.0) / 2.0
        if p_adj <= alpha:
            verdict = f"{a.name} > {b.name}" if a12_value > 0.5 else (
                f"{b.name} > {a.name}"
            )
        else:
            verdict = "ns"
        rows.append([
            label, metric, f"{len(xs)}/{len(ys)}",
            f"{statistics.median(xs):.4g}", f"{statistics.median(ys):.4g}",
            f"{a12_value:.2f}", f"{p:.2g}", f"{p_adj:.2g}", verdict,
        ])
    return render_markdown_table(
        ["group", "metric", "n", f"median {a.name}", f"median {b.name}",
         "A12", "p", "p(Holm)", "verdict"],
        rows,
        title=f"Significance: {a.name} vs. {b.name} "
              f"(alpha={alpha:g}, Holm-corrected)",
    )


def compare_runs(
    run_a: Union[RunReport, ResultStore, str, Path],
    run_b: Union[RunReport, ResultStore, str, Path],
) -> str:
    """Markdown delta table between two stored runs.

    For every experiment present in both runs: per-series mean values
    side by side with relative delta, plus the wall-time speedup of run
    B over run A.  When both runs carry repeat groups (>= 2 records per
    spec-modulo-seed scenario), a Holm-corrected Mann-Whitney
    significance table follows the deltas; without repeats the output
    is exactly the plain delta table.
    """
    a = run_a if isinstance(run_a, RunReport) else RunReport(run_a)
    b = run_b if isinstance(run_b, RunReport) else RunReport(run_b)
    rows: List[List[object]] = []
    common = [e for e in a.experiments if e in set(b.experiments)]
    for experiment in common:
        means_a = _experiment_means(a, experiment)
        means_b = _experiment_means(b, experiment)
        for metric in sorted(set(means_a) & set(means_b)):
            va, vb = means_a[metric], means_b[metric]
            delta = f"{(vb - va) / va * 100:+.2f}%" if va else "-"
            rows.append(
                [experiment, metric, f"{va:.4g}", f"{vb:.4g}", delta]
            )
        # Wall times compare only successful specs: a crashed run's
        # near-zero error wall time must not read as a huge speedup.
        times_a = _ok_wall_times(a, experiment)
        times_b = _ok_wall_times(b, experiment)
        if times_a and times_b:
            ta = sum(times_a) / len(times_a)
            tb = sum(times_b) / len(times_b)
            speedup = f"{ta / tb:.2f}x" if tb else "-"
            rows.append([
                experiment, "wall_time_s", f"{ta:.3f}", f"{tb:.3f}", speedup,
            ])
    if not rows:
        rows.append(["-", "no comparable metrics in common", "-", "-", "-"])
    table = render_markdown_table(
        ["experiment", "metric", a.name, b.name, "delta"],
        rows,
        title=f"Compare: {a.name} vs. {b.name}",
    )
    significance = _cross_run_significance(a, b)
    if significance:
        table = f"{table}\n\n{significance}"
    return table


def _ok_wall_times(report: RunReport, experiment: str) -> List[float]:
    return [
        r.wall_time_s for r in report.ok_records if r.experiment == experiment
    ]


def _experiment_means(report: RunReport, experiment: str) -> Dict[str, float]:
    """Per-series means averaged across an experiment's ok specs."""
    sums: Dict[str, List[float]] = {}
    for record in report.ok_records:
        if record.experiment != experiment:
            continue
        for name, mean in numeric_series_means(record.series).items():
            sums.setdefault(name, []).append(mean)
    return {k: sum(v) / len(v) for k, v in sums.items()}
