"""Report generation over stored sweep runs.

:class:`RunReport` wraps one run directory's :class:`ResultStore` and
exposes analysis results as lazily-computed, memoised properties (the
shape fuzzbench's ``ExperimentResults`` uses for template-driven
reports): per-experiment calibration MAPE against the paper reference
series, wall-time aggregates, failure lists, and a markdown summary
table.  :func:`compare_runs` renders a markdown delta table (values
and wall-time speedups) between two stored runs.
"""

from __future__ import annotations

from functools import cached_property
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.calibration.metrics import series_mape
from repro.experiments.store import ResultStore, StoredResult
from repro.harness.tables import render_markdown_table

_PAPER_PREFIXES = ("paper_", "paper:")


def split_paper_series(
    series: Mapping[str, object],
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Partition a result's series into (measured, paper-reference).

    Experiments embed their reference data under ``paper_<name>`` or
    ``paper:<name>`` keys mirroring a measured series ``<name>``; those
    pairs are what calibration error is computed over.
    """
    measured: Dict[str, object] = {}
    paper: Dict[str, object] = {}
    for key, value in series.items():
        for prefix in _PAPER_PREFIXES:
            if key.startswith(prefix):
                paper[key[len(prefix):]] = value
                break
        else:
            if key == "paper":  # headline uses a bare "paper" column
                paper.update(
                    value if isinstance(value, Mapping) else {"paper": value}
                )
            else:
                measured[key] = value
    return measured, paper


def result_mape(record: StoredResult) -> Optional[float]:
    """Calibration MAPE for one stored result, or None without refs."""
    measured, paper = split_paper_series(record.series)
    if not paper:
        return None
    # A bare "paper" series (headline's shape) sits beside one measured
    # block whose keys mirror the reference's — descend into it.
    if len(measured) == 1 and not (
        {str(k) for k in paper} & {str(k) for k in measured}
    ):
        (only,) = measured.values()
        if isinstance(only, Mapping):
            measured = only
    try:
        return series_mape(measured, paper)
    except ValueError:
        return None


def numeric_series_means(series: Mapping[str, object]) -> Dict[str, float]:
    """Mean of each measured series' numeric leaves (paper refs skipped)."""
    measured, _ = split_paper_series(series)
    means: Dict[str, float] = {}
    for name, values in measured.items():
        if isinstance(values, Mapping):
            leaves = [
                float(v) for v in values.values()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
        elif isinstance(values, (int, float)) and not isinstance(values, bool):
            leaves = [float(values)]
        else:
            leaves = []
        if leaves:
            means[name] = sum(leaves) / len(leaves)
    return means


class RunReport:
    """Lazily-computed analysis over one stored sweep run."""

    def __init__(self, store: Union[ResultStore, str, Path]):
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.name = store.root.name

    @cached_property
    def records(self) -> List[StoredResult]:
        """Newest record per spec, stable order (experiment, hash)."""
        return sorted(
            self.store.latest().values(),
            key=lambda r: (r.experiment, r.spec_hash),
        )

    @cached_property
    def ok_records(self) -> List[StoredResult]:
        return [r for r in self.records if r.ok]

    @cached_property
    def failures(self) -> List[StoredResult]:
        return [r for r in self.records if not r.ok]

    @cached_property
    def experiments(self) -> List[str]:
        return sorted({r.experiment for r in self.records})

    @cached_property
    def mape_by_experiment(self) -> Dict[str, Optional[float]]:
        """Worst (max) calibration MAPE per experiment across its specs."""
        worst: Dict[str, Optional[float]] = {}
        for record in self.ok_records:
            value = result_mape(record)
            if value is None:
                worst.setdefault(record.experiment, None)
            else:
                prior = worst.get(record.experiment)
                worst[record.experiment] = (
                    value if prior is None else max(prior, value)
                )
        return worst

    @cached_property
    def wall_time_by_experiment(self) -> Dict[str, float]:
        """Mean wall time (s) per experiment over successful records.

        Failed specs die early with near-zero wall times that would
        drag the mean down; experiments with no successes fall back to
        the mean over their failed records.
        """
        ok: Dict[str, List[float]] = {}
        everything: Dict[str, List[float]] = {}
        for record in self.records:
            everything.setdefault(record.experiment, []).append(record.wall_time_s)
            if record.ok:
                ok.setdefault(record.experiment, []).append(record.wall_time_s)
        return {
            k: sum(ok.get(k, v)) / len(ok.get(k, v))
            for k, v in everything.items()
        }

    @cached_property
    def total_wall_time_s(self) -> float:
        return sum(r.wall_time_s for r in self.records)

    @cached_property
    def worker_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-worker throughput for queue-backend runs.

        Keyed by worker id (records carry one only when a queue worker
        wrote them — serial/process-backend runs report nothing here).
        ``specs`` counts this worker's newest-per-spec records,
        ``wall_s`` sums their execution time, and the ``*_per_sec``
        rates divide by that busy time — i.e. throughput while
        executing, insulated from queue idle gaps.  ``records_per_sec``
        counts every stored record (retries included) over the same
        busy window, so a worker burning time on failing specs shows a
        records rate above its specs rate.
        """
        specs: Dict[str, int] = {}
        wall: Dict[str, float] = {}
        for record in self.records:
            if not record.worker:
                continue
            specs[record.worker] = specs.get(record.worker, 0) + 1
            wall[record.worker] = wall.get(record.worker, 0.0) + record.wall_time_s
        records: Dict[str, int] = {}
        for record in self.store.iter_records():
            if record.worker:
                records[record.worker] = records.get(record.worker, 0) + 1
        stats: Dict[str, Dict[str, float]] = {}
        for worker in sorted(specs):
            busy = wall[worker]
            stats[worker] = {
                "specs": float(specs[worker]),
                "records": float(records.get(worker, specs[worker])),
                "wall_s": busy,
                "specs_per_sec": specs[worker] / busy if busy else 0.0,
                "records_per_sec": (
                    records.get(worker, specs[worker]) / busy if busy else 0.0
                ),
            }
        return stats

    def worker_markdown(self) -> str:
        """Per-worker throughput table (empty string without workers)."""
        if not self.worker_stats:
            return ""
        rows = []
        for worker, stats in self.worker_stats.items():
            rows.append([
                worker,
                int(stats["specs"]),
                int(stats["records"]),
                f"{stats['wall_s']:.2f}",
                f"{stats['specs_per_sec']:.2f}",
                f"{stats['records_per_sec']:.2f}",
            ])
        return render_markdown_table(
            ["worker", "specs", "records", "busy (s)",
             "specs/sec", "records/sec"],
            rows,
            title="Worker throughput",
        )

    def markdown(self) -> str:
        """Per-experiment summary table for the whole run."""
        rows = []
        for experiment in self.experiments:
            records = [r for r in self.records if r.experiment == experiment]
            ok = sum(1 for r in records if r.ok)
            error = result_mape_text(self.mape_by_experiment.get(experiment))
            rows.append([
                experiment,
                len(records),
                ok,
                len(records) - ok,
                f"{self.wall_time_by_experiment[experiment]:.2f}",
                error,
            ])
        rows.append([
            "TOTAL",
            len(self.records),
            len(self.ok_records),
            len(self.failures),
            f"{self.total_wall_time_s:.2f}",
            "",
        ])
        return render_markdown_table(
            ["experiment", "specs", "ok", "failed", "mean wall (s)", "MAPE"],
            rows,
            title=f"Run report: {self.name}",
        )


def result_mape_text(value: Optional[float]) -> str:
    return f"{value * 100:.2f}%" if value is not None else "-"


def compare_runs(
    run_a: Union[RunReport, ResultStore, str, Path],
    run_b: Union[RunReport, ResultStore, str, Path],
) -> str:
    """Markdown delta table between two stored runs.

    For every experiment present in both runs: per-series mean values
    side by side with relative delta, plus the wall-time speedup of run
    B over run A.
    """
    a = run_a if isinstance(run_a, RunReport) else RunReport(run_a)
    b = run_b if isinstance(run_b, RunReport) else RunReport(run_b)
    rows: List[List[object]] = []
    common = [e for e in a.experiments if e in set(b.experiments)]
    for experiment in common:
        means_a = _experiment_means(a, experiment)
        means_b = _experiment_means(b, experiment)
        for metric in sorted(set(means_a) & set(means_b)):
            va, vb = means_a[metric], means_b[metric]
            delta = f"{(vb - va) / va * 100:+.2f}%" if va else "-"
            rows.append(
                [experiment, metric, f"{va:.4g}", f"{vb:.4g}", delta]
            )
        # Wall times compare only successful specs: a crashed run's
        # near-zero error wall time must not read as a huge speedup.
        times_a = _ok_wall_times(a, experiment)
        times_b = _ok_wall_times(b, experiment)
        if times_a and times_b:
            ta = sum(times_a) / len(times_a)
            tb = sum(times_b) / len(times_b)
            speedup = f"{ta / tb:.2f}x" if tb else "-"
            rows.append([
                experiment, "wall_time_s", f"{ta:.3f}", f"{tb:.3f}", speedup,
            ])
    if not rows:
        rows.append(["-", "no comparable metrics in common", "-", "-", "-"])
    return render_markdown_table(
        ["experiment", "metric", a.name, b.name, "delta"],
        rows,
        title=f"Compare: {a.name} vs. {b.name}",
    )


def _ok_wall_times(report: RunReport, experiment: str) -> List[float]:
    return [
        r.wall_time_s for r in report.ok_records if r.experiment == experiment
    ]


def _experiment_means(report: RunReport, experiment: str) -> Dict[str, float]:
    """Per-series means averaged across an experiment's ok specs."""
    sums: Dict[str, List[float]] = {}
    for record in report.ok_records:
        if record.experiment != experiment:
            continue
        for name, mean in numeric_series_means(record.series).items():
            sums.setdefault(name, []).append(mean)
    return {k: sum(v) / len(v) for k, v in sums.items()}
