"""Declarative experiment and sweep specifications.

An :class:`ExperimentSpec` names one experiment invocation: the
registry id, a JSON-representable ``params`` dict of config overrides
(profile, trials, sizes, messages, ...), a repeat index, and a derived
seed.  A :class:`SweepSpec` bundles groups of experiments with
per-group fixed params plus a grid of swept params, and expands them
(grid product x repeats) into the flat spec list the runner executes.

Specs are content-addressed: :attr:`ExperimentSpec.spec_hash` digests
the canonical JSON form, which is what the result store keys cached
results on.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence, Union


class SpecError(ValueError):
    """A sweep spec is malformed or names unknown experiments/params."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One concrete experiment invocation produced by sweep expansion."""

    experiment: str
    params: Mapping[str, object] = field(default_factory=dict)
    repeat: int = 0
    seed: int = 0

    def canonical(self) -> Dict[str, object]:
        """JSON-stable dict form (params key-sorted) used for hashing."""
        return {
            "experiment": self.experiment,
            "params": {k: self.params[k] for k in sorted(self.params)},
            "repeat": self.repeat,
            "seed": self.seed,
        }

    @property
    def spec_hash(self) -> str:
        """Content hash identifying this spec in the result store."""
        blob = json.dumps(self.canonical(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    @property
    def label(self) -> str:
        """Short human-readable id, e.g. ``fig13[trials=2]#1``."""
        params = ",".join(f"{k}={self.params[k]}" for k in sorted(self.params))
        suffix = f"#{self.repeat}" if self.repeat else ""
        return f"{self.experiment}[{params}]{suffix}" if params else (
            f"{self.experiment}{suffix}"
        )


@dataclass
class SweepGroup:
    """One experiment plus its fixed params and swept param grid."""

    experiment: str
    params: Dict[str, object] = field(default_factory=dict)
    grid: Dict[str, List[object]] = field(default_factory=dict)

    def combos(self) -> Iterable[Dict[str, object]]:
        """Fixed params merged with every grid-product combination."""
        if not self.grid:
            yield dict(self.params)
            return
        keys = sorted(self.grid)
        for values in itertools.product(*(self.grid[k] for k in keys)):
            combo = dict(self.params)
            combo.update(zip(keys, values))
            yield combo


@dataclass
class SweepSpec:
    """A named collection of experiment groups to expand and run."""

    name: str
    groups: List[SweepGroup]
    repeats: int = 1
    base_seed: int = 1234

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        """Parse the JSON spec format (see ``presets.py`` for examples)."""
        if not isinstance(data, Mapping):
            raise SpecError("sweep spec must be a JSON object")
        try:
            raw_groups = data["experiments"]
        except KeyError:
            raise SpecError("sweep spec missing 'experiments' list") from None
        if not isinstance(raw_groups, Sequence) or isinstance(raw_groups, str):
            raise SpecError("'experiments' must be a list of groups")
        groups = []
        for entry in raw_groups:
            if isinstance(entry, str):
                entry = {"experiment": entry}
            if not isinstance(entry, Mapping):
                raise SpecError(
                    f"experiment group must be an id or object: {entry!r}"
                )
            if "experiment" not in entry:
                raise SpecError(f"group missing 'experiment' id: {entry!r}")
            raw_params = entry.get("params", {})
            if not isinstance(raw_params, Mapping):
                raise SpecError(f"'params' must be an object: {raw_params!r}")
            raw_grid = entry.get("grid", {})
            if not isinstance(raw_grid, Mapping):
                raise SpecError(
                    f"'grid' must be an object of value lists: {raw_grid!r}"
                )
            grid = {}
            for key, values in raw_grid.items():
                if isinstance(values, (str, bytes)) or not isinstance(
                    values, Sequence
                ):
                    raise SpecError(
                        f"grid values must be lists; got {key}={values!r}"
                    )
                grid[key] = list(values)
            groups.append(
                SweepGroup(
                    experiment=entry["experiment"],
                    params=dict(raw_params),
                    grid=grid,
                )
            )
        try:
            repeats = int(data.get("repeats", 1))
            base_seed = int(data.get("base_seed", 1234))
        except (TypeError, ValueError) as exc:
            raise SpecError(f"repeats/base_seed must be integers: {exc}") from None
        return cls(
            name=str(data.get("name", "sweep")),
            groups=groups,
            repeats=repeats,
            base_seed=base_seed,
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SweepSpec":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON in {path}: {exc}") from exc
        spec = cls.from_dict(data)
        if spec.name == "sweep":
            spec.name = path.stem
        return spec

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "repeats": self.repeats,
            "base_seed": self.base_seed,
            "experiments": [
                {
                    "experiment": g.experiment,
                    "params": dict(g.params),
                    "grid": {k: list(v) for k, v in g.grid.items()},
                }
                for g in self.groups
            ],
        }

    #: Param key whose values are topology references, validated against
    #: the topology registry/families so a typo'd layout name fails the
    #: sweep up-front like a typo'd experiment parameter does.
    TOPOLOGY_PARAM = "topology"

    #: Param key whose values are workload references, validated against
    #: the workload registry with the same fail-up-front contract.
    WORKLOAD_PARAM = "workload"

    #: Param key whose values are fault-plan references, validated
    #: against the fault-plan registry with the same fail-up-front
    #: contract (inline plan dicts schema-validate in full).
    FAULT_PARAM = "fault"

    #: Param key selecting the windowed-parallel simulation mode; values
    #: must be a non-negative integer worker count or ``"auto"``,
    #: checked up-front so a typo'd mode fails before any spec runs.
    SIM_PARALLEL_PARAM = "sim_parallel"

    #: Param key carrying the experiment's RNG seed.  Pinning or
    #: sweeping it is allowed (ints only), and doing so disables the
    #: automatic per-repeat seed injection for that group — explicit
    #: seeds win over derived ones.
    SEED_PARAM = "seed"

    def validate(self) -> None:
        """Check every group against the experiment registry up-front."""
        from repro.harness.experiments import spec_parameters

        if not self.groups:
            raise SpecError(f"sweep {self.name!r} has no experiment groups")
        if self.repeats < 1:
            raise SpecError("repeats must be >= 1")
        for group in self.groups:
            try:
                accepted = spec_parameters(group.experiment)
            except KeyError as exc:
                raise SpecError(str(exc)) from None
            unknown = sorted(
                (set(group.params) | set(group.grid)) - set(accepted)
            )
            if unknown:
                raise SpecError(
                    f"experiment {group.experiment!r} does not accept "
                    f"parameter(s) {', '.join(unknown)}; "
                    f"accepted: {sorted(accepted)}"
                )
            self._validate_topology_refs(group)
            self._validate_workload_refs(group)
            self._validate_fault_refs(group)
            self._validate_sim_parallel(group)
            self._validate_seed_axis(group)

    @classmethod
    def _axis_values(cls, group: SweepGroup, param: str) -> List[object]:
        refs = []
        if param in group.params:
            refs.append(group.params[param])
        refs.extend(group.grid.get(param, ()))
        return refs

    def _validate_topology_refs(self, group: SweepGroup) -> None:
        """Fail up-front on topology axes that name no registered layout.

        A topology value may also be an *inline* JSON spec (a node/link
        object straight in the grid) — those schema-validate in full.
        Family *arguments* stay unchecked (a bad ``fanout(0)`` fails at
        run time inside its own spec, covered by failure isolation).
        """
        refs = self._axis_values(group, self.TOPOLOGY_PARAM)
        if not refs:
            return
        from repro.system.topology import validate_topology_ref

        for ref in refs:
            try:
                validate_topology_ref(ref)
            except ValueError as exc:
                raise SpecError(
                    f"experiment {group.experiment!r}: {exc}"
                ) from None

    def _validate_workload_refs(self, group: SweepGroup) -> None:
        """Fail up-front on workload axes that name no registered generator."""
        refs = self._axis_values(group, self.WORKLOAD_PARAM)
        if not refs:
            return
        from repro.workloads import validate_workload_ref

        for ref in refs:
            try:
                validate_workload_ref(ref)
            except ValueError as exc:
                raise SpecError(
                    f"experiment {group.experiment!r}: {exc}"
                ) from None

    def _validate_fault_refs(self, group: SweepGroup) -> None:
        """Fail up-front on fault axes that name no registered plan.

        A fault value may also be an *inline* JSON plan (an event
        timeline straight in the grid) — those schema-validate in
        full.  Factory *arguments* stay unchecked (a bad
        ``link-degrade(0)`` fails at run time inside its own spec,
        covered by failure isolation).
        """
        refs = self._axis_values(group, self.FAULT_PARAM)
        if not refs:
            return
        from repro.faults import validate_fault_ref

        for ref in refs:
            try:
                validate_fault_ref(ref)
            except ValueError as exc:
                raise SpecError(
                    f"experiment {group.experiment!r}: {exc}"
                ) from None

    def _validate_sim_parallel(self, group: SweepGroup) -> None:
        """Fail up-front on malformed ``sim_parallel`` axis values."""
        for value in self._axis_values(group, self.SIM_PARALLEL_PARAM):
            ok = (
                isinstance(value, int)
                and not isinstance(value, bool)
                and value >= 0
            ) or (isinstance(value, str) and value.strip().lower() == "auto")
            if not ok:
                raise SpecError(
                    f"experiment {group.experiment!r}: sim_parallel must be "
                    f"a non-negative integer or 'auto', got {value!r}"
                )

    def _validate_seed_axis(self, group: SweepGroup) -> None:
        """Fail up-front on non-integer ``seed`` axis values."""
        for value in self._axis_values(group, self.SEED_PARAM):
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecError(
                    f"experiment {group.experiment!r}: seed must be an "
                    f"integer, got {value!r}"
                )

    def _seed_param_experiments(self) -> set:
        """Experiments in this sweep whose signature accepts ``seed``."""
        from repro.harness.experiments import spec_parameters

        accepting = set()
        for group in self.groups:
            try:
                accepted = spec_parameters(group.experiment)
            except KeyError:
                continue  # unknown experiment: validate() reports it
            if self.SEED_PARAM in accepted:
                accepting.add(group.experiment)
        return accepting

    def expand(self) -> List[ExperimentSpec]:
        """Grid product x repeats -> flat, deterministically-seeded specs.

        Seeds derive from the spec content (not its position in the
        expansion), so reordering groups in a sweep file does not
        invalidate the cache.

        With ``repeats > 1``, the derived per-repeat seed is also
        *injected* as a ``seed`` param for experiments that accept one
        (and don't pin or sweep it themselves), so each repeat draws a
        distinct deterministic sample instead of re-measuring the same
        point.  Single-repeat expansion never injects, keeping existing
        sweeps' spec hashes — and their cached results — untouched.
        """
        inject = (
            self._seed_param_experiments() if self.repeats > 1 else set()
        )
        specs: List[ExperimentSpec] = []
        for group in self.groups:
            for combo in group.combos():
                for repeat in range(self.repeats):
                    content = json.dumps(
                        [group.experiment, sorted(combo.items()), repeat],
                        sort_keys=True,
                        default=str,
                    )
                    seed = (
                        self.base_seed * 1_000_003 + zlib.crc32(content.encode())
                    ) % 2**31
                    params = combo
                    if (
                        group.experiment in inject
                        and self.SEED_PARAM not in combo
                    ):
                        params = dict(combo)
                        params[self.SEED_PARAM] = seed
                    specs.append(
                        ExperimentSpec(
                            experiment=group.experiment,
                            params=params,
                            repeat=repeat,
                            seed=seed,
                        )
                    )
        return specs
