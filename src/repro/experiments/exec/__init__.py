"""Distributed sweep execution.

The pieces behind ``run_sweep``'s pluggable execution:

* :mod:`~repro.experiments.exec.locks` — advisory lockfiles with
  heartbeats and stale takeover (run-level writer lock, per-shard
  append locks).
* :mod:`~repro.experiments.exec.queue` — the durable on-disk work
  queue (leases, heartbeats, retry-with-backoff, done markers).
* :mod:`~repro.experiments.exec.worker` — the worker loop behind both
  locally spawned workers and the ``repro worker <run-dir>`` CLI.
* :mod:`~repro.experiments.exec.backends` — the executor registry:
  ``serial``, ``pool`` (default), and ``queue``.

``worker`` and ``backends`` import the result store (which itself uses
``locks``), so their names resolve lazily here to keep the package
import-order agnostic.
"""

import importlib

from repro.experiments.exec.locks import FileLock, LockError, LockHeldError
from repro.experiments.exec.queue import (
    ClaimedTask,
    QueueConfig,
    QueueError,
    WorkQueue,
)

_LAZY = {
    "WorkerOutcome": "worker",
    "run_worker": "worker",
    "EXECUTORS": "backends",
    "ExecutionContext": "backends",
    "ExecutorBackend": "backends",
    "ExecutorError": "backends",
    "PoolBackend": "backends",
    "QueueBackend": "backends",
    "SerialBackend": "backends",
    "UnknownExecutorError": "backends",
    "executor_by_name": "backends",
}

__all__ = [
    "FileLock",
    "LockError",
    "LockHeldError",
    "ClaimedTask",
    "QueueConfig",
    "QueueError",
    "WorkQueue",
] + sorted(_LAZY)


def __getattr__(name):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    module = importlib.import_module(f"{__name__}.{module_name}")
    return getattr(module, name)
