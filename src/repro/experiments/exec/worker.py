"""Sweep worker: lease specs from a run directory's queue and execute.

``run_worker`` is the loop behind both the local worker processes the
``queue`` backend spawns and the ``repro worker <run-dir>`` CLI (which
can join from any host sharing the run directory's filesystem).  Each
iteration leases one spec, heartbeats the lease while the experiment
runs, then either streams the finished record into the sharded
:class:`~repro.experiments.store.ResultStore` or requeues the spec
with backoff when the attempt failed and budget remains.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.experiments.exec.queue import ClaimedTask, QueueConfig, WorkQueue
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import ResultStore, StoredResult

Progress = Optional[Callable[[str], None]]


@dataclass
class WorkerOutcome:
    """What one worker loop did before the queue drained."""

    worker_id: str
    executed: List[StoredResult] = field(default_factory=list)
    retried: int = 0

    @property
    def failed(self) -> List[StoredResult]:
        return [r for r in self.executed if not r.ok]


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _payload_label(payload) -> str:
    return ExperimentSpec(
        experiment=str(payload["experiment"]),
        params=dict(payload["params"]),
        repeat=int(payload["repeat"]),
        seed=int(payload["seed"]),
    ).label


class _Heartbeat:
    """Background thread bumping the lease mtime while a spec runs."""

    def __init__(self, queue: WorkQueue, task: ClaimedTask, interval_s: float):
        self._queue = queue
        self._task = task
        self._interval_s = max(interval_s, 0.01)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            self._queue.heartbeat(self._task)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()


def run_worker(
    run_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    poll_s: float = 0.2,
    wait_s: float = 0.0,
    max_specs: Optional[int] = None,
    progress: Progress = None,
) -> WorkerOutcome:
    """Drain specs from ``run_dir``'s queue until it is empty.

    ``wait_s`` tolerates starting before the scheduler has populated
    the queue (the external-worker pattern); ``max_specs`` bounds how
    many specs this worker executes before handing back.  Raises
    :class:`~repro.experiments.exec.queue.QueueError` when no queue
    appears within the wait budget.
    """
    queue = WorkQueue(run_dir)
    deadline = time.monotonic() + wait_s
    while not queue.exists():
        if time.monotonic() >= deadline:
            queue.load_config()  # raises QueueError with the run dir
        time.sleep(min(poll_s, 0.1))
    config = queue.load_config()
    store = ResultStore(run_dir)
    outcome = WorkerOutcome(worker_id=worker_id or default_worker_id())

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    # Import here, not at module top: worker processes fork before any
    # experiment has run, so the registry import cost lands once.
    from repro.experiments.runner import _execute_spec

    while max_specs is None or len(outcome.executed) < max_specs:
        task = queue.claim(outcome.worker_id, config.lease_timeout_s)
        if task is None:
            if queue.drained():
                break  # every spec is completed (or queue torn down)
            time.sleep(poll_s)  # all remaining specs leased/backing off
            continue
        label = _payload_label(task.payload)
        with _Heartbeat(queue, task, config.lease_timeout_s / 3):
            raw = _execute_spec(task.payload)
        if raw["status"] == "error" and task.attempts + 1 < config.max_attempts:
            delay = queue.retry(task, config.backoff_s)
            outcome.retried += 1
            note(
                f"retry   {label} "
                f"(attempt {task.attempts + 1}/{config.max_attempts}, "
                f"backoff {delay:.1f}s)"
            )
            continue
        record = StoredResult(
            timestamp=time.time(), sweep=config.sweep, **config.git, **raw
        )
        store.append(record)
        queue.complete(task, asdict(record))
        outcome.executed.append(record)
        state = "ok     " if record.ok else "FAILED "
        note(f"{state} {label} ({record.wall_time_s:.2f}s)")
    return outcome
