"""Sweep worker: lease specs from a run directory's queue and execute.

``run_worker`` is the loop behind both the local worker processes the
``queue`` backend spawns and the ``repro worker <run-dir>`` CLI (which
can join from any host sharing the run directory's filesystem).  Each
iteration leases one spec, heartbeats the lease while the experiment
runs, then either buffers the finished record for a batched append
into the sharded :class:`~repro.experiments.store.ResultStore` or
requeues the spec with backoff when the attempt failed and budget
remains.

Finished records drain in batches (:data:`FLUSH_BATCH` records, or
whenever the queue goes idle) through
:meth:`~repro.experiments.store.ResultStore.append_many` — one shard
lock acquire and one buffered write per drained batch instead of one
per record.  Buffered tasks stay leased (the heartbeat thread bumps
them alongside the running spec) and are only marked complete *after*
their records are durable, so a crash mid-buffer re-runs specs rather
than losing results.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.experiments.exec.queue import ClaimedTask, QueueConfig, WorkQueue
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import ResultStore, StoredResult

Progress = Optional[Callable[[str], None]]

#: Finished records buffered before a batched store append.  Small
#: enough that a crash re-runs at most a handful of specs, large enough
#: to amortise the shard lock round-trip (see ``repro bench``'s
#: ``result_store`` workload for the measured delta).
FLUSH_BATCH = 8


@dataclass
class WorkerOutcome:
    """What one worker loop did before the queue drained."""

    worker_id: str
    executed: List[StoredResult] = field(default_factory=list)
    retried: int = 0

    @property
    def failed(self) -> List[StoredResult]:
        return [r for r in self.executed if not r.ok]


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _payload_label(payload) -> str:
    return ExperimentSpec(
        experiment=str(payload["experiment"]),
        params=dict(payload["params"]),
        repeat=int(payload["repeat"]),
        seed=int(payload["seed"]),
    ).label


class _Heartbeat:
    """Background thread bumping lease mtimes while a spec runs.

    ``tasks`` is a callable returning every task whose lease must stay
    live — the spec being executed plus any completed-but-unflushed
    tasks buffered for a batched append.  Without the buffered tasks a
    lease could expire mid-buffer and another worker would re-claim
    (and re-run) an already-finished spec.

    ``on_beat`` (if given) is invoked with the live lease count after
    each round — the telemetry ``heartbeat`` hook.  It runs on this
    thread, so it must be thread-safe (the telemetry writer is).
    """

    def __init__(
        self,
        queue: WorkQueue,
        tasks: Callable[[], List[ClaimedTask]],
        interval_s: float,
        on_beat: Optional[Callable[[int], None]] = None,
    ):
        self._queue = queue
        self._tasks = tasks
        self._interval_s = max(interval_s, 0.01)
        self._on_beat = on_beat
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            tasks = self._tasks()
            for task in tasks:
                self._queue.heartbeat(task)
            if self._on_beat is not None:
                self._on_beat(len(tasks))

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()


def run_worker(
    run_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    poll_s: float = 0.2,
    wait_s: float = 0.0,
    max_specs: Optional[int] = None,
    progress: Progress = None,
) -> WorkerOutcome:
    """Drain specs from ``run_dir``'s queue until it is empty.

    ``wait_s`` tolerates starting before the scheduler has populated
    the queue (the external-worker pattern); ``max_specs`` bounds how
    many specs this worker executes before handing back.  Raises
    :class:`~repro.experiments.exec.queue.QueueError` when no queue
    appears within the wait budget.
    """
    queue = WorkQueue(run_dir)
    deadline = time.monotonic() + wait_s
    while not queue.exists():
        if time.monotonic() >= deadline:
            queue.load_config()  # raises QueueError with the run dir
        time.sleep(min(poll_s, 0.1))
    config = queue.load_config()
    store = ResultStore(run_dir)
    outcome = WorkerOutcome(worker_id=worker_id or default_worker_id())

    # Telemetry is run-scoped: the scheduler creates <run-dir>/telemetry/
    # when it is on, and attach() returns None when it is absent, so an
    # externally launched worker needs no flag of its own.
    from repro.obs.telemetry import TelemetryWriter

    emitter = TelemetryWriter.attach(Path(run_dir), outcome.worker_id)
    worker_start = time.perf_counter()

    def emit(kind: str, **fields: object) -> None:
        if emitter is not None:
            emitter.emit(kind, worker=outcome.worker_id, **fields)

    emit("worker_started")

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    # Import here, not at module top: worker processes fork before any
    # experiment has run, so the registry import cost lands once.
    from repro.experiments.runner import _execute_spec

    # Completed-but-unflushed (task, record) pairs awaiting a batched
    # append.  Records become durable (and tasks complete) only at
    # flush time; until then their leases stay heartbeaten.
    pending: List[tuple] = []

    def flush() -> None:
        if not pending:
            return
        store.append_many([record for _, record in pending])
        for task, record in pending:
            queue.complete(task, asdict(record))
            outcome.executed.append(record)
        pending.clear()

    current: List[ClaimedTask] = []

    def leased_tasks() -> List[ClaimedTask]:
        return current + [task for task, _ in pending]

    while (
        max_specs is None
        or len(outcome.executed) + len(pending) < max_specs
    ):
        task = queue.claim(outcome.worker_id, config.lease_timeout_s)
        if task is None:
            flush()  # idle: make the backlog durable before waiting
            if queue.drained():
                break  # every spec is completed (or queue torn down)
            time.sleep(poll_s)  # all remaining specs leased/backing off
            continue
        label = _payload_label(task.payload)
        emit("task_claimed", task_id=task.spec_hash, label=label)
        current.append(task)
        try:
            with _Heartbeat(
                queue,
                leased_tasks,
                config.lease_timeout_s / 3,
                on_beat=lambda leased: emit("heartbeat", leased=leased),
            ):
                raw = _execute_spec(task.payload)
        finally:
            current.clear()
        if raw["status"] == "error" and task.attempts + 1 < config.max_attempts:
            delay = queue.retry(task, config.backoff_s)
            outcome.retried += 1
            emit(
                "task_retried",
                task_id=task.spec_hash,
                attempt=task.attempts + 1,
                error=str(raw.get("error", ""))[:500],
            )
            note(
                f"retry   {label} "
                f"(attempt {task.attempts + 1}/{config.max_attempts}, "
                f"backoff {delay:.1f}s)"
            )
            continue
        record = StoredResult(
            timestamp=time.time(), sweep=config.sweep,
            worker=outcome.worker_id, **config.git, **raw
        )
        pending.append((task, record))
        emit(
            "task_finished",
            task_id=task.spec_hash,
            status=record.status,
            wall_s=record.wall_time_s,
            label=label,
        )
        if len(pending) >= FLUSH_BATCH:
            flush()
        state = "ok     " if record.ok else "FAILED "
        note(f"{state} {label} ({record.wall_time_s:.2f}s)")
    flush()
    emit(
        "worker_finished",
        completed=len(outcome.executed),
        wall_s=time.perf_counter() - worker_start,
    )
    return outcome
