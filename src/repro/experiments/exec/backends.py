"""Pluggable executor backends behind one scheduling interface.

A backend turns a list of pending spec payloads into a stream of
persisted :class:`~repro.experiments.store.StoredResult`s.  The runner
(:func:`repro.experiments.runner.run_sweep`) stays a thin scheduler: it
expands/caches/accounts, then iterates whatever backend the caller
picked.

* ``serial`` — execute in the calling process, one spec at a time.
* ``pool``   — today's fork pool: N processes, unordered completion,
  results persisted as they land (the default).
* ``queue``  — durable work queue in the run directory; N independent
  worker processes (local children here, plus any ``repro worker``
  joining over a shared filesystem) lease specs, heartbeat, and stream
  records back.  Crash-safe: stale leases requeue, ``"error"`` specs
  retry with bounded exponential backoff.

Every backend yields records *after* they are durably appended to the
run directory's store, so interrupting any backend mid-sweep keeps all
completed specs cached.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Type

from repro.experiments.exec.queue import QueueConfig, WorkQueue
from repro.experiments.store import ResultStore, StoredResult

Payload = Dict[str, object]


class ExecutorError(RuntimeError):
    """A backend lost every worker before the sweep drained."""


class UnknownExecutorError(ValueError):
    """Backend name not in the executor registry."""

    def __init__(self, name: str):
        super().__init__(
            f"unknown executor backend {name!r}; "
            f"options: {', '.join(sorted(EXECUTORS))}"
        )


@dataclass
class ExecutionContext:
    """Everything a backend needs from the scheduler."""

    store: ResultStore
    jobs: int
    sweep: str
    git: Dict[str, object] = field(default_factory=dict)

    def make_record(self, raw: Payload) -> StoredResult:
        return StoredResult(
            timestamp=time.time(), sweep=self.sweep, **self.git, **raw
        )


class ExecutorBackend:
    """Interface: drain ``payloads``, yielding records as they persist."""

    name = "abstract"

    def execute(
        self, payloads: List[Payload], ctx: ExecutionContext
    ) -> Iterator[StoredResult]:
        raise NotImplementedError


class SerialBackend(ExecutorBackend):
    """In-process execution — no workers, deterministic order."""

    name = "serial"

    def execute(
        self, payloads: List[Payload], ctx: ExecutionContext
    ) -> Iterator[StoredResult]:
        from repro.experiments.runner import _execute_spec

        for payload in payloads:
            record = ctx.make_record(_execute_spec(payload))
            ctx.store.append(record)
            yield record


class PoolBackend(ExecutorBackend):
    """Fork-pool execution: ``jobs`` processes, unordered completion.

    Falls back to the serial path when one worker (or one payload)
    makes a pool pointless, preserving the historical ``jobs=1``
    behaviour of running in the caller's process.
    """

    name = "pool"

    def execute(
        self, payloads: List[Payload], ctx: ExecutionContext
    ) -> Iterator[StoredResult]:
        from repro.experiments.runner import _execute_spec, _pool_context

        if ctx.jobs <= 1 or len(payloads) <= 1:
            yield from SerialBackend().execute(payloads, ctx)
            return
        pool = _pool_context().Pool(processes=min(ctx.jobs, len(payloads)))
        try:
            # Unordered: a slow head-of-line spec must not delay
            # persisting specs that already finished behind it.
            for raw in pool.imap_unordered(_execute_spec, payloads):
                record = ctx.make_record(raw)
                ctx.store.append(record)
                yield record
        except BaseException:
            # Abort outstanding specs instead of draining a long sweep
            # before the real error (or Ctrl-C) can surface.
            pool.terminate()
            raise
        else:
            pool.close()
        finally:
            pool.join()


def _local_worker_entry(run_dir: str, worker_id: str) -> None:
    """Child-process entry point (top-level so spawn can pickle it)."""
    from repro.experiments.exec.worker import run_worker

    run_worker(run_dir, worker_id=worker_id)


class QueueBackend(ExecutorBackend):
    """Durable-queue execution with leases, heartbeats, and retries.

    The scheduler persists every pending payload under
    ``<run-dir>/queue/``, spawns ``jobs`` local worker processes (zero
    is valid: external ``repro worker`` processes then supply all the
    labour), and streams records back as done markers land.  Stale
    leases — crashed or wedged workers — are requeued continuously.
    """

    name = "queue"

    def __init__(
        self,
        max_attempts: int = 3,
        backoff_s: float = 0.5,
        lease_timeout_s: float = 30.0,
        poll_s: float = 0.05,
    ):
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.lease_timeout_s = lease_timeout_s
        self.poll_s = poll_s

    def execute(
        self, payloads: List[Payload], ctx: ExecutionContext
    ) -> Iterator[StoredResult]:
        from repro.experiments.runner import _pool_context

        queue = WorkQueue(ctx.store.root)
        queue.create(
            payloads,
            QueueConfig(
                sweep=ctx.sweep,
                git=dict(ctx.git),
                max_attempts=self.max_attempts,
                backoff_s=self.backoff_s,
                lease_timeout_s=self.lease_timeout_s,
            ),
        )
        mp = _pool_context()
        workers = [
            mp.Process(
                target=_local_worker_entry,
                args=(str(ctx.store.root), f"local-{i}"),
                daemon=True,
            )
            for i in range(min(ctx.jobs, len(payloads)))
        ]
        for worker in workers:
            worker.start()
        pending = {str(p["spec_hash"]) for p in payloads}
        seen: set = set()
        dead_rescans = 0
        try:
            while seen != pending:
                fresh = []
                for spec_hash, record in queue.done_records():
                    if spec_hash in seen or spec_hash not in pending:
                        continue
                    seen.add(spec_hash)
                    fresh.append(record)
                for record in fresh:
                    yield StoredResult(**record)
                if fresh:
                    continue
                queue.requeue_stale(self.lease_timeout_s)
                if workers and not any(w.is_alive() for w in workers):
                    # A worker's final done marker is written before it
                    # exits, so grant one rescan to absorb the race.
                    # With zero local workers we instead wait
                    # indefinitely for external ``repro worker``s; with
                    # local workers, all of them gone and nothing left
                    # to observe means the queue was lost (e.g. the run
                    # dir vanished) — fail loud rather than spin.
                    if dead_rescans:
                        raise ExecutorError(
                            f"all {len(workers)} queue worker(s) exited "
                            f"with {len(pending) - len(seen)} spec(s) "
                            f"outstanding"
                        )
                    dead_rescans += 1
                    continue
                time.sleep(self.poll_s)
        finally:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
                worker.join()
        queue.destroy()


EXECUTORS: Dict[str, Type[ExecutorBackend]] = {
    backend.name: backend
    for backend in (SerialBackend, PoolBackend, QueueBackend)
}


def executor_by_name(name: str) -> ExecutorBackend:
    """Instantiate a registered backend, listing options on a typo."""
    try:
        return EXECUTORS[name]()
    except KeyError:
        raise UnknownExecutorError(name) from None
