"""Advisory file locks for run directories and result shards.

A lock is a plain lockfile created with ``O_EXCL`` (atomic on POSIX
local filesystems and adequate over the shared filesystems the queue
backend targets): existence means held.  The holder may
:meth:`FileLock.refresh` the file's mtime as a heartbeat; acquirers
treat a lockfile whose mtime is older than ``stale_after_s`` as
abandoned by a crashed holder and take it over.  This is *advisory*
coordination between cooperating ``repro`` processes — it keeps two
sweeps from interleaving a run directory and serialises shard appends
across queue workers, but it is not a hard mutual-exclusion primitive
against arbitrary writers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional, Union


class LockError(RuntimeError):
    """Base class for advisory-lock failures."""


class LockHeldError(LockError):
    """The lock is held by a live (non-stale) owner."""


class FileLock:
    """One advisory lockfile with stale-takeover semantics."""

    def __init__(
        self,
        path: Union[str, Path],
        owner: Optional[str] = None,
        stale_after_s: float = 60.0,
    ):
        self.path = Path(path)
        self.owner = owner or f"pid-{os.getpid()}"
        self.stale_after_s = stale_after_s
        self._held = False

    @property
    def held(self) -> bool:
        return self._held

    def holder(self) -> Optional[str]:
        """Owner string recorded in the lockfile, or None when free."""
        try:
            return json.loads(self.path.read_text()).get("owner")
        except (OSError, json.JSONDecodeError, AttributeError):
            return None

    def _is_stale(self) -> bool:
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:  # lockfile vanished: not held, not stale
            return False
        return age > self.stale_after_s

    def acquire(self, wait_s: float = 0.0, poll_s: float = 0.05) -> "FileLock":
        """Take the lock, waiting up to ``wait_s`` for a live holder.

        A stale lockfile (no heartbeat for ``stale_after_s``) is removed
        and taken over immediately.  Raises :class:`LockHeldError` when
        a live holder outlasts the wait budget.
        """
        deadline = time.monotonic() + wait_s
        payload = json.dumps(
            {"owner": self.owner, "pid": os.getpid(), "acquired": time.time()}
        )
        while True:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                if self._is_stale():
                    # Crashed holder: remove and retry.  Two takeovers
                    # can race here; O_EXCL picks exactly one winner.
                    try:
                        self.path.unlink()
                    except OSError:
                        pass
                    continue
                if time.monotonic() >= deadline:
                    raise LockHeldError(
                        f"lock {self.path} held by "
                        f"{self.holder() or 'unknown owner'}"
                    ) from None
                time.sleep(poll_s)
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            self._held = True
            return self

    def refresh(self) -> None:
        """Heartbeat: bump the lockfile mtime so the lock stays live."""
        if self._held:
            try:
                os.utime(self.path)
            except OSError:
                pass

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "FileLock":
        if not self._held:
            self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
