"""Durable on-disk work queue for distributed sweep execution.

The scheduler (:func:`repro.experiments.runner.run_sweep` with the
``queue`` backend) persists every pending spec payload under the run
directory; worker processes — local children or ``repro worker``
processes on any host sharing the filesystem — *lease* specs one at a
time, heartbeat while executing, and mark them done with the persisted
record.  Crashed workers stop heartbeating, their leases go stale, and
the specs requeue; ``"error"`` specs retry with exponential backoff up
to a bounded attempt budget before the failure is persisted for real.

Layout inside ``<run-dir>/queue/``::

    meta.json        scheduler-written config (sweep name, git
                     metadata, retry/lease budgets)
    tasks/<hash>.json    one pending spec payload (+ attempt count,
                         earliest-retry timestamp)
    leases/<hash>.json   live claim; mtime is the worker heartbeat
    done/<hash>.json     completed spec's full stored record

All transitions are single-file creates/renames/unlinks, so any number
of workers can cooperate without a coordinator process.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

QUEUE_DIR = "queue"


class QueueError(RuntimeError):
    """The work queue is missing, torn down, or malformed."""


@dataclass
class QueueConfig:
    """Scheduler-chosen execution budgets shared with every worker."""

    sweep: str
    git: Dict[str, object] = field(default_factory=dict)
    #: Total execution attempts per spec (1 = no retries).
    max_attempts: int = 3
    #: First-retry delay; doubles per subsequent attempt.
    backoff_s: float = 0.5
    #: A lease with no heartbeat for this long is considered abandoned.
    lease_timeout_s: float = 30.0


@dataclass
class ClaimedTask:
    """One leased spec: payload plus its retry history."""

    spec_hash: str
    payload: Dict[str, object]
    attempts: int = 0


class WorkQueue:
    """File-backed queue of spec payloads under one run directory."""

    def __init__(self, run_dir: Union[str, Path]):
        self.run_dir = Path(run_dir)
        self.root = self.run_dir / QUEUE_DIR

    @property
    def meta_path(self) -> Path:
        return self.root / "meta.json"

    @property
    def tasks_dir(self) -> Path:
        return self.root / "tasks"

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def done_dir(self) -> Path:
        return self.root / "done"

    def exists(self) -> bool:
        return self.meta_path.is_file()

    # ------------------------- scheduler side -------------------------
    def create(
        self, payloads: List[Dict[str, object]], config: QueueConfig
    ) -> None:
        """(Re)populate the queue with ``payloads``.

        Any leftover state from an interrupted run is wiped first:
        completed specs live on in the result store (and are therefore
        not in ``payloads``), so stale tasks/leases/done markers carry
        no information the store does not already hold.
        """
        self.destroy()
        for sub in (self.tasks_dir, self.leases_dir, self.done_dir):
            sub.mkdir(parents=True, exist_ok=True)
        for payload in payloads:
            task = {"payload": payload, "attempts": 0, "not_before": 0.0}
            self._write_atomic(
                self.tasks_dir / f"{payload['spec_hash']}.json", task
            )
        # meta.json lands last: workers treat its presence as "queue
        # open for business", so they never observe a half-built queue.
        self._write_atomic(self.meta_path, asdict(config))

    def destroy(self) -> None:
        if self.root.is_dir():
            shutil.rmtree(self.root, ignore_errors=True)

    def requeue_stale(self, lease_timeout_s: float) -> List[str]:
        """Drop leases whose heartbeat stopped; their specs become
        claimable again.  Returns the requeued spec hashes."""
        requeued = []
        now = time.time()
        for lease in self._listdir(self.leases_dir):
            try:
                age = now - lease.stat().st_mtime
            except OSError:
                continue
            if age <= lease_timeout_s:
                continue
            if not (self.tasks_dir / lease.name).is_file():
                continue  # completed concurrently; lease is vestigial
            try:
                lease.unlink()
            except OSError:
                continue
            requeued.append(lease.stem)
        return requeued

    def done_records(self) -> Iterator[Tuple[str, Dict[str, object]]]:
        """Yield ``(spec_hash, stored-record dict)`` per done marker."""
        for path in self._listdir(self.done_dir):
            record = self._read_json(path)
            if record is not None:
                yield path.stem, record

    # --------------------------- worker side --------------------------
    def load_config(self) -> QueueConfig:
        data = self._read_json(self.meta_path)
        if data is None:
            raise QueueError(f"no work queue under {self.run_dir}")
        return QueueConfig(**data)

    def claim(
        self, owner: str, lease_timeout_s: float
    ) -> Optional[ClaimedTask]:
        """Lease one claimable spec, or None when nothing is claimable.

        A spec is claimable when its task file exists, its retry
        backoff has elapsed, and no live lease covers it.  The lease
        file is created with ``O_EXCL``, so concurrent workers racing
        for one spec resolve to exactly one winner.
        """
        now = time.time()
        for task_path in self._listdir(self.tasks_dir):
            task = self._read_json(task_path)
            if task is None:  # completed/rewritten under our feet
                continue
            if float(task.get("not_before", 0.0)) > now:
                continue
            spec_hash = task_path.stem
            lease_path = self.leases_dir / f"{spec_hash}.json"
            if lease_path.is_file():
                try:
                    age = now - lease_path.stat().st_mtime
                except OSError:
                    age = 0.0
                if age <= lease_timeout_s:
                    continue
                try:  # stale: evict the dead worker's lease
                    lease_path.unlink()
                except OSError:
                    pass
            try:
                fd = os.open(
                    lease_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL
                )
            except FileExistsError:
                continue  # another worker won the race
            except FileNotFoundError:
                return None  # queue torn down mid-scan
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps({"owner": owner, "acquired": now}))
            return ClaimedTask(
                spec_hash=spec_hash,
                payload=dict(task["payload"]),
                attempts=int(task.get("attempts", 0)),
            )
        return None

    def heartbeat(self, task: ClaimedTask) -> None:
        try:
            os.utime(self.leases_dir / f"{task.spec_hash}.json")
        except OSError:
            pass

    def retry(self, task: ClaimedTask, backoff_s: float) -> float:
        """Requeue a failed attempt with exponential backoff.

        Returns the delay before the spec becomes claimable again.
        """
        delay = backoff_s * (2 ** task.attempts)
        self._write_atomic(
            self.tasks_dir / f"{task.spec_hash}.json",
            {
                "payload": task.payload,
                "attempts": task.attempts + 1,
                "not_before": time.time() + delay,
            },
        )
        self._release(task)
        return delay

    def complete(self, task: ClaimedTask, record: Dict[str, object]) -> None:
        """Mark a spec done (record already persisted to the store)."""
        self._write_atomic(self.done_dir / f"{task.spec_hash}.json", record)
        try:
            (self.tasks_dir / f"{task.spec_hash}.json").unlink()
        except OSError:
            pass
        self._release(task)

    def drained(self) -> bool:
        """True once no task files remain (all specs completed)."""
        return not any(self._listdir(self.tasks_dir))

    # ----------------------------- helpers ----------------------------
    def _release(self, task: ClaimedTask) -> None:
        try:
            (self.leases_dir / f"{task.spec_hash}.json").unlink()
        except OSError:
            pass

    @staticmethod
    def _listdir(directory: Path) -> List[Path]:
        try:
            return sorted(p for p in directory.iterdir() if p.suffix == ".json")
        except OSError:
            return []

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict[str, object]]:
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    @staticmethod
    def _write_atomic(path: Path, data: Dict[str, object]) -> None:
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(data))
        os.replace(tmp, path)
