"""JSONL-backed persistence for experiment results.

Each sweep run owns a directory; inside it, ``results.jsonl`` holds one
JSON record per executed spec (hash, params, series, wall time, git
metadata, status) and ``sweep.json`` holds the expanded sweep spec.
Records append-only; when a spec is re-run (``--force``) the newest
record wins on load.  A run directory assumes one writer at a time:
concurrent sweeps should target separate ``--out`` directories.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Union

RESULTS_FILE = "results.jsonl"
SWEEP_FILE = "sweep.json"


@dataclass
class StoredResult:
    """One persisted experiment execution (ok or failed)."""

    spec_hash: str
    experiment: str
    params: Dict[str, object]
    repeat: int
    seed: int
    status: str                      # "ok" | "error"
    series: Dict[str, object] = field(default_factory=dict)
    text: str = ""
    error: Optional[str] = None
    wall_time_s: float = 0.0
    timestamp: float = 0.0
    sweep: str = ""
    git_commit: Optional[str] = None
    git_dirty: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def git_metadata(repo_dir: Union[str, Path, None] = None) -> Dict[str, object]:
    """Current commit hash and dirty flag, or Nones outside a repo."""
    cwd = str(repo_dir) if repo_dir else None
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return {"git_commit": None, "git_dirty": None}
    if commit.returncode != 0:
        return {"git_commit": None, "git_dirty": None}
    return {
        "git_commit": commit.stdout.strip(),
        "git_dirty": bool(status.stdout.strip()),
    }


class ResultStore:
    """Append/load/query interface over one run directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    @property
    def results_path(self) -> Path:
        return self.root / RESULTS_FILE

    @property
    def sweep_path(self) -> Path:
        return self.root / SWEEP_FILE

    def exists(self) -> bool:
        return self.results_path.is_file()

    def save_sweep(self, sweep_dict: Dict[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self.sweep_path.write_text(json.dumps(sweep_dict, indent=2) + "\n")

    def load_sweep_name(self) -> Optional[str]:
        """Name recorded in ``sweep.json``, or None if absent/corrupt."""
        if not self.sweep_path.is_file():
            return None
        try:
            name = json.loads(self.sweep_path.read_text()).get("name")
        except (json.JSONDecodeError, OSError, AttributeError):
            return None
        return name if isinstance(name, str) else None

    def append(self, record: StoredResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        with self.results_path.open("a") as fh:
            fh.write(json.dumps(asdict(record)) + "\n")

    def load(self) -> List[StoredResult]:
        """Every record in append order (skipping corrupt lines)."""
        if not self.exists():
            return []
        records = []
        with self.results_path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(StoredResult(**json.loads(line)))
                except (json.JSONDecodeError, TypeError):
                    continue
        return records

    def latest(self) -> Dict[str, StoredResult]:
        """Newest record per spec hash (re-runs supersede old results)."""
        newest: Dict[str, StoredResult] = {}
        for record in self.load():
            newest[record.spec_hash] = record
        return newest

    def ok_hashes(self) -> Set[str]:
        """Spec hashes whose newest record succeeded — the skip cache."""
        return {h for h, r in self.latest().items() if r.ok}

    def query(
        self,
        experiment: Optional[str] = None,
        status: Optional[str] = None,
    ) -> Iterator[StoredResult]:
        """Newest-per-spec records filtered by experiment id and status."""
        for record in self.latest().values():
            if experiment is not None and record.experiment != experiment:
                continue
            if status is not None and record.status != status:
                continue
            yield record
